"""Tests for SetD / SetDMin (repro.collectives.setd)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import setd, setdmin
from repro.core import OptimizationFlags
from repro.errors import CollectiveError
from repro.runtime import PGASRuntime, PartitionedArray, hps_cluster, smp_node


def make_setup(machine, n=300, k=1500, seed=0):
    rt = PGASRuntime(machine)
    arr = rt.shared_array(np.arange(n, dtype=np.int64) * 5)
    rng = np.random.default_rng(seed)
    idx = PartitionedArray.even(rng.integers(0, n, k), machine.total_threads)
    vals = rng.integers(0, 5 * n, k)
    return rt, arr, idx, vals


MACHINES = [hps_cluster(2, 2), hps_cluster(4, 1), smp_node(8)]


class TestSetDMin:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_matches_minimum_at(self, machine):
        rt, arr, idx, vals = make_setup(machine)
        expected = arr.data.copy()
        np.minimum.at(expected, idx.data, vals)
        setdmin(rt, arr, idx, vals)
        assert np.array_equal(arr.data, expected)

    def test_changed_count(self):
        rt, arr, _, _ = make_setup(hps_cluster(2, 2), n=100)
        idx = PartitionedArray.even(np.array([10, 10, 20, 30], dtype=np.int64), 4)
        changed = setdmin(rt, arr, idx, np.array([7, 3, 1000, 0]))
        assert changed == 2  # 10 -> 3 and 30 -> 0; 20 keeps 100

    def test_all_optimizations_preserve_semantics(self):
        rt, arr, idx, vals = make_setup(hps_cluster(2, 2))
        expected = arr.data.copy()
        np.minimum.at(expected, idx.data, vals)
        setdmin(rt, arr, idx, vals, OptimizationFlags.all(), tprime=4)
        assert np.array_equal(arr.data, expected)

    def test_empty(self):
        rt, arr, _, _ = make_setup(hps_cluster(2, 2))
        idx = PartitionedArray.empty_like(rt.s)
        assert setdmin(rt, arr, idx, np.empty(0, dtype=np.int64)) == 0

    def test_value_length_mismatch(self):
        rt, arr, idx, vals = make_setup(hps_cluster(2, 2))
        with pytest.raises(CollectiveError):
            setdmin(rt, arr, idx, vals[:-1])

    def test_part_mismatch(self):
        rt, arr, _, _ = make_setup(hps_cluster(2, 2))
        idx = PartitionedArray.even(np.zeros(4, dtype=np.int64), 2)
        with pytest.raises(CollectiveError):
            setdmin(rt, arr, idx, np.zeros(4, dtype=np.int64))


class TestSetD:
    def test_min_combine_default(self):
        rt, arr, idx, vals = make_setup(hps_cluster(2, 2))
        expected = arr.data.copy()
        np.minimum.at(expected, idx.data, vals)
        setd(rt, arr, idx, vals)
        assert np.array_equal(arr.data, expected)

    def test_store_min_combine(self):
        rt, arr, _, _ = make_setup(hps_cluster(2, 2), n=100)
        idx = PartitionedArray.even(np.array([2, 2, 3, 4], dtype=np.int64), 4)
        setd(rt, arr, idx, np.array([500, 400, 1, 0]), combine="store_min")
        assert arr.data[2] == 400  # raised above original 10
        assert arr.data[3] == 1
        assert arr.data[4] == 0

    def test_unknown_combine(self):
        rt, arr, idx, vals = make_setup(hps_cluster(2, 2))
        with pytest.raises(CollectiveError):
            setd(rt, arr, idx, vals, combine="max")

    def test_drop_hot_skips_writes_to_hot_index(self):
        machine = hps_cluster(2, 2)
        rt, arr, _, _ = make_setup(machine, n=100)
        idx = PartitionedArray.even(np.array([0, 0, 5, 6], dtype=np.int64), 4)
        vals = np.array([999, 999, 1, 1])
        before_bytes = rt.counters.remote_bytes
        setd(rt, arr, idx, vals, OptimizationFlags.only("offload"), drop_hot=True)
        # hot writes dropped; non-hot applied
        assert arr.data[0] == 0
        assert arr.data[5] == 1

    def test_record_words_scales_comm_bytes(self):
        machine = hps_cluster(4, 2)

        def run(words):
            rt, arr, idx, vals = make_setup(machine, n=1000, k=30_000)
            setd(rt, arr, idx, np.minimum(vals, 10**6), record_words=words)
            return rt.counters.remote_bytes

        # Payload bytes double; the (fixed) setup traffic dilutes slightly.
        assert run(4) / run(2) == pytest.approx(2.0, rel=0.02)

    def test_single_node_no_remote_traffic(self):
        rt, arr, idx, vals = make_setup(smp_node(8))
        setd(rt, arr, idx, vals)
        assert rt.counters.remote_messages == 0


class TestDeterminism:
    def test_result_independent_of_machine_shape(self):
        results = []
        for machine in (hps_cluster(2, 4), hps_cluster(8, 1), smp_node(8)):
            rt, arr, idx, vals = make_setup(machine, seed=3)
            setdmin(rt, arr, idx, vals)
            results.append(arr.data.copy())
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


@given(
    n=st.integers(2, 100),
    seed=st.integers(0, 8),
    combine=st.sampled_from(["min", "store_min"]),
)
def test_property_setd_matches_reference(n, seed, combine):
    rng = np.random.default_rng(seed)
    machine = hps_cluster(2, 2)
    rt = PGASRuntime(machine)
    arr = rt.shared_array(rng.integers(0, 1000, n))
    k = int(rng.integers(1, 3 * n))
    idx_data = rng.integers(0, n, k)
    vals = rng.integers(0, 1000, k)
    expected = arr.data.copy()
    if combine == "min":
        np.minimum.at(expected, idx_data, vals)
    else:
        proposal = np.full(n, np.iinfo(np.int64).max)
        np.minimum.at(proposal, idx_data, vals)
        touched = proposal != np.iinfo(np.int64).max
        expected[touched] = proposal[touched]
    idx = PartitionedArray.even(idx_data, machine.total_threads)
    setd(rt, arr, idx, vals, combine=combine)
    assert np.array_equal(arr.data, expected)
