"""Tests for the core API: optimization flags, pipeline dispatch,
results, analysis formulas, calibration."""

import math

import numpy as np
import pytest

from repro.core import (
    CC_IMPLS,
    MST_IMPLS,
    OptimizationFlags,
    canonical_labels,
    cc_computation_ops,
    cc_memory_accesses,
    cc_remote_access_time,
    cc_serialized_comm_time,
    cc_smp_noncontig_time,
    cluster_for_input,
    connected_components,
    machine_for_input,
    minimum_spanning_forest,
    naive_slowdown_estimate,
    section3_table,
    sequential_for_input,
    smp_for_input,
)
from repro.core.calibration import PAPER_N_LARGE
from repro.errors import ConfigError, GraphError, VerificationError
from repro.graph import random_graph, with_random_weights
from repro.runtime import hps_cluster, infiniband_cluster, smp_node


class TestOptimizationFlags:
    def test_none_and_all(self):
        assert OptimizationFlags.none().enabled() == ()
        assert set(OptimizationFlags.all().enabled()) == {
            "compact", "offload", "circular", "localcpy", "ids", "rdma"
        }

    def test_only(self):
        flags = OptimizationFlags.only("compact", "rdma")
        assert flags.compact and flags.rdma and not flags.circular

    def test_only_rejects_unknown(self):
        with pytest.raises(ConfigError):
            OptimizationFlags.only("warp_drive")

    def test_cumulative_matches_fig5_order(self):
        labels = [label for label, _ in OptimizationFlags.cumulative()]
        assert labels == ["base", "compact", "offload", "circular", "localcpy", "id"]

    def test_cumulative_is_monotone_accumulation(self):
        seen = set()
        for _, flags in OptimizationFlags.cumulative():
            now = set(flags.enabled())
            assert seen <= now
            seen = now

    def test_with_(self):
        flags = OptimizationFlags.none().with_(compact=True)
        assert flags.compact
        with pytest.raises(ConfigError):
            flags.with_(bogus=True)

    def test_describe(self):
        assert OptimizationFlags.none().describe() == "base"
        assert "compact" in OptimizationFlags.only("compact").describe()


class TestPipeline:
    @pytest.fixture(scope="class")
    def g(self):
        return random_graph(150, 400, seed=1)

    @pytest.fixture(scope="class")
    def gw(self):
        return with_random_weights(random_graph(150, 400, seed=1), seed=2)

    @pytest.mark.parametrize("impl", CC_IMPLS)
    def test_cc_dispatch(self, g, impl):
        machine = smp_node(4) if impl in ("smp", "sequential") else hps_cluster(2, 2)
        res = connected_components(g, machine, impl=impl, validate=True)
        assert res.labels.shape == (150,)

    @pytest.mark.parametrize("impl", MST_IMPLS)
    def test_mst_dispatch(self, gw, impl):
        machine = smp_node(4) if impl in ("smp", "kruskal", "prim", "boruvka") else hps_cluster(2, 2)
        res = minimum_spanning_forest(gw, machine, impl=impl, validate=True)
        assert res.total_weight > 0

    def test_unknown_impl(self, g, gw):
        with pytest.raises(ConfigError):
            connected_components(g, impl="magic")
        with pytest.raises(ConfigError):
            minimum_spanning_forest(gw, impl="magic")

    def test_validate_catches_nothing_on_good_run(self, g):
        connected_components(g, hps_cluster(2, 2), validate=True)

    def test_mst_requires_weights(self, g):
        with pytest.raises(GraphError):
            minimum_spanning_forest(g, hps_cluster(2, 2))

    def test_default_machine_is_paper_cluster(self, g):
        res = connected_components(g)
        assert res.info.machine.nodes == 16


class TestCanonicalLabels:
    def test_empty(self):
        assert canonical_labels(np.empty(0, dtype=np.int64)).size == 0

    def test_maps_to_min_member(self):
        labels = np.array([7, 7, 3, 3, 9])
        out = canonical_labels(labels)
        assert out.tolist() == [0, 0, 2, 2, 4]

    def test_partition_invariance(self):
        a = np.array([5, 5, 1, 1])
        b = np.array([2, 2, 8, 8])
        assert np.array_equal(canonical_labels(a), canonical_labels(b))

    def test_different_partitions_differ(self):
        a = np.array([0, 0, 1])
        b = np.array([0, 1, 1])
        assert not np.array_equal(canonical_labels(a), canonical_labels(b))


class TestAnalysis:
    def test_eq1_eq2_scale_inversely_with_p(self):
        assert cc_computation_ops(10**6, 4 * 10**6, 2) > cc_computation_ops(
            10**6, 4 * 10**6, 8
        )
        assert cc_memory_accesses(10**6, 4 * 10**6, 2) > cc_memory_accesses(
            10**6, 4 * 10**6, 8
        )

    def test_eq2_formula(self):
        n, m, p = 1024, 4096, 4
        expected = n * math.log2(n) ** 2 / p + (m / p + 2) * math.log2(n)
        assert cc_memory_accesses(n, m, p) == pytest.approx(expected)

    def test_eq3_zero_on_one_node(self):
        assert cc_remote_access_time(1000, 4000, hps_cluster(1, 4)) == 0.0

    def test_serialized_time_exceeds_per_thread_time(self):
        m = hps_cluster(16, 16)
        assert cc_serialized_comm_time(10**6, 4 * 10**6, m) > cc_remote_access_time(
            10**6, 4 * 10**6, m
        )

    def test_slowdown_estimate_near_paper_20x(self):
        est = naive_slowdown_estimate()  # IB/DDR3 constants
        assert 10 < est < 30

    def test_slowdown_larger_on_hps(self):
        assert naive_slowdown_estimate(hps_cluster()) > naive_slowdown_estimate(
            infiniband_cluster()
        )

    def test_smp_noncontig_positive(self):
        assert cc_smp_noncontig_time(10**6, 4 * 10**6, smp_node(16)) > 0

    def test_section3_table_rows(self):
        rows = section3_table(10**6, 4 * 10**6, infiniband_cluster())
        assert len(rows) == 6
        assert all(row.render() for row in rows)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            cc_computation_ops(10, 10, 0)


class TestCalibration:
    def test_scales_cache_and_per_call(self):
        base = hps_cluster(4, 4)
        m = machine_for_input(base, PAPER_N_LARGE // 1000)
        assert m.cache.size_bytes == pytest.approx(base.cache.size_bytes / 1000, rel=0.01)
        assert m.per_call_scale == pytest.approx(1 / 1000)

    def test_identity_at_paper_scale(self):
        base = hps_cluster(4, 4)
        m = machine_for_input(base, PAPER_N_LARGE)
        assert m.cache.size_bytes == base.cache.size_bytes
        assert m.per_call_scale == 1.0

    def test_helpers_produce_expected_shapes(self):
        assert cluster_for_input(10_000, 8, 4).total_threads == 32
        assert smp_for_input(10_000, 8).nodes == 1
        assert sequential_for_input(10_000).total_threads == 1

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            machine_for_input(hps_cluster(2, 2), 0)
