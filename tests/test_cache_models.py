"""Tests for the analytic cache model and the exact cache simulators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime import CacheParams, CostModel, smp_node
from repro.scheduling import (
    best_tprime,
    scheduled_gather_time,
    scheduling_beneficial,
    simulate_direct_mapped,
    simulate_set_associative,
    trace_of_gather,
    trace_of_scheduled_gather,
    unscheduled_gather_time,
)


@pytest.fixture
def cm():
    return CostModel(smp_node(16))


class TestEquations:
    def test_eq4_linear_in_m(self, cm):
        assert unscheduled_gather_time(2_000_000, cm) == pytest.approx(
            2 * unscheduled_gather_time(1_000_000, cm)
        )

    def test_eq5_breakdown_sums(self, cm):
        bd = scheduled_gather_time(400_000, 100_000, 16, cm)
        assert bd.total == pytest.approx(
            bd.sort + bd.route + bd.access + bd.collect + bd.permute
        )

    def test_paper_condition_m_gt_3n(self, cm):
        # m > 3n and L_M * B_M >> 9: scheduling helps.
        assert scheduling_beneficial(400_000, 100_000, cm)
        assert scheduled_gather_time(400_000, 100_000, 16, cm).total < (
            unscheduled_gather_time(400_000, cm)
        )

    def test_scheduling_not_beneficial_for_sparse_requests(self, cm):
        # m << n: almost no reuse, scheduling overhead dominates.
        assert not scheduling_beneficial(1_000, 1_000_000, cm)

    def test_access_phase_bounded_by_n_misses(self, cm):
        bd = scheduled_gather_time(10_000_000, 1_000, 4, cm)
        mem = cm.machine.memory
        assert bd.access <= 1_000 * mem.latency + 10_000_000 * 8 / mem.bandwidth + 1e-9


class TestBestTprime:
    def test_fit_point(self, cm):
        cache = cm.machine.cache.size_bytes
        block = 4 * cache // 8  # four caches worth of elements
        assert best_tprime(block, cm) == 4

    def test_already_fits(self, cm):
        assert best_tprime(10, cm) == 1

    def test_clamped_to_max(self, cm):
        assert best_tprime(10**12, cm, max_tprime=32) == 32


class TestCacheSimulators:
    def small_cache(self):
        return CacheParams(size_bytes=512, line_bytes=64, associativity=2)

    def test_sequential_scan_mostly_hits(self):
        cache = self.small_cache()
        trace = np.repeat(np.arange(64), 8)  # 8 consecutive touches per line
        res = simulate_set_associative(trace, cache)
        assert res.miss_rate < 0.2

    def test_repeated_small_set_hits(self):
        cache = self.small_cache()
        trace = np.tile(np.arange(4) * 8, 100)
        res = simulate_set_associative(trace, cache)
        assert res.misses <= 8

    def test_random_large_set_misses(self):
        cache = self.small_cache()
        trace = np.random.default_rng(0).integers(0, 100_000, 2000)
        res = simulate_set_associative(trace, cache)
        assert res.miss_rate > 0.8

    def test_direct_mapped_conflicts(self):
        cache = CacheParams(size_bytes=512, line_bytes=64, associativity=1)
        # two addresses mapping to the same set ping-pong in direct-mapped
        a, b = 0, cache.num_lines * 8  # same set, different tags
        trace = np.array([a, b] * 50)
        res = simulate_direct_mapped(trace, cache)
        assert res.misses == 100

    def test_set_associative_resists_pingpong(self):
        cache = CacheParams(size_bytes=512, line_bytes=64, associativity=2)
        a, b = 0, cache.num_lines // 2 * 8
        trace = np.array([a, b] * 50)
        res = simulate_set_associative(trace, cache)
        assert res.misses <= 4

    def test_line_must_divide_elements(self):
        cache = CacheParams(size_bytes=512, line_bytes=60, associativity=1)
        with pytest.raises(ConfigError):
            simulate_direct_mapped(np.array([0]), cache, elem_bytes=8)

    def test_result_counts(self):
        cache = self.small_cache()
        res = simulate_set_associative(np.array([0, 0, 0]), cache)
        assert res.accesses == 3 and res.misses == 1
        assert res.miss_rate == pytest.approx(1 / 3)

    def test_empty_trace(self):
        res = simulate_set_associative(np.empty(0, dtype=np.int64), self.small_cache())
        assert res.accesses == 0 and res.miss_rate == 0.0


class TestScheduledTraceValidation:
    """The analytic claim — scheduling reduces misses — holds on the
    exact simulator, not just in the model."""

    def test_scheduled_trace_reduces_misses(self):
        cache = CacheParams(size_bytes=1024, line_bytes=8, associativity=2)
        rng = np.random.default_rng(1)
        n = 5000
        r = rng.integers(0, n, 20_000)
        plain = simulate_set_associative(trace_of_gather(r), cache)
        grouped = simulate_set_associative(trace_of_scheduled_gather(r, n, 32), cache)
        assert grouped.misses < plain.misses

    def test_more_blocks_fewer_misses(self):
        cache = CacheParams(size_bytes=1024, line_bytes=8, associativity=2)
        rng = np.random.default_rng(2)
        n = 5000
        r = rng.integers(0, n, 20_000)
        few = simulate_set_associative(trace_of_scheduled_gather(r, n, 4), cache)
        many = simulate_set_associative(trace_of_scheduled_gather(r, n, 64), cache)
        assert many.misses < few.misses

    def test_trace_is_permutation_of_requests(self):
        rng = np.random.default_rng(3)
        r = rng.integers(0, 100, 500)
        trace = trace_of_scheduled_gather(r, 100, 8)
        assert np.array_equal(np.sort(trace), np.sort(r))

    def test_bad_w(self):
        with pytest.raises(ConfigError):
            trace_of_scheduled_gather(np.array([0]), 10, 0)
