"""Golden-trace bit-identity suite for the wall-clock perf engine.

The contract of ``repro.perf``: every optimization (pooled scratch
buffers, memoized derived artifacts, the bincount/cumsum rewrites of
the ``np.unique``/``ufunc.at`` hot spots, the rewritten Trace
accumulator) changes *only* wall-clock.  Modeled times, per-category
seconds, per-thread breakdowns, counters, and algorithm results must be
**bit**-identical between the fast engine and the legacy engine.

:func:`repro.perf.golden.scenario_fingerprint` renders every modeled
float with ``float.hex`` and folds result arrays to SHA-256 digests, so
plain ``==`` on the fingerprints below means byte equality — no
tolerances anywhere in this file.
"""

from __future__ import annotations

import pytest

from repro.perf import clear_derived_caches, global_arena, legacy_engine
from repro.perf.golden import (
    REDUNDANCY_SCENARIOS,
    SCENARIOS,
    Scenario,
    scenario_fingerprint,
)


def _scenario_id(scenario: Scenario) -> str:
    return scenario.name


def test_matrix_spans_the_contract():
    """16 scenarios: {cc, mst} x {faults, analyze, integrity} x {on, off}."""
    assert len(SCENARIOS) == 16
    names = [s.name for s in SCENARIOS]
    assert len(set(names)) == 16
    for algo in ("cc", "mst"):
        assert f"{algo}-plain" in names
        assert f"{algo}-FAI" in names


@pytest.mark.parametrize("scenario", SCENARIOS, ids=_scenario_id)
def test_fast_engine_is_bit_identical(scenario):
    with legacy_engine():
        golden = scenario_fingerprint(scenario)
    clear_derived_caches()
    global_arena().clear()
    fast = scenario_fingerprint(scenario)
    assert fast == golden, f"{scenario.name}: fast engine diverged from legacy"


@pytest.mark.parametrize("scenario", SCENARIOS[:4], ids=_scenario_id)
def test_fast_engine_is_deterministic_across_repeats(scenario):
    """Warm caches and a warm arena must not change a single bit either."""
    first = scenario_fingerprint(scenario)
    second = scenario_fingerprint(scenario)
    assert first == second


def test_faulted_unprotected_error_is_part_of_the_fingerprint():
    """A deterministic solver failure must reproduce identically too:
    a corrupted unprotected run that trips the convergence bound is a
    legitimate golden outcome, not a test error."""
    hot = Scenario(algo="cc", faults=True, analyze=False, integrity=False, seed=7)
    with legacy_engine():
        golden = scenario_fingerprint(hot)
    fast = scenario_fingerprint(hot)
    assert fast == golden
    assert ("error" in golden) == ("error" in fast)


def test_redundancy_matrix_is_separate():
    """The redundancy scenarios live beside the 16-entry pin, not in it."""
    assert len(SCENARIOS) == 16  # the original contract is untouched
    names = [s.name for s in REDUNDANCY_SCENARIOS]
    assert len(set(names)) == len(names) == 8
    assert not set(names) & {s.name for s in SCENARIOS}
    for s in REDUNDANCY_SCENARIOS:
        assert s.redundancy in ("buddy", "parity")


@pytest.mark.parametrize("scenario", REDUNDANCY_SCENARIOS, ids=_scenario_id)
def test_redundancy_charges_are_bit_identical(scenario):
    """Replication / round-commit traffic is modeled time like any other:
    the fast engine must reproduce it bit-for-bit, and with no loss
    firing the answer must match the redundancy-off run exactly."""
    with legacy_engine():
        golden = scenario_fingerprint(scenario)
    clear_derived_caches()
    global_arena().clear()
    fast = scenario_fingerprint(scenario)
    assert fast == golden, f"{scenario.name}: fast engine diverged from legacy"
    if "counters" in fast:
        assert fast["counters"]["replicas_written"] > 0
        assert fast["counters"]["node_losses"] == 0


def test_redundancy_never_changes_answers_without_a_loss():
    """Redundancy on, no loss: same labels as the plain run."""
    plain = scenario_fingerprint(Scenario(algo="cc", faults=False, analyze=False, integrity=False))
    for mode in ("buddy", "parity"):
        red = scenario_fingerprint(
            Scenario(algo="cc", faults=False, analyze=False, integrity=False, redundancy=mode)
        )
        assert red["result"] == plain["result"]
