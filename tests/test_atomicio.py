"""Concurrent-writer atomicity for shared on-disk state (repro.atomicio).

The plan cache, the bench graph cache, and the BENCH_*.json reports are
written by concurrent soak/tune/service workers.  The regression these
tests pin: writes must go through a *unique* temp file + ``os.replace``
— a fixed ``.tmp`` name lets writer B truncate writer A's temp mid-write
and rename a torn file into place, which is exactly the corruption a
reader then loads.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.atomicio import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        path = tmp_path / "out.txt"
        assert atomic_write_text(path, "hello") == path
        assert path.read_text() == "hello"

    def test_overwrites_in_place(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_no_temp_left_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "out.bin", b"x" * 1024)
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_temp_cleaned_up_on_failure(self, tmp_path, monkeypatch):
        import repro.atomicio as atomicio

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_bytes(tmp_path / "out.bin", b"payload")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_concurrent_writers_never_tear(self, tmp_path):
        """N threads hammer the same path with distinct payloads while a
        reader samples it: every observed state must be one writer's
        complete payload, never a mix or a truncation."""
        path = tmp_path / "contended.json"
        workers = 8
        rounds = 40
        payloads = {
            i: json.dumps({"writer": i, "fill": "x" * (2000 + 137 * i)}, sort_keys=True)
            for i in range(workers)
        }
        complete = set(payloads.values())
        errors = []
        stop = threading.Event()

        def writer(i):
            try:
                for _ in range(rounds):
                    atomic_write_text(path, payloads[i])
            except Exception as err:  # pragma: no cover - failure path
                errors.append(f"writer {i}: {err}")

        def reader():
            while not stop.is_set():
                try:
                    text = path.read_text()
                except FileNotFoundError:
                    continue
                if text not in complete:
                    errors.append(f"torn read: {text[:80]!r}... ({len(text)} bytes)")
                    return

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(workers)]
        observer = threading.Thread(target=reader)
        observer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        observer.join()
        assert errors == []
        assert path.read_text() in complete


class TestPlanCacheConcurrency:
    def test_concurrent_saves_leave_valid_cache(self, tmp_path, monkeypatch):
        """Many PlanCache.save() calls racing on one path must always
        leave a parseable cache file (the pre-atomicio failure mode was
        a torn JSON file that silently reset everyone's plans)."""
        from repro.tuning.cache import PlanCache

        cache_path = tmp_path / "cache.json"
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache_path))
        errors = []

        def saver(i):
            try:
                cache = PlanCache()
                for _ in range(20):
                    cache.save()
            except Exception as err:  # pragma: no cover - failure path
                errors.append(str(err))

        threads = [threading.Thread(target=saver, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        json.loads(cache_path.read_text())
        assert PlanCache() is not None  # loads cleanly


class TestBenchJsonAtomicity:
    def test_write_bench_json_is_atomic(self, tmp_path):
        from repro.bench.harness import write_bench_json

        payloads = [{"round": i, "fill": "y" * 3000} for i in range(6)]
        threads = [
            threading.Thread(target=write_bench_json, args=("atomic", p, tmp_path))
            for p in payloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        data = json.loads((tmp_path / "BENCH_atomic.json").read_text())
        assert data["round"] in range(6)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_atomic.json"]
