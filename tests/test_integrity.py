"""Tests for the silent-data-corruption subsystem (repro.integrity).

Covers the corruption fields of the fault plan, the injector's flip
machinery, the detection monitor (block digests, payload checksums,
round invariants), end-to-end verify-and-repair for CC and MST, the
zero-overhead guarantee, composition with the race detector, the soak
harness, and the tree-wide lint gate.
"""

import json

import numpy as np
import pytest

import repro
from repro import (
    ConfigError,
    FaultError,
    FaultPlan,
    IntegrityConfig,
    IntegrityError,
    PGASRuntime,
    SoakConfig,
    connected_components,
    hps_cluster,
    minimum_spanning_forest,
    random_graph,
    run_soak,
    with_random_weights,
)
from repro.faults import FaultInjector, RoundCheckpointer
from repro.integrity.invariants import (
    cc_invariant_violation,
    mst_selection_violation,
    star_invariant_violation,
)

MACHINE = hps_cluster(4, 2)
#: The acceptance shape from the issue: a 16x8 cluster, where rounds are
#: latency-dominated and a corruption plan has time to land flips.
BIG = hps_cluster(16, 8)

#: Calibrated acceptance rates: heavy enough that unprotected runs go
#: wrong, light enough that replay converges well inside the bound.
CORRUPTION = 2.0e-2
PAYLOAD = 1.0e-4


@pytest.fixture(scope="module")
def g():
    return random_graph(2_000, 8_000, seed=3)


@pytest.fixture(scope="module")
def gw(g):
    return with_random_weights(g, seed=4)


@pytest.fixture(scope="module")
def g_big():
    return random_graph(2_048, 8_192, seed=0)


@pytest.fixture(scope="module")
def gw_big(g_big):
    return with_random_weights(g_big, seed=1)


class TestPlanFields:
    def test_corruption_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(corruption=-1.0)
        with pytest.raises(ConfigError):
            FaultPlan(payload_corruption=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(payload_corruption=-0.1)

    def test_corruption_counts_as_faults(self):
        assert FaultPlan(corruption=1e-3).any_faults
        assert FaultPlan(payload_corruption=1e-4).any_faults
        assert FaultPlan(corruption=1e-3).has_corruption
        assert not FaultPlan.none().has_corruption

    def test_from_cli_passes_corruption(self):
        plan = FaultPlan.from_cli(
            loss=0.0, stragglers=0, seed=1, total_threads=8,
            corruption=1e-2, payload_corruption=1e-4,
        )
        assert plan is not None
        assert plan.corruption == 1e-2
        assert plan.payload_corruption == 1e-4
        assert FaultPlan.from_cli(loss=0.0, stragglers=0, seed=1, total_threads=8) is None


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            IntegrityConfig(mst_samples=0)

    def test_enabled(self):
        assert IntegrityConfig().enabled
        assert IntegrityConfig(checksums=False).enabled
        assert not IntegrityConfig(checksums=False, invariants=False).enabled

    def test_disabled_config_detaches_from_runtime(self):
        off = IntegrityConfig(checksums=False, invariants=False)
        assert PGASRuntime(MACHINE, integrity=off).integrity is None
        assert PGASRuntime(MACHINE, integrity=True).integrity is not None
        assert PGASRuntime(MACHINE).integrity is None


class TestInjectorFlips:
    def test_fold_flip_stays_in_domain(self):
        inj = FaultInjector(FaultPlan(seed=0, corruption=1.0), MACHINE)
        for value in (0, 1, 997):
            for _ in range(200):
                folded = inj._fold_flip(value, 1_000)
                assert 0 <= folded < 1_000
                assert folded != value

    def test_packed_flip_keeps_position(self):
        inj = FaultInjector(FaultPlan(seed=0, payload_corruption=0.5), MACHINE)
        key = (12_345 << 32) | 77
        for _ in range(100):
            flipped = inj._flip_packed_weight(key)
            assert flipped & 0xFFFFFFFF == 77
            assert flipped >> 32 != 12_345
            assert 0 <= flipped >> 32 < (1 << 31)

    def test_corrupt_payload_never_mutates_input(self):
        inj = FaultInjector(FaultPlan(seed=0, payload_corruption=0.9), MACHINE)
        values = np.arange(100, dtype=np.int64)
        out, changed = inj.corrupt_payload(values, domain=100)
        assert changed > 0
        np.testing.assert_array_equal(values, np.arange(100))
        assert int(np.count_nonzero(out != values)) == changed
        assert out.min() >= 0 and out.max() < 100

    def test_corrupt_payload_deterministic(self):
        draws = []
        for _ in range(2):
            inj = FaultInjector(FaultPlan(seed=9, payload_corruption=0.2), MACHINE)
            out, changed = inj.corrupt_payload(np.arange(500, dtype=np.int64), domain=500)
            draws.append((out.copy(), changed))
        np.testing.assert_array_equal(draws[0][0], draws[1][0])
        assert draws[0][1] == draws[1][1]

    def test_poll_corruption_consumes_events_once(self):
        inj = FaultInjector(FaultPlan(seed=0, corruption=5.0), MACHINE)
        rt = PGASRuntime(MACHINE)
        arr = rt.shared_array(np.arange(1_000, dtype=np.int64))
        inj.register_corruptible(arr)
        inj.poll_corruption(np.zeros(MACHINE.total_threads))  # starts the process
        times = np.full(MACHINE.total_threads, 1.0)
        first = inj.poll_corruption(times)
        assert first > 0
        # The clock has not advanced: every due event is already consumed.
        assert inj.poll_corruption(times) == 0


class TestInvariantPredicates:
    def test_cc_clean_and_violations(self):
        n = 16
        assert cc_invariant_violation(np.zeros(n, dtype=np.int64)) is None
        assert cc_invariant_violation(np.arange(n, dtype=np.int64)) is None
        bad = np.zeros(n, dtype=np.int64)
        bad[3] = n + 5
        assert "range" in cc_invariant_violation(bad)
        bad = np.zeros(n, dtype=np.int64)
        bad[3] = 7  # exceeds its own id: min-combine can never produce it
        assert "monotonicity" in cc_invariant_violation(bad)

    def test_star_detects_chains(self):
        labels = np.array([0, 0, 1], dtype=np.int64)  # 2 -> 1 -> 0, not a star
        assert "star" in star_invariant_violation(labels)
        assert star_invariant_violation(np.array([0, 0, 0], dtype=np.int64)) is None
        # MST hooks regardless of order, so 0 -> 2 is legal there.
        assert star_invariant_violation(np.array([2, 2, 2], dtype=np.int64)) is None

    def test_mst_selection_checks_weight_and_incidence(self):
        du = np.array([0, 5], dtype=np.int64)
        dv = np.array([5, 9], dtype=np.int64)
        w = np.array([40, 70], dtype=np.int64)
        keys = (w << np.int64(32)) | np.arange(2, dtype=np.int64)
        roots = np.array([0, 9], dtype=np.int64)
        positions = np.arange(2, dtype=np.int64)
        assert mst_selection_violation(keys, roots, positions, du, dv, w) is None
        flipped = keys.copy()
        flipped[1] ^= np.int64(1) << np.int64(40)  # weight field flip
        assert "weight" in mst_selection_violation(flipped, roots, positions, du, dv, w)
        assert "incident" in mst_selection_violation(
            keys, np.array([0, 3], dtype=np.int64), positions, du, dv, w
        )


class TestZeroOverhead:
    def test_integrity_off_is_bit_identical(self, g):
        base = connected_components(g, MACHINE, impl="collective")
        off = connected_components(
            g, MACHINE, impl="collective",
            integrity=IntegrityConfig(checksums=False, invariants=False),
        )
        assert base.info.sim_time == off.info.sim_time
        assert base.info.trace.counters.as_dict() == off.info.trace.counters.as_dict()

    def test_protection_overhead_is_charged(self, g):
        base = connected_components(g, MACHINE, impl="collective")
        prot = connected_components(g, MACHINE, impl="collective", integrity=True)
        assert prot.info.sim_time > base.info.sim_time
        assert prot.info.trace.category_seconds["Fault"] > 0
        np.testing.assert_array_equal(prot.labels, base.labels)

    def test_unsupported_impls_reject_integrity(self, g, gw):
        with pytest.raises(ConfigError):
            connected_components(g, MACHINE, impl="smp", integrity=True)
        with pytest.raises(ConfigError):
            minimum_spanning_forest(gw, MACHINE, impl="kruskal", integrity=True)

    def test_integrity_error_is_a_fault_error(self):
        err = IntegrityError("boom", detected=3)
        assert isinstance(err, FaultError)
        assert err.detected == 3


class TestAcceptance:
    """The issue's headline criterion, on the 16x8 acceptance shape:
    protected runs detect and repair every injected corruption and stay
    networkx-identical; the same plan drives an unprotected run wrong."""

    PLAN = FaultPlan(seed=0, corruption=CORRUPTION, payload_corruption=PAYLOAD)

    def test_cc_protected_repairs_everything(self, g_big):
        base = connected_components(g_big, BIG, impl="collective")
        res = connected_components(
            g_big, BIG, impl="collective", faults=self.PLAN, integrity=True, validate=True
        )
        c = res.info.trace.counters
        assert c.corruptions_injected > 0
        assert c.corruptions_detected == c.corruptions_injected
        assert c.repairs > 0
        assert c.checkpoint_restores == c.crashes + c.repairs
        np.testing.assert_array_equal(res.labels, base.labels)

    def test_mst_protected_repairs_everything(self, gw_big):
        base = minimum_spanning_forest(gw_big, BIG, impl="collective")
        res = minimum_spanning_forest(
            gw_big, BIG, impl="collective", faults=self.PLAN, integrity=True, validate=True
        )
        c = res.info.trace.counters
        assert c.corruptions_injected > 0
        assert c.corruptions_detected == c.corruptions_injected
        assert c.repairs > 0
        assert res.total_weight == base.total_weight
        np.testing.assert_array_equal(np.sort(res.edge_ids), np.sort(base.edge_ids))

    def test_mst_unprotected_goes_wrong(self, gw_big):
        base = minimum_spanning_forest(gw_big, BIG, impl="collective")
        try:
            res = minimum_spanning_forest(
                gw_big, BIG, impl="collective", faults=self.PLAN
            )
        except repro.ReproError:
            return  # corrupted state tripping a loud error also proves the point
        assert res.info.trace.counters.corruptions_injected > 0
        assert res.info.trace.counters.corruptions_detected == 0
        assert res.total_weight != base.total_weight

    def test_protected_run_deterministic(self, g):
        plan = FaultPlan(seed=5, corruption=0.2, payload_corruption=5e-5)
        a = connected_components(g, MACHINE, impl="collective", faults=plan, integrity=True)
        b = connected_components(g, MACHINE, impl="collective", faults=plan, integrity=True)
        assert a.info.sim_time == b.info.sim_time
        assert a.info.trace.counters.as_dict() == b.info.trace.counters.as_dict()
        np.testing.assert_array_equal(a.labels, b.labels)


class TestPayloadProtection:
    def test_payload_only_plan_detected_without_repairs(self, g):
        plan = FaultPlan(seed=2, payload_corruption=1e-4)
        base = connected_components(g, MACHINE, impl="collective")
        res = connected_components(
            g, MACHINE, impl="collective", faults=plan, integrity=True, validate=True
        )
        c = res.info.trace.counters
        assert c.corruptions_injected > 0
        assert c.corruptions_detected == c.corruptions_injected
        # Wire flips are absorbed by checksum-and-retransmit; a streak
        # that exhausts the retry budget escalates to round replay, so
        # repairs may be nonzero but every flip is still accounted for.
        np.testing.assert_array_equal(res.labels, base.labels)

    def test_hopeless_payload_rate_gives_up_loudly(self, g):
        plan = FaultPlan(seed=2, payload_corruption=0.9)
        with pytest.raises(FaultError):
            connected_components(g, MACHINE, impl="collective", faults=plan, integrity=True)


class TestCheckpointExplicitEnable:
    def test_explicit_enable_without_crash_plan(self):
        rt = PGASRuntime(MACHINE)
        ck = RoundCheckpointer(rt, enabled=True)
        arr = rt.shared_array(np.arange(64, dtype=np.int64))
        ck.save(arrays={"d": arr.data})
        arr.data[:] = -1
        state = ck.restore()
        np.testing.assert_array_equal(state["d"], np.arange(64))
        assert rt.counters.checkpoint_restores == 1

    def test_default_stays_disabled_without_crashes(self):
        rt = PGASRuntime(MACHINE)
        ck = RoundCheckpointer(rt)
        ck.save(arrays={"d": np.arange(4)})  # no-op while disabled
        with pytest.raises(FaultError):
            ck.restore()

    def test_integrity_run_enables_checkpoints_without_crashes(self, g):
        # Repairs need a checkpoint even though the plan schedules no
        # crashes: a corruption-only plan must still be able to replay.
        plan = FaultPlan(seed=5, corruption=0.2)
        res = connected_components(
            g, MACHINE, impl="collective", faults=plan, integrity=True, validate=True
        )
        c = res.info.trace.counters
        assert c.crashes == 0
        assert c.repairs > 0
        assert c.checkpoint_restores == c.repairs


class TestRaceDetectorComposition:
    """Satellite: digest bookkeeping must be invisible to the epoch race
    detector — same results, no races, no double-charged accesses."""

    def test_analyzer_and_integrity_compose(self, g):
        plan = FaultPlan(seed=5, corruption=0.2, payload_corruption=5e-5)
        plain = connected_components(g, MACHINE, impl="collective", faults=plan, integrity=True)
        with repro.analyzed() as session:
            analyzed = connected_components(
                g, MACHINE, impl="collective", faults=plan, integrity=True
            )
        assert not session.has_races
        np.testing.assert_array_equal(plain.labels, analyzed.labels)
        assert plain.info.trace.counters.as_dict() == analyzed.info.trace.counters.as_dict()

    def test_analyzer_clean_on_protected_mst(self, gw):
        plan = FaultPlan(seed=5, corruption=0.2)
        with repro.analyzed() as session:
            minimum_spanning_forest(
                gw, MACHINE, impl="collective", faults=plan, integrity=True, validate=True
            )
        assert not session.has_races


class TestSoak:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SoakConfig(iterations=0)
        with pytest.raises(ConfigError):
            SoakConfig(algos=("cc", "dijkstra"))

    def test_report_structure_and_json(self, tmp_path):
        config = SoakConfig(iterations=1, seed=0, algos=("cc",), n=512, m=2_048)
        report = run_soak(config, out_dir=tmp_path)
        s = report["summary"]
        assert s["runs"] == 1
        assert s["protected_wrong"] == 0 and s["protected_failed"] == 0
        assert s["detected"] == s["injected"]
        assert s["unprotected_runs"] == 1
        assert report["iterations"][0]["algo"] == "cc"
        on_disk = json.loads((tmp_path / "BENCH_soak.json").read_text())
        assert on_disk["summary"] == s
        assert on_disk["config"]["n"] == 512

    def test_composed_faults_survive(self, tmp_path):
        # Silent + fail-stop classes together: the repair paths must not
        # step on each other (crash replay vs digest resync vs retries).
        config = SoakConfig(
            iterations=1, seed=10, algos=("cc",), n=512, m=2_048,
            corruption=2e-3, payload_corruption=1e-4, loss=1e-3,
            stragglers=2, crashes=1,
        )
        report = run_soak(config, out_dir=tmp_path)
        s = report["summary"]
        assert s["protected_wrong"] == 0 and s["protected_failed"] == 0
        record = report["iterations"][0]["protected"]
        assert record["crashes"] == 1
        assert record["retries"] > 0


class TestLintGate:
    def test_tree_is_lint_clean(self):
        import repro as pkg
        from pathlib import Path

        findings = repro.run_lint([str(Path(pkg.__file__).parent)])
        assert findings == [], [f.render() for f in findings]
