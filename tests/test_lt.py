"""Tests for the Liu–Tarjan lattice (repro.lt) and the algorithm
registry (repro.algorithms).

The acceptance bar for every one of the twelve variants: labels
identical to the networkx oracle across the random / hybrid / grid /
powerlaw families, including with fault injection, integrity
protection, and the race detector all enabled at once — the variants
are phase compositions over the shared collectives, so they must
inherit the whole runtime story, not just the happy path.
"""

import networkx as nx
import numpy as np
import pytest

import repro
from repro import (
    connected_components,
    hps_cluster,
    hybrid_graph,
    powerlaw_graph,
    random_graph,
)
from repro.algorithms import (
    REGISTRY,
    AlgorithmSpec,
    get_algorithm,
    implementations,
    lt_variant_names,
    register,
)
from repro.analysis.effects import EFFECTS, registry_drift
from repro.core import CC_IMPLS
from repro.errors import ConfigError
from repro.faults import CrashEvent, FaultPlan
from repro.graph import EdgeList, grid_graph, path_graph
from repro.lt import (
    ALL_VARIANTS,
    LT_VARIANT_NAMES,
    LTVariant,
    lt_iteration_bound,
    parse_variant,
    solve_cc_lt,
)

MACHINE = hps_cluster(2, 2)

COMPOSED_PLAN = FaultPlan(
    seed=5,
    loss=1e-3,
    crashes=(CrashEvent(thread=3, at_time=5e-3),),
    corruption=0.2,
    payload_corruption=5e-5,
)


def oracle(graph: EdgeList) -> np.ndarray:
    labels = np.arange(graph.n, dtype=np.int64)
    for comp in nx.connected_components(graph.to_networkx()):
        root = min(comp)
        for vtx in comp:
            labels[vtx] = root
    return labels


@pytest.fixture(scope="module", params=["random", "hybrid", "grid", "powerlaw"])
def family_graph(request):
    if request.param == "random":
        return random_graph(500, 1200, seed=7)
    if request.param == "hybrid":
        return hybrid_graph(500, 1500, seed=7)
    if request.param == "grid":
        return grid_graph(20, 25)
    return powerlaw_graph(500, 1200, seed=7)


class TestVariantAlgebra:
    def test_twelve_unique_variants(self):
        assert len(ALL_VARIANTS) == 12
        assert len({v.name for v in ALL_VARIANTS}) == 12
        assert LT_VARIANT_NAMES == tuple(v.name for v in ALL_VARIANTS)

    def test_name_encoding(self):
        assert LTVariant("parent", "partial", False).name == "lt-ps"
        assert LTVariant("extended", "full", True).name == "lt-efa"
        assert LTVariant("root", "full", False).name == "lt-rf"

    def test_parse_round_trip(self):
        for variant in ALL_VARIANTS:
            assert parse_variant(variant.name) == variant
            assert parse_variant(variant) is variant

    def test_parse_accepts_bare_suffix(self):
        assert parse_variant("rfa") == parse_variant("lt-rfa")

    def test_parse_rejects_junk(self):
        for junk in ("lt-", "lt-x", "lt-pfx", "boruvka", ""):
            with pytest.raises(ConfigError):
                parse_variant(junk)

    def test_describe_names_the_axes(self):
        text = ALL_VARIANTS[0].describe()
        assert "connect" in text and "shortcut" in text


class TestOracleCorrectness:
    @pytest.mark.parametrize("name", LT_VARIANT_NAMES)
    def test_every_variant_every_family(self, name, family_graph):
        res = connected_components(family_graph, MACHINE, impl=name)
        assert np.array_equal(res.labels, oracle(family_graph))

    @pytest.mark.parametrize("name", ["lt-ps", "lt-efa", "lt-rf"])
    def test_flags_off_and_virtual_threads(self, name):
        g = random_graph(300, 900, seed=11)
        want = oracle(g)
        off = connected_components(
            g, MACHINE, impl=name, opts=repro.OptimizationFlags.none()
        )
        vt = connected_components(g, MACHINE, impl=name, tprime=4)
        assert np.array_equal(off.labels, want)
        assert np.array_equal(vt.labels, want)

    def test_empty_graph(self):
        res = solve_cc_lt(EdgeList(0, np.empty(0, np.int64), np.empty(0, np.int64)))
        assert res.labels.size == 0

    def test_isolated_vertices(self):
        g = EdgeList(5, np.empty(0, np.int64), np.empty(0, np.int64))
        res = connected_components(g, MACHINE, impl="lt-pf")
        assert np.array_equal(res.labels, np.arange(5))


class TestFaultsIntegrityAnalyze:
    @pytest.mark.parametrize("name", LT_VARIANT_NAMES)
    def test_composed_faults_with_integrity(self, name):
        g = random_graph(800, 3200, seed=3)
        res = connected_components(
            g, hps_cluster(4, 2), impl=name,
            faults=COMPOSED_PLAN, integrity=True, validate=True,
        )
        assert np.array_equal(res.labels, oracle(g))
        c = res.info.trace.counters
        assert c.corruptions_detected == c.corruptions_injected
        assert c.checkpoint_restores == c.crashes + c.repairs

    def test_race_detector_clean_under_protection(self):
        g = random_graph(600, 2400, seed=9)
        plan = FaultPlan(seed=5, corruption=0.2, payload_corruption=5e-5)
        plain = connected_components(
            g, hps_cluster(4, 2), impl="lt-rfa", faults=plan, integrity=True
        )
        with repro.analyzed() as session:
            watched = connected_components(
                g, hps_cluster(4, 2), impl="lt-rfa", faults=plan, integrity=True
            )
        assert not session.has_races
        np.testing.assert_array_equal(plain.labels, watched.labels)
        assert (
            plain.info.trace.counters.as_dict() == watched.info.trace.counters.as_dict()
        )

    def test_integrity_alone_has_no_effect_on_labels(self):
        g = hybrid_graph(400, 1600, seed=2)
        bare = connected_components(g, MACHINE, impl="lt-es")
        protected = connected_components(g, MACHINE, impl="lt-es", integrity=True)
        np.testing.assert_array_equal(bare.labels, protected.labels)


class TestDeterminism:
    def test_bit_identical_across_runs(self):
        g = powerlaw_graph(400, 1200, seed=5)
        a = connected_components(g, MACHINE, impl="lt-esa")
        b = connected_components(g, MACHINE, impl="lt-esa")
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.info.sim_time_ms == b.info.sim_time_ms

    def test_machine_shape_independence(self):
        g = random_graph(300, 900, seed=13)
        small = connected_components(g, hps_cluster(2, 2), impl="lt-rf")
        large = connected_components(g, hps_cluster(4, 4), impl="lt-rf")
        np.testing.assert_array_equal(small.labels, large.labels)


class TestIterationBound:
    def test_generous_and_monotone(self):
        assert lt_iteration_bound(2) >= 8
        bounds = [lt_iteration_bound(n) for n in (2, 64, 4096, 1 << 20)]
        assert bounds == sorted(bounds)

    def test_deep_path_converges_with_partial_shortcut(self):
        # The worst-case member of the lattice on the worst-case input:
        # one d <- d[d] halving per round, against a 513-deep path.
        g = path_graph(513)
        res = connected_components(g, MACHINE, impl="lt-ps")
        assert np.array_equal(res.labels, np.zeros(513, dtype=np.int64))
        assert res.info.iterations <= lt_iteration_bound(513)


class TestRegistry:
    def test_lt_variants_are_registered(self):
        assert set(LT_VARIANT_NAMES) <= set(implementations("cc"))
        assert lt_variant_names() == LT_VARIANT_NAMES
        assert set(LT_VARIANT_NAMES) <= set(CC_IMPLS)

    def test_invariant_names_exist(self):
        import repro.integrity.invariants as invariants

        for spec in REGISTRY.values():
            for name in spec.invariants:
                assert callable(getattr(invariants, name)), (spec.name, name)

    def test_effects_names_are_registered(self):
        for spec in REGISTRY.values():
            for name in spec.effects:
                assert name in EFFECTS, (spec.name, name)

    def test_registry_matches_live_runtime_surface(self):
        assert registry_drift() == []

    def test_unknown_impl_names_the_valid_set(self):
        with pytest.raises(ConfigError, match="lt-rf"):
            get_algorithm("cc", "nope")

    def test_duplicate_registration_rejected(self):
        spec = get_algorithm("cc", "lt-ps")
        with pytest.raises(ConfigError):
            register(spec)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            AlgorithmSpec(name="x", kind="sssp", description="", solve=lambda *a: None)

    def test_capability_gates_in_pipeline(self):
        g = random_graph(64, 128, seed=0)
        with pytest.raises(ConfigError, match="fault injection"):
            connected_components(g, MACHINE, impl="sv", faults=FaultPlan(seed=1, loss=1e-3))
        with pytest.raises(ConfigError, match="integrity"):
            connected_components(g, MACHINE, impl="cgm", integrity=True)

    def test_tuning_hints_never_underprice_lt(self):
        # The analytic stage must rank an LT variant at or above the
        # grafting solver at identical flags, so adding variants cannot
        # silently shift the probe set of existing cached plans.
        from repro.core import OptimizationFlags
        from repro.tuning.planner import Workload, predict_config_ms

        w = Workload(kind="cc", n=20000, m=80000)
        for tp in (1, 2, 4):
            base = predict_config_ms(w, MACHINE, "collective", OptimizationFlags.all(), tp)
            for name in LT_VARIANT_NAMES:
                assert predict_config_ms(w, MACHINE, name, OptimizationFlags.all(), tp) >= base
