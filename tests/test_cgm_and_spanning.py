"""Tests for the CGM CC baseline and the spanning-forest API."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.cc import solve_cc_cgm
from repro.core import canonical_labels, cluster_for_input, sequential_for_input
from repro.graph import disjoint_components_graph, path_graph, random_graph
from repro.mst import check_spanning_forest
from repro.runtime import hps_cluster, smp_node


class TestCgmCorrectness:
    def test_matches_collective_on_family(self, any_graph):
        a = canonical_labels(solve_cc_cgm(any_graph, hps_cluster(4, 2)).labels)
        b = canonical_labels(
            repro.connected_components(any_graph, hps_cluster(4, 2)).labels
        )
        assert np.array_equal(a, b)

    def test_single_node_machine(self):
        g = random_graph(200, 500, 3)
        res = solve_cc_cgm(g, smp_node(8))
        repro.connected_components(g, smp_node(8), impl="cgm", validate=True)
        assert res.num_components >= 1

    def test_odd_node_count(self):
        g = random_graph(300, 700, 4)
        res = solve_cc_cgm(g, hps_cluster(3, 2))
        b = canonical_labels(repro.connected_components(g, hps_cluster(3, 2)).labels)
        assert np.array_equal(canonical_labels(res.labels), b)

    def test_empty_graph(self):
        from repro.graph import empty_graph

        res = solve_cc_cgm(empty_graph(10), hps_cluster(2, 2))
        assert res.num_components == 10

    def test_rounds_are_logarithmic_in_nodes(self):
        g = random_graph(500, 1500, 5)
        res = solve_cc_cgm(g, hps_cluster(16, 1))
        assert res.info.iterations <= 6  # 1 local + ceil(log2 16) + final

    def test_message_count_is_tiny(self):
        # The whole point of CGM: O(p) coalesced messages, not O(m).
        g = random_graph(5_000, 20_000, 6)
        res = solve_cc_cgm(g, hps_cluster(8, 2))
        assert res.info.trace.counters.remote_messages < 3 * 8

    @given(n=st.integers(2, 80), seed=st.integers(0, 10))
    def test_property_matches_oracle(self, n, seed):
        m = min(3 * n, n * (n - 1) // 2)
        g = random_graph(n, m, seed)
        a = canonical_labels(solve_cc_cgm(g, hps_cluster(2, 2)).labels)
        b = canonical_labels(
            repro.connected_components(g, hps_cluster(2, 2), impl="sequential").labels
        )
        assert np.array_equal(a, b)


class TestThesisShape:
    """The paper's Section I argument, as invariants."""

    @pytest.fixture(scope="class")
    def setup(self):
        n = 30_000
        g = random_graph(n, 4 * n, seed=7)
        return n, g

    def test_collective_beats_cgm(self, setup):
        n, g = setup
        cluster = cluster_for_input(n, 16, 8)
        cgm = repro.connected_components(g, cluster, impl="cgm")
        coll = repro.connected_components(g, cluster, impl="collective", tprime=2)
        assert coll.info.sim_time < cgm.info.sim_time / 3

    def test_cgm_no_faster_than_sequential(self, setup):
        # log p serial union-finds on the critical path ~ sequential time.
        n, g = setup
        cgm = repro.connected_components(g, cluster_for_input(n, 16, 8), impl="cgm")
        seq = repro.connected_components(
            g, sequential_for_input(n), impl="sequential"
        )
        assert cgm.info.sim_time > 0.5 * seq.info.sim_time

    def test_cgm_messages_fewer_but_time_larger(self, setup):
        n, g = setup
        cluster = cluster_for_input(n, 16, 8)
        cgm = repro.connected_components(g, cluster, impl="cgm")
        coll = repro.connected_components(g, cluster, impl="collective", tprime=2)
        assert (
            cgm.info.trace.counters.remote_messages
            < coll.info.trace.counters.remote_messages / 100
        )
        assert cgm.info.sim_time > coll.info.sim_time


class TestSpanningForest:
    def test_valid_forest(self):
        g = random_graph(300, 900, 8)
        sf = repro.spanning_forest(g, hps_cluster(4, 2), validate=True)
        cc = repro.connected_components(g, hps_cluster(4, 2))
        assert sf.num_edges == g.n - cc.num_components

    def test_earliest_id_forest(self):
        # With unit weights the tie-break is pure edge id, matching the
        # reference Kruskal on unit weights.
        from repro.mst import reference_kruskal

        g = random_graph(100, 300, 9)
        unit = g.with_weights(np.ones(g.m, dtype=np.int64))
        ref_ids, _ = reference_kruskal(unit)
        sf = repro.spanning_forest(g, hps_cluster(2, 2))
        assert np.array_equal(np.sort(sf.edge_ids), ref_ids)

    def test_disconnected(self):
        g = disjoint_components_graph(4, 20, 1)
        sf = repro.spanning_forest(g, hps_cluster(2, 2), validate=True)
        assert sf.num_edges == g.n - 4

    def test_machine_invariant(self):
        g = path_graph(64)
        a = repro.spanning_forest(g, hps_cluster(2, 4)).edge_ids
        b = repro.spanning_forest(g, hps_cluster(8, 1)).edge_ids
        assert np.array_equal(a, b)

    def test_total_weight_equals_edge_count(self):
        g = random_graph(150, 400, 10)
        sf = repro.spanning_forest(g, hps_cluster(2, 2))
        assert sf.total_weight == sf.num_edges
