"""Tests for SMatrix/PMatrix machinery and communication schedules."""

import numpy as np
import pytest

from repro.collectives import (
    charge_setup,
    circular_schedule,
    exchange_counts,
    is_contention_free,
    linear_schedule,
    max_step_contention,
    position_matrix,
    send_matrix,
)
from repro.errors import CollectiveError
from repro.runtime import PGASRuntime, PartitionedArray, hps_cluster, smp_node


class TestSendMatrix:
    def test_counts_pairs(self):
        requesters = np.array([0, 0, 1, 2, 2, 2])
        owners = np.array([1, 1, 0, 2, 0, 1])
        smat = send_matrix(requesters, owners, 3)
        assert smat[1, 0] == 2  # owner 1 sends two elements to requester 0
        assert smat[0, 1] == 1
        assert smat[2, 2] == 1
        assert smat.sum() == 6

    def test_empty(self):
        smat = send_matrix(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 4)
        assert smat.shape == (4, 4) and smat.sum() == 0

    def test_shape_mismatch(self):
        with pytest.raises(CollectiveError):
            send_matrix(np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64), 4)

    def test_out_of_range_thread(self):
        with pytest.raises(CollectiveError):
            send_matrix(np.array([5]), np.array([0]), 4)

    def test_row_sums_are_owner_loads(self):
        rng = np.random.default_rng(0)
        requesters = rng.integers(0, 4, 100)
        owners = rng.integers(0, 4, 100)
        smat = send_matrix(requesters, owners, 4)
        assert np.array_equal(smat.sum(axis=1), np.bincount(owners, minlength=4))
        assert np.array_equal(smat.sum(axis=0), np.bincount(requesters, minlength=4))


class TestPositionMatrix:
    def test_prefix_sums_down_columns(self):
        smat = np.array([[1, 2], [3, 4]])
        pmat = position_matrix(smat)
        assert pmat.tolist() == [[0, 0], [1, 2]]

    def test_positions_partition_receive_buffers(self):
        rng = np.random.default_rng(1)
        smat = rng.integers(0, 5, (6, 6))
        pmat = position_matrix(smat)
        # Last deposit end equals the column total for every requester.
        ends = pmat[-1, :] + smat[-1, :]
        assert np.array_equal(ends, smat.sum(axis=0))


class TestChargeSetup:
    def test_charges_setup_category_and_barrier(self):
        rt = PGASRuntime(hps_cluster(4, 2))
        charge_setup(rt)
        assert rt.trace.category_seconds["Setup"] > 0
        assert rt.counters.barriers == 1

    def test_single_node_setup_cheap(self):
        rt_cluster = PGASRuntime(hps_cluster(8, 1))
        rt_smp = PGASRuntime(smp_node(8))
        charge_setup(rt_cluster)
        charge_setup(rt_smp)
        assert (
            rt_smp.trace.category_seconds["Setup"]
            < rt_cluster.trace.category_seconds["Setup"]
        )

    def test_exchange_counts_returns_consistent_matrices(self):
        machine = hps_cluster(2, 2)
        rt = PGASRuntime(machine)
        arr = rt.shared_array(np.arange(100, dtype=np.int64))
        idx = PartitionedArray.even(
            np.random.default_rng(2).integers(0, 100, 400), machine.total_threads
        )
        smat, pmat = exchange_counts(rt, idx, arr.owner_thread(idx.data))
        assert smat.sum() == 400
        assert np.array_equal(position_matrix(smat), pmat)


class TestSchedules:
    def test_linear_is_incast(self):
        order = linear_schedule(8)
        assert max_step_contention(order) == 8
        assert not is_contention_free(order)

    def test_circular_is_contention_free(self):
        for s in (1, 2, 5, 16):
            assert is_contention_free(circular_schedule(s))

    def test_circular_starts_with_self(self):
        order = circular_schedule(4)
        assert np.array_equal(order[:, 0], np.arange(4))

    def test_circular_covers_all_peers(self):
        order = circular_schedule(6)
        for i in range(6):
            assert sorted(order[i]) == list(range(6))

    def test_invalid_sizes(self):
        with pytest.raises(CollectiveError):
            linear_schedule(0)
        with pytest.raises(CollectiveError):
            circular_schedule(-1)

    def test_contention_requires_square(self):
        with pytest.raises(CollectiveError):
            max_step_contention(np.zeros((2, 3), dtype=np.int64))
