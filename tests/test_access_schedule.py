"""Tests for Algorithm 1 (repro.scheduling.access_schedule)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.scheduling import (
    schedule_plan,
    scheduled_gather,
    scheduled_scatter_min,
)


class TestScheduledGather:
    def test_matches_fancy_indexing(self):
        rng = np.random.default_rng(0)
        d = rng.integers(0, 1000, 500)
        r = rng.integers(0, 500, 3000)
        out, stats = scheduled_gather(d, r, (8,))
        assert np.array_equal(out, d[r])
        assert stats.levels == 1

    def test_two_levels(self):
        rng = np.random.default_rng(1)
        d = rng.integers(0, 100, 256)
        r = rng.integers(0, 256, 1000)
        out, stats = scheduled_gather(d, r, (4, 4))
        assert np.array_equal(out, d[r])
        assert stats.levels == 2

    def test_three_levels_max_depth(self):
        rng = np.random.default_rng(2)
        d = rng.integers(0, 100, 512)
        r = rng.integers(0, 512, 2000)
        out, stats = scheduled_gather(d, r, (4, 4, 4))
        assert np.array_equal(out, d[r])
        assert stats.levels == 3

    def test_depth_limited_to_three(self):
        with pytest.raises(DistributionError):
            schedule_plan(100, 2, 2, 2, 2)

    def test_w_equal_one_is_direct(self):
        d = np.arange(100)
        r = np.array([3, 99, 0])
        out, stats = scheduled_gather(d, r, (1,))
        assert np.array_equal(out, d[r])
        assert stats.sorted_elements == 0  # no grouping happened

    def test_empty_requests(self):
        out, stats = scheduled_gather(np.arange(10), np.empty(0, dtype=np.int64), (2,))
        assert out.size == 0

    def test_duplicate_requests(self):
        d = np.arange(20) * 7
        r = np.array([5, 5, 5, 5])
        out, _ = scheduled_gather(d, r, (4,))
        assert np.all(out == 35)

    def test_request_out_of_range(self):
        with pytest.raises(DistributionError):
            scheduled_gather(np.arange(10), np.array([10]), (2,))
        with pytest.raises(DistributionError):
            scheduled_gather(np.arange(10), np.array([-1]), (2,))

    def test_w_larger_than_n_clamped(self):
        d = np.arange(5)
        r = np.array([0, 4, 2])
        out, _ = scheduled_gather(d, r, (5,))
        assert np.array_equal(out, d[r])

    def test_bad_w_rejected(self):
        with pytest.raises(DistributionError):
            schedule_plan(10, 0)
        with pytest.raises(DistributionError):
            schedule_plan(10, 11)

    def test_non_1d_rejected(self):
        with pytest.raises(DistributionError):
            scheduled_gather(np.zeros((2, 2)), np.array([0]), (2,))

    def test_stats_count_work(self):
        rng = np.random.default_rng(3)
        d = rng.integers(0, 10, 64)
        r = rng.integers(0, 64, 100)
        _, stats = scheduled_gather(d, r, (4, 4))
        assert stats.sorted_elements >= 100  # level 0 sorts everything
        assert stats.blocks_visited >= 4
        assert stats.base_accesses == 100

    def test_miss_model_improves_with_blocks(self):
        rng = np.random.default_rng(4)
        d = rng.integers(0, 10, 4096)
        r = rng.integers(0, 4096, 20_000)
        _, flat = scheduled_gather(d, r, (1,))
        _, blocked = scheduled_gather(d, r, (64,))
        cache_elems = 128
        assert blocked.modeled_misses(cache_elems) < flat.modeled_misses(cache_elems)


class TestScheduledScatterMin:
    def test_matches_minimum_at(self):
        rng = np.random.default_rng(5)
        d = rng.integers(0, 1000, 300).astype(np.int64)
        r = rng.integers(0, 300, 2000)
        vals = rng.integers(0, 1000, 2000)
        expected = d.copy()
        np.minimum.at(expected, r, vals)
        stats = scheduled_scatter_min(d, r, vals, (8,))
        assert np.array_equal(d, expected)
        assert stats.base_accesses == 2000

    def test_two_levels(self):
        rng = np.random.default_rng(6)
        d = rng.integers(0, 100, 128).astype(np.int64)
        r = rng.integers(0, 128, 500)
        vals = rng.integers(0, 100, 500)
        expected = d.copy()
        np.minimum.at(expected, r, vals)
        scheduled_scatter_min(d, r, vals, (4, 4))
        assert np.array_equal(d, expected)

    def test_shape_mismatch(self):
        with pytest.raises(DistributionError):
            scheduled_scatter_min(np.arange(10), np.array([1, 2]), np.array([1]), (2,))

    def test_out_of_range(self):
        with pytest.raises(DistributionError):
            scheduled_scatter_min(np.arange(10), np.array([99]), np.array([1]), (2,))


@given(
    n=st.integers(1, 300),
    k=st.integers(0, 500),
    ws=st.lists(st.integers(1, 16), min_size=1, max_size=3),
    seed=st.integers(0, 20),
)
def test_property_gather_equivalence(n, k, ws, seed):
    rng = np.random.default_rng(seed)
    d = rng.integers(-1000, 1000, n)
    r = rng.integers(0, n, k)
    ws = tuple(min(w, n) for w in ws)
    out, _ = scheduled_gather(d, r, ws)
    assert np.array_equal(out, d[r])


@given(
    n=st.integers(1, 200),
    k=st.integers(0, 300),
    w=st.integers(1, 12),
    seed=st.integers(0, 20),
)
def test_property_scatter_equivalence(n, k, w, seed):
    rng = np.random.default_rng(seed)
    d = rng.integers(0, 500, n).astype(np.int64)
    r = rng.integers(0, n, k)
    vals = rng.integers(0, 500, k)
    expected = d.copy()
    np.minimum.at(expected, r, vals)
    scheduled_scatter_min(d, r, vals, (min(w, n),))
    assert np.array_equal(d, expected)
