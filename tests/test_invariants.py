"""Cross-cutting system invariants and differential fuzzing.

These tests pin properties that hold for *every* solve, regardless of
algorithm, machine, or input: accounting conservation, determinism,
monotonicity, and agreement between independent implementations on
arbitrary (multi)graphs — including self-loops and duplicate edges the
generators never produce.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.cc import reference_union_find_labels
from repro.graph import EdgeList
from repro.mst import check_spanning_forest
from repro.runtime import PGASRuntime, hps_cluster


def solve_pair(graph, machine):
    cc = repro.connected_components(graph, machine)
    return cc


class TestAccountingConservation:
    """Category seconds vs clock seconds: every charged second lands in
    exactly one category; barrier/serialization *waits* appear on clocks
    but in no category, so category totals never exceed clock totals."""

    @pytest.mark.parametrize("impl", ["collective", "naive", "smp", "sv", "cgm"])
    def test_categories_bounded_by_clocks(self, impl):
        g = repro.random_graph(2_000, 6_000, seed=3)
        machine = repro.smp_node(8) if impl == "smp" else hps_cluster(4, 2)
        res = repro.connected_components(g, machine, impl=impl)
        cat_total = res.info.trace.total_thread_seconds()
        clock_total = res.info.sim_time * machine.total_threads
        assert 0 < cat_total <= clock_total * 1.0001

    def test_remote_bytes_zero_on_single_node(self):
        g = repro.random_graph(1_000, 3_000, seed=4)
        res = repro.connected_components(g, repro.smp_node(8), impl="collective")
        assert res.info.trace.counters.remote_bytes == 0

    def test_remote_bytes_positive_on_cluster(self):
        g = repro.random_graph(1_000, 3_000, seed=4)
        res = repro.connected_components(g, hps_cluster(2, 2))
        assert res.info.trace.counters.remote_bytes > 0

    def test_barriers_at_least_iterations(self):
        g = repro.random_graph(1_000, 3_000, seed=4)
        res = repro.connected_components(g, hps_cluster(2, 2))
        assert res.info.trace.counters.barriers >= res.info.iterations


class TestDeterminismAndMonotonicity:
    def test_sim_time_bit_identical_across_runs(self):
        g = repro.random_graph(3_000, 9_000, seed=5)
        a = repro.connected_components(g, hps_cluster(4, 2))
        b = repro.connected_components(g, hps_cluster(4, 2))
        assert a.info.sim_time == b.info.sim_time  # exact, not approx

    def test_per_collective_cost_grows_with_edges(self):
        # Total time may *drop* with density (denser graphs converge in
        # fewer grafting iterations); the per-collective cost must grow.
        n = 5_000
        machine = hps_cluster(4, 2)
        small = repro.connected_components(repro.random_graph(n, 2 * n, seed=6), machine)
        big = repro.connected_components(repro.random_graph(n, 8 * n, seed=6), machine)
        per_small = small.info.sim_time / small.info.trace.counters.collective_calls
        per_big = big.info.sim_time / big.info.trace.counters.collective_calls
        assert per_big > per_small

    def test_wall_time_positive(self):
        g = repro.random_graph(500, 1_000, seed=7)
        res = repro.connected_components(g, hps_cluster(2, 2))
        assert res.info.wall_time > 0

    def test_labels_dtype(self):
        g = repro.random_graph(500, 1_000, seed=7)
        for impl in repro.CC_IMPLS:
            machine = repro.smp_node(4) if impl in ("smp", "sequential") else hps_cluster(2, 2)
            res = repro.connected_components(g, machine, impl=impl)
            assert res.labels.dtype == np.int64


@st.composite
def multigraphs(draw):
    """Arbitrary edge lists: self-loops and duplicates allowed."""
    n = draw(st.integers(1, 50))
    m = draw(st.integers(0, 120))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    return EdgeList(n, u, v)


class TestDifferentialFuzzing:
    @given(graph=multigraphs())
    def test_cc_collective_vs_union_find(self, graph):
        got = repro.canonical_labels(
            repro.connected_components(graph, hps_cluster(2, 2)).labels
        )
        expected = repro.canonical_labels(reference_union_find_labels(graph))
        assert np.array_equal(got, expected)

    @given(graph=multigraphs())
    def test_cc_cgm_vs_union_find(self, graph):
        got = repro.canonical_labels(
            repro.connected_components(graph, hps_cluster(2, 2), impl="cgm").labels
        )
        expected = repro.canonical_labels(reference_union_find_labels(graph))
        assert np.array_equal(got, expected)

    @given(graph=multigraphs(), seed=st.integers(0, 100))
    def test_mst_on_multigraphs(self, graph, seed):
        rng = np.random.default_rng(seed)
        weighted = graph.with_weights(rng.integers(0, 50, graph.m))
        res = repro.minimum_spanning_forest(weighted, hps_cluster(2, 2))
        check_spanning_forest(weighted, res.edge_ids)

    @given(graph=multigraphs())
    def test_spanning_forest_edge_count(self, graph):
        sf = repro.spanning_forest(graph, hps_cluster(2, 2))
        cc = repro.connected_components(graph, hps_cluster(2, 2))
        assert sf.num_edges == graph.n - cc.num_components


class TestRuntimeGuards:
    def test_charge_rejects_nan_free_negative(self):
        rt = PGASRuntime(hps_cluster(2, 2))
        with pytest.raises(repro.ReproError):
            rt.charge("Work", -1.0)

    def test_trace_category_typo_loud(self):
        rt = PGASRuntime(hps_cluster(2, 2))
        with pytest.raises(KeyError):
            rt.charge("work", 1.0)  # case-sensitive on purpose

    def test_shared_array_rejects_foreign_indices(self):
        rt = PGASRuntime(hps_cluster(2, 2))
        arr = rt.shared_array(np.arange(10, dtype=np.int64))
        with pytest.raises(repro.ReproError):
            arr.gather(np.array([11]))
