"""Tests for EdgeList (repro.graph.edgelist)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import EdgeList


def make(n, pairs, w=None):
    u = np.array([p[0] for p in pairs], dtype=np.int64)
    v = np.array([p[1] for p in pairs], dtype=np.int64)
    return EdgeList(n, u, v, None if w is None else np.asarray(w, dtype=np.int64))


class TestValidation:
    def test_valid(self):
        g = make(5, [(0, 1), (2, 3)])
        assert g.m == 2 and g.n == 5

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            make(3, [(0, 3)])
        with pytest.raises(GraphError):
            make(3, [(-1, 0)])

    def test_rejects_negative_n(self):
        with pytest.raises(GraphError):
            EdgeList(-1, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphError):
            EdgeList(5, np.array([0]), np.array([1, 2]))

    def test_rejects_weight_mismatch(self):
        with pytest.raises(GraphError):
            make(5, [(0, 1)], w=[1, 2])

    def test_density(self):
        assert make(10, [(0, 1)] * 5).density == pytest.approx(0.5)
        assert EdgeList(0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)).density == 0


class TestTransforms:
    def test_canonical_pairs_orientation_invariant(self):
        a = make(10, [(2, 7)])
        b = make(10, [(7, 2)])
        assert a.canonical_pairs()[0] == b.canonical_pairs()[0]

    def test_deduplicated(self):
        g = make(10, [(0, 1), (1, 0), (2, 3), (0, 1)])
        d = g.deduplicated()
        assert d.m == 2

    def test_deduplicated_keeps_first_weight(self):
        g = make(10, [(0, 1), (1, 0)], w=[5, 3])
        d = g.deduplicated()
        assert d.m == 1 and d.w[0] == 5

    def test_dedup_min_weight(self):
        g = make(10, [(0, 1), (1, 0), (2, 3)], w=[5, 3, 7])
        d = g.deduplicated_min_weight()
        assert d.m == 2
        assert d.w[d.canonical_pairs() == g.canonical_pairs()[0]][0] == 3

    def test_dedup_min_weight_index_sorted(self):
        g = make(10, [(0, 1), (1, 0), (2, 3)], w=[5, 3, 7])
        keep = g.dedup_min_weight_index()
        assert keep.tolist() == [1, 2]

    def test_dedup_min_weight_tie_keeps_earliest(self):
        g = make(10, [(0, 1), (1, 0)], w=[4, 4])
        keep = g.dedup_min_weight_index()
        assert keep.tolist() == [0]

    def test_without_self_loops(self):
        g = make(5, [(0, 0), (1, 2)])
        assert g.without_self_loops().m == 1

    def test_symmetrized(self):
        g = make(5, [(0, 1)], w=[9])
        s = g.symmetrized()
        assert s.m == 2
        assert s.u.tolist() == [0, 1] and s.v.tolist() == [1, 0]
        assert s.w.tolist() == [9, 9]

    def test_permuted(self):
        g = make(3, [(0, 1), (1, 2)])
        p = g.permuted(np.array([2, 0, 1]))
        assert p.u.tolist() == [2, 0] and p.v.tolist() == [0, 1]

    def test_permuted_rejects_non_permutation(self):
        g = make(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.permuted(np.array([0, 0, 1]))
        with pytest.raises(GraphError):
            g.permuted(np.array([0, 1]))

    def test_with_weights(self):
        g = make(3, [(0, 1)])
        w = g.with_weights(np.array([42]))
        assert w.weighted and w.w[0] == 42

    def test_shuffled_preserves_multiset(self):
        g = make(20, [(i, i + 1) for i in range(19)], w=list(range(19)))
        s = g.shuffled(seed=1)
        assert sorted(s.canonical_pairs().tolist()) == sorted(g.canonical_pairs().tolist())
        # weights travel with their edges
        for i in range(s.m):
            orig = np.flatnonzero(g.canonical_pairs() == s.canonical_pairs()[i])[0]
            assert s.w[i] == g.w[orig]

    def test_take(self):
        g = make(5, [(0, 1), (1, 2), (2, 3)], w=[1, 2, 3])
        t = g.take(np.array([2, 0]))
        assert t.u.tolist() == [2, 0] and t.w.tolist() == [3, 1]


class TestStructure:
    def test_degrees(self):
        g = make(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees().tolist() == [3, 1, 1, 1]

    def test_self_loop_counts_twice(self):
        g = make(2, [(0, 0)])
        assert g.degrees()[0] == 2

    def test_max_degree_empty(self):
        g = make(3, [])
        assert g.max_degree() == 0


class TestInterop:
    def test_to_networkx(self):
        g = make(4, [(0, 1), (2, 3)])
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 2

    def test_to_networkx_weighted(self):
        g = make(3, [(0, 1)], w=[7])
        nxg = g.to_networkx()
        assert nxg[0][1]["weight"] == 7

    def test_to_scipy_symmetric(self):
        g = make(3, [(0, 1)])
        mat = g.to_scipy()
        assert mat[0, 1] == 1 and mat[1, 0] == 1

    def test_to_scipy_weighted_min_dedup(self):
        g = make(3, [(0, 1), (1, 0)], w=[9, 4])
        mat = g.to_scipy()
        assert mat[0, 1] == 4

    def test_iter_edges(self):
        g = make(4, [(0, 1), (2, 3)])
        assert list(g.iter_edges()) == [(0, 1), (2, 3)]
