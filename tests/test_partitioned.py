"""Tests for PartitionedArray (repro.runtime.partitioned)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.runtime import PartitionedArray, even_offsets


class TestEvenOffsets:
    def test_exact_division(self):
        assert list(even_offsets(12, 4)) == [0, 3, 6, 9, 12]

    def test_remainder_goes_to_front(self):
        assert list(even_offsets(10, 4)) == [0, 3, 6, 8, 10]

    def test_more_parts_than_items(self):
        offs = even_offsets(2, 5)
        assert offs[-1] == 2
        assert len(offs) == 6

    def test_zero_items(self):
        assert list(even_offsets(0, 3)) == [0, 0, 0, 0]

    def test_rejects_zero_parts(self):
        with pytest.raises(DistributionError):
            even_offsets(10, 0)

    def test_rejects_negative_total(self):
        with pytest.raises(DistributionError):
            even_offsets(-1, 2)

    @given(total=st.integers(0, 1000), parts=st.integers(1, 64))
    def test_property_sizes_balanced(self, total, parts):
        offs = even_offsets(total, parts)
        sizes = np.diff(offs)
        assert sizes.sum() == total
        assert sizes.max() - sizes.min() <= 1


class TestConstruction:
    def test_even(self):
        pa = PartitionedArray.even(np.arange(10), 3)
        assert pa.parts == 3
        assert pa.total == 10
        assert list(pa.segment(0)) == [0, 1, 2, 3]

    def test_from_segments(self):
        pa = PartitionedArray.from_segments([np.array([1, 2]), np.array([3])])
        assert pa.parts == 2
        assert list(pa.data) == [1, 2, 3]

    def test_from_segments_empty_segments(self):
        pa = PartitionedArray.from_segments([np.array([], dtype=np.int64), np.array([5])])
        assert pa.sizes().tolist() == [0, 1]

    def test_from_segments_rejects_empty_list(self):
        with pytest.raises(DistributionError):
            PartitionedArray.from_segments([])

    def test_empty_like(self):
        pa = PartitionedArray.empty_like(4)
        assert pa.parts == 4 and pa.total == 0

    def test_offsets_must_cover_data(self):
        with pytest.raises(DistributionError):
            PartitionedArray(np.arange(5), np.array([0, 2, 4]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(DistributionError):
            PartitionedArray(np.arange(4), np.array([0, 3, 2, 4]))

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(DistributionError):
            PartitionedArray(np.arange(4), np.array([1, 2, 4]))


class TestAccessors:
    @pytest.fixture
    def pa(self):
        return PartitionedArray(np.array([5, 6, 7, 8, 9]), np.array([0, 2, 2, 5]))

    def test_sizes(self, pa):
        assert pa.sizes().tolist() == [2, 0, 3]

    def test_segment_view(self, pa):
        assert pa.segment(2).tolist() == [7, 8, 9]
        assert pa.segment(1).size == 0

    def test_segment_bounds(self, pa):
        with pytest.raises(DistributionError):
            pa.segment(3)

    def test_thread_ids(self, pa):
        assert pa.thread_ids().tolist() == [0, 0, 2, 2, 2]

    def test_len(self, pa):
        assert len(pa) == 5

    def test_segments_iterator(self, pa):
        segs = list(pa.segments())
        assert [s.tolist() for s in segs] == [[5, 6], [], [7, 8, 9]]


class TestTransforms:
    def test_with_data(self):
        pa = PartitionedArray.even(np.arange(6), 2)
        pb = pa.with_data(np.arange(6) * 10)
        assert np.array_equal(pb.offsets, pa.offsets)
        assert pb.data[3] == 30

    def test_with_data_length_mismatch(self):
        pa = PartitionedArray.even(np.arange(6), 2)
        with pytest.raises(DistributionError):
            pa.with_data(np.arange(5))

    def test_filter_compacts_per_thread(self):
        pa = PartitionedArray(np.arange(8), np.array([0, 4, 8]))
        mask = np.array([True, False, True, False, False, True, True, False])
        out = pa.filter(mask)
        assert out.sizes().tolist() == [2, 2]
        assert out.segment(0).tolist() == [0, 2]
        assert out.segment(1).tolist() == [5, 6]

    def test_filter_all_false(self):
        pa = PartitionedArray.even(np.arange(4), 2)
        out = pa.filter(np.zeros(4, dtype=bool))
        assert out.total == 0 and out.parts == 2

    def test_filter_mask_length(self):
        pa = PartitionedArray.even(np.arange(4), 2)
        with pytest.raises(DistributionError):
            pa.filter(np.ones(3, dtype=bool))

    def test_segment_sums(self):
        pa = PartitionedArray(np.array([1.0, 2.0, 3.0, 4.0]), np.array([0, 2, 4]))
        assert pa.segment_sums().tolist() == [3.0, 7.0]

    def test_segment_sums_with_values(self):
        pa = PartitionedArray.even(np.arange(4), 2)
        out = pa.segment_sums(np.array([1, 1, 2, 2]))
        assert out.tolist() == [2.0, 4.0]

    def test_segment_counts_where(self):
        pa = PartitionedArray.even(np.arange(6), 3)
        mask = np.array([True, True, False, False, False, True])
        assert pa.segment_counts_where(mask).tolist() == [2, 0, 1]

    def test_concat_pairwise(self):
        a = PartitionedArray(np.array([1, 2, 3]), np.array([0, 2, 3]))
        b = PartitionedArray(np.array([9, 8]), np.array([0, 1, 2]))
        out = PartitionedArray.concat_pairwise(a, b)
        assert out.segment(0).tolist() == [1, 2, 9]
        assert out.segment(1).tolist() == [3, 8]

    def test_concat_pairwise_part_mismatch(self):
        a = PartitionedArray.even(np.arange(4), 2)
        b = PartitionedArray.even(np.arange(4), 4)
        with pytest.raises(DistributionError):
            PartitionedArray.concat_pairwise(a, b)


class TestSegmentDistinct:
    def test_basic(self):
        pa = PartitionedArray(np.array([1, 1, 2, 5, 5, 5]), np.array([0, 3, 6]))
        assert pa.segment_distinct().tolist() == [2, 1]

    def test_empty(self):
        pa = PartitionedArray.empty_like(3)
        assert pa.segment_distinct().tolist() == [0, 0, 0]

    def test_same_value_across_segments_counted_per_segment(self):
        pa = PartitionedArray(np.array([7, 7, 7, 7]), np.array([0, 2, 4]))
        assert pa.segment_distinct().tolist() == [1, 1]

    @given(
        values=st.lists(st.integers(0, 50), min_size=1, max_size=60),
        parts=st.integers(1, 8),
    )
    def test_property_matches_per_segment_unique(self, values, parts):
        data = np.asarray(values, dtype=np.int64)
        pa = PartitionedArray.even(data, parts)
        expected = [np.unique(seg).size for seg in pa.segments()]
        assert pa.segment_distinct().tolist() == expected


@given(
    values=st.lists(st.integers(-100, 100), min_size=0, max_size=80),
    parts=st.integers(1, 10),
)
def test_property_even_partition_roundtrip(values, parts):
    data = np.asarray(values, dtype=np.int64)
    pa = PartitionedArray.even(data, parts)
    rebuilt = np.concatenate([pa.segment(i) for i in range(parts)]) if values else data
    assert np.array_equal(rebuilt, data)


@given(
    values=st.lists(st.integers(0, 100), min_size=1, max_size=60),
    parts=st.integers(1, 6),
    seed=st.integers(0, 5),
)
def test_property_filter_preserves_order_within_segments(values, parts, seed):
    data = np.asarray(values, dtype=np.int64)
    pa = PartitionedArray.even(data, parts)
    mask = np.random.default_rng(seed).random(len(values)) < 0.5
    out = pa.filter(mask)
    for i in range(parts):
        lo, hi = pa.offsets[i], pa.offsets[i + 1]
        expected = data[lo:hi][mask[lo:hi]]
        assert np.array_equal(out.segment(i), expected)
