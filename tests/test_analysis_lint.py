"""Static cost-model linter: rule catalog, waivers, inference, and the
clean-tree acceptance gate."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import LINT_CATALOG, lint_file, run_lint
from repro.cli import main

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def lint_snippet(tmp_path: Path, code: str, name: str = "algo.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return lint_file(path)


def rules(findings):
    return [f.rule for f in findings]


class TestCM01:
    def test_raw_data_subscript_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(rt):
                d = rt.shared_array(np.zeros(8))
                d.data[0] = 1
            """,
        )
        assert rules(findings) == ["CM01"]
        assert findings[0].line == 6
        assert "d.data[...]" in findings[0].message

    def test_partitioned_array_not_flagged(self, tmp_path):
        """PartitionedArray also exposes .data — no shared signals, so
        subscripting it is fine."""
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(part, mask):
                return part.data[mask]
            """,
        )
        assert findings == []

    def test_inference_from_owner_methods(self, tmp_path):
        """A parameter used with owner-affinity methods is shared even
        though the function never allocates it."""
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(arr, idx):
                owners = arr.owner_thread(idx)
                return arr.data[idx], owners
            """,
        )
        assert rules(findings) == ["CM01"]

    def test_inference_from_collective_operand(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(rt, d, part):
                got = getd(rt, d, part)
                d.data[0] = got[0]
            """,
        )
        assert rules(findings) == ["CM01"]

    def test_nested_function_inherits_shared_set(self, tmp_path):
        """Closures over shared arrays (the sv/mst pattern) are caught."""
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def solve(rt):
                d = rt.shared_array(np.zeros(8))

                def peek():
                    return d.data[0]

                return peek
            """,
        )
        assert rules(findings) == ["CM01"]

    def test_whitelisted_modules_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "runtime"
        pkg.mkdir(parents=True)
        path = pkg / "inner.py"
        path.write_text("def f(rt):\n    d = rt.shared_array(x)\n    d.data[0] = 1\n")
        assert lint_file(path) == []

    def test_bare_attribute_access_not_flagged(self, tmp_path):
        """Only subscripted stores/loads are unsound; passing .data to a
        charged helper is the normal idiom."""
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(rt):
                d = rt.shared_array(np.zeros(8))
                return d.data.copy()
            """,
        )
        assert findings == []


class TestCM02:
    def test_uncharged_gather_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(d, idx):
                owners = d.owner_thread(idx)
                return d.gather(idx), owners
            """,
        )
        assert "CM02" in rules(findings)

    def test_charged_function_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(rt, d, idx):
                owners = d.owner_thread(idx)
                rt.local_random_access(idx.size, 1024.0)
                return d.gather(idx), owners
            """,
        )
        assert findings == []


class TestCM03:
    def test_unbalanced_barrier_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(rt, flag):
                if flag:
                    rt.barrier()
            """,
        )
        assert rules(findings) == ["CM03"]

    def test_balanced_branches_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(rt, d, part, vals, flag):
                if flag:
                    setd(rt, d, part, vals)
                else:
                    rt.barrier()
            """,
        )
        assert findings == []

    def test_terminating_branch_pass(self, tmp_path):
        """A branch that returns/raises never rejoins — no divergence."""
        findings = lint_snippet(
            tmp_path,
            """
            def kernel(rt, flag):
                if flag:
                    return 0
                rt.barrier()
                while True:
                    if bad():
                        raise ValueError("no")
                    rt.barrier()
            """,
        )
        assert findings == []


class TestND:
    def test_wall_clock_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import time

            def kernel():
                return time.time()
            """,
        )
        assert rules(findings) == ["ND01"]

    def test_perf_counter_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import time

            def kernel():
                return time.perf_counter()
            """,
        )
        assert findings == []

    def test_legacy_np_random_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel():
                return np.random.rand(4)
            """,
        )
        assert rules(findings) == ["ND02"]

    def test_seedless_default_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel():
                return np.random.default_rng()
            """,
        )
        assert rules(findings) == ["ND02"]

    def test_seeded_default_rng_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(seed):
                return np.random.default_rng(seed).random(4)
            """,
        )
        assert findings == []

    def test_stdlib_global_random_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import random

            def kernel():
                return random.random() < 0.5
            """,
        )
        assert rules(findings) == ["ND02"]
        assert "random.random()" in findings[0].message

    def test_stdlib_seedless_instance_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import random

            def kernel():
                rng = random.Random()
                return rng.random()
            """,
        )
        assert rules(findings) == ["ND02"]

    def test_stdlib_seeded_instance_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import random

            def kernel(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
        )
        assert findings == []


class TestWaivers:
    def test_charged_local_waives_cm01(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(rt):
                d = rt.shared_array(np.zeros(8))
                d.data[0] = 1  # repro: charged-local (init pass covers it)
            """,
        )
        assert findings == []

    def test_waive_rule_on_line_above(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(rt):
                d = rt.shared_array(np.zeros(8))
                # repro: waive[CM01] checkpoint restore, charged elsewhere
                d.data[0] = 1
            """,
        )
        assert findings == []

    def test_waiver_is_rule_specific(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(rt):
                d = rt.shared_array(np.zeros(8))
                d.data[0] = 1  # repro: waive[CM03] wrong rule
            """,
        )
        assert rules(findings) == ["CM01"]


class TestSharedConfig:
    def test_lint_and_flow_share_scoping_predicates(self):
        """One source of truth: both analyses import the whitelist and
        waiver machinery from ``repro.analysis.config``."""
        from repro.analysis import config, flow, lint

        assert lint.WHITELIST_PARTS is config.WHITELIST_PARTS
        assert lint.WALLCLOCK_PARTS is config.WALLCLOCK_PARTS
        assert lint.is_whitelisted is config.is_whitelisted
        assert flow.is_whitelisted is config.is_whitelisted
        assert flow.Waivers is config.Waivers

    def test_run_lint_order_is_path_stable(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text(
                "def f(rt):\n    d = rt.shared_array(x)\n    d.data[0] = 1\n"
            )
        findings = run_lint([tmp_path])
        assert [Path(f.path).name for f in findings] == ["a.py", "b.py"]


class TestTreeAndCli:
    def test_catalog_has_all_rules(self):
        assert set(LINT_CATALOG) == {"CM01", "CM02", "CM03", "ND01", "ND02"}

    def test_source_tree_is_clean(self):
        """The acceptance gate: the shipped tree lints clean."""
        findings = run_lint([SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_analyze_clean_tree(self, capsys):
        assert main(["analyze", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_analyze_missing_path(self, capsys):
        """Repo convention: one-line ``error: ...`` + exit 2, no traceback."""
        assert main(["analyze", "/no/such/path"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "no such file" in err

    def test_cli_analyze_dirty_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(rt):\n    d = rt.shared_array(x)\n    d.data[0] = 1\n"
        )
        assert main(["analyze", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "CM01" in out and "1 finding(s)" in out

    @pytest.mark.parametrize("impl", ["collective", "naive"])
    def test_cli_analyze_flag_on_cc(self, impl, capsys):
        """--analyze prints the sanitizer report; the collective solver is
        race-free (exit 0), the naive translation is not (exit 3)."""
        code = main(
            ["cc", "--n", "400", "--machine", "2x2", "--no-calibrate",
             "--impl", impl, "--analyze"]
        )
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert code == (0 if impl == "collective" else 3)
