"""Seeded CH defects: shared-array data escapes with no dominating
charge — the modeled milliseconds silently miss these accesses.

Parsed by the flow verifier in tests — never imported or executed.
``uncharged_escape_clean.py`` holds the corrected twins.
"""


def peek_head(d):
    """CH01: hands per-thread shared data back to the caller without
    ever charging the cost model."""
    head = d.local_view(0)
    return head


def fetch_remote(rt, d, idx):
    """CH02 (and CH01): raw gather moves shared data with no charge
    before it on any path, then the uncharged values escape."""
    vals = d.gather(idx)
    return vals


def first_if_profiling(rt, d):
    """CH01 via path divergence: only the profiled path charges, so
    the plain path returns shared data unaccounted."""
    if rt.profile:
        rt.charge_thread(1.0)
    return d.snapshot()
