"""Seeded FX defect: a checkpointing solver with a faultable collective
outside its recovery ``try`` — an injected crash there escapes replay.

Parsed by the flow verifier in tests — never imported or executed.
``unscoped_comm_clean.py`` holds the corrected twin.
"""

from repro.collectives import getd, setd
from repro.errors import IntegrityError, ThreadCrash
from repro.faults.checkpoint import RoundCheckpointer


def fragile_rounds(rt, d, idx, vals):
    """FX01: the getd sits between the checkpoint save and the guarded
    region, so a crash inside it is never caught and replayed."""
    ck = RoundCheckpointer(rt, enabled=True)
    while True:
        ck.save(arrays={"d": d.data})
        fetched = getd(rt, d, idx)
        try:
            setd(rt, d, idx, vals)
            done = not rt.allreduce_flag(fetched > 0)
        except (ThreadCrash, IntegrityError):
            ck.restore()
            continue
        if done:
            break
