"""Clean twins of ``uncharged_escape.py``: identical data movement,
with a charge dominating every escape."""


def peek_head_charged(rt, d):
    head = d.local_view(0)
    rt.charge_thread(float(head.size))
    return head


def fetch_remote_charged(rt, d, idx):
    rt.charge_comm(float(idx.size))
    vals = d.gather(idx)
    return vals


def first_always_charged(rt, d):
    rt.charge_thread(1.0)
    if rt.profile:
        rt.charge_thread(1.0)
    return d.snapshot()
