"""Clean twin of ``unscoped_comm.py``: every faultable effect of the
round — the getd included — sits inside the recovery ``try``."""

from repro.collectives import getd, setd
from repro.errors import IntegrityError, ThreadCrash
from repro.faults.checkpoint import RoundCheckpointer


def guarded_rounds(rt, d, idx, vals):
    ck = RoundCheckpointer(rt, enabled=True)
    while True:
        ck.save(arrays={"d": d.data})
        try:
            fetched = getd(rt, d, idx)
            setd(rt, d, idx, vals)
            done = not rt.allreduce_flag(fetched > 0)
        except (ThreadCrash, IntegrityError):
            ck.restore()
            continue
        if done:
            break
