"""Seeded SY defects: collective sequences that diverge across threads.

Parsed by the flow verifier in tests — never imported or executed.
Every function here contains exactly the kind of bug the SY rules
exist to catch; ``divergent_loop_clean.py`` holds the corrected twins.
"""

from repro.collectives import getd, setd


def relax_until_locally_quiet(rt, d, idx):
    """SY02: collective in the loop body, but each thread decides the
    exit from its *own* view of the labels — thread 0 can leave after
    round 3 while thread 1 enters round 4's getd and blocks forever."""
    moved = d.local_view(rt.me)
    while moved.any():
        grand = getd(rt, d, idx)
        moved = grand != d.local_view(rt.me)


def graft_if_mine(rt, d, idx, proposals):
    """SY01: branch on per-thread data; one arm runs setd, the other a
    barrier — threads taking different arms mismatch collectives."""
    mine = d.local_view(rt.me)
    if mine.any():
        setd(rt, d, idx, proposals)
    else:
        rt.barrier()


def settle_or_bail(rt, d, idx):
    """SY03: threads with an empty local block return early and skip
    the setd the remaining threads still execute."""
    mine = d.local_view(rt.me)
    if not mine.any():
        return 0
    setd(rt, d, idx, mine)
    return 1
