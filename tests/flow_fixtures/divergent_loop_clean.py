"""Clean twins of ``divergent_loop.py``: the same loops and branches,
terminated through uniform collective verdicts — the canonical idiom
the SY rules must accept without waivers."""

from repro.collectives import getd, setd


def relax_until_globally_quiet(rt, d, idx):
    """The exit verdict is an allreduce: every thread sees the same
    flag, so all threads run the same number of collective rounds."""
    while True:
        grand = getd(rt, d, idx)
        moved = grand != d.local_view(rt.me)
        if not rt.allreduce_flag(moved.any()):
            break


def graft_all(rt, d, idx, proposals):
    """Both collectives run unconditionally — nothing to diverge on."""
    setd(rt, d, idx, proposals)
    rt.barrier()


def settle_all(rt, d, idx):
    """Every thread participates in the setd; the per-thread count is
    returned without skipping any collective."""
    mine = d.local_view(rt.me)
    setd(rt, d, idx, mine)
    return int(mine.size)
