"""Correctness of every CC implementation against the scipy/networkx
oracle, across the structural graph family and machine shapes."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cc import (
    reference_cc_labels,
    reference_union_find_labels,
    solve_cc_collective,
    solve_cc_naive_upc,
    solve_cc_sequential,
    solve_cc_smp,
    solve_cc_sv,
)
from repro.core import OptimizationFlags, canonical_labels
from repro.graph import EdgeList, random_graph
from repro.runtime import hps_cluster, smp_node


def oracle(graph: EdgeList) -> np.ndarray:
    labels = np.arange(graph.n, dtype=np.int64)
    for comp in nx.connected_components(graph.to_networkx()):
        root = min(comp)
        for vtx in comp:
            labels[vtx] = root
    return labels


SOLVERS = {
    "reference": lambda g: reference_cc_labels(g),
    "union-find": lambda g: reference_union_find_labels(g),
    "sequential": lambda g: solve_cc_sequential(g).labels,
    "smp": lambda g: solve_cc_smp(g, smp_node(8)).labels,
    "naive-upc": lambda g: solve_cc_naive_upc(g, hps_cluster(2, 2)).labels,
    "collective": lambda g: solve_cc_collective(g, hps_cluster(2, 2)).labels,
    "collective-noopt": lambda g: solve_cc_collective(
        g, hps_cluster(2, 2), OptimizationFlags.none()
    ).labels,
    "collective-tprime": lambda g: solve_cc_collective(
        g, hps_cluster(2, 2), tprime=4
    ).labels,
    "sv": lambda g: solve_cc_sv(g, hps_cluster(2, 2)).labels,
    "sv-noopt": lambda g: solve_cc_sv(g, hps_cluster(2, 2), OptimizationFlags.none()).labels,
}


@pytest.mark.parametrize("solver", sorted(SOLVERS), ids=str)
def test_matches_oracle_on_family(any_graph, solver):
    labels = SOLVERS[solver](any_graph)
    assert np.array_equal(canonical_labels(labels), oracle(any_graph))


@pytest.mark.parametrize("solver", sorted(SOLVERS), ids=str)
def test_zero_vertices(solver):
    g = EdgeList(0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    labels = SOLVERS[solver](g)
    assert labels.size == 0


def test_self_loop_handled():
    g = EdgeList(3, np.array([1, 0]), np.array([1, 2]))
    got = canonical_labels(solve_cc_collective(g, hps_cluster(2, 2)).labels)
    assert got.tolist() == [0, 1, 0]


def test_parallel_edges_handled():
    g = EdgeList(4, np.array([0, 0, 0]), np.array([1, 1, 1]))
    got = canonical_labels(solve_cc_collective(g, hps_cluster(2, 2)).labels)
    assert got.tolist() == [0, 0, 2, 3]


def test_more_threads_than_vertices():
    g = random_graph(6, 8, seed=1)
    got = canonical_labels(solve_cc_collective(g, hps_cluster(4, 4)).labels)
    assert np.array_equal(got, oracle(g))


def test_single_vertex():
    g = EdgeList(1, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    assert solve_cc_collective(g, hps_cluster(2, 2)).labels.tolist() == [0]


@given(
    n=st.integers(2, 80),
    density=st.floats(0.0, 3.0),
    seed=st.integers(0, 20),
)
def test_property_collective_matches_oracle(n, density, seed):
    m = min(int(density * n), n * (n - 1) // 2)
    g = random_graph(n, m, seed)
    got = canonical_labels(solve_cc_collective(g, hps_cluster(2, 2)).labels)
    assert np.array_equal(got, oracle(g))


@given(n=st.integers(2, 60), seed=st.integers(0, 10))
def test_property_sv_matches_oracle(n, seed):
    m = min(2 * n, n * (n - 1) // 2)
    g = random_graph(n, m, seed)
    got = canonical_labels(solve_cc_sv(g, hps_cluster(2, 2)).labels)
    assert np.array_equal(got, oracle(g))
