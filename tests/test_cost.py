"""Tests for the cost model (repro.runtime.cost)."""

import numpy as np
import pytest

from repro.runtime import CostModel, hps_cluster, sequential_machine, smp_node
from repro.runtime.cost import ELEM_BYTES


@pytest.fixture
def cm():
    return CostModel(hps_cluster(4, 4))


@pytest.fixture
def cm_smp():
    return CostModel(smp_node(16))


class TestRemoteMessages:
    def test_single_message_includes_latency(self, cm):
        t = float(cm.remote_message_time(0))
        assert t >= cm.machine.network.latency * cm.machine.per_call_scale

    def test_bandwidth_term_scales_linearly(self, cm):
        small = float(cm.remote_message_time(1_000))
        big = float(cm.remote_message_time(1_000_000))
        assert big - small == pytest.approx(999_000 / cm.machine.network.bandwidth)

    def test_rdma_skips_overhead(self, cm):
        assert float(cm.remote_message_time(100, rdma=True)) < float(
            cm.remote_message_time(100, rdma=False)
        )

    def test_vectorized_over_threads(self, cm):
        out = cm.remote_message_time(np.array([0.0, 1e6, 2e6]))
        assert out.shape == (3,)
        assert out[2] > out[1] > out[0]


class TestFineGrained:
    def test_fine_access_much_slower_than_memory(self, cm):
        remote = float(cm.fine_grained_remote_time(1))
        local = cm.machine.memory.latency
        assert remote / local > 20  # the Section III regime

    def test_blocking_plus_occupancy_is_total(self, cm):
        n = np.array([10.0, 100.0])
        total = cm.fine_grained_remote_time(n)
        parts = cm.fine_grained_blocking_time(n) + cm.fine_grained_occupancy_time(n)
        assert np.allclose(total, parts)

    def test_congestion_multiplies_fine_cost(self):
        base = hps_cluster(4, 4)
        calm = CostModel(base.with_(network=base.network.__class__(fine_congestion=1.0)))
        busy = CostModel(base.with_(network=base.network.__class__(fine_congestion=3.0)))
        assert float(busy.fine_grained_remote_time(100)) == pytest.approx(
            3.0 * float(calm.fine_grained_remote_time(100))
        )

    def test_not_scaled_by_per_call_scale(self, cm):
        scaled = CostModel(cm.machine.with_(per_call_scale=0.001))
        assert float(scaled.fine_grained_remote_time(50)) == pytest.approx(
            float(cm.fine_grained_remote_time(50))
        )


class TestBulkTransfer:
    def test_coalescing_beats_fine_grained(self, cm):
        k = 10_000
        assert float(cm.bulk_transfer_time(k, 1)) < float(cm.fine_grained_remote_time(k))

    def test_linear_order_penalty_on_bandwidth(self, cm):
        lin = float(cm.bulk_transfer_time(100_000, 1, linear_order=True))
        circ = float(cm.bulk_transfer_time(100_000, 1, linear_order=False))
        assert lin > circ
        # penalty applies to the bandwidth term only
        factor = cm.machine.network.linear_order_factor
        bw = 100_000 * ELEM_BYTES / cm.machine.network.bandwidth
        assert lin - circ == pytest.approx((factor - 1) * bw)

    def test_message_count_term(self, cm):
        one = float(cm.bulk_transfer_time(1000, 1))
        many = float(cm.bulk_transfer_time(1000, 100))
        assert many > one


class TestCongestion:
    def test_no_congestion_below_threshold(self, cm):
        thr = cm.machine.network.incast_threshold
        assert cm.congestion_factor(thr) == 1.0
        assert cm.congestion_factor(2) == 1.0

    def test_collapse_beyond_threshold(self, cm):
        thr = cm.machine.network.incast_threshold
        assert cm.congestion_factor(2 * thr) > 100  # the paper's AlltoAll failure

    def test_monotone(self, cm):
        thr = cm.machine.network.incast_threshold
        values = [cm.congestion_factor(s) for s in (thr, thr + 16, thr + 64, 2 * thr)]
        assert values == sorted(values)


class TestAlltoallSetup:
    def test_single_node_pays_memory_prices(self):
        cm = CostModel(smp_node(16))
        # No network peers: cost bounded by tens of memory latencies.
        assert cm.alltoall_setup_time() < 100 * cm.machine.memory.latency * 16

    def test_grows_with_remote_peers(self):
        a = CostModel(hps_cluster(2, 4)).alltoall_setup_time()
        b = CostModel(hps_cluster(8, 4)).alltoall_setup_time()
        assert b > a

    def test_congestion_applies_past_threshold(self):
        calm = CostModel(hps_cluster(16, 8)).alltoall_setup_time()  # s=128
        congested = CostModel(hps_cluster(16, 16)).alltoall_setup_time()  # s=256
        assert congested > 50 * calm


class TestMemoryModel:
    def test_seq_access_streams(self, cm):
        t1 = float(cm.seq_access_time(1000))
        t2 = float(cm.seq_access_time(2000))
        assert t2 > t1
        assert t2 - t1 == pytest.approx(1000 * ELEM_BYTES / cm.machine.memory.bandwidth)

    def test_miss_rate_bounds(self, cm):
        assert 0.02 <= float(cm.miss_rate(1.0)) <= 1.0
        assert float(cm.miss_rate(1e12)) > 0.99
        assert float(cm.miss_rate(1.0)) == pytest.approx(0.02)

    def test_miss_rate_monotone_in_working_set(self, cm):
        ws = np.array([1e3, 1e5, 1e7, 1e9])
        rates = cm.miss_rate(ws)
        assert np.all(np.diff(rates) >= 0)

    def test_random_access_cheaper_when_cached(self, cm):
        big = float(cm.random_access_time(1000, 1e9))
        small = float(cm.random_access_time(1000, 100.0))
        assert small < big

    def test_distinct_working_set_caps_and_divides(self, cm):
        line = cm.machine.cache.line_bytes
        assert float(cm.distinct_working_set(10, 1e9)) == pytest.approx(10 * line)
        assert float(cm.distinct_working_set(10**9, 1e6)) == pytest.approx(1e6)
        assert float(cm.distinct_working_set(10**9, 1e6, divisor=4)) == pytest.approx(2.5e5)
        assert float(cm.distinct_working_set(0, 1e6)) == pytest.approx(line)

    def test_gather_time_duplicates_are_cheap(self, cm):
        # 100k requests for 10 distinct elements ~ bandwidth only.
        dup = float(cm.gather_time(1e5, 10, cm.distinct_working_set(10, 1e9)))
        uniq = float(cm.gather_time(1e5, 1e5, cm.distinct_working_set(1e5, 1e9)))
        assert dup < uniq / 5

    def test_grouped_permute_cheaper_than_random(self, cm):
        k = 100_000
        grouped = float(cm.grouped_permute_time(k))
        rand = float(cm.random_access_time(k, k * ELEM_BYTES))
        assert grouped < rand

    def test_virtual_scan_zero_at_tprime_one(self, cm):
        assert float(cm.virtual_scan_time(1000, 1)) == 0.0

    def test_virtual_scan_linear_in_tprime(self, cm):
        t4 = float(cm.virtual_scan_time(1000, 4))
        t8 = float(cm.virtual_scan_time(1000, 8))
        assert t8 == pytest.approx(2 * t4)


class TestSortModels:
    def test_count_sort_linear(self, cm):
        t1 = float(cm.count_sort_time(10_000, 16))
        t2 = float(cm.count_sort_time(20_000, 16))
        assert t2 < 2.5 * t1

    def test_quicksort_much_slower_at_paper_sizes(self, cm_smp):
        # The paper: "quick sort ... more than 50 times slower than count
        # sort on the same data" — our model lands the same order.
        q = float(cm_smp.comparison_sort_time(2_500_000))
        c = float(cm_smp.count_sort_time(2_500_000, 16))
        assert q / c > 10

    def test_quicksort_nlogn(self, cm):
        small = float(cm.comparison_sort_time(1000))
        big = float(cm.comparison_sort_time(100_000))
        assert big > 100 * small  # superlinear


class TestLocks:
    def test_lock_init_linear(self, cm):
        assert float(cm.lock_init_time(2_000_000)) == pytest.approx(
            2 * float(cm.lock_init_time(1_000_000))
        )

    def test_contention_surcharge(self, cm):
        calm = float(cm.lock_op_time(1000, 0.0))
        hot = float(cm.lock_op_time(1000, 1.0))
        assert hot > calm


class TestCollectiveSupport:
    def test_allreduce_scales_with_log_threads(self):
        small = CostModel(hps_cluster(2, 1)).allreduce_time()
        big = CostModel(hps_cluster(16, 16)).allreduce_time()
        assert big > small

    def test_allreduce_free_on_one_thread(self):
        assert CostModel(sequential_machine()).allreduce_time() == 0.0

    def test_allreduce_memory_priced_on_one_node(self):
        one_node = CostModel(smp_node(16)).allreduce_time()
        cluster = CostModel(hps_cluster(16, 1)).allreduce_time()
        assert one_node < cluster

    def test_barrier_passthrough(self, cm):
        assert cm.barrier_time() == cm.machine.barrier_time()

    def test_upc_deref_overhead_positive(self, cm):
        deref = float(cm.upc_local_deref_time(1000, 1e6))
        plain = float(cm.random_access_time(1000, 1e6))
        assert deref > plain
