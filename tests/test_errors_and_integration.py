"""Exception hierarchy tests and full end-to-end integration runs."""

import numpy as np
import pytest

import repro
from repro.errors import (
    CollectiveError,
    ConfigError,
    ConvergenceError,
    DistributionError,
    FaultError,
    GraphError,
    ReproError,
    ThreadCrash,
    VerificationError,
)

ALL_ERRORS = [
    ConfigError, DistributionError, CollectiveError, GraphError,
    ConvergenceError, VerificationError, FaultError, ThreadCrash,
]


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_raisable_and_catchable_at_base(self, exc):
        instance = (
            ThreadCrash(thread=1, at_time=0.5, recovery=1e-3)
            if exc is ThreadCrash
            else exc("boom")
        )
        with pytest.raises(ReproError):
            raise instance

    def test_config_is_value_error(self):
        assert issubclass(ConfigError, ValueError)

    def test_verification_is_assertion(self):
        assert issubclass(VerificationError, AssertionError)

    def test_fault_is_runtime_error(self):
        assert issubclass(FaultError, RuntimeError)
        assert issubclass(ThreadCrash, FaultError)

    def test_thread_crash_carries_context(self):
        crash = ThreadCrash(thread=3, at_time=2e-3, recovery=1e-3)
        assert crash.thread == 3
        assert crash.at_time == 2e-3
        assert crash.recovery == 1e-3
        assert "thread 3" in str(crash)

    def test_catchable_at_base(self):
        with pytest.raises(ReproError):
            repro.random_graph(-1, 0)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_from_docstring(self):
        g = repro.random_graph(2_000, 8_000, seed=0)
        cc = repro.connected_components(g, machine=repro.hps_cluster(4, 2))
        assert cc.num_components >= 1
        gw = repro.with_random_weights(g, seed=1)
        mst = repro.minimum_spanning_forest(gw, machine=repro.hps_cluster(4, 2))
        assert mst.num_edges == 2_000 - cc.num_components


class TestEndToEnd:
    """The full pipeline on a mid-size input: every implementation, every
    machine shape, all self-validated."""

    @pytest.fixture(scope="class")
    def g(self):
        return repro.hybrid_graph(2_000, 8_000, seed=42)

    @pytest.fixture(scope="class")
    def gw(self, g):
        return repro.with_random_weights(g, seed=43)

    def test_cc_all_impls_validate(self, g):
        for impl in repro.CC_IMPLS:
            machine = (
                repro.smp_node(8)
                if impl in ("smp", "sequential")
                else repro.hps_cluster(4, 4)
            )
            repro.connected_components(g, machine, impl=impl, validate=True)

    def test_mst_all_impls_validate(self, gw):
        for impl in repro.MST_IMPLS:
            machine = (
                repro.smp_node(8)
                if impl in ("smp", "kruskal", "prim", "boruvka")
                else repro.hps_cluster(4, 4)
            )
            repro.minimum_spanning_forest(gw, machine, impl=impl, validate=True)

    def test_cc_and_mst_component_structure_agree(self, g, gw):
        cc = repro.connected_components(g, repro.hps_cluster(4, 2))
        mst = repro.minimum_spanning_forest(gw, repro.hps_cluster(4, 2))
        assert mst.num_edges == g.n - cc.num_components
        assert np.array_equal(
            repro.canonical_labels(mst.labels), repro.canonical_labels(cc.labels)
        )

    def test_thread_count_sweep_is_invariant(self, g):
        configs = [(2, 8), (4, 4), (8, 2), (16, 1)]
        labels = [
            repro.connected_components(g, repro.hps_cluster(*cfg)).labels
            for cfg in configs
        ]
        for other in labels[1:]:
            assert np.array_equal(labels[0], other)

    def test_io_roundtrip_through_solver(self, g, tmp_path):
        path = tmp_path / "g.npz"
        repro.save_edgelist(g, path)
        loaded = repro.load_edgelist(path)
        a = repro.connected_components(g, repro.hps_cluster(2, 2)).labels
        b = repro.connected_components(loaded, repro.hps_cluster(2, 2)).labels
        assert np.array_equal(a, b)
