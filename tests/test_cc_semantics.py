"""Semantic pinning of the CC implementations: determinism, snapshot
grafting, convergence structure, result metadata."""

import numpy as np
import pytest

from repro.cc import (
    graft_proposals,
    is_all_stars,
    iteration_bound,
    solve_cc_collective,
    solve_cc_smp,
    solve_cc_sv,
)
from repro.cc.common import check_converged
from repro.core import OptimizationFlags
from repro.errors import ConvergenceError
from repro.graph import path_graph, random_graph, star_graph
from repro.runtime import hps_cluster, smp_node


class TestGraftProposals:
    def test_hooks_larger_root_onto_smaller_label(self):
        # edge (u, v) with D[u]=1 < D[v]=5 and 5 a root: D[5] <- 1
        du = np.array([1])
        dv = np.array([5])
        ddu = np.array([1])
        ddv = np.array([5])
        step = graft_proposals(du, dv, ddu, ddv)
        assert step.targets.tolist() == [5]
        assert step.values.tolist() == [1]

    def test_symmetric_direction(self):
        step = graft_proposals(
            np.array([5]), np.array([1]), np.array([5]), np.array([1])
        )
        assert step.targets.tolist() == [5]
        assert step.values.tolist() == [1]

    def test_no_graft_when_target_not_root(self):
        # D[v]=5 but D[5]=2 (5 is not a root): no proposal.
        step = graft_proposals(
            np.array([1]), np.array([5]), np.array([1]), np.array([2])
        )
        assert step.targets.size == 0

    def test_no_graft_within_component(self):
        step = graft_proposals(
            np.array([3]), np.array([3]), np.array([3]), np.array([3])
        )
        assert step.targets.size == 0
        assert not step.live[0]

    def test_live_marks_cross_edges(self):
        step = graft_proposals(
            np.array([1, 2]), np.array([1, 7]), np.array([1, 2]), np.array([1, 7])
        )
        assert step.live.tolist() == [False, True]


class TestDeterminism:
    MACHINES = [hps_cluster(2, 2), hps_cluster(4, 1), hps_cluster(1, 4), hps_cluster(8, 2)]

    def test_labels_identical_across_machine_shapes(self):
        g = random_graph(300, 700, seed=11)
        results = [solve_cc_collective(g, m).labels for m in self.MACHINES]
        for other in results[1:]:
            assert np.array_equal(results[0], other)

    def test_labels_identical_across_optimization_sets(self):
        g = random_graph(300, 700, seed=11)
        base = solve_cc_collective(g, hps_cluster(2, 2), OptimizationFlags.none()).labels
        for _, opts in OptimizationFlags.cumulative():
            got = solve_cc_collective(g, hps_cluster(2, 2), opts).labels
            assert np.array_equal(got, base)

    def test_collective_matches_smp_labels_exactly(self):
        # Same snapshot semantics + min adjudication => identical label
        # arrays, not merely identical partitions.
        g = random_graph(250, 600, seed=4)
        a = solve_cc_collective(g, hps_cluster(2, 2)).labels
        b = solve_cc_smp(g, smp_node(8)).labels
        assert np.array_equal(a, b)

    def test_repeat_runs_identical(self):
        g = random_graph(200, 500, seed=5)
        a = solve_cc_collective(g, hps_cluster(2, 2))
        b = solve_cc_collective(g, hps_cluster(2, 2))
        assert np.array_equal(a.labels, b.labels)
        assert a.info.sim_time == pytest.approx(b.info.sim_time)


class TestConvergenceStructure:
    def test_final_state_is_rooted_stars(self):
        g = random_graph(200, 500, seed=6)
        labels = solve_cc_collective(g, hps_cluster(2, 2)).labels
        assert is_all_stars(labels)

    def test_iterations_logarithmic(self):
        g = path_graph(512)  # worst case depth
        res = solve_cc_collective(g, hps_cluster(2, 2))
        assert res.info.iterations <= iteration_bound(512)

    def test_iteration_bound_guard(self):
        with pytest.raises(ConvergenceError):
            check_converged(10**6, 100, "test loop")

    def test_num_components(self):
        from repro.graph import disjoint_components_graph

        g = disjoint_components_graph(5, 20, seed=1)
        res = solve_cc_collective(g, hps_cluster(2, 2))
        assert res.num_components == 5

    def test_sv_needs_no_more_iterations_than_bound(self):
        g = path_graph(256)
        res = solve_cc_sv(g, hps_cluster(2, 2))
        assert res.info.iterations <= iteration_bound(256)

    def test_canonical_idempotent(self):
        g = random_graph(100, 250, seed=2)
        res = solve_cc_collective(g, hps_cluster(2, 2))
        c1 = res.canonical()
        import repro.core as core

        assert np.array_equal(core.canonical_labels(c1), c1)


class TestResultMetadata:
    def test_info_fields(self):
        g = random_graph(100, 250, seed=2)
        res = solve_cc_collective(g, hps_cluster(2, 2))
        assert res.info.impl == "cc-collective"
        assert res.info.sim_time > 0
        assert res.info.wall_time > 0
        assert res.info.iterations >= 1
        assert res.info.sim_time_ms == pytest.approx(res.info.sim_time * 1e3)

    def test_breakdown_covers_categories(self):
        g = random_graph(100, 250, seed=2)
        res = solve_cc_collective(g, hps_cluster(2, 2))
        bd = res.info.breakdown()
        assert set(bd) == {"Comm", "Sort", "Copy", "Irregular", "Setup", "Work", "Retry", "Fault"}
        assert sum(bd.values()) > 0

    def test_describe_mentions_impl(self):
        g = random_graph(50, 100, seed=2)
        res = solve_cc_smp(g, smp_node(4))
        assert "cc-smp" in res.info.describe()

    def test_counters_track_collectives(self):
        g = random_graph(100, 250, seed=2)
        res = solve_cc_collective(g, hps_cluster(2, 2))
        assert res.info.trace.counters.collective_calls > 0
        assert res.info.trace.counters.iterations == res.info.iterations


class TestHotspotBehaviour:
    def test_star_graph_offload_effect(self):
        # All grafting traffic converges on vertex 0's owner; offload
        # must strictly reduce communicated bytes.
        g = star_graph(600)
        m = hps_cluster(4, 2)
        on = solve_cc_collective(g, m, OptimizationFlags.only("offload"))
        off = solve_cc_collective(g, m, OptimizationFlags.none())
        assert np.array_equal(on.labels, off.labels)
        assert (
            on.info.trace.counters.remote_bytes < off.info.trace.counters.remote_bytes
        )
