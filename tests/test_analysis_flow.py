"""Interprocedural flow verifier: effects-registry drift, seeded defect
fixtures with their clean twins, rule semantics on snippets, and the
tree-wide "repro package verifies clean" acceptance pin."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import FLOW_CATALOG, registry_drift, run_verify, verify_file
from repro.analysis.effects import EFFECTS, Effect

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"


def verify_snippet(tmp_path: Path, code: str, name: str = "algo.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return verify_file(path)


def keyed(findings):
    return [(f.line, f.rule) for f in findings]


class TestRegistryDrift:
    def test_registry_matches_live_surface(self):
        """The drift gate: every public runtime/collective API is
        registered, and no record describes a vanished API."""
        problems = registry_drift()
        assert problems == [], "\n".join(problems)

    def test_new_runtime_api_reported_unregistered(self, monkeypatch):
        from repro.runtime.runtime import PGASRuntime

        monkeypatch.setattr(
            PGASRuntime, "brand_new_api", lambda self: None, raising=False
        )
        problems = registry_drift()
        assert any("unregistered runtime API 'brand_new_api'" in p for p in problems)

    def test_removed_api_reported_stale(self, monkeypatch):
        monkeypatch.setitem(EFFECTS, "ghost_api", Effect(owner="runtime"))
        problems = registry_drift()
        assert any("stale registry entry 'ghost_api'" in p for p in problems)

    def test_sync_effects_all_carry_tokens(self):
        for name, eff in EFFECTS.items():
            assert not eff.sync or eff.token, name


class TestSeededFixtures:
    """Each fixture module plants one class of defect; the verifier must
    flag every seeded line and stay silent on the corrected twin."""

    def test_divergent_loop_sy_defects(self):
        findings = verify_file(FIXTURES / "divergent_loop.py")
        assert keyed(findings) == [(16, "SY02"), (25, "SY01"), (35, "SY03")]

    def test_divergent_loop_clean_twin(self):
        assert verify_file(FIXTURES / "divergent_loop_clean.py") == []

    def test_uncharged_escape_ch_defects(self):
        findings = verify_file(FIXTURES / "uncharged_escape.py")
        assert keyed(findings) == [
            (13, "CH01"),
            (19, "CH02"),
            (20, "CH01"),
            (28, "CH01"),
        ]

    def test_uncharged_escape_clean_twin(self):
        assert verify_file(FIXTURES / "uncharged_escape_clean.py") == []

    def test_unscoped_comm_fx_defect(self):
        findings = verify_file(FIXTURES / "unscoped_comm.py")
        assert keyed(findings) == [(19, "FX01")]

    def test_unscoped_comm_clean_twin(self):
        assert verify_file(FIXTURES / "unscoped_comm_clean.py") == []


class TestSyncRules:
    def test_allreduce_verdict_is_uniform(self, tmp_path):
        """The blessed exit idiom: an allreduce result is identical on
        every simulated thread, so branching on it is safe."""
        findings = verify_snippet(
            tmp_path,
            """
            def relax(rt, d, idx):
                while True:
                    grand = rt.fine_grained_read(d, idx)
                    if not rt.allreduce_flag(grand.any()):
                        break
            """,
        )
        assert findings == []

    def test_raise_is_global_abort(self, tmp_path):
        """``raise`` tears down the whole simulated job, so a tainted
        guard around one is not a divergence point."""
        findings = verify_snippet(
            tmp_path,
            """
            def check(rt, d, idx):
                vals = rt.fine_grained_read(d, idx)
                if vals.min() < 0:
                    raise ValueError("negative label")
                rt.barrier()
            """,
        )
        assert findings == []

    def test_divergence_through_helper_call(self, tmp_path):
        """Interprocedural: the branch itself calls a helper whose
        summary contains a sync token — SY01 still fires."""
        findings = verify_snippet(
            tmp_path,
            """
            def settle(rt, d, idx, vals):
                setd(rt, d, idx, vals)

            def kernel(rt, d, idx, vals):
                mine = d.local_view(0)
                if mine.any():
                    settle(rt, d, idx, vals)
            """,
        )
        assert keyed(findings) == [(7, "SY01")]

    def test_uniform_guard_untainted(self, tmp_path):
        findings = verify_snippet(
            tmp_path,
            """
            def kernel(rt, d, idx, vals):
                if rt.allreduce_flag(vals.any()):
                    setd(rt, d, idx, vals)
            """,
        )
        assert findings == []


class TestChargeRules:
    def test_charge_on_every_path_accounts_escape(self, tmp_path):
        findings = verify_snippet(
            tmp_path,
            """
            def kernel(rt, d):
                head = d.local_view(0)
                if rt.profile:
                    rt.charge_thread(2.0)
                else:
                    rt.charge_thread(1.0)
                return head
            """,
        )
        assert findings == []

    def test_wrapper_of_accounted_callee_is_clean(self, tmp_path):
        """A callee that charge-dominates its own tainted return hands
        back *accounted* data — the thin wrapper owes nothing."""
        findings = verify_snippet(
            tmp_path,
            """
            def inner(rt, d):
                vals = d.snapshot()
                rt.charge_thread(float(vals.size))
                return vals

            def outer(rt, d):
                return inner(rt, d)
            """,
        )
        assert findings == []

    def test_wrapper_of_unaccounted_callee_flagged(self, tmp_path):
        findings = verify_snippet(
            tmp_path,
            """
            def inner(d):
                return d.snapshot()

            def outer(rt, d):
                return inner(d)
            """,
        )
        assert keyed(findings) == [(3, "CH01"), (6, "CH01")]


class TestFaultRules:
    def test_fx_only_in_fault_enabled_functions(self, tmp_path):
        """Plain solvers run no fault plan — unprotected collectives are
        the normal case, not an FX finding."""
        findings = verify_snippet(
            tmp_path,
            """
            def kernel(rt, d, idx, vals):
                setd(rt, d, idx, vals)
            """,
        )
        assert findings == []

    def test_fault_scope_recognises_threadcrash_handler(self, tmp_path):
        findings = verify_snippet(
            tmp_path,
            """
            def kernel(rt, d, idx, vals):
                ck = RoundCheckpointer(rt, enabled=True)
                ck.save(arrays={})
                try:
                    setd(rt, d, idx, vals)
                except ThreadCrash:
                    ck.restore()
            """,
        )
        assert findings == []


class TestScopeAndTree:
    def test_catalog_has_all_rules(self):
        assert set(FLOW_CATALOG) == {"SY01", "SY02", "SY03", "CH01", "CH02", "FX01"}

    def test_whitelisted_modules_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "runtime"
        pkg.mkdir(parents=True)
        path = pkg / "inner.py"
        path.write_text("def f(d):\n    return d.snapshot()\n")
        assert run_verify([path]) == []

    def test_source_tree_verifies_clean(self):
        """The acceptance gate: the shipped tree carries no divergent
        collectives, uncharged escapes, or unscoped faultable effects."""
        findings = run_verify([SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_run_verify_order_is_path_stable(self):
        findings = run_verify([FIXTURES])
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.rule)
        )
        assert [f.path for f in findings] == sorted(f.path for f in findings)
