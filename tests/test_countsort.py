"""Tests for counting sort / grouping (repro.scheduling.countsort)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.scheduling import bucket_offsets, counting_sort_permutation, group_by_key


class TestBucketOffsets:
    def test_prefix_sums(self):
        assert bucket_offsets(np.array([2, 0, 3])).tolist() == [0, 2, 2, 5]

    def test_empty(self):
        assert bucket_offsets(np.array([], dtype=np.int64)).tolist() == [0]


class TestCountingSortPermutation:
    def test_sorts(self):
        keys = np.array([3, 1, 3, 0, 1, 1])
        perm = counting_sort_permutation(keys, 4)
        assert keys[perm].tolist() == [0, 1, 1, 1, 3, 3]

    def test_stability(self):
        keys = np.array([1, 0, 1, 0])
        perm = counting_sort_permutation(keys, 2)
        assert perm.tolist() == [1, 3, 0, 2]

    def test_single_bucket(self):
        keys = np.zeros(5, dtype=np.int64)
        perm = counting_sort_permutation(keys, 1)
        assert perm.tolist() == [0, 1, 2, 3, 4]

    def test_empty(self):
        perm = counting_sort_permutation(np.array([], dtype=np.int64), 3)
        assert perm.size == 0

    def test_key_out_of_range(self):
        with pytest.raises(DistributionError):
            counting_sort_permutation(np.array([4]), 4)
        with pytest.raises(DistributionError):
            counting_sort_permutation(np.array([-1]), 4)

    def test_bad_bucket_count(self):
        with pytest.raises(DistributionError):
            counting_sort_permutation(np.array([0]), 0)

    def test_2d_rejected(self):
        with pytest.raises(DistributionError):
            counting_sort_permutation(np.zeros((2, 2), dtype=np.int64), 2)

    @given(
        keys=st.lists(st.integers(0, 15), min_size=0, max_size=100),
    )
    def test_property_matches_stable_argsort(self, keys):
        arr = np.asarray(keys, dtype=np.int64)
        perm = counting_sort_permutation(arr, 16)
        expected = np.argsort(arr, kind="stable")
        assert np.array_equal(perm, expected)


class TestGroupByKey:
    def test_returns_consistent_triple(self):
        keys = np.array([2, 0, 2, 1, 0])
        perm, counts, offsets = group_by_key(keys, 3)
        assert counts.tolist() == [2, 1, 2]
        assert offsets.tolist() == [0, 2, 3, 5]
        assert keys[perm].tolist() == [0, 0, 1, 2, 2]

    def test_bucket_selection(self):
        keys = np.array([2, 0, 2, 1, 0])
        perm, counts, offsets = group_by_key(keys, 3)
        bucket2 = perm[offsets[2] : offsets[3]]
        assert bucket2.tolist() == [0, 2]  # original order preserved

    def test_empty_buckets_allowed(self):
        perm, counts, offsets = group_by_key(np.array([5, 5]), 8)
        assert counts.tolist() == [0, 0, 0, 0, 0, 2, 0, 0]

    def test_errors(self):
        with pytest.raises(DistributionError):
            group_by_key(np.array([3]), 3)
        with pytest.raises(DistributionError):
            group_by_key(np.array([0]), 0)

    @given(
        keys=st.lists(st.integers(0, 9), min_size=0, max_size=80),
        nbuckets=st.integers(10, 12),
    )
    def test_property_group_recovers_all_elements(self, keys, nbuckets):
        arr = np.asarray(keys, dtype=np.int64)
        perm, counts, offsets = group_by_key(arr, nbuckets)
        assert counts.sum() == arr.size
        assert sorted(perm.tolist()) == list(range(arr.size))
        for bucket in range(nbuckets):
            sel = perm[offsets[bucket] : offsets[bucket + 1]]
            assert np.all(arr[sel] == bucket)
