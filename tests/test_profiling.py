"""Tests for the phase profiler (repro.runtime.profiling)."""

import numpy as np
import pytest

import repro
from repro.collectives import getd, setdmin
from repro.core import OptimizationFlags
from repro.runtime import (
    PGASRuntime,
    PartitionedArray,
    hps_cluster,
    profiled,
    render_phases,
)
from repro.runtime.profiling import current_session


def run_getd(rt, hot=False):
    arr = rt.shared_array(np.arange(1000, dtype=np.int64))
    if hot:
        data = np.zeros(4000, dtype=np.int64)
    else:
        data = np.random.default_rng(0).integers(0, 1000, 4000)
    idx = PartitionedArray.even(data, rt.s)
    getd(rt, arr, idx, OptimizationFlags.none())
    return arr


class TestProfiler:
    def test_disabled_by_default(self):
        rt = PGASRuntime(hps_cluster(2, 2))
        assert rt.profiler is None
        run_getd(rt)  # no error, nothing recorded

    def test_records_collective_calls(self):
        rt = PGASRuntime(hps_cluster(2, 2), profile=True)
        run_getd(rt)
        assert len(rt.profiler.records) == 1
        rec = rt.profiler.records[0]
        assert rec.requests == 4000
        assert rec.duration_s > 0

    def test_hotspot_visible_in_wait_fraction(self):
        rt = PGASRuntime(hps_cluster(4, 2), profile=True)
        run_getd(rt, hot=True)
        run_getd(rt, hot=False)
        hot_rec, flat_rec = rt.profiler.records
        assert hot_rec.wait_fraction > flat_rec.wait_fraction + 0.2
        assert hot_rec.hottest_thread == 0  # vertex 0's owner

    def test_setd_recorded(self):
        rt = PGASRuntime(hps_cluster(2, 2), profile=True)
        arr = rt.shared_array(np.arange(100, dtype=np.int64))
        idx = PartitionedArray.even(np.arange(40, dtype=np.int64), rt.s)
        setdmin(rt, arr, idx, np.zeros(40, dtype=np.int64))
        assert rt.profiler.records[0].name.startswith("setd")

    def test_by_name_and_hottest(self):
        rt = PGASRuntime(hps_cluster(2, 2), profile=True)
        run_getd(rt)
        run_getd(rt)
        totals = rt.profiler.by_name()
        assert sum(totals.values()) == pytest.approx(rt.profiler.total_s())
        assert len(rt.profiler.hottest(1)) == 1

    def test_render(self):
        rt = PGASRuntime(hps_cluster(2, 2), profile=True)
        run_getd(rt)
        out = render_phases(rt.profiler.records)
        assert "getd" in out and "wait frac" in out


class TestProfiledContext:
    def test_session_captures_solves(self):
        g = repro.random_graph(500, 1500, 1)
        with profiled() as session:
            repro.connected_components(g, hps_cluster(2, 2))
        assert len(session.records) > 3
        assert "getd" in session.render()

    def test_session_scoped(self):
        assert current_session() is None
        with profiled() as session:
            assert current_session() is session
        assert current_session() is None

    def test_nested_sessions(self):
        with profiled() as outer:
            with profiled() as inner:
                rt = PGASRuntime(hps_cluster(2, 2))
                run_getd(rt)
            assert len(inner.records) == 1
        # runtime registered with the innermost session only
        assert len(outer.records) == 0

    def test_no_records_outside(self):
        g = repro.random_graph(200, 500, 1)
        with profiled() as session:
            pass
        repro.connected_components(g, hps_cluster(2, 2))
        assert session.records == []

    def test_offload_reduces_wait_fraction_in_profile(self):
        # The profiler demonstrates exactly what offload fixes.
        from repro.graph import star_graph

        star = star_graph(2000)
        with profiled() as off_session:
            repro.connected_components(
                star, hps_cluster(4, 2), opts=OptimizationFlags.none()
            )
        with profiled() as on_session:
            repro.connected_components(
                star, hps_cluster(4, 2), opts=OptimizationFlags.only("offload")
            )
        worst_off = max(r.wait_fraction for r in off_session.records)
        worst_on = max(r.wait_fraction for r in on_session.records)
        assert worst_on <= worst_off + 1e-9
