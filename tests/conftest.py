"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph import (
    cycle_graph,
    disjoint_components_graph,
    empty_graph,
    hybrid_graph,
    path_graph,
    random_graph,
    star_graph,
    with_random_weights,
)
from repro.runtime import PGASRuntime, hps_cluster, sequential_machine, smp_node

# Keep hypothesis fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_cluster():
    """A 2x2 cluster — smallest machine with both node-local and remote
    traffic."""
    return hps_cluster(2, 2)


@pytest.fixture
def small_cluster():
    return hps_cluster(4, 2)


@pytest.fixture
def smp16():
    return smp_node(16)


@pytest.fixture
def seq_machine():
    return sequential_machine()


@pytest.fixture
def runtime(small_cluster) -> PGASRuntime:
    return PGASRuntime(small_cluster)


# -- canonical small graphs ---------------------------------------------------


@pytest.fixture
def g_path():
    return path_graph(40)


@pytest.fixture
def g_random():
    return random_graph(200, 500, seed=7)


@pytest.fixture
def g_hybrid():
    return hybrid_graph(300, 900, seed=3)


@pytest.fixture
def g_blocks():
    return disjoint_components_graph(4, 15, seed=1)


@pytest.fixture
def g_weighted():
    return with_random_weights(random_graph(150, 400, seed=5), seed=9)


GRAPH_FAMILY = {
    "empty": lambda: empty_graph(12),
    "single": lambda: empty_graph(1),
    "path": lambda: path_graph(40),
    "cycle": lambda: cycle_graph(25),
    "star": lambda: star_graph(30),
    "blocks": lambda: disjoint_components_graph(4, 12, seed=2),
    "random": lambda: random_graph(200, 500, seed=7),
    "dense": lambda: random_graph(60, 800, seed=8),
    "hybrid": lambda: hybrid_graph(256, 800, seed=3),
}


@pytest.fixture(params=sorted(GRAPH_FAMILY))
def any_graph(request):
    """Parametrized over the whole structural graph family."""
    return GRAPH_FAMILY[request.param]()
