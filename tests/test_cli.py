"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cc_defaults(self):
        args = build_parser().parse_args(["cc"])
        assert args.impl == "collective"
        assert args.machine == "16x8"

    def test_rejects_unknown_impl(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cc", "--impl", "magic"])


class TestCommands:
    def test_cc_runs(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "4x2", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "components:" in out
        assert "modeled" in out

    def test_cc_hybrid_kind(self, capsys):
        assert main(["cc", "--n", "2000", "--kind", "hybrid", "--machine", "4x2"]) == 0

    def test_cc_smp_machine(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "smp", "--impl", "smp"]) == 0

    def test_cc_seq_machine(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "seq", "--impl", "sequential"]) == 0

    def test_cc_custom_opts(self, capsys):
        assert main(
            ["cc", "--n", "2000", "--machine", "4x2", "--opts", "compact,circular"]
        ) == 0

    def test_cc_hierarchical(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "4x2", "--hierarchical"]) == 0

    def test_mst_runs(self, capsys):
        assert main(["mst", "--n", "2000", "--machine", "4x2", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "total weight" in out

    def test_mst_kruskal(self, capsys):
        assert main(["mst", "--n", "2000", "--machine", "seq", "--impl", "kruskal"]) == 0

    def test_listrank_all_impls(self, capsys):
        for impl in ("wyllie", "cgm", "sequential"):
            assert main(["listrank", "--n", "500", "--machine", "4x2", "--impl", impl]) == 0
            out = capsys.readouterr().out
            assert "True" in out  # head rank == n-1 check printed

    def test_info(self, capsys):
        assert main(["info", "--n", "10000"]) == 0
        out = capsys.readouterr().out
        assert "hps_cluster" in out
        assert "per-call scale" in out

    def test_figures_subset(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        assert main(["figures", "--scale", "0.05", "--only", "sec3"]) == 0
        out = capsys.readouterr().out
        assert "Sec. III" in out

    def test_figures_unknown_key(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        with pytest.raises(SystemExit):
            main(["figures", "--only", "fig99"])

    def test_bad_machine_spec(self):
        with pytest.raises(SystemExit):
            main(["cc", "--n", "1000", "--machine", "banana"])

    def test_bad_opts(self):
        with pytest.raises(SystemExit):
            main(["cc", "--n", "1000", "--machine", "4x2", "--opts", "warp"])


class TestBfsCommand:
    def test_bfs_runs(self, capsys):
        assert main(["bfs", "--n", "2000", "--machine", "4x2"]) == 0
        out = capsys.readouterr().out
        assert "reached" in out

    def test_bfs_custom_source(self, capsys):
        assert main(["bfs", "--n", "2000", "--machine", "4x2", "--source", "7"]) == 0

    def test_bfs_sequential(self, capsys):
        assert main(["bfs", "--n", "2000", "--machine", "seq", "--impl", "sequential"]) == 0
