"""Tests for the command-line interface (repro.cli)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    """Run ``python -m repro ...`` exactly as a user would."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cc_defaults(self):
        args = build_parser().parse_args(["cc"])
        assert args.impl == "collective"
        assert args.machine == "16x8"

    def test_rejects_unknown_impl(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cc", "--impl", "magic"])

    def test_tprime_auto_accepted(self):
        args = build_parser().parse_args(["cc", "--tprime", "auto"])
        assert args.tprime == "auto"

    def test_tprime_int_accepted(self):
        args = build_parser().parse_args(["cc", "--tprime", "4"])
        assert args.tprime == 4

    def test_tprime_rejects_junk(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cc", "--tprime", "junk"])

    def test_tprime_rejects_nonpositive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cc", "--tprime", "0"])


class TestCommands:
    def test_cc_runs(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "4x2", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "components:" in out
        assert "modeled" in out

    def test_cc_hybrid_kind(self, capsys):
        assert main(["cc", "--n", "2000", "--kind", "hybrid", "--machine", "4x2"]) == 0

    def test_cc_smp_machine(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "smp", "--impl", "smp"]) == 0

    def test_cc_seq_machine(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "seq", "--impl", "sequential"]) == 0

    def test_cc_custom_opts(self, capsys):
        assert main(
            ["cc", "--n", "2000", "--machine", "4x2", "--opts", "compact,circular"]
        ) == 0

    def test_cc_hierarchical(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "4x2", "--hierarchical"]) == 0

    def test_mst_runs(self, capsys):
        assert main(["mst", "--n", "2000", "--machine", "4x2", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "total weight" in out

    def test_mst_kruskal(self, capsys):
        assert main(["mst", "--n", "2000", "--machine", "seq", "--impl", "kruskal"]) == 0

    def test_listrank_all_impls(self, capsys):
        for impl in ("wyllie", "cgm", "sequential"):
            assert main(["listrank", "--n", "500", "--machine", "4x2", "--impl", impl]) == 0
            out = capsys.readouterr().out
            assert "True" in out  # head rank == n-1 check printed

    def test_info(self, capsys):
        assert main(["info", "--n", "10000"]) == 0
        out = capsys.readouterr().out
        assert "hps_cluster" in out
        assert "per-call scale" in out

    def test_figures_subset(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        assert main(["figures", "--scale", "0.05", "--only", "sec3"]) == 0
        out = capsys.readouterr().out
        assert "Sec. III" in out

    def test_figures_unknown_key(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        with pytest.raises(SystemExit):
            main(["figures", "--only", "fig99"])

    def test_bad_machine_spec(self):
        with pytest.raises(SystemExit):
            main(["cc", "--n", "1000", "--machine", "banana"])

    def test_bad_opts(self):
        with pytest.raises(SystemExit):
            main(["cc", "--n", "1000", "--machine", "4x2", "--opts", "warp"])

    def test_bad_machine_shape_separator(self):
        with pytest.raises(SystemExit):
            main(["cc", "--n", "1000", "--machine", "16y8"])

    def test_opts_auto_rejects_hierarchical(self):
        with pytest.raises(SystemExit):
            main([
                "cc", "--n", "1000", "--machine", "4x2",
                "--opts", "auto", "--hierarchical",
            ])

    def test_cc_with_fault_flags(self, capsys):
        assert main([
            "cc", "--n", "2000", "--machine", "4x2", "--validate",
            "--fault-loss", "1e-3", "--fault-stragglers", "1", "--fault-seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults  :" in out

    def test_mst_with_fault_flags(self, capsys):
        assert main([
            "mst", "--n", "2000", "--machine", "4x2", "--validate",
            "--fault-loss", "1e-3",
        ]) == 0

    def test_fault_flags_deterministic(self, capsys):
        argv = [
            "cc", "--n", "2000", "--machine", "4x2",
            "--fault-loss", "1e-3", "--fault-stragglers", "1", "--fault-seed", "9",
        ]
        def modeled_lines(text):
            # Everything except the real wall-clock line is deterministic.
            return [ln for ln in text.splitlines() if not ln.startswith("wall")]

        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert modeled_lines(first) == modeled_lines(second)

    def test_fault_flags_rejected_for_bfs(self, capsys):
        assert main(["bfs", "--n", "1000", "--machine", "4x2", "--fault-loss", "1e-3"]) == 2
        err = capsys.readouterr().err
        assert "only supported for cc/mst" in err

    def test_fault_flags_rejected_for_listrank(self, capsys):
        assert main(["listrank", "--n", "500", "--machine", "4x2", "--fault-stragglers", "1"]) == 2

    def test_cc_with_corruption_and_integrity(self, capsys):
        assert main([
            "cc", "--n", "2000", "--machine", "4x2", "--validate",
            "--fault-corruption", "0.2", "--fault-payload-corruption", "5e-5",
            "--integrity",
        ]) == 0
        out = capsys.readouterr().out
        assert "silent  :" in out
        assert "detected" in out

    def test_integrity_rejected_for_bfs(self, capsys):
        assert main(["bfs", "--n", "1000", "--machine", "4x2", "--integrity"]) == 2
        err = capsys.readouterr().err
        assert "only supported for cc/mst" in err

    def test_corruption_rejected_for_listrank(self, capsys):
        assert main([
            "listrank", "--n", "500", "--machine", "4x2", "--fault-corruption", "0.1",
        ]) == 2

    def test_soak_runs_and_writes_report(self, capsys, tmp_path):
        assert main([
            "soak", "--iterations", "1", "--seed", "0", "--algo", "cc",
            "--n", "512", "--out-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "all protected runs verified" in out
        assert (tmp_path / "BENCH_soak.json").exists()

    def test_soak_rejects_bad_machine(self):
        with pytest.raises(SystemExit):
            main(["soak", "--machine", "smp"])


class TestFailurePaths:
    """``python -m repro`` must fail *cleanly*: nonzero exit, a one-line
    ``error:`` message on stderr, and no traceback."""

    def assert_clean_failure(self, proc: subprocess.CompletedProcess) -> None:
        assert proc.returncode != 0
        assert "Traceback" not in proc.stderr
        assert "Traceback" not in proc.stdout

    def test_negative_n(self):
        proc = run_cli("cc", "--n", "-5", "--machine", "4x2")
        self.assert_clean_failure(proc)
        assert proc.returncode == 2
        assert proc.stderr.strip().startswith("error:")
        assert len(proc.stderr.strip().splitlines()) == 1

    def test_bad_machine(self):
        proc = run_cli("cc", "--n", "1000", "--machine", "banana")
        self.assert_clean_failure(proc)

    def test_bad_impl(self):
        proc = run_cli("cc", "--impl", "magic")
        self.assert_clean_failure(proc)

    def test_bad_opts_flag(self):
        proc = run_cli("cc", "--n", "1000", "--machine", "4x2", "--opts", "warp")
        self.assert_clean_failure(proc)

    def test_fault_loss_out_of_range(self):
        proc = run_cli("cc", "--n", "1000", "--machine", "4x2", "--fault-loss", "1.5")
        self.assert_clean_failure(proc)
        assert proc.returncode == 2
        assert proc.stderr.strip().startswith("error:")

    def test_fault_flags_on_bfs_subprocess(self):
        proc = run_cli("bfs", "--n", "500", "--machine", "2x2", "--fault-loss", "1e-3")
        self.assert_clean_failure(proc)
        assert proc.returncode == 2

    def test_analyze_unknown_rule(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    return 0\n")
        proc = run_cli("analyze", "--rules", "SY99", str(tmp_path))
        self.assert_clean_failure(proc)
        assert proc.returncode == 2
        assert proc.stderr.strip().startswith("error:")
        assert "unknown rule" in proc.stderr and "SY99" in proc.stderr

    def test_analyze_missing_baseline(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    return 0\n")
        proc = run_cli(
            "analyze", "--baseline", str(tmp_path / "nope.json"), str(tmp_path)
        )
        self.assert_clean_failure(proc)
        assert proc.returncode == 2
        assert proc.stderr.strip().startswith("error:")

    def test_analyze_malformed_baseline(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    return 0\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 1, "findings": [{"truncated...')
        proc = run_cli("analyze", "--baseline", str(baseline), str(tmp_path))
        self.assert_clean_failure(proc)
        assert proc.returncode == 2
        assert proc.stderr.strip().startswith("error:")

    def test_missing_command(self):
        proc = run_cli()
        self.assert_clean_failure(proc)

    def test_success_smoke(self):
        proc = run_cli("cc", "--n", "1000", "--machine", "2x2")
        assert proc.returncode == 0
        assert "components:" in proc.stdout


class TestAnalyzeCli:
    """The merged lint+flow ``analyze`` command: formats, rule filters,
    and the baseline workflow."""

    @pytest.fixture
    def dirty_dir(self, tmp_path):
        """One lint defect (CM01) and one flow defect (CH01)."""
        (tmp_path / "store.py").write_text(
            "def f(rt):\n    d = rt.shared_array(x)\n    d.data[0] = 1\n"
        )
        (tmp_path / "peek.py").write_text(
            "def peek(d):\n    return d.local_view(0)\n"
        )
        return tmp_path

    def test_analyze_reports_both_analyses(self, dirty_dir, capsys):
        assert main(["analyze", str(dirty_dir)]) == 1
        out = capsys.readouterr().out
        assert "CM01" in out and "CH01" in out

    def test_rules_filter_narrows_findings(self, dirty_dir, capsys):
        assert main(["analyze", "--rules", "CH01", str(dirty_dir)]) == 1
        out = capsys.readouterr().out
        assert "CH01" in out and "CM01" not in out

    def test_rules_filter_can_select_to_clean(self, dirty_dir, capsys):
        assert main(["analyze", "--rules", "ND01,SY01", str(dirty_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_format_json_is_parseable(self, dirty_dir, capsys):
        import json

        assert main(["analyze", "--format", "json", str(dirty_dir)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 2
        assert {f["rule"] for f in doc["findings"]} == {"CM01", "CH01"}

    def test_format_sarif_is_parseable(self, dirty_dir, capsys):
        import json

        assert main(["analyze", "--format", "sarif", str(dirty_dir)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        assert {r["ruleId"] for r in run["results"]} == {"CM01", "CH01"}

    def test_format_sarif_clean_tree_has_no_results(self, tmp_path, capsys):
        import json

        (tmp_path / "ok.py").write_text("def f():\n    return 0\n")
        assert main(["analyze", "--format", "sarif", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []

    def test_write_baseline_then_suppress_roundtrip(self, dirty_dir, capsys):
        baseline = dirty_dir / "baseline.json"
        assert main(
            ["analyze", "--write-baseline", str(baseline), str(dirty_dir)]
        ) == 0
        assert "wrote 2 finding(s)" in capsys.readouterr().out
        assert main(["analyze", "--baseline", str(baseline), str(dirty_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_baseline_does_not_mask_new_findings(self, dirty_dir, capsys):
        baseline = dirty_dir / "baseline.json"
        assert main(
            ["analyze", "--write-baseline", str(baseline), str(dirty_dir)]
        ) == 0
        (dirty_dir / "fresh.py").write_text(
            "def g(d, idx):\n    return d.gather(idx)\n"
        )
        capsys.readouterr()
        assert main(["analyze", "--baseline", str(baseline), str(dirty_dir)]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out and "CM01" not in out


class TestServiceCommands:
    """``serve`` / ``loadtest`` / ``soak --service`` failure paths and
    exit codes (the happy paths are covered end-to-end in
    tests/test_service.py and the CI service-smoke job)."""

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8642
        assert args.workers == 2
        assert args.journal is None

    def test_loadtest_parser_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.rates == [2.0, 6.0, 18.0]

    def test_serve_occupied_port_exits_2(self, capsys):
        """Binding a taken port must fail cleanly: exit 2, one 'error:'
        line, no traceback — not a raw OSError."""
        import socket

        sock = socket.socket()
        try:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            port = sock.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
        finally:
            sock.close()
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot bind" in err

    def test_loadtest_without_server_exits_2(self, capsys):
        assert main(["loadtest", "--url", "http://127.0.0.1:1", "--rates", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_loadtest_rejects_bad_rates(self, capsys):
        assert main(["loadtest", "--rates", "0", "--url", "http://127.0.0.1:1"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_soak_exit_4_on_unrepaired_wrong_result(self, capsys, monkeypatch, tmp_path):
        """A soak whose protected runs produced a wrong or failed result
        must exit 4 (the CI gate), not 0."""
        import repro.integrity as integrity

        def fake_run_soak(config, out_dir=None, workers=None, **kw):
            return {
                "summary": {
                    "runs": 2, "protected_wrong": 1, "protected_failed": 0,
                    "injected": 5, "detected": 4, "repairs": 4,
                    "unprotected_runs": 0, "unprotected_wrong_or_error": 0,
                },
                "wallclock": {"seconds": 0.1, "workers": 1},
                "path": str(tmp_path / "BENCH_soak.json"),
            }

        monkeypatch.setattr(integrity, "run_soak", fake_run_soak)
        assert main(["soak", "--iterations", "1", "--out-dir", str(tmp_path)]) == 4
        assert "did not survive" in capsys.readouterr().err

    def test_service_soak_exit_4_on_contract_violation(self, capsys, monkeypatch, tmp_path):
        import repro.integrity as integrity

        def fake_service_soak(config, out_dir=None, **kw):
            return {
                "summary": {
                    "submitted": 3, "accepted": 3, "rejected_429": 0,
                    "rejected_503": 0, "unexpected": 0,
                    "outcomes": {"done": 2}, "recovered_after_restart": 0,
                    "violations": ["job job-x served with verify status None"],
                },
                "path": str(tmp_path / "BENCH_service_soak.json"),
            }

        monkeypatch.setattr(integrity, "run_service_soak", fake_service_soak)
        assert main(["soak", "--service", "--iterations", "3"]) == 4
        assert "violation" in capsys.readouterr().err

    def test_tune_with_corrupt_cache_recovers(self, capsys, tmp_path, monkeypatch):
        """A corrupt plan-cache file is not fatal: the tuner starts from
        an empty cache, succeeds, and rewrites a valid one."""
        import json

        cache_path = tmp_path / "tune_cache.json"
        cache_path.write_text('{"plans": [{"truncated...')
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache_path))
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "bench"))
        assert main(["tune", "--n", "2000", "--machine", "4x2"]) == 0
        assert "selected:" in capsys.readouterr().out
        json.loads(cache_path.read_text())  # rewritten, valid again


class TestAutoMode:
    """``--impl/--opts/--tprime auto`` and the ``tune`` command."""

    @pytest.fixture(autouse=True)
    def scratch_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune_cache.json"))
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "bench"))

    def test_cc_full_auto(self, capsys):
        assert main([
            "cc", "--n", "2000", "--machine", "4x2", "--validate",
            "--impl", "auto", "--opts", "auto", "--tprime", "auto",
        ]) == 0
        assert "components:" in capsys.readouterr().out

    def test_mst_full_auto(self, capsys):
        assert main([
            "mst", "--n", "2000", "--machine", "4x2", "--validate",
            "--impl", "auto", "--opts", "auto", "--tprime", "auto",
        ]) == 0
        assert "total weight" in capsys.readouterr().out

    def test_tprime_auto_alone(self, capsys):
        assert main(["cc", "--n", "2000", "--machine", "4x2", "--tprime", "auto"]) == 0

    def test_tune_cc(self, capsys):
        assert main(["tune", "--n", "2000", "--machine", "4x2"]) == 0
        out = capsys.readouterr().out
        assert "machine profile:" in out
        assert "measured ms" in out
        assert "selected:" in out
        assert "auto    :" in out and "default :" in out

    def test_tune_mst(self, capsys):
        assert main(["tune", "--algo", "mst", "--n", "2000", "--machine", "4x2"]) == 0
        out = capsys.readouterr().out
        assert "selected:" in out
        # The MST plan must never pick offload (D[0] invariant).
        selected = next(ln for ln in out.splitlines() if ln.startswith("selected:"))
        assert "offload" not in selected

    def test_tune_then_info_shows_cached_plan(self, capsys):
        assert main(["tune", "--n", "2000", "--machine", "4x2"]) == 0
        capsys.readouterr()
        assert main(["info", "--n", "2000", "--machine", "4x2"]) == 0
        out = capsys.readouterr().out
        assert "tuning-plan cache" in out
        assert "cc: selected" in out
        assert "mst: no cached plan" in out

    def test_info_without_plans(self, capsys):
        assert main(["info", "--n", "10000"]) == 0
        out = capsys.readouterr().out
        assert "fine-grained" in out
        assert "tuning-plan cache" in out
        assert "no cached plan" in out

    def test_tune_cache_round_trips(self, capsys, tmp_path):
        assert main(["tune", "--n", "2000", "--machine", "4x2"]) == 0
        first = (tmp_path / "tune_cache.json").read_bytes()
        capsys.readouterr()
        assert main(["tune", "--n", "2000", "--machine", "4x2"]) == 0
        assert (tmp_path / "tune_cache.json").read_bytes() == first


class TestBfsCommand:
    def test_bfs_runs(self, capsys):
        assert main(["bfs", "--n", "2000", "--machine", "4x2"]) == 0
        out = capsys.readouterr().out
        assert "reached" in out

    def test_bfs_custom_source(self, capsys):
        assert main(["bfs", "--n", "2000", "--machine", "4x2", "--source", "7"]) == 0

    def test_bfs_sequential(self, capsys):
        assert main(["bfs", "--n", "2000", "--machine", "seq", "--impl", "sequential"]) == 0
