"""Performance-shape assertions for CC: the paper's qualitative claims
must hold in the simulation (these are the invariants the benchmarks
quantify)."""

import numpy as np
import pytest

from repro.cc import solve_cc_collective, solve_cc_naive_upc, solve_cc_sequential, solve_cc_smp
from repro.core import (
    OptimizationFlags,
    cluster_for_input,
    sequential_for_input,
    smp_for_input,
)
from repro.graph import random_graph
from repro.runtime import hps_cluster, smp_node


@pytest.fixture(scope="module")
def graph():
    return random_graph(20_000, 80_000, seed=21)


@pytest.fixture(scope="module")
def cluster():
    return cluster_for_input(20_000, 8, 4)


class TestOrderings:
    def test_naive_much_slower_than_collective(self, graph, cluster):
        naive = solve_cc_naive_upc(graph, cluster)
        coll = solve_cc_collective(graph, cluster)
        assert naive.info.sim_time > 10 * coll.info.sim_time

    def test_naive_slower_than_smp(self, graph, cluster):
        naive = solve_cc_naive_upc(graph, cluster)
        smp = solve_cc_smp(graph, smp_for_input(20_000, 16))
        assert naive.info.sim_time > 10 * smp.info.sim_time

    def test_smp_faster_than_sequential(self, graph):
        # Both machines calibrated for the same (scaled) input.
        smp = solve_cc_smp(graph, smp_for_input(20_000, 16))
        seq = solve_cc_sequential(graph, sequential_for_input(20_000))
        assert smp.info.sim_time < seq.info.sim_time

    def test_collective_scales_down_with_more_nodes(self, graph):
        small = solve_cc_collective(graph, cluster_for_input(20_000, 4, 4))
        big = solve_cc_collective(graph, cluster_for_input(20_000, 16, 4))
        assert big.info.sim_time < small.info.sim_time


class TestOptimizationsImprove:
    def test_each_cumulative_step_not_slower(self, graph, cluster):
        times = []
        for label, opts in OptimizationFlags.cumulative():
            res = solve_cc_collective(graph, cluster, opts)
            times.append((label, res.info.sim_time))
        for (prev_label, prev), (label, cur) in zip(times, times[1:]):
            assert cur <= prev * 1.02, f"{label} regressed over {prev_label}"

    def test_fully_optimized_strictly_faster_than_base(self, graph, cluster):
        base = solve_cc_collective(graph, cluster, OptimizationFlags.none())
        best = solve_cc_collective(graph, cluster, OptimizationFlags.all())
        assert best.info.sim_time < base.info.sim_time

    def test_compact_reduces_traffic(self, graph, cluster):
        on = solve_cc_collective(graph, cluster, OptimizationFlags.only("compact"))
        off = solve_cc_collective(graph, cluster, OptimizationFlags.none())
        assert on.info.trace.counters.remote_bytes < off.info.trace.counters.remote_bytes

    def test_count_sort_faster_than_quick(self, graph, cluster):
        quick = solve_cc_collective(graph, cluster, sort_method="quick")
        count = solve_cc_collective(graph, cluster, sort_method="count")
        assert count.info.sim_time < quick.info.sim_time


class TestAlltoallCollapse:
    def test_256_threads_degrade(self):
        g = random_graph(10_000, 40_000, seed=3)
        mid = solve_cc_collective(g, cluster_for_input(10_000, 16, 8), tprime=2)
        burst = solve_cc_collective(g, cluster_for_input(10_000, 16, 16), tprime=1)
        assert burst.info.sim_time > 3 * mid.info.sim_time

    def test_setup_dominates_at_collapse(self):
        g = random_graph(10_000, 40_000, seed=3)
        res = solve_cc_collective(g, cluster_for_input(10_000, 16, 16))
        bd = res.info.breakdown()
        assert bd["Setup"] == max(bd.values())


class TestMessageCounts:
    def test_collective_messages_independent_of_edges(self):
        # "each collective incurs O(p) messages" per thread — message
        # count must not scale with m.
        m1 = random_graph(5_000, 10_000, seed=4)
        m2 = random_graph(5_000, 40_000, seed=4)
        cluster = hps_cluster(4, 2)
        r1 = solve_cc_collective(m1, cluster)
        r2 = solve_cc_collective(m2, cluster)
        per_coll_1 = r1.info.trace.counters.remote_messages / max(
            r1.info.trace.counters.collective_calls, 1
        )
        per_coll_2 = r2.info.trace.counters.remote_messages / max(
            r2.info.trace.counters.collective_calls, 1
        )
        assert per_coll_2 < per_coll_1 * 1.5

    def test_naive_messages_scale_with_edges(self):
        m1 = random_graph(5_000, 10_000, seed=4)
        m2 = random_graph(5_000, 40_000, seed=4)
        cluster = hps_cluster(4, 2)
        r1 = solve_cc_naive_upc(m1, cluster)
        r2 = solve_cc_naive_upc(m2, cluster)
        assert (
            r2.info.trace.counters.fine_remote_accesses
            > 2 * r1.info.trace.counters.fine_remote_accesses
        )


class TestTprimeSweep:
    def test_single_node_collective_beats_smp_at_tprime_one(self):
        n = 50_000
        g = random_graph(n, 4 * n, seed=6)
        machine = smp_for_input(n, 16)
        smp = solve_cc_smp(g, machine)
        coll = solve_cc_collective(g, machine, OptimizationFlags.all(), tprime=1)
        assert coll.info.sim_time < smp.info.sim_time

    def test_u_shape_exists(self):
        n = 50_000
        g = random_graph(n, 4 * n, seed=6)
        machine = smp_for_input(n, 16)
        times = {
            tp: solve_cc_collective(g, machine, tprime=tp).info.sim_time
            for tp in (1, 18, 64)
        }
        assert times[18] < times[1]  # falling edge
        assert times[64] > times[18]  # rising edge
