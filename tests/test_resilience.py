"""Permanent node loss: redundancy, membership epochs, recovery.

The contract under test (``repro.resilience``):

* a protected solve survives a mid-solve *permanent* node loss — in
  both redundancy modes (buddy replication, XOR parity groups) and both
  membership outcomes (shrink onto the survivors, promote a cold
  spare) — and still returns the networkx/scipy-verified answer;
* an unprotected run fails loudly with ``UnrecoverableLossError`` —
  never a hang, never a silently wrong result;
* every recovery action is counted, and the counters replay exactly:
  the pinned values below are part of the determinism contract, like
  the golden fingerprints in ``test_perf_golden``.
"""

from __future__ import annotations

import numpy as np
import networkx as nx
import pytest

import repro
from repro import (
    CrashEvent,
    FaultPlan,
    NodeLossEvent,
    RedundancyConfig,
    UnrecoverableLossError,
    connected_components,
    minimum_spanning_forest,
    random_graph,
    with_random_weights,
)
from repro.errors import ConfigError
from repro.graph import EdgeList
from repro.mst.verify import reference_msf_weight
from repro.runtime.machine import hps_cluster


def cc_oracle(graph: EdgeList) -> np.ndarray:
    labels = np.arange(graph.n, dtype=np.int64)
    for comp in nx.connected_components(graph.to_networkx()):
        root = min(comp)
        for vtx in comp:
            labels[vtx] = root
    return labels


MACHINE = hps_cluster(4, 2)
LOSS_PLAN = FaultPlan(seed=3, node_losses=(NodeLossEvent(node=1, at_time=2e-4),))


def _config(mode: str, spares: int) -> RedundancyConfig:
    return RedundancyConfig(mode=mode, group=2, spares=spares)


class TestRedundancyConfig:
    def test_defaults(self):
        cfg = RedundancyConfig()
        assert cfg.mode == "buddy" and cfg.group >= 2 and cfg.spares == 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            RedundancyConfig(mode="raid9")

    def test_rejects_degenerate_parity_group(self):
        with pytest.raises(ConfigError):
            RedundancyConfig(mode="parity", group=1)

    def test_rejects_negative_spares(self):
        with pytest.raises(ConfigError):
            RedundancyConfig(spares=-1)


class TestUnprotectedLoss:
    def test_cc_raises_unrecoverable(self):
        g = random_graph(384, 1536, seed=7)
        with pytest.raises(UnrecoverableLossError, match="no redundancy"):
            connected_components(g, MACHINE, impl="collective", faults=LOSS_PLAN)

    def test_mst_raises_unrecoverable(self):
        gw = with_random_weights(random_graph(384, 1536, seed=7), seed=8)
        with pytest.raises(UnrecoverableLossError):
            minimum_spanning_forest(gw, MACHINE, impl="collective", faults=LOSS_PLAN)

    def test_loss_still_counted(self):
        g = random_graph(384, 1536, seed=7)
        try:
            connected_components(g, MACHINE, impl="collective", faults=LOSS_PLAN)
        except UnrecoverableLossError as err:
            assert "node 1" in str(err)


@pytest.mark.parametrize("mode", ["buddy", "parity"])
@pytest.mark.parametrize("spares", [0, 1], ids=["shrink", "spare"])
class TestRecovery:
    """Both modes x both membership outcomes, for CC, MST, and one LT
    variant — every combination must come back networkx/scipy-exact."""

    def test_cc_survives(self, mode, spares):
        g = random_graph(384, 1536, seed=7)
        res = connected_components(
            g, MACHINE, impl="collective", faults=LOSS_PLAN,
            resilience=_config(mode, spares), validate=True,
        )
        assert np.array_equal(res.labels, cc_oracle(g))
        c = res.info.trace.counters
        assert c.node_losses == 1
        assert c.epoch_changes == 1
        assert c.blocks_reconstructed > 0
        assert c.replicas_written > 0

    def test_mst_survives(self, mode, spares):
        gw = with_random_weights(random_graph(384, 1536, seed=7), seed=8)
        res = minimum_spanning_forest(
            gw, MACHINE, impl="collective", faults=LOSS_PLAN,
            resilience=_config(mode, spares), validate=True,
        )
        assert res.total_weight == reference_msf_weight(gw)
        c = res.info.trace.counters
        assert c.node_losses == 1 and c.epoch_changes == 1

    def test_lt_variant_survives(self, mode, spares):
        g = random_graph(384, 1536, seed=7)
        res = connected_components(
            g, MACHINE, impl="lt-rf", faults=LOSS_PLAN,
            resilience=_config(mode, spares), validate=True,
        )
        assert np.array_equal(res.labels, cc_oracle(g))
        assert res.info.trace.counters.node_losses == 1


class TestUnsupportedImpl:
    def test_resilience_on_sequential_impl_is_rejected(self):
        g = random_graph(100, 300, seed=1)
        with pytest.raises(ConfigError):
            connected_components(
                g, MACHINE, impl="naive", resilience=RedundancyConfig()
            )


# One fixed plan composing every fault class the injector knows: message
# loss, silent corruption, a transient thread crash, and a permanent
# node loss.  Integrity protection absorbs the transients; resilience
# absorbs the loss.
CHAOS_PLAN = FaultPlan(
    seed=11,
    loss=1e-3,
    corruption=5.0,
    payload_corruption=1e-4,
    crashes=(CrashEvent(thread=5, at_time=1e-4),),
    node_losses=(NodeLossEvent(node=1, at_time=4e-4),),
)


class TestCounterPins:
    """Exact counter values under the composed chaos plan.  These pins
    are the replay contract: any drift in when replicas ship, how many
    blocks rebuild, or how epochs advance shows up here first."""

    @staticmethod
    def _run():
        g = random_graph(384, 1536, seed=7)
        return connected_components(
            g, MACHINE, impl="collective", faults=CHAOS_PLAN,
            integrity=True, resilience=_config("buddy", 0), validate=True,
        )

    def test_resilience_counters_are_pinned(self):
        c = self._run().info.trace.counters
        assert c.node_losses == 1
        assert c.epoch_changes == 1
        assert c.blocks_reconstructed == 2
        assert c.replicas_written == 1920
        assert c.crashes == 1
        assert c.corruptions_injected == c.corruptions_detected == 14
        assert c.checkpoint_restores == 10
        assert c.retries == 4

    def test_chaos_run_replays_bit_identically(self):
        first = self._run()
        second = self._run()
        np.testing.assert_array_equal(first.labels, second.labels)
        assert first.info.sim_time == second.info.sim_time
        assert (
            first.info.trace.counters.as_dict()
            == second.info.trace.counters.as_dict()
        )
