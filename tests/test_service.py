"""Tests for the resilient multi-tenant service (repro.service).

Units first (quotas, queue, deadlines, breaker, journal, degradation —
all with injected clocks, no sockets), then service-level admission
flows on :class:`GraphService` directly, then full HTTP end-to-end
including the kill-and-restart journal-recovery contract.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import JobCancelled, UsageError
from repro.service import (
    AdmissionQueue,
    BackoffPolicy,
    CancelToken,
    CircuitBreaker,
    DegradationPolicy,
    GraphService,
    Job,
    JobJournal,
    JobSpec,
    JobState,
    QuotaTable,
    ServiceConfig,
    ServiceMode,
    ServiceServer,
    TokenBucket,
    cancel_scope,
)
from repro.service.executor import validate_spec_impl
from repro.service.jobs import TERMINAL_STATES
from repro.service.journal import replay_journal


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _spec(**kw) -> JobSpec:
    base = dict(n=64, machine="2x2", deadline_s=None)
    base.update(kw)
    return JobSpec(**base)


# ---------------------------------------------------------------------------
# Token buckets / quotas
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert bucket.try_acquire() > 0
        clock.advance(0.5)  # 1 token back at rate 2/s
        assert bucket.try_acquire() == 0.0

    def test_retry_after_is_exact_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        clock.advance(0.125)  # half a token back
        assert bucket.try_acquire() == pytest.approx(0.125)

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(UsageError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(UsageError):
            TokenBucket(rate=1.0, burst=0.5)


class TestQuotaTable:
    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = QuotaTable(rate=1.0, burst=1.0, clock=clock)
        assert quotas.try_acquire("a") == 0.0
        assert quotas.try_acquire("a") > 0      # a is dry...
        assert quotas.try_acquire("b") == 0.0   # ...b is untouched

    def test_overrides(self):
        clock = FakeClock()
        quotas = QuotaTable(rate=1.0, burst=1.0, overrides={"vip": (10.0, 5.0)}, clock=clock)
        assert [quotas.try_acquire("vip") for _ in range(5)] == [0.0] * 5


# ---------------------------------------------------------------------------
# Admission queue
# ---------------------------------------------------------------------------


class TestAdmissionQueue:
    def test_priority_then_fifo(self):
        q = AdmissionQueue(capacity=8)
        low = Job(spec=_spec(priority="low"))
        normal1 = Job(spec=_spec(priority="normal"))
        normal2 = Job(spec=_spec(priority="normal"))
        high = Job(spec=_spec(priority="high"))
        for job in (low, normal1, normal2, high):
            assert q.offer(job) == ("accepted", None)
        assert [q.take(0) for _ in range(4)] == [high, normal1, normal2, low]

    def test_full_queue_sheds_lowest_youngest(self):
        q = AdmissionQueue(capacity=2)
        old_low = Job(spec=_spec(priority="low"))
        young_low = Job(spec=_spec(priority="low"))
        q.offer(old_low)
        q.offer(young_low)
        incoming = Job(spec=_spec(priority="high"))
        outcome, victim = q.offer(incoming)
        assert outcome == "accepted"
        assert victim is young_low  # youngest of the lowest class
        assert victim.state == JobState.SHED
        assert victim.retriable
        assert q.shed_total == 1

    def test_never_sheds_equal_or_higher(self):
        q = AdmissionQueue(capacity=1)
        q.offer(Job(spec=_spec(priority="normal")))
        outcome, victim = q.offer(Job(spec=_spec(priority="normal")))
        assert (outcome, victim) == ("rejected", None)
        outcome, _ = q.offer(Job(spec=_spec(priority="low")))
        assert outcome == "rejected"
        assert q.rejected_total == 2

    def test_take_times_out_empty(self):
        q = AdmissionQueue(capacity=1)
        assert q.take(timeout=0.01) is None

    def test_close_wakes_takers(self):
        q = AdmissionQueue(capacity=1)
        got = []
        t = threading.Thread(target=lambda: got.append(q.take(timeout=5.0)))
        t.start()
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert got == [None]

    def test_rejects_after_close(self):
        q = AdmissionQueue(capacity=4)
        q.close()
        assert q.offer(Job(spec=_spec())) == ("rejected", None)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


# ---------------------------------------------------------------------------
# Deadlines, cancellation, backoff, breaker
# ---------------------------------------------------------------------------


class TestCancelToken:
    def test_deadline_raises(self):
        clock = FakeClock()
        token = CancelToken("job-x", deadline_at=1.0, clock=clock)
        token.check()  # within deadline: fine
        clock.advance(1.5)
        with pytest.raises(JobCancelled) as err:
            token.check()
        assert "deadline exceeded" in str(err.value)
        assert err.value.job_id == "job-x"

    def test_explicit_cancel(self):
        token = CancelToken("job-y")
        token.cancel("operator said so")
        with pytest.raises(JobCancelled, match="operator said so"):
            token.check()

    def test_scope_fails_fast_when_expired(self):
        clock = FakeClock(t=5.0)
        token = CancelToken("job-z", deadline_at=1.0, clock=clock)
        with pytest.raises(JobCancelled):
            with cancel_scope(token):
                pytest.fail("body must not run for an already-expired token")

    def test_deadline_aborts_solver_at_sync_point(self):
        """The simulator's barriers observe the thread-local token: a
        deadline that expires mid-solve unwinds as JobCancelled, and
        the solver's fault machinery does not absorb it."""
        from repro.core import connected_components
        from repro.graph import random_graph
        from repro.runtime import hps_cluster

        g = random_graph(512, 2048, seed=0)
        machine = hps_cluster(4, 2)
        token = CancelToken("job-dl", deadline_at=time.monotonic() - 1.0)
        token._clock = time.monotonic
        with pytest.raises(JobCancelled):
            with cancel_scope(token):
                connected_components(g, machine)

    def test_scope_restores_previous_token(self):
        outer = CancelToken("outer")
        inner = CancelToken("inner")
        from repro.service.deadlines import _ACTIVE

        with cancel_scope(outer):
            with cancel_scope(inner):
                assert _ACTIVE.token is inner
            assert _ACTIVE.token is outer
        assert _ACTIVE.token is None

    def test_modeled_time_unchanged_by_poll_hook(self):
        """The cancellation poll is observation-only: the same solve
        with and without an active scope models identical time."""
        from repro.core import connected_components
        from repro.graph import random_graph
        from repro.runtime import hps_cluster

        g = random_graph(256, 1024, seed=1)
        machine = hps_cluster(2, 2)
        bare = connected_components(g, machine).info.sim_time_ms
        token = CancelToken("job-obs", deadline_at=time.monotonic() + 3600)
        with cancel_scope(token):
            scoped = connected_components(g, machine).info.sim_time_ms
        assert scoped == bare


class TestBackoffPolicy:
    def test_exponential_with_cap(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=0.5, max_attempts=5)
        assert [policy.delay(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_zero_jitter_ignores_key(self):
        # The default policy is byte-identical with or without a key.
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=0.5, max_attempts=5)
        assert [policy.delay(i, key="job-a") for i in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_seeded_jitter_schedule_is_pinned(self):
        # crc32-seeded jitter: the exact schedule for a given key is part
        # of the replay contract — these floats must never drift.
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=10.0, max_attempts=5, jitter=0.5)
        assert [policy.delay(i, key="job-a") for i in range(4)] == [
            0.06547284920234234,
            0.12197209745645524,
            0.32594894794747237,
            0.7346787232905627,
        ]

    def test_seeded_jitter_desynchronizes_keys_but_replays(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=10.0, max_attempts=5, jitter=0.5)
        a = [policy.delay(i, key="job-a") for i in range(4)]
        b = [policy.delay(i, key="job-b") for i in range(4)]
        assert a != b  # distinct jobs spread out...
        assert a == [policy.delay(i, key="job-a") for i in range(4)]  # ...identically on replay
        plain = [min(10.0, 0.1 * 2.0 ** i) for i in range(4)]
        for seq in (a, b):
            for got, ceiling in zip(seq, plain):
                assert 0.5 * ceiling <= got <= ceiling  # within the jitter band


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=10.0, clock=clock)
        for _ in range(3):
            assert breaker.allow() == 0.0
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow() == pytest.approx(10.0)
        assert breaker.opens_total == 1

    def test_success_resets_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_one_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow() == 0.0        # the trial
        assert breaker.allow() > 0.0         # concurrent request still blocked
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class TestJournal:
    def test_replay_terminal_and_orphans(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync=False)
        done = Job(spec=_spec())
        orphan = Job(spec=_spec())
        journal.record("submit", done)
        journal.record("submit", orphan)
        journal.record("start", done)
        journal.record("start", orphan)
        done.transition(JobState.DONE)
        journal.record("done", done, result={"answer": 42})
        journal.close()

        terminal, orphans = replay_journal(path)
        assert terminal[done.job_id]["state"] == JobState.DONE
        assert terminal[done.job_id]["result"] == {"answer": 42}
        assert [j.job_id for j in orphans] == [orphan.job_id]
        assert orphans[0].state == JobState.QUEUED

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync=False)
        job = Job(spec=_spec())
        journal.record("submit", job)
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"event": "done", "job_id": "' + job.job_id)  # crash mid-append
        terminal, orphans = replay_journal(path)
        assert terminal == {}
        assert [j.job_id for j in orphans] == [job.job_id]

    def test_missing_journal_is_empty(self, tmp_path):
        assert replay_journal(tmp_path / "nope.jsonl") == ({}, [])

    def test_record_after_close_is_noop(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.close()
        journal.record("submit", Job(spec=_spec()))  # must not raise

    def test_orphan_preserves_attempts(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync=False)
        job = Job(spec=_spec())
        job.attempts = 2
        journal.record("submit", job)
        journal.record("start", job)
        journal.close()
        _, orphans = replay_journal(path)
        assert orphans[0].attempts == 2


# ---------------------------------------------------------------------------
# Degradation policy
# ---------------------------------------------------------------------------


class TestDegradationPolicy:
    def test_mode_ladder(self):
        policy = DegradationPolicy(degraded_at=0.5, overload_at=0.85)
        assert policy.mode(0.0) == ServiceMode.NORMAL
        assert policy.mode(0.49) == ServiceMode.NORMAL
        assert policy.mode(0.5) == ServiceMode.DEGRADED
        assert policy.mode(0.85) == ServiceMode.OVERLOAD
        assert policy.mode(1.0) == ServiceMode.OVERLOAD

    def test_overload_refuses_low_priority_only(self):
        policy = DegradationPolicy()
        assert not policy.admits(ServiceMode.OVERLOAD, 0)
        assert policy.admits(ServiceMode.OVERLOAD, 1)
        assert policy.admits(ServiceMode.DEGRADED, 0)
        assert policy.snapshot()["low_priority_refused"] == 1

    def test_probes_only_in_normal_mode(self):
        policy = DegradationPolicy()
        assert policy.allow_probes(ServiceMode.NORMAL)
        assert not policy.allow_probes(ServiceMode.DEGRADED)
        assert not policy.allow_probes(ServiceMode.OVERLOAD)

    def test_bad_thresholds(self):
        with pytest.raises(ValueError):
            DegradationPolicy(degraded_at=0.9, overload_at=0.5)


# ---------------------------------------------------------------------------
# Job spec validation
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_happy_path_from_payload(self):
        spec = JobSpec.from_payload({"algo": "mst", "n": 128, "priority": "high"})
        assert spec.algo == "mst"
        assert spec.m == 512
        assert spec.priority_rank == 2

    @pytest.mark.parametrize("payload", [
        {"algo": "pagerank"},
        {"n": 1},
        {"n": 10_000_000},
        {"density": 0.1},
        {"priority": "urgent"},
        {"deadline_s": -1},
        {"tenant": ""},
        {"tenant": "x" * 65},
        {"loss": 1.5},
        {"tprime": 0},
        {"n": "lots"},
        {"integrity": "yes"},
        {"algo": "bfs", "loss": 0.1},
        {"algo": "bfs", "integrity": True},
        {"frobnicate": 1},
    ])
    def test_rejects_bad_payloads(self, payload):
        with pytest.raises(UsageError):
            JobSpec.from_payload(payload)

    def test_rejects_non_object(self):
        with pytest.raises(UsageError):
            JobSpec.from_payload([1, 2, 3])

    def test_graph_fingerprint_is_input_identity(self):
        a = JobSpec.from_payload({"n": 128, "seed": 3})
        b = JobSpec.from_payload({"n": 128, "seed": 3, "priority": "high", "tenant": "x"})
        c = JobSpec.from_payload({"n": 128, "seed": 4})
        assert a.graph_fingerprint() == b.graph_fingerprint()
        assert a.graph_fingerprint() != c.graph_fingerprint()

    def test_job_ids_are_unique(self):
        ids = {Job(spec=_spec()).job_id for _ in range(64)}
        assert len(ids) == 64


class TestVariantField:
    """The optional ``variant`` submit field: registry-validated sugar
    for ``impl`` selecting a Liu–Tarjan CC variant."""

    def test_variant_resolves_to_effective_impl(self):
        spec = JobSpec.from_payload({"algo": "cc", "variant": "lt-rfa", "n": 64})
        assert spec.variant == "lt-rfa"
        assert spec.effective_impl == "lt-rfa"
        validate_spec_impl(spec)

    def test_variant_and_impl_are_mutually_exclusive(self):
        with pytest.raises(UsageError, match="mutually exclusive"):
            JobSpec.from_payload({"variant": "lt-rf", "impl": "collective"})

    def test_variant_on_non_cc_algo_rejected(self):
        with pytest.raises(UsageError, match="only supported for cc"):
            JobSpec.from_payload({"algo": "mst", "variant": "lt-rf"})

    def test_unknown_variant_rejected_against_registry(self):
        spec = JobSpec.from_payload({"algo": "cc", "variant": "lt-zz"})
        with pytest.raises(UsageError, match="'variant' must be one of"):
            validate_spec_impl(spec)

    def test_variant_survives_journal_round_trip(self):
        spec = JobSpec.from_payload({"algo": "cc", "variant": "lt-esa"})
        again = JobSpec(**spec.to_dict())
        assert again.effective_impl == "lt-esa"

    def test_submit_unknown_variant_is_400(self):
        svc = _service()
        status, body, _ = svc.submit({"algo": "cc", "n": 64, "variant": "sv"})
        assert status == 400
        assert "variant" in body["error"]

    def test_submit_variant_on_mst_is_400(self):
        svc = _service()
        status, body, _ = svc.submit({"algo": "mst", "n": 64, "variant": "lt-rf"})
        assert status == 400
        assert "variant" in body["error"]

    def test_variant_job_runs_and_verifies(self):
        svc = _service()
        status, body, _ = svc.submit({
            "algo": "cc", "n": 64, "machine": "2x2", "variant": "lt-pfa",
            "kind": "powerlaw",
        })
        assert status == 202
        job = svc.jobs[body["job_id"]]
        svc.executor.execute(svc.queue.take(0))
        assert job.state == JobState.DONE, job.error
        assert job.result["verify"]["status"] == "verified"
        assert job.result["plan"]["impl"] == "lt-pfa"

    def test_faults_with_unsupporting_impl_rejected_via_registry(self):
        spec = JobSpec.from_payload({"algo": "cc", "impl": "sv", "loss": 0.01})
        with pytest.raises(UsageError, match="fault injection"):
            validate_spec_impl(spec)

    def test_integrity_supported_for_lt_variants(self):
        spec = JobSpec.from_payload({"algo": "cc", "variant": "lt-rf", "integrity": True})
        validate_spec_impl(spec)  # must not raise: LT owns a repair loop


# ---------------------------------------------------------------------------
# GraphService admission flows (no HTTP)
# ---------------------------------------------------------------------------


def _service(**overrides) -> GraphService:
    config = ServiceConfig(
        workers=1, journal_path=None, default_deadline_s=30.0, **overrides
    )
    return GraphService(config)


class TestAdmissionFlows:
    def test_bad_request_is_400(self):
        svc = _service()
        status, body, _ = svc.submit({"algo": "pagerank"})
        assert status == 400
        assert "algo" in body["error"]

    def test_quota_exhaustion_is_429_with_retry_after(self):
        svc = _service(quota_rate=1.0, quota_burst=2.0, queue_capacity=64)
        results = [svc.submit({"n": 64, "machine": "2x2"}) for _ in range(3)]
        assert [r[0] for r in results] == [202, 202, 429]
        status, body, headers = results[-1]
        assert "Retry-After" in headers
        assert body["retry_after_s"] > 0

    def test_queue_full_is_429(self):
        svc = _service(queue_capacity=2, quota_rate=1000.0, quota_burst=1000.0)
        # workers never started -> jobs stay queued
        statuses = [svc.submit({"n": 64, "machine": "2x2"})[0] for _ in range(3)]
        assert statuses == [202, 202, 429]
        assert svc.metrics.counters["rejected_queue_full"] == 1

    def test_queue_full_sheds_lower_priority_for_higher(self):
        svc = _service(queue_capacity=2, quota_rate=1000.0, quota_burst=1000.0)
        svc.submit({"n": 64, "machine": "2x2", "priority": "low"})
        status, body, _ = svc.submit({"n": 64, "machine": "2x2", "priority": "low"})
        shed_candidate = body["job_id"]
        status, _, _ = svc.submit({"n": 64, "machine": "2x2", "priority": "high"})
        assert status == 202
        status, body, _ = svc.status(shed_candidate)
        assert body["state"] == JobState.SHED
        assert body["retriable"]

    def test_overload_refuses_low_priority_at_the_door(self):
        svc = _service(queue_capacity=4, overload_at=0.5, degraded_at=0.25,
                       quota_rate=1000.0, quota_burst=1000.0)
        svc.submit({"n": 64, "machine": "2x2"})
        svc.submit({"n": 64, "machine": "2x2"})
        status, body, _ = svc.submit({"n": 64, "machine": "2x2", "priority": "low"})
        assert status == 429
        assert body["mode"] == ServiceMode.OVERLOAD
        status, _, _ = svc.submit({"n": 64, "machine": "2x2", "priority": "normal"})
        assert status == 202

    def test_open_breaker_is_503(self):
        svc = _service()
        breaker = svc.executor.breaker_for("flaky")
        for _ in range(svc.config.breaker_failures):
            breaker.record_failure()
        status, body, headers = svc.submit({"n": 64, "machine": "2x2", "tenant": "flaky"})
        assert status == 503
        assert "Retry-After" in headers
        # Other tenants are unaffected.
        assert svc.submit({"n": 64, "machine": "2x2", "tenant": "steady"})[0] == 202

    def test_unknown_job_is_404(self):
        svc = _service()
        assert svc.status("job-nope")[0] == 404
        assert svc.result("job-nope")[0] == 404

    def test_result_before_done_is_409(self):
        svc = _service()
        _, body, _ = svc.submit({"n": 64, "machine": "2x2"})
        assert svc.result(body["job_id"])[0] == 409

    def test_result_of_failed_job_is_410(self):
        svc = _service()
        _, body, _ = svc.submit({"n": 64, "machine": "2x2"})
        job = svc.jobs[body["job_id"]]
        job.transition(JobState.FAILED, retriable=True, error="boom")
        status, payload, _ = svc.result(job.job_id)
        assert status == 410
        assert payload["status"]["error"] == "boom"


class TestExecutorContracts:
    def test_expired_deadline_cancels_without_solving(self):
        svc = _service()
        _, body, _ = svc.submit({"n": 64, "machine": "2x2", "deadline_s": 0.001})
        job = svc.jobs[body["job_id"]]
        time.sleep(0.01)
        svc.executor.execute(svc.queue.take(0))
        assert job.state == JobState.CANCELLED
        assert job.retriable
        assert "deadline" in job.error

    def test_wrong_result_is_never_served(self, monkeypatch):
        """The verified-result contract: if the oracle says wrong, the
        job fails (retriable) — the answer is not returned."""
        svc = _service()
        monkeypatch.setattr(
            type(svc.executor), "_verify", lambda self, spec, payload: "forced defect"
        )
        _, body, _ = svc.submit({"n": 64, "machine": "2x2"})
        job = svc.jobs[body["job_id"]]
        svc.executor.execute(svc.queue.take(0))
        assert job.state == JobState.FAILED
        assert job.retriable
        assert "verification" in job.error
        assert job.result is None
        assert svc.result(job.job_id)[0] == 410
        assert svc.metrics.counters["wrong_results_blocked"] >= 1

    def test_verified_result_has_contract_blocks(self):
        svc = _service()
        _, body, _ = svc.submit({"n": 64, "machine": "2x2", "algo": "mst"})
        job = svc.jobs[body["job_id"]]
        svc.executor.execute(svc.queue.take(0))
        assert job.state == JobState.DONE
        result = job.result
        assert result["verify"] == {"status": "verified", "oracle": "networkx"}
        assert result["plan"]["source"] == "explicit"
        assert result["attempts"] == 1

    def test_failures_feed_breaker_and_retry(self, monkeypatch):
        from repro.errors import FaultError

        svc = _service()
        calls = {"n": 0}

        def explode(self, spec, machine, impl, opts, tprime):
            calls["n"] += 1
            raise FaultError("injected")

        monkeypatch.setattr(type(svc.executor), "_solve", explode)
        svc.executor.backoff = BackoffPolicy(base_s=0.0, max_attempts=3)
        _, body, _ = svc.submit({"n": 64, "machine": "2x2", "tenant": "t"})
        job = svc.jobs[body["job_id"]]
        svc.executor.execute(svc.queue.take(0))
        assert job.state == JobState.FAILED
        assert calls["n"] == 3  # retried to the attempt budget
        assert svc.executor.breaker_for("t")._failures == 3

    def test_degraded_mode_skips_probe_solves(self, tmp_path, monkeypatch):
        """In degraded mode an auto job must not pay for probe solves:
        with an empty cache it falls back to the analytic-only plan."""
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "cache.json"))
        svc = _service(degraded_at=0.01, queue_capacity=64,
                       quota_rate=1000.0, quota_burst=1000.0)
        _, body, _ = svc.submit({
            "n": 64, "machine": "2x2", "impl": "auto", "opts": "auto", "tprime": "auto",
        })
        svc.submit({"n": 64, "machine": "2x2"})  # stays queued: occupancy > degraded_at
        job = svc.jobs[body["job_id"]]
        svc.executor.execute(svc.queue.take(0))
        assert job.state == JobState.DONE
        assert job.result["plan"]["source"] == "analytic"
        assert svc.policy.snapshot()["plan_probe_skipped"] == 1


# ---------------------------------------------------------------------------
# HTTP end-to-end
# ---------------------------------------------------------------------------


def _call(url: str, payload=None, timeout=30.0):
    data = json.dumps(payload).encode() if payload is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _poll_terminal(url: str, job_id: str, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = _call(f"{url}/status/{job_id}")
        assert status == 200
        if body["state"] in TERMINAL_STATES:
            return body
        time.sleep(0.02)
    pytest.fail(f"job {job_id} never reached a terminal state")


@pytest.fixture
def live_server(tmp_path):
    server = ServiceServer(ServiceConfig(
        port=0, workers=2, journal_path=str(tmp_path / "journal.jsonl"),
        journal_fsync=False, quota_rate=1000.0, quota_burst=1000.0,
    ))
    server.start_background()
    yield server
    server.stop()


class TestHTTPEndToEnd:
    def test_submit_status_result_roundtrip(self, live_server):
        url = live_server.url
        status, body = _call(f"{url}/submit", {"algo": "cc", "n": 128, "machine": "2x2"})
        assert status == 202
        final = _poll_terminal(url, body["job_id"])
        assert final["state"] == JobState.DONE
        status, result = _call(f"{url}/result/{body['job_id']}")
        assert status == 200
        assert result["result"]["verify"]["status"] == "verified"
        assert result["result"]["answer"]["num_components"] >= 1

    def test_endpoints_and_errors(self, live_server):
        url = live_server.url
        assert _call(f"{url}/healthz")[0] == 200
        status, metrics = _call(f"{url}/metrics")
        assert status == 200
        assert "queue" in metrics and "counters" in metrics
        assert _call(f"{url}/status/job-unknown")[0] == 404
        assert _call(f"{url}/nope")[0] == 404
        status, body = _call(f"{url}/submit", {"algo": "wat"})
        assert status == 400

    def test_malformed_json_is_400(self, live_server):
        req = urllib.request.Request(
            f"{live_server.url}/submit", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_concurrent_tenants_all_verified(self, live_server):
        url = live_server.url
        ids = []
        for i in range(6):
            status, body = _call(f"{url}/submit", {
                "algo": "cc" if i % 2 else "mst", "n": 128, "machine": "2x2",
                "tenant": f"tenant-{i % 3}", "seed": i % 2,
            })
            assert status == 202
            ids.append(body["job_id"])
        for job_id in ids:
            final = _poll_terminal(url, job_id)
            assert final["state"] == JobState.DONE
            _, result = _call(f"{url}/result/{job_id}")
            assert result["result"]["verify"]["status"] == "verified"


class TestKillAndRestartRecovery:
    def test_every_journaled_job_is_accounted_for(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        config = ServiceConfig(
            port=0, workers=1, journal_path=journal, journal_fsync=False,
            quota_rate=1000.0, quota_burst=1000.0,
        )
        server = ServiceServer(config)
        server.start_background()
        url = server.url
        ids = []
        for i in range(5):
            status, body = _call(f"{url}/submit", {
                "algo": "cc", "n": 256, "machine": "2x2", "seed": i, "deadline_s": 60,
            })
            assert status == 202
            ids.append(body["job_id"])
        # Let at least one finish, then kill everything at once.
        done_before = _poll_terminal(url, ids[0])
        assert done_before["state"] == JobState.DONE
        server.crash()

        restarted = ServiceServer(config)
        restarted.start_background()
        try:
            url = restarted.url
            # The finished job survives with its result, marked as history.
            status, body = _call(f"{url}/status/{ids[0]}")
            assert status == 200 and body["state"] == JobState.DONE
            assert body.get("recovered_from_journal")
            status, result = _call(f"{url}/result/{ids[0]}")
            assert status == 200
            assert result["result"]["verify"]["status"] == "verified"
            # Every other journaled job reaches a terminal state.
            for job_id in ids[1:]:
                final = _poll_terminal(url, job_id)
                assert final["state"] in TERMINAL_STATES
            statuses = {jid: _call(f"{url}/status/{jid}")[1]["state"] for jid in ids}
            assert all(state in TERMINAL_STATES for state in statuses.values())
        finally:
            restarted.stop()

    def test_occupied_port_raises_usage_error(self, tmp_path):
        server = ServiceServer(ServiceConfig(port=0, journal_path=None))
        try:
            _, port = server.address
            with pytest.raises(UsageError, match="cannot bind"):
                ServiceServer(ServiceConfig(port=port, journal_path=None))
        finally:
            server.httpd.server_close()


class TestServiceSoak:
    def test_small_campaign_holds_contract(self, tmp_path):
        from repro.integrity import ServiceSoakConfig, run_service_soak

        report = run_service_soak(
            ServiceSoakConfig(jobs=6, n=128, restart=True, poll_timeout_s=120.0),
            out_dir=tmp_path,
        )
        summary = report["summary"]
        assert summary["violations"] == []
        assert summary["submitted"] == 6
        assert (tmp_path / "BENCH_service_soak.json").exists()
