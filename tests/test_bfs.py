"""Tests for BFS and the CSR adjacency substrate."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bfs import solve_bfs_collective, solve_bfs_naive_upc, solve_bfs_sequential
from repro.bfs.solvers import UNREACHED
from repro.errors import GraphError
from repro.graph import EdgeList, path_graph, random_graph, star_graph
from repro.graph.csr import CSRAdjacency
from repro.runtime import hps_cluster, smp_node


def oracle(graph, source):
    lengths = nx.single_source_shortest_path_length(graph.to_networkx(), source)
    out = np.full(graph.n, UNREACHED, dtype=np.int64)
    for v, d in lengths.items():
        out[v] = d
    return out


class TestCSR:
    def test_neighbors_symmetric(self):
        g = EdgeList(4, np.array([0, 1]), np.array([1, 2]))
        adj = CSRAdjacency.from_edgelist(g)
        assert sorted(adj.neighbors_of(np.array([1])).tolist()) == [0, 2]

    def test_degrees(self):
        g = star_graph(5)
        adj = CSRAdjacency.from_edgelist(g)
        assert adj.degree(np.array([0]))[0] == 4
        assert adj.degree(np.array([1]))[0] == 1

    def test_self_loops_dropped(self):
        g = EdgeList(3, np.array([0, 1]), np.array([0, 2]))
        adj = CSRAdjacency.from_edgelist(g)
        assert adj.degree(np.array([0]))[0] == 0

    def test_multi_row_slice(self):
        g = path_graph(6)
        adj = CSRAdjacency.from_edgelist(g)
        out = adj.neighbors_of(np.array([0, 3, 5]))
        assert sorted(out.tolist()) == [1, 2, 4, 4]

    def test_empty_query(self):
        adj = CSRAdjacency.from_edgelist(path_graph(4))
        assert adj.neighbors_of(np.empty(0, dtype=np.int64)).size == 0

    def test_rows_with_zero_degree(self):
        g = EdgeList(5, np.array([0]), np.array([1]))
        adj = CSRAdjacency.from_edgelist(g)
        out = adj.neighbors_of(np.array([2, 0, 3]))
        assert out.tolist() == [1]

    def test_out_of_range(self):
        adj = CSRAdjacency.from_edgelist(path_graph(4))
        with pytest.raises(GraphError):
            adj.neighbors_of(np.array([4]))

    @given(n=st.integers(2, 40), seed=st.integers(0, 10))
    def test_property_neighbors_match_networkx(self, n, seed):
        m = min(3 * n, n * (n - 1) // 2)
        g = random_graph(n, m, seed)
        adj = CSRAdjacency.from_edgelist(g)
        nxg = g.to_networkx()
        for v in range(n):
            got = sorted(adj.neighbors_of(np.array([v])).tolist())
            assert got == sorted(nxg.neighbors(v))


class TestBFS:
    @pytest.mark.parametrize("source", [0, 7, 29])
    def test_all_solvers_match_oracle(self, source):
        g = random_graph(200, 500, seed=3)
        expected = oracle(g, source)
        d1, _ = solve_bfs_collective(g, source, hps_cluster(2, 2))
        d2, _ = solve_bfs_naive_upc(g, source, hps_cluster(2, 2))
        d3, _ = solve_bfs_sequential(g, source)
        assert np.array_equal(d1, expected)
        assert np.array_equal(d2, expected)
        assert np.array_equal(d3, expected)

    def test_family(self, any_graph):
        if any_graph.n == 0:
            return
        expected = oracle(any_graph, 0)
        d, _ = solve_bfs_collective(any_graph, 0, hps_cluster(2, 2))
        assert np.array_equal(d, expected)

    def test_unreachable_marked(self):
        from repro.graph import disjoint_components_graph

        g = disjoint_components_graph(2, 10, 1)
        d, _ = solve_bfs_collective(g, 0, hps_cluster(2, 2))
        assert np.any(d == UNREACHED)

    def test_level_count_is_eccentricity_plus_one(self):
        g = path_graph(33)
        _, info = solve_bfs_collective(g, 0, hps_cluster(2, 2))
        assert info.iterations == 33

    def test_diameter_bound_vs_cc(self):
        # The paper's Section I contrast: BFS rounds scale with the
        # diameter; CC grafting iterations do not.
        from repro.core import connected_components

        g = path_graph(256)
        _, info = solve_bfs_collective(g, 0, hps_cluster(2, 2))
        cc = connected_components(g, hps_cluster(2, 2))
        assert info.iterations >= 20 * cc.info.iterations

    def test_single_node_machine(self):
        g = random_graph(100, 300, 4)
        d, _ = solve_bfs_collective(g, 0, smp_node(4))
        assert np.array_equal(d, oracle(g, 0))

    def test_machine_invariant(self):
        g = random_graph(150, 400, 5)
        a, _ = solve_bfs_collective(g, 3, hps_cluster(2, 4))
        b, _ = solve_bfs_collective(g, 3, hps_cluster(8, 1))
        assert np.array_equal(a, b)

    def test_bad_source(self):
        g = path_graph(5)
        with pytest.raises(GraphError):
            solve_bfs_collective(g, 5, hps_cluster(2, 2))

    def test_naive_much_slower(self):
        g = random_graph(5_000, 20_000, 6)
        machine = hps_cluster(4, 4)
        _, coll = solve_bfs_collective(g, 0, machine)
        _, naive = solve_bfs_naive_upc(g, 0, machine)
        assert naive.sim_time > 5 * coll.sim_time

    @given(n=st.integers(2, 80), seed=st.integers(0, 10))
    def test_property_collective_matches_oracle(self, n, seed):
        m = min(2 * n, n * (n - 1) // 2)
        g = random_graph(n, m, seed)
        d, _ = solve_bfs_collective(g, 0, hps_cluster(2, 2))
        assert np.array_equal(d, oracle(g, 0))
