"""Tests for the PGASRuntime façade (repro.runtime.runtime)."""

import numpy as np
import pytest

from repro.errors import CollectiveError
from repro.runtime import (
    Category,
    PGASRuntime,
    PartitionedArray,
    hps_cluster,
    sequential_machine,
)


@pytest.fixture
def rt():
    return PGASRuntime(hps_cluster(2, 2))


class TestChargingPrimitives:
    def test_charge_advances_clocks_and_trace(self, rt):
        rt.charge(Category.WORK, 1e-3)
        assert rt.elapsed == pytest.approx(1e-3)
        assert rt.trace.category_seconds[Category.WORK] == pytest.approx(4e-3)

    def test_charge_comm_serializes_by_default(self, rt):
        rt.charge_comm(np.array([1e-3, 1e-3, 0.0, 0.0]))
        # threads 0,1 share node 0: each advances by the node total.
        assert rt.clocks.times[0] == pytest.approx(2e-3)
        assert rt.clocks.times[2] == 0.0

    def test_charge_comm_parallel_mode(self, rt):
        rt.charge_comm(np.array([1e-3, 1e-3, 0.0, 0.0]), serialize=False)
        assert rt.clocks.times[0] == pytest.approx(1e-3)

    def test_charge_thread(self, rt):
        rt.charge_thread(Category.SORT, 1, 5e-4)
        assert rt.clocks.times[1] == pytest.approx(5e-4)
        assert rt.trace.category_seconds[Category.SORT] == pytest.approx(5e-4)

    def test_barrier_counts(self, rt):
        rt.barrier()
        assert rt.counters.barriers == 1

    def test_local_helpers_update_counters(self, rt):
        rt.local_random_access(10, 1e6)
        rt.local_stream(100)
        rt.local_ops(50)
        assert rt.counters.local_random_accesses == 40  # 10 per thread x 4
        assert rt.counters.local_seq_elements >= 400
        assert rt.counters.alu_ops == 200


class TestSharedArrayAllocation:
    def test_allocation_charges_init(self, rt):
        before = rt.elapsed
        rt.shared_array(np.arange(1000, dtype=np.int64))
        assert rt.elapsed > before

    def test_allocation_counts_elements(self, rt):
        rt.shared_array(np.arange(64, dtype=np.int64))
        assert rt.counters.local_seq_elements == 64


class TestAllreduce:
    def test_reduces_or(self, rt):
        assert rt.allreduce_flag(np.array([False, True, False, False]))
        assert not rt.allreduce_flag(np.zeros(4, dtype=bool))

    def test_requires_one_flag_per_thread(self, rt):
        with pytest.raises(CollectiveError):
            rt.allreduce_flag(np.array([True]))

    def test_synchronizes_clocks(self, rt):
        rt.clocks.charge(np.array([0.0, 1e-3, 0.0, 0.0]))
        rt.allreduce_flag(np.zeros(4, dtype=bool))
        assert rt.clocks.skew() == 0.0

    def test_single_thread(self):
        rt = PGASRuntime(sequential_machine())
        assert rt.allreduce_flag(np.array([True]))


class TestFineGrained:
    def _indices(self, rt, values):
        return PartitionedArray.even(np.asarray(values, dtype=np.int64), rt.s)

    def test_read_returns_values(self, rt):
        arr = rt.shared_array(np.arange(100, dtype=np.int64) * 2)
        idx = self._indices(rt, [5, 60, 99, 0])
        out = rt.fine_grained_read(arr, idx)
        assert out.tolist() == [10, 120, 198, 0]

    def test_remote_accesses_counted(self, rt):
        arr = rt.shared_array(np.arange(100, dtype=np.int64))
        # thread 0 (node 0) requesting index 99 (node 1) is remote
        idx = PartitionedArray(np.array([99, 0, 0, 0], dtype=np.int64), np.array([0, 1, 2, 3, 4]))
        rt.fine_grained_read(arr, idx)
        assert rt.counters.fine_remote_accesses >= 1

    def test_local_access_cheaper_than_remote(self):
        m = hps_cluster(2, 2)
        rt_local, rt_remote = PGASRuntime(m), PGASRuntime(m)
        a1 = rt_local.shared_array(np.arange(100, dtype=np.int64))
        a2 = rt_remote.shared_array(np.arange(100, dtype=np.int64))
        base1, base2 = rt_local.elapsed, rt_remote.elapsed
        # all-local: each thread reads its own block's first element
        local_idx = PartitionedArray(
            np.array([0, 25, 50, 75], dtype=np.int64), np.arange(5, dtype=np.int64)
        )
        # all-remote: each thread reads from the other node
        remote_idx = PartitionedArray(
            np.array([99, 99, 0, 0], dtype=np.int64), np.arange(5, dtype=np.int64)
        )
        rt_local.fine_grained_read(a1, local_idx)
        rt_remote.fine_grained_read(a2, remote_idx)
        assert rt_remote.elapsed - base2 > rt_local.elapsed - base1

    def test_write_min_semantics(self, rt):
        arr = rt.shared_array(np.arange(100, dtype=np.int64))
        idx = self._indices(rt, [10, 10, 20, 30])
        changed = rt.fine_grained_write(arr, idx, np.array([5, 7, 100, 1]))
        assert arr.data[10] == 5
        assert arr.data[20] == 20  # min keeps smaller existing value
        assert arr.data[30] == 1
        assert changed == 2

    def test_write_store_requires_unique(self, rt):
        arr = rt.shared_array(np.arange(100, dtype=np.int64))
        idx = self._indices(rt, [10, 10, 20, 30])
        with pytest.raises(CollectiveError):
            rt.fine_grained_write(arr, idx, np.zeros(4, dtype=np.int64), combine="store")

    def test_write_store_min(self, rt):
        arr = rt.shared_array(np.arange(100, dtype=np.int64))
        idx = self._indices(rt, [3, 3, 4, 5])
        rt.fine_grained_write(arr, idx, np.array([50, 40, 1, 2]), combine="store_min")
        assert arr.data[3] == 40  # raised: store semantics
        assert arr.data[4] == 1

    def test_write_unknown_combine(self, rt):
        arr = rt.shared_array(np.arange(10, dtype=np.int64))
        idx = self._indices(rt, [1, 2, 3, 4])
        with pytest.raises(CollectiveError):
            rt.fine_grained_write(arr, idx, np.zeros(4, dtype=np.int64), combine="max")

    def test_write_length_mismatch(self, rt):
        arr = rt.shared_array(np.arange(10, dtype=np.int64))
        idx = self._indices(rt, [1, 2, 3, 4])
        with pytest.raises(CollectiveError):
            rt.fine_grained_write(arr, idx, np.zeros(3, dtype=np.int64))


class TestSplitLocalRemote:
    def test_split_counts(self, rt):
        arr = rt.shared_array(np.arange(100, dtype=np.int64))
        # threads: 0,1 on node 0 (own 0..49); 2,3 on node 1 (own 50..99)
        idx = PartitionedArray(
            np.array([0, 99, 0, 99], dtype=np.int64), np.arange(5, dtype=np.int64)
        )
        local, remote = rt.split_local_remote(arr, idx)
        assert local.tolist() == [1, 0, 0, 1]
        assert remote.tolist() == [0, 1, 1, 0]

    def test_fork_is_fresh(self, rt):
        rt.charge(Category.WORK, 1.0)
        fresh = rt.fork()
        assert fresh.elapsed == 0.0
        assert fresh.machine is rt.machine
