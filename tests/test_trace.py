"""Tests for the execution trace (repro.runtime.trace)."""

import pytest

from repro.runtime import Category, Counters, Trace


class TestCategory:
    def test_the_six_fig5_categories(self):
        assert Category.FIG5 == ("Comm", "Sort", "Copy", "Irregular", "Setup", "Work")

    def test_fault_categories_extend_fig5(self):
        assert Category.ALL == Category.FIG5 + ("Retry", "Fault")


class TestCounters:
    def test_add(self):
        c = Counters()
        c.add(remote_messages=3, remote_bytes=24)
        c.add(remote_messages=2)
        assert c.remote_messages == 5
        assert c.remote_bytes == 24

    def test_unknown_counter_rejected(self):
        with pytest.raises(AttributeError):
            Counters().add(bogus=1)

    def test_as_dict(self):
        c = Counters()
        c.add(barriers=7)
        assert c.as_dict()["barriers"] == 7
        assert c.as_dict()["lock_ops"] == 0


class TestTrace:
    def test_charge_and_breakdown(self):
        t = Trace()
        t.charge_category(Category.COMM, 8.0)
        t.charge_category(Category.SORT, 4.0)
        bd = t.breakdown(4)
        assert bd[Category.COMM] == pytest.approx(2.0)
        assert bd[Category.SORT] == pytest.approx(1.0)
        assert bd[Category.WORK] == 0.0

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            Trace().charge_category("Bogus", 1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Trace().charge_category(Category.COMM, -1.0)

    def test_breakdown_requires_positive_threads(self):
        with pytest.raises(ValueError):
            Trace().breakdown(0)

    def test_total_thread_seconds(self):
        t = Trace()
        t.charge_category(Category.COMM, 1.0)
        t.charge_category(Category.WORK, 2.0)
        assert t.total_thread_seconds() == pytest.approx(3.0)

    def test_merge_accumulates(self):
        a, b = Trace(), Trace()
        a.charge_category(Category.COMM, 1.0)
        a.counters.add(barriers=1)
        b.charge_category(Category.COMM, 2.0)
        b.counters.add(barriers=3, remote_messages=5)
        a.merge(b)
        assert a.category_seconds[Category.COMM] == pytest.approx(3.0)
        assert a.counters.barriers == 4
        assert a.counters.remote_messages == 5

    def test_summary_lines_render(self):
        t = Trace()
        t.charge_category(Category.COMM, 1.0)
        lines = list(t.summary_lines(2))
        assert any("Comm" in line for line in lines)
        assert any("counters:" in line for line in lines)
