"""Tests for per-thread virtual clocks (repro.runtime.clocks)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime import ThreadClocks, hps_cluster, sequential_machine


@pytest.fixture
def clocks():
    return ThreadClocks(hps_cluster(2, 2))


class TestCharge:
    def test_scalar_broadcasts(self, clocks):
        clocks.charge(1.0)
        assert np.allclose(clocks.times, 1.0)

    def test_array_per_thread(self, clocks):
        amounts = np.array([1.0, 2.0, 3.0, 4.0])
        clocks.charge(amounts)
        assert np.allclose(clocks.times, amounts)

    def test_rejects_negative(self, clocks):
        with pytest.raises(ConfigError):
            clocks.charge(-1.0)

    def test_rejects_wrong_shape(self, clocks):
        with pytest.raises(ConfigError):
            clocks.charge(np.ones(3))

    def test_charge_thread(self, clocks):
        clocks.charge_thread(2, 5.0)
        assert clocks.times[2] == 5.0
        assert clocks.times[0] == 0.0

    def test_charge_thread_bounds(self, clocks):
        with pytest.raises(ConfigError):
            clocks.charge_thread(7, 1.0)
        with pytest.raises(ConfigError):
            clocks.charge_thread(0, -1.0)

    def test_returns_charged_amounts(self, clocks):
        out = clocks.charge(2.0)
        assert np.allclose(out, 2.0)


class TestNodeSerialize:
    def test_threads_on_node_share_link(self, clocks):
        # Node 0 has threads 0,1; node 1 has threads 2,3.
        charged = clocks.node_serialize(np.array([1.0, 2.0, 0.0, 0.5]))
        assert np.allclose(charged, [3.0, 3.0, 0.5, 0.5])
        assert np.allclose(clocks.times, [3.0, 3.0, 0.5, 0.5])

    def test_zero_traffic_is_free(self, clocks):
        clocks.node_serialize(0.0)
        assert np.allclose(clocks.times, 0.0)

    def test_single_thread_machine(self):
        c = ThreadClocks(sequential_machine())
        c.node_serialize(np.array([2.0]))
        assert c.elapsed == 2.0


class TestBarrier:
    def test_equalizes_to_max(self, clocks):
        clocks.charge(np.array([1.0, 5.0, 2.0, 0.0]))
        now = clocks.barrier()
        assert now == 5.0
        assert np.allclose(clocks.times, 5.0)

    def test_barrier_cost_added(self, clocks):
        clocks.charge(np.array([1.0, 5.0, 2.0, 0.0]))
        clocks.barrier(0.5)
        assert np.allclose(clocks.times, 5.5)

    def test_rejects_negative_cost(self, clocks):
        with pytest.raises(ConfigError):
            clocks.barrier(-0.1)


class TestReporting:
    def test_elapsed_is_max(self, clocks):
        clocks.charge(np.array([1.0, 4.0, 2.0, 3.0]))
        assert clocks.elapsed == 4.0
        assert clocks.mean_elapsed == pytest.approx(2.5)

    def test_skew(self, clocks):
        clocks.charge(np.array([1.0, 4.0, 2.0, 3.0]))
        assert clocks.skew() == pytest.approx(3.0)
        clocks.barrier()
        assert clocks.skew() == 0.0

    def test_copy_is_independent(self, clocks):
        clocks.charge(1.0)
        clone = clocks.copy()
        clone.charge(1.0)
        assert clocks.elapsed == 1.0
        assert clone.elapsed == 2.0

    def test_fresh_clocks_zero(self, clocks):
        assert clocks.elapsed == 0.0
        assert clocks.skew() == 0.0

    def test_node_map_layout(self, clocks):
        assert list(clocks.node_of) == [0, 0, 1, 1]
