"""Tests for the repro.tuning autotuner: probes, planner, cache, adapter.

The headline acceptance test mirrors the paper's Fig. 5/6 setting
(random and hybrid inputs, the 16x8 machine): the ``auto`` plan's
modeled time must land within 5% of the *exhaustive* best over the full
flag-lattice × t' grid, and must never lose to the paper's hand-picked
default (all flags, t'=2).
"""

import json

import numpy as np
import pytest

from repro.cc.collective import solve_cc_collective
from repro.core import OptimizationFlags, cluster_for_input, connected_components
from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList
from repro.graph.generators import hybrid_graph, random_graph, with_random_weights
from repro.mst.collective import solve_mst_collective
from repro.runtime.cost import CostModel
from repro.runtime.profiling import RoundWindow
from repro.scheduling.cache_model import best_tprime, tprime_candidates
from repro.tuning import (
    AdapterConfig,
    OnlineAdapter,
    PlanCache,
    TuningPlan,
    Workload,
    autotune,
    build_plan,
    calibrate_profile,
    machine_fingerprint,
    parse_opts_key,
    predict_config_ms,
)
from repro.tuning.planner import probe_machine_for


# ---------------------------------------------------------------------------
# Acceptance: auto vs the exhaustive lattice (Fig. 5/6 configurations)
# ---------------------------------------------------------------------------

ACC_N = 1500
ACC_M = 4 * ACC_N


def _exhaustive_best(g, machine):
    cands = tprime_candidates(max(1, ACC_N // machine.total_threads), CostModel(machine))
    best_ms, best_cfg = float("inf"), None
    for opts in OptimizationFlags.lattice():
        for tp in cands:
            ms = connected_components(g, machine, opts=opts, tprime=tp).info.sim_time_ms
            if ms < best_ms:
                best_ms, best_cfg = ms, (opts.key(), tp)
    return best_ms, best_cfg


@pytest.mark.parametrize("kind", ["random", "hybrid"])
def test_auto_within_5pct_of_exhaustive(kind, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "cache.json"))
    gen = random_graph if kind == "random" else hybrid_graph
    g = gen(ACC_N, ACC_M, seed=11)
    machine = cluster_for_input(ACC_N, 16, 8)

    best_ms, best_cfg = _exhaustive_best(g, machine)
    auto = connected_components(
        g, machine, impl="auto", opts="auto", tprime="auto", graph_kind=kind
    )
    default = connected_components(g, machine, opts=OptimizationFlags.all(), tprime=2)

    auto_ms = auto.info.sim_time_ms
    assert auto_ms <= 1.05 * best_ms, (
        f"{kind}: auto {auto_ms:.3f} ms not within 5% of exhaustive best"
        f" {best_ms:.3f} ms at {best_cfg}"
    )
    assert auto_ms <= default.info.sim_time_ms * 1.001, (
        f"{kind}: auto {auto_ms:.3f} ms slower than the all-flags/t'=2 default"
        f" {default.info.sim_time_ms:.3f} ms"
    )
    # Correctness never depends on the tuner: same labeling as the default.
    assert np.array_equal(np.unique(auto.labels), np.unique(default.labels))


# ---------------------------------------------------------------------------
# Planner pieces
# ---------------------------------------------------------------------------


class TestWorkload:
    def test_key(self):
        w = Workload(kind="cc", n=2000, m=8000, graph_kind="hybrid")
        assert w.key() == "cc:hybrid:n2000:m8000"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            Workload(kind="bfs", n=100, m=100)

    def test_rejects_empty_input(self):
        with pytest.raises(ConfigError):
            Workload(kind="cc", n=0, m=0)


class TestParseOptsKey:
    def test_roundtrip_whole_lattice(self):
        for opts in OptimizationFlags.lattice():
            assert parse_opts_key(opts.key()) == opts

    def test_base(self):
        assert parse_opts_key("base") == OptimizationFlags.none()

    def test_rejects_unknown_flag(self):
        with pytest.raises(ConfigError):
            parse_opts_key("warp")


class TestAnalyticModel:
    def test_naive_predicted_slowest(self):
        machine = cluster_for_input(20_000, 16, 8)
        w = Workload(kind="cc", n=20_000, m=80_000)
        naive = predict_config_ms(w, machine, "naive", OptimizationFlags.none(), 1)
        coll = predict_config_ms(w, machine, "collective", OptimizationFlags.all(), 2)
        assert naive > 5 * coll

    def test_prediction_grows_with_n(self):
        machine = cluster_for_input(20_000, 16, 8)
        small = predict_config_ms(
            Workload(kind="cc", n=10_000, m=40_000), machine, "collective",
            OptimizationFlags.all(), 2,
        )
        large = predict_config_ms(
            Workload(kind="cc", n=80_000, m=320_000), machine, "collective",
            OptimizationFlags.all(), 2,
        )
        assert large > small > 0

    def test_probe_machine_preserves_calibration(self):
        machine = cluster_for_input(20_000, 4, 2)
        scaled = probe_machine_for(machine, 0.25)
        # Replica machine must COMPOSE with the base calibration, not
        # replace it: per-call costs shrink by exactly the replica factor.
        assert scaled.per_call_scale == pytest.approx(machine.per_call_scale * 0.25)


class TestBuildPlan:
    def test_probed_entries_ranked_first(self):
        machine = cluster_for_input(1200, 4, 2)
        plan = build_plan(Workload(kind="cc", n=1200, m=4800), machine)
        probed = plan.probed()
        assert probed and probed[0] is plan.entries[0]
        ms = [e.probed_ms for e in probed]
        assert ms == sorted(ms)
        assert plan.selected.probed_ms is not None

    def test_analytic_only_plan(self):
        machine = cluster_for_input(1200, 4, 2)
        plan = build_plan(Workload(kind="cc", n=1200, m=4800), machine, probe=False)
        assert plan.probed() == []
        assert plan.selected.predicted_ms > 0

    def test_mst_plan_never_contains_offload(self):
        machine = cluster_for_input(1200, 4, 2)
        plan = build_plan(
            Workload(kind="mst", n=1200, m=4800), machine, probe=False
        )
        assert plan.selected.impl == "collective"
        # The MST solver refuses offload (D[0] invariant); the plan must
        # not pretend to search it.
        assert all("offload" not in e.opts_key for e in plan.entries)


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------


class TestProbes:
    def test_profile_fields_positive(self):
        machine = cluster_for_input(20_000, 4, 2)
        prof = calibrate_profile(machine)
        assert prof.fine_access_us > 0
        assert prof.coalesced_elem_ns > 0
        assert prof.barrier_us > 0
        assert prof.cache_crossover_bytes > 0
        # Coalescing must measure as a win — it is the paper's premise.
        assert prof.coalescing_gain > 1

    def test_profile_roundtrip_and_summary(self):
        machine = cluster_for_input(20_000, 4, 2)
        prof = calibrate_profile(machine)
        clone = type(prof).from_dict(prof.to_dict())
        assert clone == prof
        assert any("fine-grained" in line for line in prof.summary_lines())

    def test_fingerprint_ignores_name(self):
        machine = cluster_for_input(20_000, 4, 2)
        assert machine_fingerprint(machine) == machine_fingerprint(
            machine.with_(name="renamed")
        )
        assert machine_fingerprint(machine) != machine_fingerprint(
            machine.with_(per_call_scale=machine.per_call_scale * 2)
        )


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


def _small_setup():
    machine = cluster_for_input(800, 4, 2)
    workload = Workload(kind="cc", n=800, m=3200)
    return machine, workload


class TestPlanCache:
    def test_save_is_byte_deterministic(self, tmp_path):
        machine, workload = _small_setup()
        plan_a = build_plan(workload, machine)
        plan_b = build_plan(workload, machine)
        assert plan_a.to_dict() == plan_b.to_dict()

        cache_a = PlanCache(tmp_path / "a.json")
        cache_a.put(machine, workload, plan_a)
        cache_b = PlanCache(tmp_path / "b.json")
        cache_b.put(machine, workload, plan_b)
        assert cache_a.save().read_bytes() == cache_b.save().read_bytes()

    def test_round_trip(self, tmp_path):
        machine, workload = _small_setup()
        plan = build_plan(workload, machine, probe=False)
        cache = PlanCache(tmp_path / "c.json")
        cache.put(machine, workload, plan)
        cache.save()
        reloaded = PlanCache(tmp_path / "c.json").get(machine, workload)
        assert reloaded is not None
        assert reloaded.to_dict() == plan.to_dict()
        assert reloaded.selected.config_label() == plan.selected.config_label()

    def test_nearest_reuses_same_family_within_factor(self, tmp_path):
        """Degraded-mode plan reuse: a miss on the exact (n, m) key falls
        back to the closest cached plan of the same kind x graph_kind on
        the same machine — within a bounded size ratio."""
        machine = cluster_for_input(800, 4, 2)
        cache = PlanCache(tmp_path / "c.json")
        near = Workload(kind="cc", n=1000, m=4000)
        far = Workload(kind="cc", n=100_000, m=400_000)
        cache.put(machine, near, build_plan(near, machine, probe=False))
        cache.put(machine, far, build_plan(far, machine, probe=False))

        target = Workload(kind="cc", n=800, m=3200)
        assert cache.get(machine, target) is None  # exact key misses
        hit = cache.nearest(machine, target)
        assert hit is not None
        assert hit.workload == near  # closest in log-space, not the far one

    def test_nearest_refuses_wrong_family_or_distance(self, tmp_path):
        machine = cluster_for_input(800, 4, 2)
        cache = PlanCache(tmp_path / "c.json")
        mst = Workload(kind="mst", n=800, m=3200)
        hybrid = Workload(kind="cc", n=800, m=3200, graph_kind="hybrid")
        huge = Workload(kind="cc", n=800_000, m=3_200_000)
        for w in (mst, hybrid, huge):
            cache.put(machine, w, build_plan(w, machine, probe=False))

        target = Workload(kind="cc", n=800, m=3200)
        # Same n/m but wrong algo or graph family; same family but >8x away.
        assert cache.nearest(machine, target) is None
        other_machine = cluster_for_input(800, 2, 2)
        assert cache.nearest(other_machine, Workload(kind="mst", n=800, m=3200)) is None

    def test_corrupt_cache_starts_empty_and_recovers(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{ this is not json")
        cache = PlanCache(path)
        assert len(cache) == 0
        machine, workload = _small_setup()
        plan = autotune(workload, machine, cache=cache)  # rebuilds, then saves
        assert plan.selected is not None
        assert PlanCache(path).get(machine, workload) is not None

    def test_stale_schema_ignored(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"schema": 999, "plans": {"x": {}}}))
        assert len(PlanCache(path)) == 0

    def test_bad_record_does_not_poison_the_rest(self, tmp_path):
        machine, workload = _small_setup()
        plan = build_plan(workload, machine, probe=False)
        cache = PlanCache(tmp_path / "c.json")
        cache.put(machine, workload, plan)
        path = cache.save()
        payload = json.loads(path.read_text())
        payload["plans"]["bogus-key"] = {"not": "a plan"}
        path.write_text(json.dumps(payload))
        reloaded = PlanCache(path)
        assert len(reloaded) == 1
        assert reloaded.get(machine, workload) is not None

    def test_hand_edited_key_mismatch_rejected(self, tmp_path):
        machine, workload = _small_setup()
        plan = build_plan(workload, machine, probe=False)
        cache = PlanCache(tmp_path / "c.json")
        cache.put(machine, workload, plan)
        path = cache.save()
        other = Workload(kind="cc", n=800, m=9999)
        payload = json.loads(path.read_text())
        ((key, entry),) = payload["plans"].items()
        payload["plans"] = {key.replace(workload.key(), other.key()): entry}
        path.write_text(json.dumps(payload))
        # The stored plan describes `workload`, not `other`: reject it.
        assert PlanCache(path).get(machine, other) is None

    def test_autotune_cache_hit_skips_rebuild(self, tmp_path, monkeypatch):
        import repro.tuning as tuning

        machine, workload = _small_setup()
        cache_path = tmp_path / "c.json"
        plan = autotune(workload, machine, cache=PlanCache(cache_path))

        def boom(*args, **kwargs):
            raise AssertionError("cache hit must not rebuild the plan")

        monkeypatch.setattr(tuning, "build_plan", boom)
        again = tuning.autotune(workload, machine, cache=PlanCache(cache_path))
        assert again.to_dict() == plan.to_dict()


# ---------------------------------------------------------------------------
# Online adapter
# ---------------------------------------------------------------------------


def _star(n):
    """Hub-and-spokes: every edge touches vertex 0, so one owner thread
    serves essentially all label requests — the offload hotspot."""
    return EdgeList(n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64))


class TestOnlineAdapter:
    def test_hotspot_rule_enables_offload_cc(self):
        n = 4096
        g = _star(n)
        machine = cluster_for_input(n, 8, 4)
        adapter = OnlineAdapter(machine, n)
        base = solve_cc_collective(g, machine, OptimizationFlags.none(), 1)
        adapted = solve_cc_collective(
            g, machine, OptimizationFlags.none(), 1, adapter=adapter
        )
        # Adaptation is a performance knob: the labeling must not change.
        assert np.array_equal(base.labels, adapted.labels)
        assert any("enable offload" in d for d in adapter.decisions)
        assert any(e.startswith("tuning:") for e in adapted.info.trace.events)
        assert adapted.info.trace.counters.tuning_adaptations >= 1

    def test_mst_adapter_never_enables_offload(self):
        n = 4096
        g = with_random_weights(_star(n), 3)
        machine = cluster_for_input(n, 8, 4)
        adapter = OnlineAdapter(machine, n, allow_offload=False)
        base = solve_mst_collective(g, machine, OptimizationFlags.none(), 1)
        adapted = solve_mst_collective(
            g, machine, OptimizationFlags.none(), 1, adapter=adapter
        )
        assert np.array_equal(base.edge_ids, adapted.edge_ids)
        assert base.total_weight == adapted.total_weight
        assert not any("offload" in d for d in adapter.decisions)

    def _fed_adapter(self, windows, **config):
        """An adapter detached from any runtime, fed synthetic windows."""
        machine = cluster_for_input(20_000, 4, 2)
        adapter = OnlineAdapter(machine, 20_000, config=AdapterConfig(**config))

        class _Profiler:
            def __init__(self, feed):
                self.feed = list(feed)

            def checkpoint(self):
                return 0

            def window_since(self, mark):
                return self.feed.pop(0)

        adapter._profiler = _Profiler(windows)
        return adapter

    @staticmethod
    def _window(duration_s, wait=0.0):
        return RoundWindow(
            phases=3, duration_s=duration_s, requests=100,
            max_wait_fraction=wait, hottest_thread=0,
        )

    def test_divergence_rule_steps_tprime_toward_target(self):
        adapter = self._fed_adapter(
            [self._window(1.0), self._window(5.0)], divergence=1.5
        )
        adapter.target_tprime = 5
        opts = OptimizationFlags.all()
        opts, tprime = adapter.on_round(opts, 1)  # warmup: sets the baseline
        assert tprime == 1
        opts, tprime = adapter.on_round(opts, tprime)  # 5x slower: diverged
        assert 1 < tprime <= 5
        assert any("t' 1 ->" in d for d in adapter.decisions)

    def test_adaptation_budget_is_finite(self):
        windows = [self._window(1.0 if i % 2 == 0 else 9.0) for i in range(20)]
        adapter = self._fed_adapter(windows, max_adaptations=2)
        adapter.target_tprime = 64
        opts, tprime = OptimizationFlags.all(), 1
        for _ in range(20):
            opts, tprime = adapter.on_round(opts, tprime)
        assert adapter.adaptations <= 2

    def test_holds_still_on_healthy_rounds(self):
        adapter = self._fed_adapter([self._window(1.0)] * 5)
        opts, tprime = OptimizationFlags.all(), 2
        adapter.target_tprime = 2
        for _ in range(5):
            opts, tprime = adapter.on_round(opts, tprime)
        assert adapter.decisions == []
        assert (opts, tprime) == (OptimizationFlags.all(), 2)


# ---------------------------------------------------------------------------
# t' search grid
# ---------------------------------------------------------------------------


class TestTprimeCandidates:
    def test_contains_doubling_ladder_and_fit(self):
        cm = CostModel(cluster_for_input(20_000, 16, 8))
        block = 4 * cm.machine.cache.size_bytes // 8
        fit = best_tprime(block, cm)
        cands = tprime_candidates(block, cm)
        assert set((1, 2, 4, 8, 16, 32, 64)) <= set(cands)
        assert fit in cands and fit - 1 in cands
        assert cands == tuple(sorted(cands))

    def test_small_block_degenerates_to_ladder(self):
        cm = CostModel(cluster_for_input(20_000, 16, 8))
        cands = tprime_candidates(1, cm)
        assert cands[0] == 1 and max(cands) <= 64

    def test_never_fits_clamps_to_max(self):
        cm = CostModel(cluster_for_input(20_000, 16, 8))
        assert best_tprime(10**12, cm, max_tprime=32) == 32
        assert max(tprime_candidates(10**12, cm, max_tprime=32)) == 32
        assert all(1 <= t <= 32 for t in tprime_candidates(10**12, cm, max_tprime=32))
