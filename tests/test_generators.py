"""Tests for the graph generators (repro.graph.generators, rmat)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    MAX_WEIGHT,
    complete_graph,
    cycle_graph,
    disjoint_components_graph,
    empty_graph,
    hybrid_graph,
    is_simple,
    path_graph,
    powerlaw_graph,
    random_graph,
    rmat_edges,
    star_graph,
    with_random_weights,
)


class TestRandomGraph:
    def test_exact_edge_count(self):
        g = random_graph(100, 300, seed=1)
        assert g.m == 300 and g.n == 100

    def test_simple(self):
        assert is_simple(random_graph(50, 200, seed=2))

    def test_deterministic(self):
        a, b = random_graph(80, 160, seed=3), random_graph(80, 160, seed=3)
        assert np.array_equal(a.u, b.u) and np.array_equal(a.v, b.v)

    def test_seed_changes_graph(self):
        a, b = random_graph(80, 160, seed=3), random_graph(80, 160, seed=4)
        assert not (np.array_equal(a.u, b.u) and np.array_equal(a.v, b.v))

    def test_zero_edges(self):
        g = random_graph(10, 0)
        assert g.m == 0

    def test_near_complete(self):
        n = 12
        cap = n * (n - 1) // 2
        g = random_graph(n, cap, seed=5)
        assert g.m == cap and is_simple(g)

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            random_graph(4, 7)

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            random_graph(-1, 0)
        with pytest.raises(GraphError):
            random_graph(10, -1)

    @given(n=st.integers(2, 60), frac=st.floats(0.0, 0.9), seed=st.integers(0, 5))
    def test_property_simple_and_sized(self, n, frac, seed):
        m = int(frac * n * (n - 1) // 2)
        g = random_graph(n, m, seed)
        assert g.m == m
        assert is_simple(g)


class TestHybridGraph:
    def test_exact_edge_count(self):
        g = hybrid_graph(400, 1600, seed=1)
        assert g.m == 1600

    def test_simple(self):
        assert is_simple(hybrid_graph(300, 900, seed=2))

    def test_deterministic(self):
        a, b = hybrid_graph(300, 900, seed=2), hybrid_graph(300, 900, seed=2)
        assert np.array_equal(a.u, b.u)

    def test_has_hubs(self):
        # O(sqrt(n))-degree vertices, much larger than the random mean.
        n, m = 10_000, 40_000
        g = hybrid_graph(n, m, seed=3)
        mean_degree = 2 * m / n
        assert g.max_degree() > 5 * mean_degree

    def test_random_graph_has_no_such_hubs(self):
        n, m = 10_000, 40_000
        g = random_graph(n, m, seed=3)
        mean_degree = 2 * m / n
        assert g.max_degree() < 5 * mean_degree

    def test_rejects_tiny(self):
        with pytest.raises(GraphError):
            hybrid_graph(3, 2)


class TestPowerlawGraph:
    def test_exact_edge_count_and_simple(self):
        g = powerlaw_graph(400, 1600, seed=1)
        assert g.n == 400 and g.m == 1600
        assert is_simple(g)

    def test_deterministic(self):
        a, b = powerlaw_graph(300, 900, seed=2), powerlaw_graph(300, 900, seed=2)
        assert np.array_equal(a.u, b.u) and np.array_equal(a.v, b.v)

    def test_seed_changes_graph(self):
        a, b = powerlaw_graph(300, 900, seed=2), powerlaw_graph(300, 900, seed=3)
        assert not (np.array_equal(a.u, b.u) and np.array_equal(a.v, b.v))

    def test_heavier_hubs_than_hybrid(self):
        n, m = 10_000, 40_000
        pl = powerlaw_graph(n, m, seed=3)
        mean_degree = 2 * m / n
        assert pl.max_degree() > 5 * mean_degree
        assert pl.max_degree() > hybrid_graph(n, m, seed=3).max_degree()

    def test_exponent_shapes_the_tail(self):
        n, m = 5_000, 20_000
        heavy = powerlaw_graph(n, m, seed=4, exponent=2.1)
        light = powerlaw_graph(n, m, seed=4, exponent=3.5)
        assert heavy.max_degree() > light.max_degree()

    def test_dense_request_still_exact(self):
        # Hub pairs saturate quickly here; the uniform filler must top
        # the edge list up to exactly m without duplicates.
        n = 40
        m = n * (n - 1) // 2 - 5
        g = powerlaw_graph(n, m, seed=5)
        assert g.m == m and is_simple(g)

    def test_zero_edges(self):
        assert powerlaw_graph(10, 0).m == 0

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            powerlaw_graph(-1, 0)
        with pytest.raises(GraphError):
            powerlaw_graph(10, 100)
        with pytest.raises(GraphError):
            powerlaw_graph(10, 5, exponent=1.0)


class TestWeights:
    def test_range(self):
        g = with_random_weights(random_graph(50, 100, 1), seed=2)
        assert g.w.min() >= 0 and g.w.max() < MAX_WEIGHT

    def test_deterministic(self):
        base = random_graph(50, 100, 1)
        a = with_random_weights(base, seed=2)
        b = with_random_weights(base, seed=2)
        assert np.array_equal(a.w, b.w)

    def test_custom_max(self):
        g = with_random_weights(random_graph(50, 100, 1), seed=2, max_weight=3)
        assert set(np.unique(g.w)) <= {0, 1, 2}

    def test_invalid_max(self):
        with pytest.raises(GraphError):
            with_random_weights(random_graph(10, 5, 1), max_weight=0)


class TestStructuredGraphs:
    def test_empty(self):
        g = empty_graph(7)
        assert g.n == 7 and g.m == 0

    def test_path(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.degrees().tolist() == [1, 2, 2, 2, 1]

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.m == 6
        assert np.all(g.degrees() == 2)

    def test_star(self):
        g = star_graph(6, center=2)
        assert g.m == 5
        assert g.degrees()[2] == 5

    def test_star_bad_center(self):
        with pytest.raises(GraphError):
            star_graph(5, center=5)

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10
        assert np.all(g.degrees() == 4)

    def test_disjoint_components(self):
        from repro.graph import count_components_reference

        g = disjoint_components_graph(4, 10, seed=1)
        assert g.n == 40
        assert count_components_reference(g) == 4

    def test_disjoint_singletons(self):
        g = disjoint_components_graph(3, 1, seed=1)
        assert g.n == 3 and g.m == 0

    def test_structured_bounds(self):
        with pytest.raises(GraphError):
            path_graph(0)
        with pytest.raises(GraphError):
            cycle_graph(2)
        with pytest.raises(GraphError):
            star_graph(1)
        with pytest.raises(GraphError):
            disjoint_components_graph(0, 5)


class TestRmat:
    def test_ranges(self):
        rng = np.random.default_rng(0)
        u, v = rmat_edges(6, 500, rng)
        assert u.min() >= 0 and u.max() < 64
        assert v.min() >= 0 and v.max() < 64

    def test_deterministic_given_rng_state(self):
        u1, v1 = rmat_edges(5, 100, np.random.default_rng(7))
        u2, v2 = rmat_edges(5, 100, np.random.default_rng(7))
        assert np.array_equal(u1, u2) and np.array_equal(v1, v2)

    def test_skewed_degrees(self):
        rng = np.random.default_rng(1)
        u, v = rmat_edges(10, 8000, rng)
        deg = np.bincount(u, minlength=1024) + np.bincount(v, minlength=1024)
        # R-MAT concentrates mass: top vertex far above the mean.
        assert deg.max() > 8 * deg.mean()

    def test_zero_edges(self):
        u, v = rmat_edges(4, 0, np.random.default_rng(0))
        assert u.size == 0

    def test_scale_zero_single_vertex(self):
        u, v = rmat_edges(0, 5, np.random.default_rng(0))
        assert np.all(u == 0) and np.all(v == 0)

    def test_bad_probs(self):
        with pytest.raises(GraphError):
            rmat_edges(4, 10, np.random.default_rng(0), probs=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(GraphError):
            rmat_edges(4, 10, np.random.default_rng(0), probs=(-0.1, 0.5, 0.3, 0.3))

    def test_bad_scale(self):
        with pytest.raises(GraphError):
            rmat_edges(-1, 10, np.random.default_rng(0))
        with pytest.raises(GraphError):
            rmat_edges(41, 10, np.random.default_rng(0))
