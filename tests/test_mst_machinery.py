"""Unit tests for MST internals: packing, winner extraction, hook-cycle
breaking, verification, and the performance model."""

import numpy as np
import pytest

from repro.errors import GraphError, VerificationError
from repro.graph import path_graph, random_graph, with_random_weights
from repro.mst import (
    NO_EDGE,
    break_hook_cycles,
    check_spanning_forest,
    extract_winners,
    pack_candidates,
    reference_kruskal,
    solve_mst_collective,
    solve_mst_naive_upc,
    solve_mst_sequential,
    solve_mst_smp,
    unpack_positions,
    unpack_weights,
)
from repro.core import cluster_for_input, sequential_for_input, smp_for_input
from repro.runtime import hps_cluster


class TestPacking:
    def test_roundtrip(self):
        w = np.array([0, 5, 2**31 - 1], dtype=np.int64)
        pos = np.array([7, 0, 2**32 - 1], dtype=np.int64)
        packed = pack_candidates(w, pos)
        assert np.array_equal(unpack_weights(packed), w)
        assert np.array_equal(unpack_positions(packed), pos)

    def test_min_order_is_weight_then_position(self):
        a = pack_candidates(np.array([5]), np.array([100]))[0]
        b = pack_candidates(np.array([5]), np.array([2]))[0]
        c = pack_candidates(np.array([4]), np.array([10**6]))[0]
        assert c < b < a

    def test_rejects_big_weight(self):
        with pytest.raises(GraphError):
            pack_candidates(np.array([2**31]), np.array([0]))

    def test_rejects_negative(self):
        with pytest.raises(GraphError):
            pack_candidates(np.array([-1]), np.array([0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphError):
            pack_candidates(np.array([1, 2]), np.array([0]))


class TestWinners:
    def test_extract(self):
        minedge = np.full(6, NO_EDGE, dtype=np.int64)
        minedge[2] = pack_candidates(np.array([5]), np.array([9]))[0]
        minedge[4] = pack_candidates(np.array([1]), np.array([3]))[0]
        roots, pos = extract_winners(minedge)
        assert roots.tolist() == [2, 4]
        assert pos.tolist() == [9, 3]

    def test_no_winners(self):
        roots, pos = extract_winners(np.full(4, NO_EDGE, dtype=np.int64))
        assert roots.size == 0


class TestHookCycles:
    def test_mutual_pair_resolved_to_smaller(self):
        parent = np.arange(6)
        parent[2] = 5
        parent[5] = 2
        repaired = break_hook_cycles(parent, np.array([2, 5]))
        assert repaired == 1
        assert parent[2] == 2  # smaller becomes root
        assert parent[5] == 2

    def test_chain_untouched(self):
        parent = np.array([1, 2, 2])
        before = parent.copy()
        break_hook_cycles(parent, np.array([0, 1]))
        assert np.array_equal(parent, before)

    def test_empty(self):
        parent = np.arange(3)
        assert break_hook_cycles(parent, np.empty(0, dtype=np.int64)) == 0


class TestVerification:
    @pytest.fixture
    def g(self):
        return with_random_weights(random_graph(50, 150, seed=1), seed=2)

    def test_accepts_reference(self, g):
        ids, _ = reference_kruskal(g)
        check_spanning_forest(g, ids)

    def test_rejects_duplicate_edge(self, g):
        ids, _ = reference_kruskal(g)
        bad = np.concatenate([ids, ids[:1]])
        with pytest.raises(VerificationError):
            check_spanning_forest(g, bad)

    def test_rejects_cycle(self, g):
        ids, _ = reference_kruskal(g)
        # add one more edge: must close a cycle or break the count
        extra = next(i for i in range(g.m) if i not in set(ids.tolist()))
        with pytest.raises(VerificationError):
            check_spanning_forest(g, np.concatenate([ids, [extra]]))

    def test_rejects_incomplete_forest(self, g):
        ids, _ = reference_kruskal(g)
        with pytest.raises(VerificationError):
            check_spanning_forest(g, ids[:-1])

    def test_rejects_non_minimum(self, g):
        ids, _ = reference_kruskal(g)
        in_forest = set(ids.tolist())
        # swap a forest edge for a strictly heavier non-forest edge that
        # reconnects the same cut (build via replacing max-weight edge
        # with any edge that keeps a forest but raises weight)
        order = np.argsort(g.w[ids])
        for drop in ids[order][::-1]:
            remaining = np.array([e for e in ids if e != drop])
            for cand in np.argsort(g.w)[::-1]:
                if int(cand) in in_forest or g.w[cand] <= g.w[drop]:
                    continue
                trial = np.sort(np.concatenate([remaining, [cand]]))
                try:
                    check_spanning_forest(g, trial)
                except VerificationError as err:
                    if "weight" in str(err):
                        return  # non-minimality detected: test passes
                    continue
                pytest.fail("verifier accepted a non-minimum forest")
        pytest.skip("no heavier replacement edge exists in this instance")

    def test_rejects_out_of_range_id(self, g):
        with pytest.raises(VerificationError):
            check_spanning_forest(g, np.array([g.m]))

    def test_requires_weights(self):
        g = random_graph(10, 20, 1)
        with pytest.raises(VerificationError):
            check_spanning_forest(g, np.empty(0, dtype=np.int64))


class TestPerformanceModel:
    @pytest.fixture(scope="class")
    def g(self):
        return with_random_weights(random_graph(20_000, 80_000, seed=13), seed=14)

    def test_smp_barely_beats_kruskal(self, g):
        # The paper's lock-overhead effect: MST-SMP ~ sequential Kruskal.
        smp = solve_mst_smp(g, smp_for_input(20_000, 16))
        seq = solve_mst_sequential(g, sequential_for_input(20_000))
        ratio = seq.info.sim_time / smp.info.sim_time
        assert 0.5 < ratio < 2.5

    def test_collective_beats_lock_based(self, g):
        cluster = cluster_for_input(20_000, 8, 4)
        coll = solve_mst_collective(g, cluster)
        smp = solve_mst_smp(g, smp_for_input(20_000, 16))
        assert coll.info.sim_time < smp.info.sim_time

    def test_naive_upc_catastrophic(self, g):
        # "We had to abort most of the runs after hours" — modeled time
        # must be enormous relative to the collective rewrite.
        cluster = cluster_for_input(20_000, 8, 4)
        naive = solve_mst_naive_upc(g, cluster)
        coll = solve_mst_collective(g, cluster)
        assert naive.info.sim_time > 30 * coll.info.sim_time

    def test_kruskal_beats_prim_and_boruvka(self, g):
        machine = sequential_for_input(20_000)
        kruskal = solve_mst_sequential(g, machine, "kruskal")
        prim = solve_mst_sequential(g, machine, "prim")
        boruvka = solve_mst_sequential(g, machine, "boruvka")
        assert kruskal.info.sim_time < prim.info.sim_time
        assert kruskal.info.sim_time < boruvka.info.sim_time

    def test_lock_counters_populated(self, g):
        smp = solve_mst_smp(g, smp_for_input(20_000, 16))
        assert smp.info.trace.counters.lock_inits == 20_000
        assert smp.info.trace.counters.lock_ops > 0

    def test_collective_takes_no_locks(self, g):
        coll = solve_mst_collective(g, cluster_for_input(20_000, 8, 4))
        assert coll.info.trace.counters.lock_ops == 0
        assert coll.info.trace.counters.lock_inits == 0

    def test_unknown_algorithm_rejected(self, g):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            solve_mst_sequential(g, algorithm="dijkstra")
