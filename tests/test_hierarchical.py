"""Tests for the hierarchical-collectives future-work feature."""

import numpy as np
import pytest

from repro.collectives import getd, setdmin
from repro.core import OptimizationFlags, cluster_for_input, connected_components
from repro.graph import random_graph
from repro.runtime import CostModel, PGASRuntime, PartitionedArray, hps_cluster


FLAT = OptimizationFlags.all()
HIER = FLAT.with_(hierarchical=True)


class TestSemantics:
    def test_getd_unchanged(self):
        machine = hps_cluster(4, 4)
        rt = PGASRuntime(machine)
        arr = rt.shared_array(np.arange(1000, dtype=np.int64) * 3)
        idx = PartitionedArray.even(
            np.random.default_rng(0).integers(0, 1000, 8000), machine.total_threads
        )
        out = getd(rt, arr, idx, HIER)
        assert np.array_equal(out, arr.data[idx.data])

    def test_setdmin_unchanged(self):
        machine = hps_cluster(4, 4)
        rt = PGASRuntime(machine)
        arr = rt.shared_array(np.arange(1000, dtype=np.int64) * 3)
        rng = np.random.default_rng(1)
        idx = PartitionedArray.even(rng.integers(0, 1000, 4000), machine.total_threads)
        vals = rng.integers(0, 3000, 4000)
        expected = arr.data.copy()
        np.minimum.at(expected, idx.data, vals)
        setdmin(rt, arr, idx, vals, HIER)
        assert np.array_equal(arr.data, expected)

    def test_cc_labels_identical(self):
        g = random_graph(500, 1500, 3)
        a = connected_components(g, hps_cluster(4, 4), opts=FLAT).labels
        b = connected_components(g, hps_cluster(4, 4), opts=HIER).labels
        assert np.array_equal(a, b)

    def test_not_in_all(self):
        # Faithfulness: the paper's "Optimized" configuration is flat.
        assert not OptimizationFlags.all().hierarchical


class TestCostShape:
    def test_setup_immune_to_thread_collapse(self):
        flat_cost = CostModel(hps_cluster(16, 16)).alltoall_setup_time()
        hier_cost = CostModel(hps_cluster(16, 16)).alltoall_setup_time(hierarchical=True)
        assert hier_cost < flat_cost / 50

    def test_congestion_evaluated_at_node_count(self):
        # 16 nodes is far below the 128-thread incast threshold.
        cm = CostModel(hps_cluster(16, 16))
        assert cm.congestion_factor(16) == 1.0
        assert cm.congestion_factor(256) > 100

    def test_fewer_messages(self):
        g = random_graph(2000, 8000, 4)
        machine = hps_cluster(4, 4)
        a = connected_components(g, machine, opts=FLAT)
        b = connected_components(g, machine, opts=HIER)
        assert (
            b.info.trace.counters.remote_messages
            < a.info.trace.counters.remote_messages
        )

    def test_removes_the_16_thread_collapse(self):
        n = 20_000
        g = random_graph(n, 4 * n, seed=5)
        machine = cluster_for_input(n, 16, 16)
        flat = connected_components(g, machine, opts=FLAT)
        hier = connected_components(g, machine, opts=HIER)
        assert hier.info.sim_time < flat.info.sim_time / 3
        flat8 = connected_components(g, cluster_for_input(n, 16, 8), opts=FLAT, tprime=2)
        assert hier.info.sim_time < 2 * flat8.info.sim_time

    def test_single_node_unaffected(self):
        from repro.runtime import smp_node

        g = random_graph(1000, 3000, 6)
        a = connected_components(g, smp_node(8), opts=FLAT)
        b = connected_components(g, smp_node(8), opts=HIER)
        assert a.info.sim_time == pytest.approx(b.info.sim_time, rel=0.05)
