"""Epoch race detector: seeded-race fixtures, clean twins, solver sweeps,
fault-replay phantom checks, and the bit-identical-time guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import EpochRaceDetector, analyzed, current_analysis
from repro.core import connected_components, minimum_spanning_forest
from repro.faults import CrashEvent, FaultPlan
from repro.graph import random_graph, with_random_weights
from repro.listrank import random_list, solve_ranks_cgm, solve_ranks_wyllie
from repro.runtime import PGASRuntime, hps_cluster
from repro.runtime.partitioned import PartitionedArray


def _from_thread(rt, thread, indices):
    """A request partition in which one thread issues all accesses."""
    offsets = np.zeros(rt.s + 1, dtype=np.int64)
    offsets[thread + 1 :] = len(indices)
    return PartitionedArray(np.asarray(indices, dtype=np.int64), offsets)


# -- seeded-race regression fixtures: a deliberately racy toy SPMD kernel ------


def racy_kernel(rt):
    """Thread 0 plain-stores D[0..8); thread 1 reads the same range in the
    SAME epoch — a textbook intra-epoch read-write conflict (plus the
    stores landing with remote affinity)."""
    d = rt.shared_array(np.zeros(64, dtype=np.int64), name="D")
    idx = np.arange(8, dtype=np.int64)
    rt.fine_grained_write(d, _from_thread(rt, 0, idx), idx + 100, combine="store")
    rt.fine_grained_read(d, _from_thread(rt, 1, idx))
    rt.barrier()
    return d


def clean_twin_kernel(rt):
    """The same accesses with a barrier between them: the write epoch
    closes before the read epoch opens, so there is no conflict."""
    d = rt.shared_array(np.zeros(64, dtype=np.int64), name="D")
    idx = np.arange(8, dtype=np.int64)
    rt.fine_grained_write(d, _from_thread(rt, 0, idx), idx + 100, combine="store")
    rt.barrier()
    rt.fine_grained_read(d, _from_thread(rt, 1, idx))
    rt.barrier()
    return d


class TestSeededRace:
    def test_racy_kernel_flagged(self, tiny_cluster):
        with analyzed() as session:
            racy_kernel(PGASRuntime(tiny_cluster))
        assert session.has_races
        rules = {r.rule for r in session.reports}
        assert "RA02" in rules

    def test_report_names_phase_epoch_threads_indices(self, tiny_cluster):
        with analyzed() as session:
            racy_kernel(PGASRuntime(tiny_cluster))
        rw = next(r for r in session.reports if r.rule == "RA02")
        assert rw.array == "D"
        assert rw.epoch == 0
        assert set(rw.threads) >= {0, 1}
        assert (rw.index_lo, rw.index_hi) == (0, 7)
        assert "fine-read" in rw.phases and "fine-write" in rw.phases
        rendered = rw.render()
        for token in ("RA02", "'D'", "epoch=0", "[0..7]"):
            assert token in rendered

    def test_clean_twin_passes(self, tiny_cluster):
        with analyzed() as session:
            clean_twin_kernel(PGASRuntime(tiny_cluster))
        assert not session.has_races, session.render()

    def test_write_write_conflict(self, tiny_cluster):
        with analyzed() as session:
            rt = PGASRuntime(tiny_cluster)
            d = rt.shared_array(np.zeros(64, dtype=np.int64), name="D")
            rt.fine_grained_write(d, _from_thread(rt, 0, [5, 6]), [1, 1], combine="store")
            rt.fine_grained_write(d, _from_thread(rt, 2, [6, 7]), [2, 2], combine="store")
            rt.barrier()
        assert any(r.rule == "RA01" for r in session.reports)
        ww = next(r for r in session.reports if r.rule == "RA01")
        assert ww.index_lo == ww.index_hi == 6

    def test_combining_writes_are_legal(self, tiny_cluster):
        """Concurrent CRCW-min writes to one location are adjudicated, not
        racy — the paper's SetDMin semantics."""
        with analyzed() as session:
            rt = PGASRuntime(tiny_cluster)
            d = rt.shared_array(np.full(64, 99, dtype=np.int64))
            rt.fine_grained_write(d, _from_thread(rt, 0, [6]), [1], combine="min")
            rt.fine_grained_write(d, _from_thread(rt, 2, [6]), [2], combine="min")
            rt.barrier()
        assert not any(r.rule in ("RA01", "RA02") for r in session.reports)

    def test_remote_affinity_write_warns(self, tiny_cluster):
        """An uncoordinated write to another node's block is the RA03
        discipline warning even when no thread conflicts."""
        with analyzed() as session:
            rt = PGASRuntime(tiny_cluster)
            d = rt.shared_array(np.zeros(64, dtype=np.int64))
            # Thread 0 (node 0) writes into the last thread's block (node 1).
            rt.fine_grained_write(d, _from_thread(rt, 0, [60]), [1], combine="store")
            rt.barrier()
        ra03 = [r for r in session.reports if r.rule == "RA03"]
        assert len(ra03) == 1 and not ra03[0].is_race
        assert ra03[0].locations == 1

    def test_barrier_divergence(self, tiny_cluster):
        """SPMD kernels report per-thread arrivals; unequal counts at a
        global barrier are RA04."""
        with analyzed():
            rt = PGASRuntime(tiny_cluster, analyze=True)
            det = rt.analyzer
            for thread in range(rt.s):
                det.record_thread_barrier(thread)
            det.record_thread_barrier(0)  # thread 0 syncs once more
            rt.barrier()
        assert any(r.rule == "RA04" for r in det.reports)
        div = next(r for r in det.reports if r.rule == "RA04")
        assert 0 not in div.threads  # laggards are the *other* threads

    def test_finalize_analyzes_trailing_epoch(self, tiny_cluster):
        """Asynchronous kernels never barrier; the session close must
        still analyze the open epoch."""
        with analyzed() as session:
            rt = PGASRuntime(tiny_cluster)
            d = rt.shared_array(np.zeros(64, dtype=np.int64))
            idx = np.arange(8, dtype=np.int64)
            rt.fine_grained_write(d, _from_thread(rt, 0, idx), idx, combine="store")
            rt.fine_grained_read(d, _from_thread(rt, 1, idx))
            # no barrier
        assert session.has_races


# -- block-vs-fine conflicts ----------------------------------------------------


class TestBlockConflicts:
    def test_owner_block_write_vs_foreign_fine_write(self, tiny_cluster):
        with analyzed() as session:
            rt = PGASRuntime(tiny_cluster)
            d = rt.shared_array(np.zeros(64, dtype=np.int64))
            rt.owner_block_write(d, 7)
            # Thread 3 plain-stores into thread 0's block, same epoch.
            rt.fine_grained_write(d, _from_thread(rt, 3, [2]), [1], combine="store")
            rt.barrier()
        assert any(r.rule == "RA01" for r in session.reports)

    def test_owner_block_accesses_alone_are_clean(self, tiny_cluster):
        """Block helpers touch disjoint per-thread ranges — never racy."""
        with analyzed() as session:
            rt = PGASRuntime(tiny_cluster)
            d = rt.shared_array(np.zeros(64, dtype=np.int64))
            rt.owner_block_read(d)
            rt.owner_block_write(d, 1)
            rt.owner_masked_write(d, np.arange(64) % 2 == 0, 2)
            rt.owner_indexed_write(d, np.array([0, 20, 40, 60]), 3)
            rt.barrier()
        assert not session.has_races, session.render()


# -- the real solvers under the detector ---------------------------------------


@pytest.fixture(scope="module")
def cc_graph():
    return random_graph(1500, 6000, seed=7)


class TestSolverSweep:
    def test_collective_cc_race_free(self, small_cluster, cc_graph):
        with analyzed() as session:
            connected_components(cc_graph, small_cluster, impl="collective")
        assert not session.has_races, session.render()

    def test_sv_race_free(self, small_cluster, cc_graph):
        with analyzed() as session:
            connected_components(cc_graph, small_cluster, impl="sv")
        assert not session.has_races, session.render()

    def test_collective_mst_race_free(self, small_cluster, cc_graph):
        gw = with_random_weights(cc_graph, seed=8)
        with analyzed() as session:
            minimum_spanning_forest(gw, small_cluster, impl="collective")
        assert not session.has_races, session.render()

    def test_listrank_race_free(self, small_cluster):
        lst = random_list(600, seed=3)
        with analyzed() as session:
            solve_ranks_wyllie(lst, small_cluster)
            solve_ranks_cgm(lst, small_cluster)
        assert not session.has_races, session.render()

    def test_naive_upc_cc_is_flagged(self, small_cluster, cc_graph):
        """The naive translation IS the hazard the paper replaces: the
        detector must call out its uncoordinated remote traffic."""
        with analyzed() as session:
            connected_components(cc_graph, small_cluster, impl="naive")
        rules = {r.rule for r in session.reports}
        assert "RA03" in rules
        assert session.has_races  # async epoch mixes reads and writes

    def test_detector_does_not_change_modeled_time(self, small_cluster, cc_graph):
        base = connected_components(cc_graph, small_cluster, impl="collective")
        with analyzed():
            under = connected_components(cc_graph, small_cluster, impl="collective")
        assert under.info.sim_time == base.info.sim_time
        np.testing.assert_array_equal(under.labels, base.labels)

    def test_detector_does_not_change_mst_time(self, small_cluster, cc_graph):
        gw = with_random_weights(cc_graph, seed=8)
        base = minimum_spanning_forest(gw, small_cluster, impl="collective")
        with analyzed():
            under = minimum_spanning_forest(gw, small_cluster, impl="collective")
        assert under.info.sim_time == base.info.sim_time
        assert under.total_weight == base.total_weight


# -- barrier-epoch accounting under fault injection ----------------------------


class TestCrashReplayEpochs:
    def _crash_plan(self, graph, machine, impl):
        solver = connected_components if impl == "cc" else None
        if impl == "cc":
            base = solver(graph, machine, impl="collective")
        else:
            base = minimum_spanning_forest(graph, machine, impl="collective")
        return FaultPlan(
            seed=1, crashes=(CrashEvent(thread=3, at_time=base.info.sim_time * 0.3),)
        ), base

    def test_cc_crash_replay_no_phantom_conflicts(self, small_cluster, cc_graph):
        plan, base = self._crash_plan(cc_graph, small_cluster, "cc")
        with analyzed() as session:
            res = connected_components(
                cc_graph, small_cluster, impl="collective", faults=plan
            )
        assert res.info.trace.counters.crashes >= 1
        assert not session.has_races, session.render()
        np.testing.assert_array_equal(res.labels, base.labels)

    def test_mst_crash_replay_no_phantom_conflicts(self, small_cluster, cc_graph):
        gw = with_random_weights(cc_graph, seed=8)
        plan, base = self._crash_plan(gw, small_cluster, "mst")
        with analyzed() as session:
            res = minimum_spanning_forest(
                gw, small_cluster, impl="collective", faults=plan
            )
        assert res.info.trace.counters.crashes >= 1
        assert not session.has_races, session.render()
        assert res.total_weight == base.total_weight

    def test_replayed_rounds_register_fresh_epochs(self, small_cluster, cc_graph):
        """A crashed run must close strictly more epochs than a clean one
        (the replayed rounds re-register; nothing is double-counted)."""
        with analyzed() as clean:
            connected_components(cc_graph, small_cluster, impl="collective")
        plan, _ = self._crash_plan(cc_graph, small_cluster, "cc")
        with analyzed() as crashed:
            connected_components(cc_graph, small_cluster, impl="collective", faults=plan)
        assert crashed.detectors[0].epoch > clean.detectors[0].epoch


# -- session/runtime plumbing ---------------------------------------------------


class TestPlumbing:
    def test_analyze_flag_without_session(self, tiny_cluster):
        rt = PGASRuntime(tiny_cluster, analyze=True)
        assert isinstance(rt.analyzer, EpochRaceDetector)
        d = rt.shared_array(np.zeros(16, dtype=np.int64))
        idx = np.arange(4, dtype=np.int64)
        rt.fine_grained_write(d, _from_thread(rt, 0, idx), idx, combine="store")
        rt.fine_grained_read(d, _from_thread(rt, 1, idx))
        rt.analyzer.finalize()
        assert rt.analyzer.has_races

    def test_no_analyzer_by_default(self, tiny_cluster):
        assert PGASRuntime(tiny_cluster).analyzer is None
        assert current_analysis() is None

    def test_shared_detector_instance(self, tiny_cluster):
        det = EpochRaceDetector()
        rt = PGASRuntime(tiny_cluster, analyze=det)
        assert rt.analyzer is det

    def test_array_names(self, tiny_cluster):
        rt = PGASRuntime(tiny_cluster, analyze=True)
        named = rt.shared_array(np.zeros(8, dtype=np.int64), name="labels")
        anon = rt.shared_array(np.zeros(8, dtype=np.int64))
        assert named.name == "labels"
        assert anon.name and anon.name.startswith("shared")

    def test_finalize_idempotent(self, tiny_cluster):
        with analyzed() as session:
            racy_kernel(PGASRuntime(tiny_cluster))
        n = len(session.reports)
        session.finalize()
        assert len(session.reports) == n

    def test_event_cap_truncates_gracefully(self, tiny_cluster):
        det = EpochRaceDetector(max_index_events=10)
        rt = PGASRuntime(tiny_cluster, analyze=det)
        d = rt.shared_array(np.zeros(64, dtype=np.int64))
        idx = np.arange(32, dtype=np.int64)
        rt.fine_grained_write(d, _from_thread(rt, 0, idx), idx, combine="store")
        rt.barrier()
        assert det.truncated_epochs == [0]
        assert "truncated" in det.render()
