"""Tests for virtual-thread simulation (repro.scheduling.virtual_threads)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.runtime import CacheParams, PGASRuntime, hps_cluster
from repro.scheduling import (
    charge_local_serve,
    simulate_set_associative,
    sub_block_elems,
    virtual_gather,
)


class TestVirtualGather:
    def test_matches_fancy_indexing(self):
        rng = np.random.default_rng(0)
        d = rng.integers(0, 100, 1000)
        r = rng.integers(0, 1000, 5000)
        out, trace = virtual_gather(d, r, 8)
        assert np.array_equal(out, d[r])

    def test_tprime_one_is_identity_trace(self):
        d = np.arange(10)
        r = np.array([5, 2, 5])
        out, trace = virtual_gather(d, r, 1)
        assert np.array_equal(trace, r)
        assert np.array_equal(out, d[r])

    def test_trace_is_grouped_by_subblock(self):
        d = np.arange(100)
        r = np.array([90, 5, 95, 2])
        _, trace = virtual_gather(d, r, 10)
        # grouped: low block first, stable order inside
        assert trace.tolist() == [5, 2, 90, 95]

    def test_trace_reduces_real_misses(self):
        cache = CacheParams(size_bytes=512, line_bytes=8, associativity=2)
        rng = np.random.default_rng(1)
        d = np.arange(4000)
        r = rng.integers(0, 4000, 20_000)
        _, t1 = virtual_gather(d, r, 1)
        _, t16 = virtual_gather(d, r, 16)
        m1 = simulate_set_associative(t1, cache).misses
        m16 = simulate_set_associative(t16, cache).misses
        assert m16 < m1

    def test_invalid_tprime(self):
        with pytest.raises(ConfigError):
            virtual_gather(np.arange(10), np.array([0]), 0)

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            virtual_gather(np.arange(10), np.array([10]), 2)

    @given(
        n=st.integers(1, 200),
        k=st.integers(0, 300),
        tprime=st.integers(1, 20),
        seed=st.integers(0, 10),
    )
    def test_property_equivalence(self, n, k, tprime, seed):
        rng = np.random.default_rng(seed)
        d = rng.integers(0, 1000, n)
        r = rng.integers(0, n, k)
        out, trace = virtual_gather(d, r, tprime)
        assert np.array_equal(out, d[r])
        assert np.array_equal(np.sort(trace), np.sort(r))


class TestSubBlockElems:
    def test_divides(self):
        assert float(sub_block_elems(100, 4)) == 25.0

    def test_floor_one(self):
        assert float(sub_block_elems(2, 10)) == 1.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            sub_block_elems(10, 0)


class TestChargeLocalServe:
    def test_charges_copy_category(self):
        rt = PGASRuntime(hps_cluster(2, 2))
        charge_local_serve(rt, np.full(4, 1000.0), 10_000.0, 1, True)
        assert rt.trace.category_seconds["Copy"] > 0

    def test_tprime_adds_sort_charge(self):
        rt = PGASRuntime(hps_cluster(2, 2))
        charge_local_serve(rt, np.full(4, 1000.0), 10_000.0, 4, True)
        assert rt.trace.category_seconds["Sort"] > 0

    def test_localcpy_cheaper(self):
        def run(localcpy):
            rt = PGASRuntime(hps_cluster(2, 2))
            charge_local_serve(rt, np.full(4, 10_000.0), 100_000.0, 1, localcpy)
            return rt.elapsed

        assert run(True) < run(False)

    def test_distinct_relief(self):
        def run(distinct):
            rt = PGASRuntime(hps_cluster(2, 2))
            charge_local_serve(
                rt, np.full(4, 10_000.0), 1e6, 1, True, distinct=distinct
            )
            return rt.elapsed

        duplicated = run(np.full(4, 10.0))
        unique = run(np.full(4, 10_000.0))
        assert duplicated < unique

    def test_invalid_tprime(self):
        rt = PGASRuntime(hps_cluster(2, 2))
        with pytest.raises(ConfigError):
            charge_local_serve(rt, np.full(4, 10.0), 100.0, 0, True)
