"""Correctness of every MST implementation against reference Kruskal,
scipy, and Prim across graph families and adversarial weight patterns."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    EdgeList,
    cycle_graph,
    disjoint_components_graph,
    empty_graph,
    path_graph,
    random_graph,
    star_graph,
    with_random_weights,
)
from repro.mst import (
    check_spanning_forest,
    reference_kruskal,
    reference_msf_weight,
    reference_prim_weight,
    scipy_msf,
    solve_mst_collective,
    solve_mst_naive_upc,
    solve_mst_sequential,
    solve_mst_smp,
)
from repro.runtime import hps_cluster, smp_node


def weighted(graph, seed=1, max_weight=None):
    kwargs = {} if max_weight is None else {"max_weight": max_weight}
    return with_random_weights(graph, seed, **kwargs)


WEIGHTED_FAMILY = {
    "path": lambda: weighted(path_graph(40)),
    "cycle": lambda: weighted(cycle_graph(25)),
    "star": lambda: weighted(star_graph(30)),
    "blocks": lambda: weighted(disjoint_components_graph(4, 12, seed=2)),
    "random": lambda: weighted(random_graph(200, 500, seed=7)),
    "dense": lambda: weighted(random_graph(50, 700, seed=8)),
    "ties": lambda: weighted(random_graph(120, 350, seed=9), max_weight=3),
    "zero-weights": lambda: weighted(random_graph(80, 200, seed=10), max_weight=1),
    "isolated": lambda: weighted(disjoint_components_graph(2, 8, seed=3)),
}

SOLVERS = {
    "collective": lambda g: solve_mst_collective(g, hps_cluster(2, 2)),
    "collective-8thr": lambda g: solve_mst_collective(g, hps_cluster(4, 2)),
    "smp": lambda g: solve_mst_smp(g, smp_node(8)),
    "naive-upc": lambda g: solve_mst_naive_upc(g, hps_cluster(2, 2)),
    "kruskal": lambda g: solve_mst_sequential(g, algorithm="kruskal"),
    "prim": lambda g: solve_mst_sequential(g, algorithm="prim"),
    "boruvka": lambda g: solve_mst_sequential(g, algorithm="boruvka"),
}


@pytest.fixture(params=sorted(WEIGHTED_FAMILY))
def wgraph(request):
    return WEIGHTED_FAMILY[request.param]()


@pytest.mark.parametrize("solver", sorted(SOLVERS), ids=str)
def test_valid_minimum_forest(wgraph, solver):
    res = SOLVERS[solver](wgraph)
    check_spanning_forest(wgraph, res.edge_ids)
    assert res.total_weight == reference_msf_weight(wgraph)


def test_references_agree(wgraph):
    ids, total = reference_kruskal(wgraph)
    assert total == reference_prim_weight(wgraph)
    assert total == scipy_msf(wgraph)[1]


class TestEdgeCases:
    def test_empty_graph(self):
        g = EdgeList(0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                     np.empty(0, dtype=np.int64))
        res = solve_mst_collective(g, hps_cluster(2, 2))
        assert res.num_edges == 0 and res.total_weight == 0

    def test_no_edges(self):
        g = empty_graph(10).with_weights(np.empty(0, dtype=np.int64))
        res = solve_mst_collective(g, hps_cluster(2, 2))
        assert res.num_edges == 0

    def test_unweighted_rejected(self):
        g = random_graph(10, 20, 1)
        with pytest.raises(GraphError):
            solve_mst_collective(g, hps_cluster(2, 2))
        with pytest.raises(GraphError):
            solve_mst_sequential(g)

    def test_parallel_edges_pick_min_weight(self):
        g = EdgeList(
            2, np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([30, 10, 20])
        )
        res = solve_mst_collective(g, hps_cluster(2, 2))
        assert res.total_weight == 10
        assert res.edge_ids.tolist() == [1]

    def test_self_loops_never_chosen(self):
        g = EdgeList(3, np.array([0, 1, 1]), np.array([1, 1, 2]), np.array([5, 0, 7]))
        res = solve_mst_collective(g, hps_cluster(2, 2))
        assert 1 not in res.edge_ids.tolist()
        assert res.total_weight == 12

    def test_labels_match_components(self):
        g = weighted(disjoint_components_graph(3, 10, seed=4))
        res = solve_mst_collective(g, hps_cluster(2, 2))
        assert np.unique(res.labels).size == 3

    def test_single_edge(self):
        g = EdgeList(2, np.array([0]), np.array([1]), np.array([42]))
        res = solve_mst_collective(g, hps_cluster(2, 2))
        assert res.total_weight == 42 and res.num_edges == 1


class TestDeterminism:
    def test_same_forest_across_machines(self):
        g = weighted(random_graph(200, 600, seed=5), seed=6)
        forests = [
            solve_mst_collective(g, m).edge_ids
            for m in (hps_cluster(2, 2), hps_cluster(8, 1), hps_cluster(1, 8))
        ]
        assert np.array_equal(forests[0], forests[1])
        assert np.array_equal(forests[0], forests[2])

    def test_collective_and_lock_based_agree_exactly(self):
        g = weighted(random_graph(150, 400, seed=5), seed=6, max_weight=5)  # ties!
        a = solve_mst_collective(g, hps_cluster(2, 2)).edge_ids
        b = solve_mst_smp(g, smp_node(4)).edge_ids
        assert np.array_equal(a, b)

    def test_matches_reference_kruskal_edge_set_on_unique_weights(self):
        # With all-distinct weights the MSF is unique: edge sets match.
        rng = np.random.default_rng(3)
        base = random_graph(100, 300, seed=2)
        w = rng.permutation(300).astype(np.int64)  # distinct weights
        g = base.with_weights(w)
        ref_ids, _ = reference_kruskal(g)
        got = solve_mst_collective(g, hps_cluster(2, 2)).edge_ids
        assert np.array_equal(np.sort(got), ref_ids)

    def test_tie_break_matches_reference_kruskal(self):
        # Even WITH ties, the library's (weight, edge id) order is total,
        # so Boruvka and Kruskal choose the same forest.
        g = weighted(random_graph(100, 300, seed=2), seed=3, max_weight=2)
        ref_ids, _ = reference_kruskal(g)
        got = solve_mst_collective(g, hps_cluster(2, 2)).edge_ids
        assert np.array_equal(np.sort(got), ref_ids)


@given(
    n=st.integers(2, 60),
    density=st.floats(0.5, 4.0),
    seed=st.integers(0, 15),
    max_w=st.sampled_from([1, 3, 100, 2**31 - 1]),
)
def test_property_collective_is_minimum_forest(n, density, seed, max_w):
    m = min(int(density * n), n * (n - 1) // 2)
    g = weighted(random_graph(n, m, seed), seed + 1, max_weight=max_w)
    res = solve_mst_collective(g, hps_cluster(2, 2))
    check_spanning_forest(g, res.edge_ids)
