"""Intra-run sharding: bit-identity, primitives, and segment lifecycle.

The two promises of :mod:`repro.perf.shard`:

* a sharded solve is **bit**-identical to the serial solve (golden
  fingerprints, any worker count) — sharding is wall-clock machinery;
* no code path can leak a ``/dev/shm`` segment: segments are unlinked
  the moment every worker has attached, so normal exits, exception
  exits, and even ``kill -9`` of the whole process tree leave nothing
  behind.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import UnrecoverableLossError, UsageError
from repro.perf import clear_derived_caches, global_arena
from repro.perf.golden import SCENARIOS, Scenario, scenario_fingerprint
from repro.perf.shard import (
    SEGMENT_PREFIX,
    ShardedSession,
    current_session,
    sharded_session,
)
from repro.runtime import PGASRuntime, hps_cluster

#: Thresholds zeroed: every array is adopted, every op goes to the pool.
_EAGER = dict(min_array_elems=0, min_request_elems=0)


def _shm_entries() -> list:
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return [e for e in os.listdir(root) if e.startswith(SEGMENT_PREFIX)]


def _scenario_id(scenario: Scenario) -> str:
    return scenario.name


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_derived_caches()
    global_arena().clear()
    yield
    assert current_session() is None
    assert _shm_entries() == []


# -- golden bit-identity ------------------------------------------------------


@pytest.mark.parametrize("scenario", SCENARIOS, ids=_scenario_id)
def test_sharded_solve_is_bit_identical(scenario):
    golden = scenario_fingerprint(scenario)
    clear_derived_caches()
    global_arena().clear()
    with ShardedSession(2, **_EAGER) as session:
        sharded = scenario_fingerprint(scenario)
        stats = session.stats()
    assert sharded == golden, f"{scenario.name}: sharded solve diverged"
    assert stats["workers"] == 2 or stats["note"]
    if stats["workers"] == 2:
        assert stats["adopted_arrays"] > 0
        assert stats["pool_ops"] > 0


def test_bit_identity_is_worker_count_invariant():
    scenario = SCENARIOS[0]
    golden = scenario_fingerprint(scenario)
    for workers in (2, 3):
        clear_derived_caches()
        global_arena().clear()
        with ShardedSession(workers, **_EAGER):
            assert scenario_fingerprint(scenario) == golden


# -- primitives against the serial kernels ------------------------------------


@pytest.fixture
def shard_runtime():
    with ShardedSession(2, **_EAGER) as session:
        yield session, PGASRuntime(hps_cluster(4, 2))


def test_adopted_scatter_min_matches_serial(shard_runtime, rng):
    session, rt = shard_runtime
    init = rng.integers(0, 1_000_000, size=3000, dtype=np.int64)
    idx = rng.integers(0, 3000, size=5000, dtype=np.int64)
    vals = rng.integers(0, 1_000_000, size=5000, dtype=np.int64)
    serial = init.copy()
    np.minimum.at(serial, idx, vals)
    expected_changed = int(np.count_nonzero(serial != init))

    arr = rt.shared_array(init.copy())
    assert session.covers(arr)
    changed = arr.scatter_min(idx, vals)
    assert changed == expected_changed
    np.testing.assert_array_equal(arr.data, serial)
    assert session.stats()["pool_ops"] >= 1


def test_adopted_scatter_store_min_matches_serial(shard_runtime, rng):
    session, rt = shard_runtime
    init = rng.integers(0, 100, size=3000, dtype=np.int64)
    idx = rng.integers(0, 3000, size=5000, dtype=np.int64)
    # Values above the originals too: store_min may *raise* a label.
    vals = rng.integers(0, 1_000_000, size=5000, dtype=np.int64)
    # Naive adjudication: each target gets the min of the values aimed at it.
    serial = init.copy()
    prop = {}
    for i, v in zip(idx, vals):
        prop[int(i)] = min(prop.get(int(i), v), int(v))
    for i, v in prop.items():
        serial[i] = v

    arr = rt.shared_array(init.copy())
    changed = arr.scatter_store_min(idx, vals)
    np.testing.assert_array_equal(arr.data, serial)
    assert changed == int(np.count_nonzero(serial != init))


def test_adopted_gather_matches_serial(shard_runtime, rng):
    session, rt = shard_runtime
    data = rng.integers(0, 1_000_000, size=4000, dtype=np.int64)
    idx = rng.integers(0, 4000, size=6000, dtype=np.int64)
    arr = rt.shared_array(data.copy())
    np.testing.assert_array_equal(arr.gather(idx), data[idx])
    assert session.stats()["pool_ops"] >= 1


def test_thresholds_and_dtype_gates_return_none(rng):
    with ShardedSession(2, min_array_elems=0, min_request_elems=100) as session:
        rt = PGASRuntime(hps_cluster(2, 2))
        arr = rt.shared_array(np.arange(2000, dtype=np.int64))
        assert session.covers(arr)
        # Below the per-request threshold: serial path.
        assert session.try_scatter_min(arr, np.array([0]), np.array([1])) is None
        # Float payload: scatter_min adjudication is integer-only.
        farr = rt.shared_array(np.zeros(2000))
        big = np.zeros(500, dtype=np.int64)
        assert session.try_scatter_min(farr, big, np.zeros(500)) is None
        # Un-adopted array (below min_array_elems after re-gating).
        session.min_array_elems = 1 << 30
        small = rt.shared_array(np.arange(2000, dtype=np.int64))
        assert not session.covers(small)
        assert session.try_gather(small, big) is None


# -- lifecycle ----------------------------------------------------------------


def test_no_shm_entries_even_while_active(rng):
    with ShardedSession(2, **_EAGER) as session:
        rt = PGASRuntime(hps_cluster(2, 2))
        arr = rt.shared_array(rng.integers(0, 100, size=5000, dtype=np.int64))
        before = arr.data.copy()
        # Segments are unlinked as soon as the pool attaches: the
        # /dev/shm directory is clean *during* the session, not just after.
        assert _shm_entries() == []
        arr.gather(np.arange(5000, dtype=np.int64))
    # After shutdown the array owns private memory again, contents intact.
    np.testing.assert_array_equal(arr.data, before)
    assert arr.data.base is None


def test_exception_exit_cleans_up(rng):
    data = rng.integers(0, 100, size=5000, dtype=np.int64)
    with pytest.raises(UnrecoverableLossError):
        with ShardedSession(2, **_EAGER) as session:
            rt = PGASRuntime(hps_cluster(2, 2))
            arr = rt.shared_array(data.copy())
            assert session.covers(arr)
            raise UnrecoverableLossError(1, 0.5, "no resilient session")
    assert current_session() is None
    assert not session.active
    assert _shm_entries() == []
    np.testing.assert_array_equal(arr.data, data)


def test_shutdown_is_idempotent():
    session = ShardedSession(2, **_EAGER)
    with session:
        pass
    session.shutdown()
    session.shutdown()
    assert not session.active


def test_kill_minus_nine_leaks_nothing(tmp_path):
    """SIGKILL the whole session mid-flight: the unlink-on-attach
    protocol means there is nothing left to clean up."""
    script = textwrap.dedent(
        f"""
        import os, sys
        import numpy as np
        from repro.perf.shard import ShardedSession
        from repro.runtime import PGASRuntime, hps_cluster

        session = ShardedSession(2, min_array_elems=0, min_request_elems=0)
        session.__enter__()
        rt = PGASRuntime(hps_cluster(2, 2))
        arr = rt.shared_array(np.arange(20_000, dtype=np.int64))
        arr.scatter_min(
            np.arange(20_000, dtype=np.int64),
            np.zeros(20_000, dtype=np.int64),
        )
        print("READY", flush=True)
        sys.stdin.readline()  # never returns; parent SIGKILLs us here
        """
    )
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        assert proc.stdout.readline().strip() == b"READY"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - defensive
            proc.kill()
            proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL
    assert _shm_entries() == []


# -- degradation and misuse ---------------------------------------------------


def test_single_worker_degrades_to_noop(rng):
    with ShardedSession(1) as session:
        assert not session.active
        assert "disabled" in session.note
        rt = PGASRuntime(hps_cluster(2, 2))
        arr = rt.shared_array(rng.integers(0, 9, size=50_000, dtype=np.int64))
        assert not session.adopt(arr)
        assert not session.covers(arr)
        idx = np.arange(50_000, dtype=np.int64)
        assert session.try_gather(arr, idx) is None
        assert session.try_scatter_min(arr, idx, arr.data.copy()) is None
        stats = session.stats()
        assert stats["workers"] == 0 and stats["pool_ops"] == 0


def test_sharded_session_helper_is_noop_below_two():
    with sharded_session(0) as session:
        assert session is None
    with sharded_session(1) as session:
        assert session is None
    with sharded_session(2, **_EAGER) as session:
        assert isinstance(session, ShardedSession)


def test_sessions_do_not_nest():
    with ShardedSession(2, **_EAGER):
        with pytest.raises(UsageError, match="do not nest"):
            with ShardedSession(2, **_EAGER):
                pass  # pragma: no cover


def test_negative_workers_rejected():
    with pytest.raises(UsageError, match="worker count"):
        ShardedSession(-1)


def test_stats_shape():
    with ShardedSession(2, **_EAGER) as session:
        stats = session.stats()
    assert set(stats) == {
        "requested_workers",
        "workers",
        "adopted_arrays",
        "pool_ops",
        "note",
    }
