"""Tests for the GetD collective (repro.collectives.getd)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import CollectiveContext, getd
from repro.core import OptimizationFlags
from repro.errors import CollectiveError
from repro.runtime import PGASRuntime, PartitionedArray, hps_cluster, smp_node


def make_setup(machine, n=500, k=2000, seed=0):
    rt = PGASRuntime(machine)
    arr = rt.shared_array(np.arange(n, dtype=np.int64) * 3)
    idx = PartitionedArray.even(
        np.random.default_rng(seed).integers(0, n, k), machine.total_threads
    )
    return rt, arr, idx


MACHINES = [hps_cluster(2, 2), hps_cluster(4, 1), hps_cluster(1, 4), smp_node(8)]


class TestCorrectness:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_matches_fancy_indexing(self, machine):
        rt, arr, idx = make_setup(machine)
        out = getd(rt, arr, idx)
        assert np.array_equal(out, arr.data[idx.data])

    @pytest.mark.parametrize("opts", [OptimizationFlags.none(), OptimizationFlags.all()])
    def test_opts_do_not_change_semantics(self, opts):
        rt, arr, idx = make_setup(hps_cluster(2, 2))
        out = getd(rt, arr, idx, opts, ctx=CollectiveContext(), cache_key="k", hot_value=0)
        assert np.array_equal(out, arr.data[idx.data])

    @pytest.mark.parametrize("tprime", [1, 2, 7, 16])
    def test_tprime_does_not_change_semantics(self, tprime):
        rt, arr, idx = make_setup(hps_cluster(2, 2))
        out = getd(rt, arr, idx, OptimizationFlags.all(), tprime=tprime)
        assert np.array_equal(out, arr.data[idx.data])

    @pytest.mark.parametrize("sort_method", ["count", "quick"])
    def test_sort_method_does_not_change_semantics(self, sort_method):
        rt, arr, idx = make_setup(hps_cluster(2, 2))
        out = getd(rt, arr, idx, sort_method=sort_method)
        assert np.array_equal(out, arr.data[idx.data])

    def test_empty_requests(self):
        rt, arr, _ = make_setup(hps_cluster(2, 2))
        idx = PartitionedArray.empty_like(rt.s)
        out = getd(rt, arr, idx)
        assert out.size == 0

    def test_uneven_request_segments(self):
        rt, arr, _ = make_setup(hps_cluster(2, 2), n=100)
        idx = PartitionedArray(
            np.array([5, 5, 5, 99], dtype=np.int64), np.array([0, 3, 3, 3, 4])
        )
        out = getd(rt, arr, idx)
        assert out.tolist() == [15, 15, 15, 297]

    def test_part_count_mismatch_rejected(self):
        rt, arr, _ = make_setup(hps_cluster(2, 2))
        idx = PartitionedArray.even(np.zeros(8, dtype=np.int64), 2)
        with pytest.raises(CollectiveError):
            getd(rt, arr, idx)

    def test_unknown_sort_rejected(self):
        rt, arr, idx = make_setup(hps_cluster(2, 2))
        with pytest.raises(CollectiveError):
            getd(rt, arr, idx, sort_method="bogus")


class TestOffload:
    def test_hot_requests_answered_locally(self):
        machine = hps_cluster(2, 2)
        rt, arr, _ = make_setup(machine, n=100)
        arr.data[0] = 0
        idx = PartitionedArray.even(np.zeros(400, dtype=np.int64), machine.total_threads)
        out = getd(rt, arr, idx, OptimizationFlags.only("offload"), hot_value=0)
        assert np.all(out == 0)

    def test_offload_reduces_messages(self):
        machine = hps_cluster(2, 2)
        data = np.zeros(400, dtype=np.int64)  # everything targets index 0

        def run(opts, hot):
            rt = PGASRuntime(machine)
            arr = rt.shared_array(np.zeros(100, dtype=np.int64))
            idx = PartitionedArray.even(data.copy(), machine.total_threads)
            getd(rt, arr, idx, opts, hot_value=hot)
            return rt.counters.remote_bytes, rt.elapsed

        bytes_off, time_off = run(OptimizationFlags.only("offload"), 0)
        bytes_on, time_on = run(OptimizationFlags.none(), None)
        assert bytes_off < bytes_on
        assert time_off < time_on

    def test_offload_without_hot_value_is_inert(self):
        machine = hps_cluster(2, 2)
        rt, arr, idx = make_setup(machine)
        out = getd(rt, arr, idx, OptimizationFlags.only("offload"), hot_value=None)
        assert np.array_equal(out, arr.data[idx.data])

    def test_custom_hot_index(self):
        machine = hps_cluster(2, 2)
        rt, arr, _ = make_setup(machine, n=100)
        idx = PartitionedArray.even(np.full(40, 7, dtype=np.int64), machine.total_threads)
        out = getd(
            rt, arr, idx, OptimizationFlags.only("offload"), hot_value=21, hot_index=7
        )
        assert np.all(out == 21)


class TestCommunicationEfficiency:
    def test_at_most_one_message_per_thread_pair(self):
        machine = hps_cluster(4, 2)
        rt, arr, idx = make_setup(machine, n=1000, k=50_000)
        getd(rt, arr, idx)
        s, t = machine.total_threads, machine.threads_per_node
        # Setup writes two matrix entries per ordered thread pair, and the
        # payload is at most one message per cross-node pair — never a
        # per-element count.
        setup_msgs = 2 * s * (s - 1)
        payload_msgs = s * (s - t)
        assert rt.counters.remote_messages <= setup_msgs + payload_msgs
        assert rt.counters.remote_messages < idx.total  # << one per element

    def test_coalesced_beats_fine_grained(self):
        machine = hps_cluster(4, 2)
        rt1, arr1, idx1 = make_setup(machine, n=1000, k=50_000)
        rt2, arr2, idx2 = make_setup(machine, n=1000, k=50_000)
        base1, base2 = rt1.elapsed, rt2.elapsed
        getd(rt1, arr1, idx1)
        rt2.fine_grained_read(arr2, idx2)
        assert rt1.elapsed - base1 < (rt2.elapsed - base2) / 5

    def test_rdma_reduces_comm_time(self):
        machine = hps_cluster(4, 2)

        def run(opts):
            rt, arr, idx = make_setup(machine, n=1000, k=50_000)
            before = dict(rt.trace.category_seconds)
            getd(rt, arr, idx, opts)
            return rt.trace.category_seconds["Comm"] - before["Comm"]

        assert run(OptimizationFlags.only("rdma")) <= run(OptimizationFlags.none())

    def test_circular_no_worse_than_linear(self):
        machine = hps_cluster(4, 2)

        def run(opts):
            rt, arr, idx = make_setup(machine, n=1000, k=50_000)
            getd(rt, arr, idx, opts)
            return rt.trace.category_seconds["Comm"]

        assert run(OptimizationFlags.only("circular")) <= run(OptimizationFlags.none())

    def test_single_node_has_no_remote_traffic(self):
        rt, arr, idx = make_setup(smp_node(8))
        getd(rt, arr, idx)
        assert rt.counters.remote_messages == 0
        assert rt.counters.remote_bytes == 0


class TestIdCache:
    def test_cache_hit_skips_work(self):
        machine = hps_cluster(2, 2)
        ctx = CollectiveContext()
        rt, arr, idx = make_setup(machine)
        opts = OptimizationFlags.only("ids")
        getd(rt, arr, idx, opts, ctx, "edges.u")
        work_after_first = rt.trace.category_seconds["Work"]
        getd(rt, arr, idx, opts, ctx, "edges.u")
        work_delta = rt.trace.category_seconds["Work"] - work_after_first
        assert work_delta == pytest.approx(0.0, abs=1e-12)

    def test_cache_invalidated_on_length_change(self):
        machine = hps_cluster(2, 2)
        ctx = CollectiveContext()
        rt, arr, idx = make_setup(machine)
        opts = OptimizationFlags.only("ids")
        getd(rt, arr, idx, opts, ctx, "edges.u")
        smaller = idx.filter(np.arange(idx.total) % 2 == 0)
        out = getd(rt, arr, smaller, opts, ctx, "edges.u")
        assert np.array_equal(out, arr.data[smaller.data])

    def test_intrinsic_cost_without_ids(self):
        machine = hps_cluster(2, 2)

        def work(opts):
            rt, arr, idx = make_setup(machine, k=20_000)
            base = rt.trace.category_seconds["Work"]
            getd(rt, arr, idx, opts)
            return rt.trace.category_seconds["Work"] - base

        assert work(OptimizationFlags.none()) > work(OptimizationFlags.only("ids"))

    def test_context_invalidate(self):
        ctx = CollectiveContext()
        ctx.id_cache["a"] = (3, np.arange(3))
        ctx.id_cache["b"] = (2, np.arange(2))
        ctx.invalidate("a")
        assert "a" not in ctx.id_cache and "b" in ctx.id_cache
        ctx.invalidate()
        assert not ctx.id_cache


@given(
    n=st.integers(2, 200),
    seed=st.integers(0, 10),
    nodes=st.sampled_from([1, 2, 4]),
    threads=st.sampled_from([1, 2, 3]),
)
def test_property_getd_equals_gather(n, seed, nodes, threads):
    machine = hps_cluster(nodes, threads)
    rt = PGASRuntime(machine)
    arr = rt.shared_array(np.random.default_rng(seed).integers(0, 10**6, n))
    k = np.random.default_rng(seed + 1).integers(0, 4 * n)
    idx = PartitionedArray.even(
        np.random.default_rng(seed + 2).integers(0, n, int(k)), machine.total_threads
    )
    out = getd(rt, arr, idx, OptimizationFlags.all(), tprime=2, hot_value=None)
    assert np.array_equal(out, arr.data[idx.data])
