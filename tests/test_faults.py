"""Tests for the fault-injection subsystem (repro.faults).

Covers the declarative plan, the deterministic injector, retry-policy
arithmetic, the zero-overhead default path, end-to-end correctness of
CC/MST under every fault class, and crash-and-recover replay.
"""

import numpy as np
import pytest

import repro
from repro import (
    ConfigError,
    CrashEvent,
    FaultError,
    FaultPlan,
    NicDegradation,
    PGASRuntime,
    RetryPolicy,
    ThreadCrash,
    connected_components,
    hps_cluster,
    minimum_spanning_forest,
    random_graph,
    with_random_weights,
)
from repro.faults import FaultInjector, RoundCheckpointer

MACHINE = hps_cluster(4, 2)


@pytest.fixture(scope="module")
def g():
    return random_graph(2_000, 8_000, seed=3)


@pytest.fixture(scope="module")
def gw(g):
    return with_random_weights(g, seed=4)


class TestPlanValidation:
    def test_loss_must_be_probability(self):
        with pytest.raises(ConfigError):
            FaultPlan(loss=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(loss=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(link_loss={0: 2.0})

    def test_straggler_factor_must_be_at_least_one(self):
        with pytest.raises(ConfigError):
            FaultPlan(stragglers={0: 0.5})

    def test_degradation_window_ordering(self):
        with pytest.raises(ConfigError):
            NicDegradation(node=0, start=2.0, end=1.0)

    def test_crash_times_non_negative(self):
        with pytest.raises(ConfigError):
            CrashEvent(thread=0, at_time=-1.0)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)

    def test_any_faults(self):
        assert not FaultPlan.none().any_faults
        assert not FaultPlan(stragglers={0: 1.0}).any_faults
        assert FaultPlan(loss=1e-3).any_faults
        assert FaultPlan(stragglers={0: 2.0}).any_faults
        assert FaultPlan(crashes=(CrashEvent(0, 1.0),)).any_faults

    def test_from_cli_returns_none_when_unused(self):
        assert FaultPlan.from_cli(loss=0.0, stragglers=0, seed=0, total_threads=8) is None

    def test_from_cli_straggler_choice_is_seeded(self):
        a = FaultPlan.from_cli(loss=0.0, stragglers=2, seed=5, total_threads=8)
        b = FaultPlan.from_cli(loss=0.0, stragglers=2, seed=5, total_threads=8)
        assert a.stragglers == b.stragglers

    def test_from_cli_rejects_too_many_stragglers(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_cli(loss=0.0, stragglers=9, seed=0, total_threads=8)


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(backoff_base=1e-4, backoff_factor=2.0, backoff_cap=5e-3)
        values = [policy.backoff(i) for i in range(1, 12)]
        assert values == sorted(values)
        assert values[-1] == policy.backoff_cap

    def test_penalty_matches_explicit_sum(self):
        policy = RetryPolicy()
        for r in (0, 1, 2, 5, 9, 40):
            explicit = sum(policy.timeout + policy.backoff(i) for i in range(1, r + 1))
            closed = float(policy.penalty_seconds(np.array([r], dtype=np.int64))[0])
            assert closed == pytest.approx(explicit, rel=1e-12)

    def test_penalty_vectorized(self):
        policy = RetryPolicy()
        out = policy.penalty_seconds(np.array([0, 1, 3]))
        assert out.shape == (3,)
        assert out[0] == 0.0
        assert np.all(np.diff(out) > 0)


class TestInjector:
    def test_sample_retries_deterministic(self):
        counts = np.array([100.0, 0.0, 50.0, 100.0] * 2)
        draws = []
        for _ in range(2):
            inj = FaultInjector(FaultPlan.lossy(0.05, seed=11), MACHINE)
            draws.append(inj.sample_retries(counts))
        np.testing.assert_array_equal(draws[0][0], draws[1][0])
        assert draws[0][1] == draws[1][1]

    def test_zero_count_threads_draw_nothing(self):
        inj = FaultInjector(FaultPlan.lossy(0.5, seed=1), MACHINE)
        retries, dead = inj.sample_retries(np.zeros(MACHINE.total_threads))
        assert dead == 0
        assert not retries.any()

    def test_link_loss_targets_one_node(self):
        plan = FaultPlan(seed=2, link_loss={1: 0.3})
        inj = FaultInjector(plan, MACHINE)
        assert inj.node_loss[1] == 0.3
        assert inj.node_loss[0] == 0.0
        assert np.all(inj.node_loss[2:] == 0.0)
        # Threads map to their node's uplink loss when sampling.
        t = MACHINE.threads_per_node
        per_thread = inj.node_loss[inj.node_of]
        assert np.all(per_thread[t:2 * t] == 0.3)
        assert np.all(per_thread[:t] == 0.0)

    def test_bad_ids_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(link_loss={99: 0.1}), MACHINE)
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(stragglers={99: 2.0}), MACHINE)
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(crashes=(CrashEvent(99, 1.0),)), MACHINE)

    def test_poll_crash_fires_once(self):
        plan = FaultPlan(crashes=(CrashEvent(thread=2, at_time=1.0),))
        inj = FaultInjector(plan, MACHINE)
        times = np.zeros(MACHINE.total_threads)
        assert inj.poll_crash(times) is None
        times[2] = 1.5
        event = inj.poll_crash(times)
        assert event is not None and event.thread == 2
        assert inj.poll_crash(times) is None  # consumed

    def test_comm_factor_inside_window(self):
        window = NicDegradation(node=0, start=1.0, end=2.0, factor=4.0)
        inj = FaultInjector(FaultPlan(nic_degradations=(window,)), MACHINE)
        t = MACHINE.threads_per_node
        times = np.full(MACHINE.total_threads, 1.5)
        factor = inj.comm_factor(times)
        assert np.all(factor[:t] == 4.0)
        assert np.all(factor[t:] == 1.0)
        # Outside the window nothing applies, signalled as None so the
        # runtime can skip the multiply.
        assert inj.comm_factor(np.full(MACHINE.total_threads, 3.0)) is None


class TestZeroOverhead:
    def test_noop_plan_collapses_to_none(self):
        assert PGASRuntime(MACHINE, faults=FaultPlan.none()).faults is None
        assert PGASRuntime(MACHINE, faults=None).faults is None
        assert PGASRuntime(MACHINE, faults=FaultPlan.lossy(1e-3)).faults is not None

    def test_modeled_time_bit_identical_without_plan(self, g):
        base = connected_components(g, MACHINE, impl="collective")
        with_none = connected_components(g, MACHINE, impl="collective", faults=FaultPlan.none())
        assert base.info.sim_time == with_none.info.sim_time
        assert base.info.trace.counters.as_dict() == with_none.info.trace.counters.as_dict()


class TestDeterminism:
    @pytest.mark.parametrize("impl", ["collective", "naive"])
    def test_same_seed_same_report(self, g, impl):
        plan = FaultPlan.lossy(1e-3, seed=7)
        a = connected_components(g, MACHINE, impl=impl, faults=plan)
        b = connected_components(g, MACHINE, impl=impl, faults=plan)
        assert a.info.sim_time == b.info.sim_time
        assert a.info.trace.counters.as_dict() == b.info.trace.counters.as_dict()
        assert a.info.trace.category_seconds == b.info.trace.category_seconds

    def test_different_seed_different_retries(self, g):
        a = connected_components(g, MACHINE, impl="naive", faults=FaultPlan.lossy(1e-3, seed=1))
        b = connected_components(g, MACHINE, impl="naive", faults=FaultPlan.lossy(1e-3, seed=2))
        # Not guaranteed in principle, but overwhelmingly likely with
        # thousands of messages; a collision would signal a seeding bug.
        assert (
            a.info.trace.counters.retries != b.info.trace.counters.retries
            or a.info.sim_time != b.info.sim_time
        )


class TestCorrectnessUnderFaults:
    @pytest.mark.parametrize("impl", ["collective", "naive"])
    def test_cc_verifies_under_loss(self, g, impl):
        plan = FaultPlan.lossy(1e-3, seed=7)
        res = connected_components(g, MACHINE, impl=impl, faults=plan, validate=True)
        base = connected_components(g, MACHINE, impl=impl)
        np.testing.assert_array_equal(
            repro.canonical_labels(res.labels), repro.canonical_labels(base.labels)
        )
        assert res.info.sim_time > base.info.sim_time
        assert res.info.trace.counters.retries > 0

    @pytest.mark.parametrize("impl", ["collective", "naive"])
    def test_mst_verifies_under_loss(self, gw, impl):
        plan = FaultPlan.lossy(1e-3, seed=7)
        res = minimum_spanning_forest(gw, MACHINE, impl=impl, faults=plan, validate=True)
        base = minimum_spanning_forest(gw, MACHINE, impl=impl)
        assert res.total_weight == base.total_weight
        np.testing.assert_array_equal(res.edge_ids, base.edge_ids)

    def test_stragglers_slow_the_run(self, g):
        plan = FaultPlan(seed=0, stragglers={3: 4.0})
        slow = connected_components(g, MACHINE, impl="collective", faults=plan, validate=True)
        base = connected_components(g, MACHINE, impl="collective")
        assert slow.info.sim_time > base.info.sim_time

    def test_nic_degradation_slows_the_run(self, g):
        base = connected_components(g, MACHINE, impl="collective")
        window = NicDegradation(node=0, start=0.0, end=base.info.sim_time, factor=8.0)
        plan = FaultPlan(seed=0, nic_degradations=(window,))
        res = connected_components(g, MACHINE, impl="collective", faults=plan, validate=True)
        assert res.info.sim_time > base.info.sim_time

    def test_exhausted_retries_raise_fault_error(self, g):
        plan = FaultPlan(seed=0, loss=0.9, retry=RetryPolicy(max_attempts=2))
        with pytest.raises(FaultError):
            connected_components(g, MACHINE, impl="collective", faults=plan)

    def test_unsupported_impls_reject_plans(self, g, gw):
        plan = FaultPlan.lossy(1e-3)
        with pytest.raises(ConfigError):
            connected_components(g, MACHINE, impl="sequential", faults=plan)
        with pytest.raises(ConfigError):
            minimum_spanning_forest(gw, MACHINE, impl="kruskal", faults=plan)


class TestCrashRecovery:
    def test_cc_replays_lost_round(self, g):
        base = connected_components(g, MACHINE, impl="collective")
        plan = FaultPlan(
            seed=1, crashes=(CrashEvent(thread=3, at_time=base.info.sim_time * 0.3),)
        )
        res = connected_components(g, MACHINE, impl="collective", faults=plan, validate=True)
        c = res.info.trace.counters
        assert c.crashes == 1
        assert c.checkpoint_restores == 1
        assert res.info.sim_time > base.info.sim_time
        np.testing.assert_array_equal(
            repro.canonical_labels(res.labels), repro.canonical_labels(base.labels)
        )

    def test_mst_replays_lost_round(self, gw):
        base = minimum_spanning_forest(gw, MACHINE, impl="collective")
        plan = FaultPlan(
            seed=2,
            loss=1e-3,
            crashes=(CrashEvent(thread=1, at_time=base.info.sim_time * 0.4),),
        )
        res = minimum_spanning_forest(gw, MACHINE, impl="collective", faults=plan, validate=True)
        c = res.info.trace.counters
        assert c.crashes == 1
        assert c.checkpoint_restores >= 1
        assert res.total_weight == base.total_weight
        np.testing.assert_array_equal(res.edge_ids, base.edge_ids)

    def test_multiple_crashes(self, g):
        base = connected_components(g, MACHINE, impl="collective")
        t = base.info.sim_time
        plan = FaultPlan(
            seed=3,
            crashes=(
                CrashEvent(thread=0, at_time=t * 0.2),
                CrashEvent(thread=5, at_time=t * 0.6),
            ),
        )
        res = connected_components(g, MACHINE, impl="collective", faults=plan, validate=True)
        assert res.info.trace.counters.crashes == 2
        assert res.info.trace.counters.checkpoint_restores == 2

    def test_crash_recovery_deterministic(self, g):
        plan = FaultPlan(seed=1, loss=1e-3, crashes=(CrashEvent(thread=3, at_time=1e-3),))
        a = connected_components(g, MACHINE, impl="collective", faults=plan)
        b = connected_components(g, MACHINE, impl="collective", faults=plan)
        assert a.info.sim_time == b.info.sim_time
        assert a.info.trace.counters.as_dict() == b.info.trace.counters.as_dict()

    def test_thread_crash_carries_context(self):
        crash = ThreadCrash(thread=4, at_time=1e-3, recovery=2e-3)
        assert crash.thread == 4
        assert isinstance(crash, FaultError)

    def test_restore_without_save_raises(self):
        rt = PGASRuntime(MACHINE, faults=FaultPlan(crashes=(CrashEvent(0, 1.0),)))
        with pytest.raises(FaultError):
            RoundCheckpointer(rt).restore()

    def test_checkpoint_charges_fault_category(self, g):
        plan = FaultPlan(seed=1, crashes=(CrashEvent(thread=3, at_time=1e-6),))
        res = connected_components(g, MACHINE, impl="collective", faults=plan)
        assert res.info.trace.category_seconds["Fault"] > 0


class TestExactCounters:
    """Exact — not merely nonzero — counter values for one fixed
    composed plan.  These are regression pins: any change to the
    injector's draw order, the retry accounting, or the repair loop
    shows up here as a counter drift, not as a silent behavior change.
    """

    PLAN = FaultPlan(
        seed=5,
        loss=1e-3,
        crashes=(CrashEvent(thread=3, at_time=5e-3),),
        corruption=0.2,
        payload_corruption=5e-5,
    )

    def test_cc_collective_counters(self, g):
        res = connected_components(
            g, MACHINE, impl="collective", faults=self.PLAN, integrity=True, validate=True
        )
        c = res.info.trace.counters
        assert c.retries == 5
        assert c.crashes == 1
        assert c.repairs == 8
        assert c.checkpoint_restores == 9
        assert c.corruptions_injected == 31
        assert c.corruptions_detected == 31
        assert c.checkpoint_restores == c.crashes + c.repairs

    def test_cc_lt_counters(self, g):
        """The same composed plan against one Liu–Tarjan variant: the LT
        round skeleton shares the checkpoint/replay machinery, so its
        counter identities — and their exact values — pin the same way."""
        res = connected_components(
            g, MACHINE, impl="lt-rf", faults=self.PLAN, integrity=True, validate=True
        )
        c = res.info.trace.counters
        assert c.retries == 5
        assert c.crashes == 1
        assert c.repairs == 8
        assert c.checkpoint_restores == 9
        assert c.corruptions_injected == 31
        assert c.corruptions_detected == 31
        assert c.checkpoint_restores == c.crashes + c.repairs

    def test_mst_collective_counters(self, gw):
        res = minimum_spanning_forest(
            gw, MACHINE, impl="collective", faults=self.PLAN, integrity=True, validate=True
        )
        c = res.info.trace.counters
        assert c.retries == 9
        assert c.crashes == 1
        assert c.repairs == 9
        assert c.checkpoint_restores == 10
        assert c.corruptions_injected == 43
        assert c.corruptions_detected == 43
        assert c.checkpoint_restores == c.crashes + c.repairs


class TestTraceSurface:
    def test_retry_category_charged_under_loss(self, g):
        plan = FaultPlan.lossy(1e-2, seed=0)
        res = connected_components(g, MACHINE, impl="collective", faults=plan)
        assert res.info.trace.category_seconds["Retry"] > 0
        assert res.info.breakdown()["Retry"] > 0

    def test_counters_render_fault_line(self, g):
        plan = FaultPlan.lossy(1e-2, seed=0)
        res = connected_components(g, MACHINE, impl="collective", faults=plan)
        lines = list(res.info.trace.summary_lines(MACHINE.total_threads))
        assert any("retries=" in line for line in lines)

    def test_profiler_attributes_retries_to_phases(self, g):
        plan = FaultPlan.lossy(1e-2, seed=0)
        with repro.profiled() as session:
            connected_components(g, MACHINE, impl="collective", faults=plan)
        assert sum(r.retries for r in session.records) > 0
        assert "retries" in repro.render_phases(session.records)
