"""Tests for SharedArray (repro.runtime.shared_array)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.runtime import SharedArray, hps_cluster, sequential_machine


@pytest.fixture
def machine():
    return hps_cluster(2, 2)  # s = 4


@pytest.fixture
def arr(machine):
    return SharedArray(machine, np.arange(10, dtype=np.int64))


class TestGeometry:
    def test_default_block_is_ceil(self, arr):
        assert arr.block == 3  # ceil(10/4)

    def test_owner_thread_blocked_layout(self, arr):
        owners = arr.owner_thread(np.arange(10))
        assert owners.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_owner_clamped_to_last_thread(self, machine):
        a = SharedArray(machine, np.arange(5), block=1)
        assert a.owner_thread(np.array([4]))[0] == 3

    def test_owner_node(self, arr):
        nodes = arr.owner_node(np.array([0, 3, 6, 9]))
        assert nodes.tolist() == [0, 0, 1, 1]

    def test_local_range(self, arr):
        assert arr.local_range(0) == (0, 3)
        assert arr.local_range(3) == (9, 10)

    def test_local_range_bounds(self, arr):
        with pytest.raises(DistributionError):
            arr.local_range(4)

    def test_local_sizes_cover_array(self, arr):
        sizes = arr.local_sizes()
        assert sizes.sum() == arr.size
        assert sizes.tolist() == [3, 3, 3, 1]

    def test_local_view_is_writable_window(self, arr):
        view = arr.local_view(1)
        view[:] = -1
        assert arr.data[3:6].tolist() == [-1, -1, -1]

    def test_node_working_set(self, arr):
        assert arr.node_working_set_bytes() == pytest.approx(10 / 2 * 8)

    def test_rejects_empty(self, machine):
        with pytest.raises(DistributionError):
            SharedArray(machine, np.empty(0))

    def test_rejects_2d(self, machine):
        with pytest.raises(DistributionError):
            SharedArray(machine, np.zeros((2, 2)))

    def test_rejects_bad_block(self, machine):
        with pytest.raises(DistributionError):
            SharedArray(machine, np.arange(4), block=0)

    def test_single_thread_owns_everything(self):
        a = SharedArray(sequential_machine(), np.arange(7))
        assert a.owner_thread(np.arange(7)).tolist() == [0] * 7


class TestGatherScatter:
    def test_gather(self, arr):
        out = arr.gather(np.array([3, 0, 9]))
        assert out.tolist() == [3, 0, 9]

    def test_gather_bounds(self, arr):
        with pytest.raises(DistributionError):
            arr.gather(np.array([10]))
        with pytest.raises(DistributionError):
            arr.gather(np.array([-1]))

    def test_scatter_min_keeps_minimum(self, arr):
        changed = arr.scatter_min(np.array([5, 5, 5]), np.array([9, 2, 7]))
        assert arr.data[5] == 2
        assert changed == 1

    def test_scatter_min_never_increases(self, arr):
        arr.scatter_min(np.array([1]), np.array([100]))
        assert arr.data[1] == 1

    def test_scatter_min_counts_changes(self, arr):
        changed = arr.scatter_min(np.array([8, 9]), np.array([0, 0]))
        assert changed == 2

    def test_scatter_min_empty(self, arr):
        assert arr.scatter_min(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == 0

    def test_scatter_min_shape_mismatch(self, arr):
        with pytest.raises(DistributionError):
            arr.scatter_min(np.array([1, 2]), np.array([1]))

    def test_scatter_store_min_can_increase(self, arr):
        changed = arr.scatter_store_min(np.array([0, 0]), np.array([7, 9]))
        assert arr.data[0] == 7  # min of proposals, stored unconditionally
        assert changed == 1

    def test_scatter_store_min_untouched_elsewhere(self, arr):
        before = arr.data.copy()
        arr.scatter_store_min(np.array([4]), np.array([100]))
        assert arr.data[4] == 100
        mask = np.ones(10, dtype=bool)
        mask[4] = False
        assert np.array_equal(arr.data[mask], before[mask])

    def test_scatter_alias_is_min(self, arr):
        arr.scatter(np.array([6, 6]), np.array([2, 4]))
        assert arr.data[6] == 2

    def test_snapshot_is_copy(self, arr):
        snap = arr.snapshot()
        arr.data[0] = 99
        assert snap[0] == 0


@given(
    n=st.integers(2, 64),
    nodes=st.integers(1, 4),
    threads=st.integers(1, 4),
)
def test_property_every_index_has_exactly_one_owner(n, nodes, threads):
    machine = hps_cluster(nodes, threads)
    arr = SharedArray(machine, np.zeros(n, dtype=np.int64))
    owners = arr.owner_thread(np.arange(n))
    sizes = arr.local_sizes()
    assert sizes.sum() == n
    counted = np.bincount(owners, minlength=machine.total_threads)
    # local_sizes computes ranges; owner_thread must agree except for the
    # clamped tail, which local_range assigns to the last thread.
    for t in range(machine.total_threads):
        lo, hi = arr.local_range(t)
        span = np.arange(lo, hi)
        if span.size:
            assert np.all(owners[span] >= min(t, owners[span].min()))
    assert counted.sum() == n


@given(
    idx=st.lists(st.integers(0, 19), min_size=1, max_size=30),
    vals=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
)
def test_property_scatter_min_equals_numpy(idx, vals):
    k = min(len(idx), len(vals))
    idx_arr = np.asarray(idx[:k], dtype=np.int64)
    val_arr = np.asarray(vals[:k], dtype=np.int64)
    arr = SharedArray(hps_cluster(2, 2), np.arange(20, dtype=np.int64))
    expected = np.arange(20, dtype=np.int64)
    np.minimum.at(expected, idx_arr, val_arr)
    arr.scatter_min(idx_arr, val_arr)
    assert np.array_equal(arr.data, expected)
