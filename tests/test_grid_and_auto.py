"""Tests for the grid generator and the tprime='auto' feature."""

import numpy as np
import pytest

import repro
from repro.bfs import solve_bfs_collective
from repro.core.pipeline import resolve_tprime
from repro.errors import ConfigError, GraphError
from repro.graph import grid_graph, is_simple
from repro.runtime import hps_cluster, smp_node


class TestGridGraph:
    def test_dimensions(self):
        g = grid_graph(3, 5)
        assert g.n == 15
        assert g.m == 3 * 4 + 2 * 5

    def test_simple(self):
        assert is_simple(grid_graph(6, 7))

    def test_corner_degree(self):
        g = grid_graph(4, 4)
        deg = g.degrees()
        assert deg[0] == 2  # corner
        assert deg[5] == 4  # interior

    def test_torus_regular(self):
        g = grid_graph(5, 5, periodic=True)
        assert np.all(g.degrees() == 4)

    def test_single_row(self):
        g = grid_graph(1, 6)
        assert g.m == 5  # a path

    def test_single_cell(self):
        g = grid_graph(1, 1)
        assert g.n == 1 and g.m == 0

    def test_connected(self):
        cc = repro.connected_components(grid_graph(8, 8), hps_cluster(2, 2))
        assert cc.num_components == 1

    def test_bfs_distance_is_manhattan(self):
        rows, cols = 6, 9
        g = grid_graph(rows, cols)
        dist, _ = solve_bfs_collective(g, 0, hps_cluster(2, 2))
        for r in range(rows):
            for c in range(cols):
                assert dist[r * cols + c] == r + c

    def test_rejects_bad_dims(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_torus_needs_size_three(self):
        # 2-wide periodic wrap would duplicate edges; generator omits it.
        g = grid_graph(2, 2, periodic=True)
        assert is_simple(g)


class TestAutoTprime:
    def test_passthrough_int(self):
        assert resolve_tprime(7, smp_node(4), 1000) == 7

    def test_auto_is_positive(self):
        tp = resolve_tprime("auto", repro.smp_for_input(100_000, 16), 100_000)
        assert tp >= 1

    def test_auto_targets_cache_fit(self):
        machine = repro.smp_for_input(100_000, 16)
        tp = resolve_tprime("auto", machine, 100_000)
        block_bytes = 100_000 / 16 * 8
        assert block_bytes / tp <= machine.cache.size_bytes

    def test_auto_is_one_when_block_fits(self):
        assert resolve_tprime("auto", smp_node(16), 1000) == 1

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            resolve_tprime(0, smp_node(4), 100)
        with pytest.raises(ConfigError):
            resolve_tprime("fast", smp_node(4), 100)

    def test_solvers_accept_auto(self):
        g = repro.random_graph(2_000, 6_000, 1)
        machine = repro.cluster_for_input(2_000, 4, 2)
        repro.connected_components(g, machine, tprime="auto", validate=True)
        gw = repro.with_random_weights(g, 2)
        repro.minimum_spanning_forest(gw, machine, tprime="auto", validate=True)
        repro.spanning_forest(g, machine, tprime="auto", validate=True)

    def test_auto_no_worse_than_one_on_big_smp(self):
        n = 50_000
        g = repro.random_graph(n, 4 * n, seed=2)
        machine = repro.smp_for_input(n, 16)
        base = repro.connected_components(g, machine, tprime=1)
        auto = repro.connected_components(g, machine, tprime="auto")
        assert auto.info.sim_time <= base.info.sim_time * 1.02
