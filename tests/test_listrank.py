"""Tests for the list-ranking package (repro.listrank)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.listrank import (
    LinkedList,
    random_list,
    ranks_by_walk,
    sequential_list,
    solve_ranks_cgm,
    solve_ranks_sequential,
    solve_ranks_wyllie,
)
from repro.runtime import hps_cluster, smp_node


def oracle_ranks(lst: LinkedList) -> np.ndarray:
    ranks = np.zeros(lst.n, dtype=np.int64)
    order = []
    node = lst.head
    while True:
        order.append(node)
        if node == lst.tail:
            break
        node = int(lst.succ[node])
    for pos, node in enumerate(order):
        ranks[node] = lst.n - 1 - pos
    return ranks


class TestLinkedList:
    def test_random_list_is_valid(self):
        lst = random_list(100, seed=1)
        lst.validate()

    def test_head_and_tail(self):
        lst = sequential_list(5)
        assert lst.head == 0 and lst.tail == 4

    def test_single_node(self):
        lst = sequential_list(1)
        assert lst.head == lst.tail == 0

    def test_deterministic(self):
        a, b = random_list(50, 2), random_list(50, 2)
        assert np.array_equal(a.succ, b.succ)

    def test_rejects_two_tails(self):
        with pytest.raises(GraphError):
            LinkedList(np.array([0, 1]))

    def test_rejects_cycle(self):
        with pytest.raises(GraphError):
            LinkedList(np.array([1, 0]))

    def test_rejects_two_predecessors(self):
        with pytest.raises(GraphError):
            LinkedList(np.array([2, 2, 2]))

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            random_list(0)


class TestRanking:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 200])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_all_solvers_agree_with_oracle(self, n, seed):
        lst = random_list(n, seed)
        expected = oracle_ranks(lst)
        assert np.array_equal(ranks_by_walk(lst), expected)
        seq, _ = solve_ranks_sequential(lst)
        assert np.array_equal(seq, expected)
        wy, _ = solve_ranks_wyllie(lst, hps_cluster(2, 2))
        assert np.array_equal(wy, expected)
        cg, _ = solve_ranks_cgm(lst, hps_cluster(2, 2))
        assert np.array_equal(cg, expected)

    def test_sequential_order_list(self):
        lst = sequential_list(64)
        ranks, _ = solve_ranks_wyllie(lst, hps_cluster(2, 2))
        assert np.array_equal(ranks, np.arange(63, -1, -1))

    def test_wyllie_rounds_logarithmic(self):
        lst = random_list(1024, 5)
        _, info = solve_ranks_wyllie(lst, hps_cluster(2, 2))
        assert info.iterations <= 14  # ~log2(1024) + slack

    def test_cgm_fewer_rounds_than_wyllie(self):
        lst = random_list(20_000, 6)
        machine = hps_cluster(16, 1)
        _, wy = solve_ranks_wyllie(lst, machine)
        _, cg = solve_ranks_cgm(lst, machine)
        assert cg.iterations < wy.iterations

    def test_results_machine_invariant(self):
        lst = random_list(500, 7)
        a, _ = solve_ranks_wyllie(lst, hps_cluster(2, 4))
        b, _ = solve_ranks_wyllie(lst, hps_cluster(8, 1))
        c, _ = solve_ranks_cgm(lst, hps_cluster(2, 4))
        d, _ = solve_ranks_cgm(lst, hps_cluster(8, 1))
        assert np.array_equal(a, b)
        assert np.array_equal(c, d)
        assert np.array_equal(a, c)

    def test_single_node_machine(self):
        lst = random_list(100, 8)
        ranks, _ = solve_ranks_wyllie(lst, smp_node(4))
        assert np.array_equal(ranks, oracle_ranks(lst))

    @given(n=st.integers(1, 150), seed=st.integers(0, 10))
    def test_property_wyllie_matches_walk(self, n, seed):
        lst = random_list(n, seed)
        ranks, _ = solve_ranks_wyllie(lst, hps_cluster(2, 2))
        assert np.array_equal(ranks, ranks_by_walk(lst))

    @given(n=st.integers(1, 150), seed=st.integers(0, 10))
    def test_property_cgm_matches_walk(self, n, seed):
        lst = random_list(n, seed)
        ranks, _ = solve_ranks_cgm(lst, hps_cluster(2, 2))
        assert np.array_equal(ranks, ranks_by_walk(lst))


class TestCostShape:
    def test_cgm_has_idle_skew_before_barrier(self):
        # The sequential contracted-rank step runs on thread 0 while the
        # rest idle; total time includes that serial chunk.
        lst = random_list(50_000, 9)
        machine = hps_cluster(16, 1)
        _, cg = solve_ranks_cgm(lst, machine)
        _, wy = solve_ranks_wyllie(lst, machine)
        assert cg.sim_time > 0 and wy.sim_time > 0

    def test_sequential_linear_in_n(self):
        _, a = solve_ranks_sequential(random_list(10_000, 1))
        _, b = solve_ranks_sequential(random_list(20_000, 1))
        assert b.sim_time == pytest.approx(2 * a.sim_time, rel=0.2)
