"""Tests for the benchmark harness (repro.bench)."""

import numpy as np
import pytest

from repro.bench import (
    FigureResult,
    banner,
    bench_graph,
    format_kv,
    format_ratio,
    format_table,
    speedup,
)


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [33, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_number_formatting(self):
        out = format_table(["x"], [[1234567.0], [0.00001], [3.14159]])
        assert "1.23e+06" in out
        assert "1e-05" in out
        assert "3.142" in out

    def test_format_kv(self):
        out = format_kv({"alpha": 1, "b": 2.0})
        assert "alpha" in out and ":" in out

    def test_format_kv_empty(self):
        assert format_kv({}) == ""

    def test_format_ratio(self):
        assert "2.00x" in format_ratio("speedup", 2.0, 1.0)
        assert "n/a" in format_ratio("speedup", 1.0, 0.0)

    def test_banner(self):
        out = banner("Title")
        assert out.splitlines()[1] == "Title"


class TestSpeedup:
    def test_basic(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestBenchGraph:
    def test_cached_deterministic(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        a = bench_graph("random", 100, 300, seed=1)
        b = bench_graph("random", 100, 300, seed=1)
        assert np.array_equal(a.u, b.u)
        assert (tmp_path / "random_n100_m300_s1.npz").exists()

    def test_weighted_variant(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        g = bench_graph("hybrid", 256, 700, seed=2, weighted=True)
        assert g.weighted and g.m == 700

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            bench_graph("smallworld", 100, 300)


class TestFigureResult:
    def test_table_and_render(self):
        fig = FigureResult(
            figure="Fig. X",
            title="demo",
            columns=["a", "b"],
            paper={"metric": 2.0},
        )
        fig.add(a=1, b=2)
        fig.add(a=3, b=4)
        fig.headline["metric"] = 1.9
        out = fig.render()
        assert "Fig. X" in out
        assert "measured 1.9" in out
        assert "paper: 2.0" in out

    def test_missing_cells_blank(self):
        fig = FigureResult(figure="F", title="t", columns=["a", "b"])
        fig.add(a=1)
        assert fig.table()  # renders without KeyError

    def test_notes_rendered(self):
        fig = FigureResult(figure="F", title="t", columns=["a"])
        fig.notes.append("scaled input")
        assert "scaled input" in fig.render()


class TestFigureDriversSmoke:
    """Each figure driver runs end-to-end at a tiny scale and produces
    rows plus every promised headline metric."""

    @pytest.fixture(autouse=True)
    def _cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))

    def test_fig2(self):
        from repro.bench import fig2_naive_vs_smp

        fig = fig2_naive_vs_smp(scale=0.05)
        assert len(fig.rows) == 4
        assert fig.headline["normalized slowdown (orders of magnitude)"] > 1

    def test_fig3(self):
        from repro.bench import fig3_coalescing

        fig = fig3_coalescing(scale=0.2)
        assert {r["config"] for r in fig.rows} == {"Orig", "CC", "SV"}
        assert fig.headline["CC speedup over Orig"] > 3

    def test_fig4(self):
        from repro.bench import fig4_tprime_sweep

        fig = fig4_tprime_sweep(scale=0.1, tprimes=(1, 8))
        assert len(fig.rows) == 6
        assert "best t'" in fig.headline

    def test_fig5(self):
        from repro.bench import fig5_optimization_breakdown

        fig = fig5_optimization_breakdown(scale=0.1)
        assert [r["config"] for r in fig.rows] == [
            "base", "compact", "offload", "circular", "localcpy", "id"
        ]

    def test_fig7(self):
        from repro.bench import fig7_cc_scaling

        fig = fig7_cc_scaling(scale=0.1)
        assert fig.headline["degradation 8->16 threads"] > 1

    def test_fig9(self):
        from repro.bench import fig9_mst_scaling

        fig = fig9_mst_scaling(scale=0.1)
        assert fig.headline["SMP vs Kruskal"] < 3

    def test_sec3(self):
        from repro.bench import sec3_analysis

        fig = sec3_analysis(scale=0.2)
        assert fig.headline["per-access slowdown estimate"] > 10
