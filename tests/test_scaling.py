"""Tests for the scaling-study analytics (repro.core.scaling)."""

import pytest

import repro
from repro.core import ScalingStudy, run_scaling_study
from repro.core.scaling import ScalingPoint
from repro.errors import ConfigError


class TestScalingPoint:
    def test_efficiency(self):
        pt = ScalingPoint(threads=8, sim_time=1.0, speedup=4.0)
        assert pt.efficiency == pytest.approx(0.5)

    def test_karp_flatt_perfect_scaling(self):
        pt = ScalingPoint(threads=8, sim_time=1.0, speedup=8.0)
        assert pt.karp_flatt == pytest.approx(0.0)

    def test_karp_flatt_half_efficiency(self):
        pt = ScalingPoint(threads=2, sim_time=1.0, speedup=1.0)
        assert pt.karp_flatt == pytest.approx(1.0)

    def test_karp_flatt_single_thread(self):
        assert ScalingPoint(threads=1, sim_time=1.0, speedup=1.0).karp_flatt == 0.0


class TestScalingStudy:
    def _study(self):
        g = repro.random_graph(20_000, 80_000, seed=1)
        machines = [repro.cluster_for_input(20_000, nodes, 8) for nodes in (2, 4, 8, 16)]
        return run_scaling_study(
            lambda m: repro.connected_components(g, m, tprime=2),
            machines,
            lambda: repro.connected_components(
                g, repro.sequential_for_input(20_000), impl="sequential"
            ),
        )

    def test_speedups_positive_and_ordered(self):
        study = self._study()
        assert all(pt.speedup > 0 for pt in study.points)
        threads = [pt.threads for pt in study.points]
        assert threads == sorted(threads)

    def test_more_nodes_faster(self):
        study = self._study()
        assert study.points[-1].sim_time < study.points[0].sim_time

    def test_best(self):
        study = self._study()
        best = study.best()
        assert best.sim_time == min(pt.sim_time for pt in study.points)

    def test_render(self):
        out = self._study().render()
        assert "Karp-Flatt" in out and "speedup" in out

    def test_overhead_grows_is_boolean(self):
        assert self._study().overhead_grows() in (True, False)

    def test_rejects_bad_reference(self):
        from repro.core.results import SolveInfo
        from repro.runtime import Trace, sequential_machine

        bad = SolveInfo(sequential_machine(), "x", 0.0, 0.0, 1, Trace())
        with pytest.raises(ConfigError):
            ScalingStudy.from_infos(bad, [])

    def test_empty_best_rejected(self):
        study = ScalingStudy(reference_time=1.0, points=[])
        with pytest.raises(ConfigError):
            study.best()
