"""Tests for the machine description (repro.runtime.machine)."""

import math

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    CacheParams,
    CpuParams,
    LockParams,
    MachineConfig,
    MemoryParams,
    NetworkParams,
    hps_cluster,
    infiniband_cluster,
    scaled_cache,
    sequential_machine,
    smp_node,
)


class TestMachineConfig:
    def test_total_threads(self):
        assert hps_cluster(16, 16).total_threads == 256
        assert smp_node(8).total_threads == 8
        assert sequential_machine().total_threads == 1

    def test_is_distributed(self):
        assert hps_cluster(2, 1).is_distributed
        assert not smp_node(16).is_distributed

    def test_node_of_thread_layout_is_node_major(self):
        m = hps_cluster(4, 4)
        assert m.node_of_thread(0) == 0
        assert m.node_of_thread(3) == 0
        assert m.node_of_thread(4) == 1
        assert m.node_of_thread(15) == 3

    def test_node_of_thread_out_of_range(self):
        m = hps_cluster(2, 2)
        with pytest.raises(ConfigError):
            m.node_of_thread(4)
        with pytest.raises(ConfigError):
            m.node_of_thread(-1)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(nodes=0, threads_per_node=4)
        with pytest.raises(ConfigError):
            MachineConfig(nodes=4, threads_per_node=0)

    def test_barrier_time_grows_with_threads(self):
        small = hps_cluster(2, 2)
        big = hps_cluster(16, 16)
        assert 0 < small.barrier_time() < big.barrier_time()

    def test_barrier_time_single_thread_is_free(self):
        assert sequential_machine().barrier_time() == 0.0

    def test_barrier_time_uses_per_call_scale(self):
        base = hps_cluster(4, 4)
        scaled = base.with_(per_call_scale=0.5)
        assert scaled.barrier_time() == pytest.approx(base.barrier_time() * 0.5)

    def test_with_replaces_fields(self):
        m = hps_cluster(4, 4).with_(nodes=8)
        assert m.nodes == 8 and m.threads_per_node == 4

    def test_describe_mentions_shape(self):
        text = hps_cluster(16, 8).describe()
        assert "16 node" in text and "s=128" in text

    def test_per_call_scale_must_be_positive(self):
        with pytest.raises(ConfigError):
            hps_cluster(2, 2).with_(per_call_scale=0.0)


class TestParamValidation:
    def test_network_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            NetworkParams(latency=-1.0).validate()

    def test_network_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            NetworkParams(bandwidth=0.0).validate()

    def test_network_rejects_subunit_congestion(self):
        with pytest.raises(ConfigError):
            NetworkParams(fine_congestion=0.5).validate()

    def test_network_rejects_negative_incast(self):
        with pytest.raises(ConfigError):
            NetworkParams(incast_amplitude=-1.0).validate()

    def test_memory_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            MemoryParams(bandwidth=0.0).validate()

    def test_cache_rejects_line_bigger_than_cache(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=64, line_bytes=128).validate()

    def test_cache_num_lines(self):
        assert CacheParams(size_bytes=1024, line_bytes=128).num_lines == 8

    def test_cpu_rejects_zero_op_time(self):
        with pytest.raises(ConfigError):
            CpuParams(op_time=0.0).validate()

    def test_cpu_rejects_subunit_factors(self):
        with pytest.raises(ConfigError):
            CpuParams(upc_deref_factor=0.5).validate()

    def test_locks_reject_negative(self):
        with pytest.raises(ConfigError):
            LockParams(acquire_time=-1.0).validate()


class TestPresets:
    def test_hps_shape(self):
        m = hps_cluster()
        assert m.nodes == 16 and m.threads_per_node == 16
        assert m.network.bandwidth == pytest.approx(2.0e9)

    def test_infiniband_uses_paper_constants(self):
        m = infiniband_cluster()
        assert m.network.latency == pytest.approx(190e-9)
        assert m.memory.latency == pytest.approx(9e-9)

    def test_smp_is_one_node(self):
        assert smp_node(12).nodes == 1
        assert smp_node(12).threads_per_node == 12

    def test_preset_overrides(self):
        m = hps_cluster(4, 4, name="custom")
        assert m.name == "custom"


class TestScaledCache:
    def test_scales_size(self):
        base = hps_cluster(2, 2)
        scaled = scaled_cache(base, 0.5)
        assert scaled.cache.size_bytes == base.cache.size_bytes // 2

    def test_floor_is_one_line(self):
        base = hps_cluster(2, 2)
        scaled = scaled_cache(base, 1e-12)
        assert scaled.cache.size_bytes == base.cache.line_bytes

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            scaled_cache(hps_cluster(2, 2), 0.0)

    def test_other_params_untouched(self):
        base = hps_cluster(2, 2)
        scaled = scaled_cache(base, 0.25)
        assert scaled.network == base.network
        assert scaled.memory == base.memory


def test_log2_barrier_scaling():
    m = hps_cluster(16, 16)
    expected = (m.barrier_base + m.barrier_per_thread * math.log2(256)) * m.per_call_scale
    assert m.barrier_time() == pytest.approx(expected)
