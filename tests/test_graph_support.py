"""Tests for permutations, distribution, IO, and validation helpers."""

import numpy as np
import pytest

from repro.errors import DistributionError, GraphError
from repro.graph import (
    EdgeList,
    block_cyclic_permutation,
    check_connected_counts,
    check_simple,
    component_sizes,
    count_components_reference,
    distribute_edges,
    has_self_loops,
    identity_permutation,
    invert_permutation,
    is_simple,
    load_edgelist,
    path_graph,
    random_graph,
    random_permutation,
    reversal_permutation,
    save_edgelist,
    with_random_weights,
)
from repro.graph.io import cached_graph


class TestPermutations:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda n: random_permutation(n, 3),
            identity_permutation,
            reversal_permutation,
            lambda n: block_cyclic_permutation(n, 4),
        ],
    )
    def test_is_permutation(self, factory):
        for n in (1, 7, 32, 100):
            perm = factory(n)
            assert np.array_equal(np.sort(perm), np.arange(n))

    def test_random_deterministic(self):
        assert np.array_equal(random_permutation(50, 9), random_permutation(50, 9))

    def test_reversal(self):
        assert reversal_permutation(4).tolist() == [3, 2, 1, 0]

    def test_invert(self):
        perm = random_permutation(40, 1)
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(40))
        assert np.array_equal(inv[perm], np.arange(40))

    def test_block_cyclic_destroys_locality(self):
        perm = block_cyclic_permutation(16, 4)
        # adjacent ids land far apart
        assert abs(int(perm[1]) - int(perm[0])) >= 3

    def test_errors(self):
        with pytest.raises(GraphError):
            random_permutation(-1)
        with pytest.raises(GraphError):
            block_cyclic_permutation(10, 0)


class TestDistribute:
    def test_even_split(self):
        g = random_graph(50, 200, 1)
        ep = distribute_edges(g, 8)
        sizes = ep.sizes()
        assert sizes.sum() == 200
        assert sizes.max() - sizes.min() <= 1

    def test_weighted_shares_offsets(self):
        g = with_random_weights(random_graph(50, 200, 1), 2)
        ep = distribute_edges(g, 8)
        assert ep.weighted
        assert np.array_equal(ep.w.offsets, ep.u.offsets)

    def test_filter(self):
        g = random_graph(50, 100, 1)
        ep = distribute_edges(g, 4)
        mask = np.zeros(100, dtype=bool)
        mask[::2] = True
        out = ep.filter(mask)
        assert out.m == 50
        assert out.parts == 4

    def test_edge_ids(self):
        g = random_graph(20, 40, 1)
        ep = distribute_edges(g, 4)
        ids = ep.edge_ids()
        assert np.array_equal(ids.data, np.arange(40))
        assert np.array_equal(ids.offsets, ep.offsets)

    def test_roundtrip_to_edgelist(self):
        g = with_random_weights(random_graph(30, 60, 1), 2)
        ep = distribute_edges(g, 4)
        back = ep.to_edgelist()
        assert np.array_equal(back.u, g.u)
        assert np.array_equal(back.w, g.w)

    def test_rejects_zero_threads(self):
        with pytest.raises(DistributionError):
            distribute_edges(random_graph(10, 10, 1), 0)

    def test_more_threads_than_edges(self):
        g = random_graph(10, 3, 1)
        ep = distribute_edges(g, 8)
        assert ep.sizes().sum() == 3


class TestIO:
    def test_roundtrip_unweighted(self, tmp_path):
        g = random_graph(40, 80, 1)
        path = tmp_path / "g.npz"
        save_edgelist(g, path)
        back = load_edgelist(path)
        assert back.n == g.n
        assert np.array_equal(back.u, g.u) and np.array_equal(back.v, g.v)
        assert back.w is None

    def test_roundtrip_weighted(self, tmp_path):
        g = with_random_weights(random_graph(40, 80, 1), 2)
        path = tmp_path / "g.npz"
        save_edgelist(g, path)
        back = load_edgelist(path)
        assert np.array_equal(back.w, g.w)

    def test_creates_parent_dirs(self, tmp_path):
        g = random_graph(10, 10, 1)
        path = tmp_path / "a" / "b" / "g.npz"
        save_edgelist(g, path)
        assert path.exists()

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, n=np.int64(3), u=np.array([0]))
        with pytest.raises(GraphError):
            load_edgelist(path)

    def test_cached_graph_builds_once(self, tmp_path):
        calls = []

        def build():
            calls.append(1)
            return random_graph(20, 30, 1)

        path = tmp_path / "c.npz"
        a = cached_graph(path, build)
        b = cached_graph(path, build)
        assert len(calls) == 1
        assert np.array_equal(a.u, b.u)

    def test_cached_graph_regenerates_truncated_file(self, tmp_path, caplog):
        g = random_graph(20, 30, 1)
        path = tmp_path / "c.npz"
        save_edgelist(g, path)
        # Truncate the cache mid-file, as an interrupted write would.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])

        with caplog.at_level("WARNING", logger="repro.graph.io"):
            back = cached_graph(path, lambda: g)
        assert any("regenerating" in rec.message for rec in caplog.records)
        assert np.array_equal(back.u, g.u)
        # The cache was rewritten and now loads cleanly.
        assert np.array_equal(load_edgelist(path).v, g.v)

    def test_cached_graph_regenerates_garbage_file(self, tmp_path):
        g = random_graph(15, 25, 1)
        path = tmp_path / "c.npz"
        path.write_bytes(b"this is not an npz archive")
        back = cached_graph(path, lambda: g)
        assert np.array_equal(back.u, g.u)
        assert np.array_equal(load_edgelist(path).u, g.u)


class TestValidation:
    def test_is_simple(self):
        assert is_simple(random_graph(20, 40, 1))
        g = EdgeList(3, np.array([0, 0]), np.array([1, 1]))
        assert not is_simple(g)

    def test_self_loops_detected(self):
        g = EdgeList(3, np.array([1]), np.array([1]))
        assert has_self_loops(g)
        with pytest.raises(GraphError):
            check_simple(g)

    def test_duplicate_detected_both_orientations(self):
        g = EdgeList(3, np.array([0, 1]), np.array([1, 0]))
        with pytest.raises(GraphError):
            check_simple(g)

    def test_component_count(self):
        assert count_components_reference(path_graph(10)) == 1
        from repro.graph import disjoint_components_graph

        assert count_components_reference(disjoint_components_graph(3, 5, 1)) == 3

    def test_component_sizes(self):
        labels = np.array([0, 0, 1, 2, 2, 2])
        assert component_sizes(labels).tolist() == [3, 2, 1]

    def test_check_connected_counts_accepts_valid(self):
        g = path_graph(6)
        check_connected_counts(np.zeros(6, dtype=np.int64), g)

    def test_check_connected_counts_rejects_split_edge(self):
        g = path_graph(4)
        bad = np.array([0, 0, 1, 1])
        with pytest.raises(GraphError):
            check_connected_counts(bad, g)

    def test_check_connected_counts_rejects_wrong_count(self):
        from repro.graph import empty_graph

        g = empty_graph(4)
        merged = np.zeros(4, dtype=np.int64)  # claims one component
        with pytest.raises(GraphError):
            check_connected_counts(merged, g)

    def test_check_connected_counts_rejects_bad_shape(self):
        g = path_graph(4)
        with pytest.raises(GraphError):
            check_connected_counts(np.zeros(3, dtype=np.int64), g)
