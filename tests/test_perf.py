"""Unit tests for the wall-clock perf layer (repro.perf).

Covers the buffer arena, the derived-artifact memoization (including
the standalone schedule/plan caches), the deterministic process fan-out,
the Trace event cap, and end-to-end report determinism of the fanned-out
soak campaign.  The bit-identity contract itself lives in
``test_perf_golden.py``; this file tests the machinery.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.collectives.schedule import circular_schedule, linear_schedule
from repro.perf import (
    clear_derived_caches,
    derived_cache_stats,
    fanout_map,
    legacy_engine,
    resolve_workers,
)
from repro.perf.arena import BufferArena, _size_class
from repro.perf.derived import freeze, memoized
from repro.perf.fanout import available_cpus
from repro.runtime import PGASRuntime, hps_cluster
from repro.runtime.trace import DEFAULT_EVENT_CAP, Category, Trace
from repro.scheduling.access_schedule import schedule_plan


class TestArena:
    def test_size_class_is_next_power_of_two_at_least_64(self):
        assert _size_class(1) == 64
        assert _size_class(64) == 64
        assert _size_class(65) == 128
        assert _size_class(70_000) == 131_072

    def test_take_give_reuses_the_buffer(self):
        arena = BufferArena()
        first = arena.take(100, np.int64)
        base = first.base
        arena.give(first)
        second = arena.take(90, np.int64)  # same size class (128)
        assert second.base is base
        assert second.shape == (90,)
        assert arena.stats()["reuses"] == 1

    def test_clear_flag_zeroes_the_slice(self):
        arena = BufferArena()
        buf = arena.take(50, np.int64)
        buf[:] = 7
        arena.give(buf)
        again = arena.take(50, np.int64, clear=True)
        assert not again.any()

    def test_dtypes_do_not_share_buckets(self):
        arena = BufferArena()
        a = arena.take(100, np.int64)
        arena.give(a)
        b = arena.take(100, np.int8)
        assert b.dtype == np.int8
        assert b.base is not a.base

    def test_legacy_engine_disables_pooling(self):
        arena = BufferArena()
        with legacy_engine():
            first = arena.take(100, np.int64, clear=True)
            arena.give(first)
            second = arena.take(100, np.int64, clear=True)
        assert first.base is None and second.base is None  # fresh allocations
        assert arena.stats()["reuses"] == 0

    def test_oversize_requests_are_not_pooled(self):
        arena = BufferArena()
        huge = arena.take((1 << 26) // 8 + 1, np.int64)  # > 64 MiB
        arena.give(huge)
        assert arena.stats()["pooled_buffers"] == 0

    def test_lease_context_manager_returns_on_exit(self):
        arena = BufferArena()
        with arena.lease(40, np.bool_) as buf:
            assert buf.shape == (40,)
        assert arena.stats()["pooled_buffers"] == 1


class TestDerivedMemoization:
    def test_memoized_caches_under_fast_engine(self):
        calls = []

        @memoized(maxsize=8, name="test_builder")
        def build(x):
            calls.append(x)
            return x * 2

        assert build(3) == 6
        assert build(3) == 6
        assert calls == [3]
        assert derived_cache_stats()["test_builder"]["hits"] == 1

    def test_memoized_bypasses_cache_under_legacy_engine(self):
        calls = []

        @memoized(maxsize=8)
        def build(x):
            calls.append(x)
            return x + 1

        with legacy_engine():
            assert build(1) == 2
            assert build(1) == 2
        assert calls == [1, 1]
        assert build.cache_info().currsize == 0

    def test_clear_derived_caches_resets_registered_caches(self):
        @memoized(maxsize=8)
        def build(x):
            return x

        build(5)
        assert build.cache_info().currsize == 1
        clear_derived_caches()
        assert build.cache_info().currsize == 0

    def test_freeze_makes_arrays_read_only(self):
        arr = freeze(np.arange(4))
        with pytest.raises(ValueError):
            arr[0] = 9


class TestScheduleMemoization:
    def test_schedules_identical_across_engines(self):
        for s in (1, 2, 5, 8):
            fast_c, fast_l = circular_schedule(s), linear_schedule(s)
            with legacy_engine():
                legacy_c, legacy_l = circular_schedule(s), linear_schedule(s)
            np.testing.assert_array_equal(fast_c, legacy_c)
            np.testing.assert_array_equal(fast_l, legacy_l)

    def test_cached_schedule_is_read_only_and_stable(self):
        a = circular_schedule(6)
        b = circular_schedule(6)
        assert a is b  # same cached object
        assert not a.flags.writeable

    def test_schedule_plan_identical_across_engines(self):
        fast = schedule_plan(1000, 4, 2)
        with legacy_engine():
            legacy = schedule_plan(1000, 4, 2)
        assert fast == legacy

    def test_validation_still_raises_before_the_cache(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            circular_schedule(0)


class TestFanout:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers("4") == 4
        assert resolve_workers("auto") == available_cpus()
        assert resolve_workers(-1) == available_cpus()

    def test_resolve_workers_rejects_garbage(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            resolve_workers("bogus")

    def test_resolve_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_WORKERS", "2")
        assert resolve_workers(None) == 2
        monkeypatch.setenv("REPRO_PERF_WORKERS", "auto")
        assert resolve_workers(None) == available_cpus()
        # An explicit value beats the environment.
        assert resolve_workers(1) == 1

    @pytest.mark.parametrize("value", ["0", "-2", "1.5", "many", ""])
    def test_strings_are_validated_strictly(self, value):
        """String inputs come from env vars and CLI flags, where silent
        coercion hides typos: anything but 'auto' or an int >= 1 is a
        UsageError naming the value."""
        from repro.errors import UsageError

        with pytest.raises(UsageError, match="auto"):
            resolve_workers(value)

    @pytest.mark.parametrize("value", ["0", "-3", "2.5", "lots"])
    def test_env_values_are_validated_with_source(self, value, monkeypatch):
        from repro.errors import UsageError

        monkeypatch.setenv("REPRO_PERF_WORKERS", value)
        with pytest.raises(UsageError, match="REPRO_PERF_WORKERS"):
            resolve_workers(None)

    def test_usage_error_is_a_config_error(self):
        """UsageError subclasses ConfigError, so callers pinning the old
        contract (ConfigError on garbage) keep working."""
        from repro.errors import ConfigError, UsageError

        assert issubclass(UsageError, ConfigError)

    def test_serial_map_preserves_order(self):
        assert fanout_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        items = list(range(12))
        serial = fanout_map(_square, items, workers=1)
        parallel = fanout_map(_square, items, workers=2)
        assert parallel == serial

    def test_single_item_never_spawns(self):
        assert fanout_map(_square, [5], workers=8) == [25]


def _square(x):
    return x * x


class TestTraceEventCap:
    def test_events_beyond_cap_are_counted_not_stored(self):
        trace = Trace()
        for i in range(DEFAULT_EVENT_CAP + 10):
            trace.record_event(f"event {i}")
        assert len(trace.events) == DEFAULT_EVENT_CAP
        assert trace.dropped_events == 10
        assert any("dropped" in line for line in trace.summary_lines(nthreads=1))

    def test_uncapped_trace_keeps_everything(self):
        trace = Trace()
        trace.event_cap = None
        for i in range(DEFAULT_EVENT_CAP + 10):
            trace.record_event(f"event {i}")
        assert len(trace.events) == DEFAULT_EVENT_CAP + 10
        assert trace.dropped_events == 0

    def test_profile_runtime_lifts_the_cap(self):
        machine = hps_cluster(2, 2)
        assert PGASRuntime(machine).trace.event_cap == DEFAULT_EVENT_CAP
        assert PGASRuntime(machine, profile=True).trace.event_cap is None

    def test_merge_accumulates_drops(self):
        a, b = Trace(), Trace()
        a.event_cap = b.event_cap = 2
        for t in (a, b):
            for i in range(5):
                t.record_event(f"e{i}")
        a.merge(b)
        assert len(a.events) == 2
        assert a.dropped_events == 3 + 3 + 2  # own + b's + b's re-recorded overflow

    def test_category_seconds_is_a_fresh_dict(self):
        trace = Trace()
        trace.charge_category(Category.COMM, 1.5)
        snap = trace.category_seconds
        snap[Category.COMM] = 0.0
        assert trace.category_seconds[Category.COMM] == 1.5


class TestSoakFanoutDeterminism:
    def _report(self, workers):
        from repro.integrity import SoakConfig, run_soak

        config = SoakConfig(
            iterations=2, seed=5, algos=("cc",), nodes=2, threads=2, n=192, m=768
        )
        report = run_soak(config, write_json=False, workers=workers)
        report.pop("wallclock")
        return report

    def test_report_identical_for_any_worker_count(self):
        serial = self._report(workers=1)
        fanned = self._report(workers=2)
        assert fanned == serial


class TestWallclockBenchPayload:
    def test_payload_shape_and_baseline_check(self, tmp_path):
        from repro.perf.bench import check_against_baseline, run_wallclock_bench

        payload = run_wallclock_bench(
            out_dir=tmp_path, scale=0.02, repeats=1, workers=1
        )
        assert payload["serial"]["fast_seconds"] > 0
        assert payload["serial"]["legacy_seconds"] > 0
        assert os.path.exists(payload["path"])
        assert check_against_baseline(payload, payload) is None
        slower = {"serial": {"fast_seconds": payload["serial"]["fast_seconds"] * 2}}
        assert check_against_baseline(slower, payload) is not None
        assert check_against_baseline(payload, {}) is not None
