"""The kernel-backend layer: dispatch, validation, and bit-identity.

Two contracts are enforced here.  First, every backend importable on
this host must reproduce the golden fingerprint matrix *bit*-identically
— a backend that is fast but wrong is not a backend, it is a bug with a
flag.  Second, selection must fail the way the CLI contract says:
unknown names raise :class:`~repro.errors.UsageError` (exit 2 through
``main``), known-but-unavailable backends fall back to numpy with a
one-line warning, and never a crash.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.cli import main
from repro.errors import UsageError
from repro.kernels import state as kernel_state
from repro.kernels.base import KERNEL_OPS, KernelBackend
from repro.kernels.numpy_backend import NumpyKernels, group_minima_numpy
from repro.perf import clear_derived_caches, global_arena
from repro.perf.golden import SCENARIOS, Scenario, scenario_fingerprint


def _scenario_id(scenario: Scenario) -> str:
    return scenario.name


def _other_backends() -> list:
    return [n for n in kernels.available_backends() if n != "numpy"]


@pytest.fixture(autouse=True)
def _clean_state():
    """Every test starts and ends on the default backend with cold pools."""
    previous = kernel_state.set_current("numpy")
    clear_derived_caches()
    global_arena().clear()
    yield
    kernel_state.set_current(previous)
    clear_derived_caches()
    global_arena().clear()


# -- golden bit-identity across backends --------------------------------------


_reference_fp: dict = {}


def _numpy_fingerprint(scenario: Scenario) -> dict:
    fp = _reference_fp.get(scenario.name)
    if fp is None:
        with kernels.use_backend("numpy"):
            fp = scenario_fingerprint(scenario)
        _reference_fp[scenario.name] = fp
    return fp


@pytest.mark.parametrize("backend", _other_backends())
@pytest.mark.parametrize("scenario", SCENARIOS, ids=_scenario_id)
def test_backend_is_bit_identical_on_golden_matrix(scenario, backend):
    golden = _numpy_fingerprint(scenario)
    clear_derived_caches()
    global_arena().clear()
    with kernels.use_backend(backend):
        fp = scenario_fingerprint(scenario)
    assert fp == golden, f"{scenario.name}: backend {backend!r} diverged from numpy"


@pytest.mark.skipif(not _other_backends(), reason="only the numpy baseline importable")
def test_mid_process_backend_switch_is_safe(rng):
    """Alternating backends per call must never corrupt pooled scratch
    (the arena keys pools by backend) or the answers."""
    idx = rng.integers(0, 500, size=4000, dtype=np.int64)
    vals = rng.integers(0, 10_000, size=4000, dtype=np.int64)
    expected = group_minima_numpy(idx, vals)
    for _ in range(3):
        for name in kernels.available_backends():
            with kernels.use_backend(name) as backend:
                got = backend.group_minima(idx, vals)
                np.testing.assert_array_equal(got[0], expected[0])
                np.testing.assert_array_equal(got[1], expected[1])


# -- per-op unit tests vs naive references ------------------------------------


def _all_backends():
    return [kernels._load(n) for n in kernels.available_backends()]


@pytest.mark.parametrize("backend", _all_backends(), ids=lambda b: b.name)
class TestOps:
    def test_group_minima_matches_minimum_at(self, backend, rng):
        idx = rng.integers(0, 100, size=2000, dtype=np.int64)
        vals = rng.integers(-50, 10_000, size=2000, dtype=np.int64)
        naive = np.full(100, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(naive, idx, vals)
        targets, minima = backend.group_minima(idx, vals)
        np.testing.assert_array_equal(targets, np.unique(idx))
        np.testing.assert_array_equal(minima, naive[targets])

    def test_group_minima_single_target(self, backend):
        idx = np.zeros(7, dtype=np.int64)
        vals = np.array([5, 3, 9, 3, 8, 4, 6], dtype=np.int64)
        targets, minima = backend.group_minima(idx, vals)
        np.testing.assert_array_equal(targets, [0])
        np.testing.assert_array_equal(minima, [3])

    def test_group_minima_float_nan_propagates_like_minimum_at(self, backend):
        # The numba backend delegates float input to the baseline for
        # exactly this reason: np.minimum propagates NaN.
        idx = np.array([0, 0, 1, 1], dtype=np.int64)
        vals = np.array([1.0, np.nan, 2.0, 3.0])
        targets, minima = backend.group_minima(idx, vals)
        np.testing.assert_array_equal(targets, [0, 1])
        assert np.isnan(minima[0]) and minima[1] == 2.0

    def test_exchange_matrix_matches_histogram(self, backend, rng):
        s = 8
        requesters = rng.integers(0, s, size=300, dtype=np.int64)
        owners = rng.integers(0, s, size=300, dtype=np.int64)
        naive = np.zeros((s, s), dtype=np.int64)
        for o, r in zip(owners, requesters):
            naive[o, r] += 1
        got = np.asarray(backend.exchange_matrix(requesters, owners, s))
        np.testing.assert_array_equal(got, naive)

    def test_exchange_matrix_empty(self, backend):
        got = np.asarray(
            backend.exchange_matrix(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 4
            )
        )
        np.testing.assert_array_equal(got, np.zeros((4, 4), dtype=np.int64))

    def test_owner_distinct_matches_unique_per_block(self, backend, rng):
        size, s = 103, 8  # ragged final block on purpose
        block = -(-size // s)
        idx = rng.integers(0, size, size=400, dtype=np.int64)
        naive = np.zeros(s, dtype=np.int64)
        for t in range(s):
            lo, hi = t * block, min((t + 1) * block, size) if t < s - 1 else size
            naive[t] = np.unique(idx[(idx >= lo) & (idx < hi)]).size
        got = backend.owner_distinct(idx, size, block, s)
        np.testing.assert_array_equal(got, naive)

    def test_segment_distinct_matches_unique_per_thread(self, backend, rng):
        parts = 6
        tids = np.sort(rng.integers(0, parts, size=300, dtype=np.int64))
        vals = rng.integers(10, 60, size=300, dtype=np.int64)
        vmin, vrange = 10, 50
        naive = np.array(
            [np.unique(vals[tids == t]).size for t in range(parts)], dtype=np.int64
        )
        got = backend.segment_distinct(tids, vals, parts, vmin, vrange)
        np.testing.assert_array_equal(got, naive)

    def test_concat_segments_interleaves(self, backend):
        a_off = np.array([0, 2, 3, 6], dtype=np.int64)
        b_off = np.array([0, 1, 4, 4], dtype=np.int64)  # empty final b-segment
        a = np.array([10, 11, 20, 30, 31, 32], dtype=np.int64)
        b = np.array([100, 200, 201, 202], dtype=np.int64)
        sizes = np.diff(a_off) + np.diff(b_off)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        got = backend.concat_segments(a, a_off, b, b_off, offsets)
        np.testing.assert_array_equal(
            got, [10, 11, 100, 20, 200, 201, 202, 30, 31, 32]
        )


# -- selection / validation ---------------------------------------------------


def test_resolve_backend_defaults_to_numpy():
    assert kernels.resolve_backend(None) == "numpy"
    assert kernels.resolve_backend("") == "numpy"
    assert kernels.resolve_backend("  NumPy  ") == "numpy"


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(UsageError, match="unknown kernel backend 'bogus'"):
        kernels.resolve_backend("bogus")
    with pytest.raises(UsageError, match=r"\(from --backend\)"):
        kernels.resolve_backend("bogus", source="--backend")


def test_missing_reason_rejects_unknown_names():
    with pytest.raises(UsageError, match="unknown kernel backend"):
        kernels.missing_reason("bogus")


def test_unavailable_backend_falls_back_with_one_warning(monkeypatch, capsys):
    monkeypatch.setattr(
        kernels, "missing_reason", lambda name: "python package 'numba' is not installed"
    )
    monkeypatch.setattr(kernels, "_warned", set())
    assert kernels.resolve_backend("numba") == "numpy"
    assert kernels.resolve_backend("numba") == "numpy"
    err = capsys.readouterr().err
    assert err.count("falling back to 'numpy'") == 1
    assert "numba" in err


def test_available_backends_always_includes_numpy():
    names = kernels.available_backends()
    assert "numpy" in names
    for name in names:
        assert kernels.missing_reason(name) is None


def test_set_backend_returns_previous():
    previous = kernels.set_backend("numpy")
    assert kernels.backend_name() == "numpy"
    assert kernels.set_backend(previous) == "numpy"


def test_use_backend_restores_unresolved_state():
    kernel_state.set_current(None)
    with kernels.use_backend("numpy"):
        assert kernel_state.current_name() == "numpy"
    assert kernel_state.current_name() is None
    kernel_state.set_current("numpy")


def test_env_selection_is_lazy(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_BACKEND", "bogus")
    kernel_state.set_current(None)
    # Import-time / idle state: nothing raised yet.
    with pytest.raises(UsageError, match="REPRO_PERF_BACKEND"):
        kernels.backend_name()
    kernel_state.set_current("numpy")


def test_backend_capabilities_shape():
    caps = {c["backend"]: c for c in kernels.backend_capabilities()}
    assert set(caps) == {"numpy", "numba", "scipy"}
    assert caps["numpy"]["available"] and caps["numpy"]["requires"] is None
    assert caps["numpy"]["native_ops"] == KERNEL_OPS
    for cap in caps.values():
        assert set(cap["native_ops"]) | set(cap["delegated_ops"]) == set(KERNEL_OPS)
        if not cap["available"]:
            assert cap["reason"]


def test_calibrate_backends_records():
    records = {r["backend"]: r for r in kernels.calibrate_backends(repeats=1, scale=0.02)}
    assert set(records) == {"numpy", "numba", "scipy"}
    assert records["numpy"]["seconds"] > 0
    assert records["numpy"]["speedup_vs_numpy"] == 1.0
    for rec in records.values():
        assert rec["available"] == (rec["seconds"] is not None)


def test_recommend_backend_is_an_available_backend():
    assert kernels.recommend_backend() in kernels.available_backends()


def test_tuning_reexports_calibrate_backends():
    from repro.tuning import calibrate_backends

    records = calibrate_backends(repeats=1, scale=0.02)
    assert {r["backend"] for r in records} == {"numpy", "numba", "scipy"}


def test_base_backend_ops_are_abstract():
    base = KernelBackend()
    with pytest.raises(NotImplementedError):
        base.group_minima(np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64))
    assert KernelBackend.available()


# -- CLI contract -------------------------------------------------------------


def test_cli_rejects_unknown_backend(capsys):
    assert main(["cc", "--n", "200", "--machine", "2x2", "--backend", "bogus"]) == 2
    assert "unknown kernel backend 'bogus'" in capsys.readouterr().err


def test_cli_runs_each_available_backend():
    for name in kernels.available_backends():
        assert (
            main(["cc", "--n", "500", "--machine", "2x2", "--backend", name]) == 0
        )
    kernel_state.set_current("numpy")


# -- arena pools are keyed by backend -----------------------------------------


def test_arena_pools_are_backend_keyed():
    arena = global_arena()
    arena.clear()
    kernel_state.set_current("numpy")
    buf = arena.take(1000, np.int64)
    base_numpy = buf.base
    arena.give(buf)
    # Same request under another backend name must not see numpy's pool.
    kernel_state.set_current("scipy")
    other = arena.take(1000, np.int64)
    assert other.base is not base_numpy
    arena.give(other)
    # Back on numpy, the pooled buffer is reused.
    kernel_state.set_current("numpy")
    again = arena.take(1000, np.int64)
    assert again.base is base_numpy
    arena.give(again)
    arena.clear()


def test_numpy_backend_is_the_default_dispatch():
    assert isinstance(kernels.active_backend(), NumpyKernels)
