"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so
PEP-660 editable installs (which require bdist_wheel) cannot build.
This shim lets `pip install -e . --no-use-pep517 --no-build-isolation`
fall back to `setup.py develop`. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
