"""Autotuner validation: the auto plan vs the exhaustive lattice sweep.

For the paper's Fig. 5/6 configurations (random and hybrid inputs, the
16x8 machine) this benchmark measures EVERY point of the optimization
lattice (all 2^6 flag subsets × the deterministic t' grid), then runs
``impl/opts/tprime = auto`` on the same input and checks the acceptance
criteria of the tuning subsystem:

* the auto configuration's modeled time is within 5% of the exhaustive
  best;
* it is never slower than the paper's own hand-picked default (all
  flags, t'=2).

Results also land in ``BENCH_tuning.json`` (machine-readable modeled ms
per configuration) for CI to archive.
"""

import itertools

from repro.bench import bench_graph, format_table, write_bench_json
from repro.core import OptimizationFlags, cluster_for_input, connected_components
from repro.perf.fanout import fanout_map
from repro.runtime.cost import CostModel
from repro.scheduling.cache_model import tprime_candidates
from repro.tuning import Workload, build_plan, parse_opts_key


def _sweep_chunk(task):
    """Solve one chunk of lattice points (rebuilds the deterministic
    graph locally so worker processes need only the point list)."""
    kind, n, points = task
    g = bench_graph(kind, n, 4 * n, seed=11)
    cluster = cluster_for_input(n, 16, 8)
    out = []
    for opts_key, tp in points:
        res = connected_components(g, cluster, opts=parse_opts_key(opts_key), tprime=tp)
        out.append((opts_key, tp, res.info.sim_time_ms))
    return out


def _sweep(kind, n, workers=1):
    """Modeled ms for every lattice point; identical for any ``workers``
    (points are independent and times are simulated, so the strided
    partition only changes which process computes which entry)."""
    cluster = cluster_for_input(n, 16, 8)
    cands = tprime_candidates(max(1, n // cluster.total_threads), CostModel(cluster))
    points = [
        (opts.key(), tp)
        for opts, tp in itertools.product(OptimizationFlags.lattice(), cands)
    ]
    nchunks = max(1, min(int(workers), len(points)))
    chunks = [points[i::nchunks] for i in range(nchunks)]
    results = fanout_map(_sweep_chunk, [(kind, n, c) for c in chunks], workers=nchunks)
    return {(key, tp): ms for chunk in results for key, tp, ms in chunk}


def test_tuning_auto_vs_exhaustive(benchmark, repro_scale, repro_workers, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune_cache.json"))
    n = max(1500, int(6000 * repro_scale))
    payload = {"n": n, "kinds": {}}
    rows = []

    def run():
        out = {}
        for kind in ("random", "hybrid"):
            g = bench_graph(kind, n, 4 * n, seed=11)
            cluster = cluster_for_input(n, 16, 8)
            measured = _sweep(kind, n, workers=repro_workers)
            auto = connected_components(
                g, cluster, impl="auto", opts="auto", tprime="auto", graph_kind=kind
            )
            default = connected_components(
                g, cluster, opts=OptimizationFlags.all(), tprime=2
            )
            out[kind] = (measured, auto.info.sim_time_ms, default.info.sim_time_ms)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for kind, (measured, auto_ms, default_ms) in results.items():
        best_key = min(measured, key=measured.get)
        best_ms = measured[best_key]
        rows.append(
            [
                kind,
                len(measured),
                f"{best_key[0]}/t'={best_key[1]}",
                f"{best_ms:.3f}",
                f"{auto_ms:.3f}",
                f"{default_ms:.3f}",
            ]
        )
        payload["kinds"][kind] = {
            "auto_ms": auto_ms,
            "default_ms": default_ms,
            "exhaustive_best_ms": best_ms,
            "exhaustive_best_config": f"{best_key[0]}/t'={best_key[1]}",
            "lattice": {f"{key[0]}/t'={key[1]}": ms for key, ms in measured.items()},
        }
        assert auto_ms <= 1.05 * best_ms, (
            f"{kind}: auto {auto_ms:.3f} ms not within 5% of exhaustive best"
            f" {best_ms:.3f} ms ({best_key})"
        )
        assert auto_ms <= default_ms * 1.001, (
            f"{kind}: auto {auto_ms:.3f} ms slower than the hand-picked default"
            f" {default_ms:.3f} ms"
        )
        benchmark.extra_info[f"{kind}_auto_vs_best"] = round(auto_ms / best_ms, 4)
        benchmark.extra_info[f"{kind}_auto_vs_default"] = round(auto_ms / default_ms, 4)

    print()
    print(
        format_table(
            ["kind", "configs", "exhaustive best", "best ms", "auto ms", "default ms"],
            rows,
        )
    )
    path = write_bench_json("tuning", payload)
    print(f"wrote {path}")


def test_tuning_plan_report(benchmark, repro_scale, tmp_path, monkeypatch):
    """Predicted-vs-measured sanity of the planner itself: probed entries
    must rank consistently with their measurements (the probe stage IS
    the measurement, so this guards the bookkeeping, not the model)."""
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune_cache.json"))
    n = max(1500, int(6000 * repro_scale))
    cluster = cluster_for_input(n, 16, 8)
    workload = Workload(kind="cc", n=n, m=4 * n, graph_kind="random")

    plan = benchmark.pedantic(
        lambda: build_plan(workload, cluster), rounds=1, iterations=1
    )
    probed = plan.probed()
    assert probed, "plan must contain probe-measured entries"
    ms = [e.probed_ms for e in probed]
    assert ms == sorted(ms), "probed entries must be ranked by measured time"
    benchmark.extra_info["probed_configs"] = len(probed)
    benchmark.extra_info["selected"] = plan.selected.config_label()
