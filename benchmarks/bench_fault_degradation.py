"""Fault-degradation curves: collectives degrade more gracefully.

Under message loss every remote message is a retry opportunity, and the
collective rewrites send *O(threads)* coalesced messages per call where
the fine-grained translation sends one per element.  This bench sweeps
loss rates {0, 1e-4, 1e-3, 1e-2} and 1-2 straggler threads over CC and
MST, naive vs collective, and measures the *added* modeled time and the
retransmit counts each implementation absorbs.  The honest claim (and
the assertion): at every loss rate the fine-grained implementation pays
orders of magnitude more retries and more added seconds than the
collective one — fewer messages mean fewer retry opportunities.

Run directly (``python benchmarks/bench_fault_degradation.py``) or via
pytest-benchmark like the figure benches.
"""

from repro import FaultPlan, connected_components, minimum_spanning_forest
from repro.bench import bench_graph, format_table
from repro.core import cluster_for_input
from repro.graph import with_random_weights

LOSS_RATES = (0.0, 1e-4, 1e-3, 1e-2)
STRAGGLERS = (1, 2)
FAULT_SEED = 7


def _solve(problem, g, machine, impl, plan):
    solver = connected_components if problem == "cc" else minimum_spanning_forest
    return solver(g, machine, impl=impl, faults=plan, validate=plan is not None)


def run_degradation(scale: float = 0.5):
    """Sweep the fault grid; returns (rows, headline) and asserts shape."""
    n = max(2_000, int(8_000 * scale))
    g = bench_graph("random", n, 4 * n, seed=30)
    gw = with_random_weights(g, seed=31)
    machine = cluster_for_input(n, 4, 2)

    rows = []
    added = {}   # (problem, impl, loss) -> added modeled seconds vs loss=0
    retries = {}  # (problem, impl, loss) -> retransmit count
    base = {}
    for problem, graph in (("cc", g), ("mst", gw)):
        for impl in ("naive", "collective"):
            for loss in LOSS_RATES:
                plan = FaultPlan.lossy(loss, seed=FAULT_SEED) if loss else None
                res = _solve(problem, graph, machine, impl, plan)
                sim = res.info.sim_time
                nretries = res.info.trace.counters.retries
                if loss == 0.0:
                    base[problem, impl] = sim
                key = (problem, impl, loss)
                added[key] = sim - base[problem, impl]
                retries[key] = nretries
                rows.append([
                    problem, impl, f"{loss:g}", f"{sim * 1e3:.3f}",
                    f"{added[key] * 1e3:.3f}", f"{sim / base[problem, impl]:.3f}",
                    nretries,
                ])

    straggler_rows = []
    for problem, graph in (("cc", g), ("mst", gw)):
        for impl in ("naive", "collective"):
            for count in STRAGGLERS:
                plan = FaultPlan.from_cli(
                    loss=0.0, stragglers=count, seed=FAULT_SEED,
                    total_threads=machine.total_threads,
                )
                res = _solve(problem, graph, machine, impl, plan)
                straggler_rows.append([
                    problem, impl, count, f"{res.info.sim_time * 1e3:.3f}",
                    f"{res.info.sim_time / base[problem, impl]:.3f}",
                ])

    # Degradation shape: added time grows with loss for both impls, and
    # at every nonzero rate the fine-grained impl pays more added time
    # and far more retries than the collective rewrite.
    for problem in ("cc", "mst"):
        for impl in ("naive", "collective"):
            series = [added[problem, impl, loss] for loss in LOSS_RATES]
            assert all(b >= a for a, b in zip(series, series[1:])), (problem, impl, series)
        for loss in LOSS_RATES[1:]:
            # At 1e-4 a handful of retries can land off the critical
            # path and add zero modeled time for both impls; the ordering
            # must hold weakly everywhere and strictly once loss bites.
            assert added[problem, "naive", loss] >= added[problem, "collective", loss]
            assert retries[problem, "naive", loss] > 10 * retries[problem, "collective", loss]
        for loss in (1e-3, 1e-2):
            assert added[problem, "naive", loss] > added[problem, "collective", loss]

    worst = LOSS_RATES[-1]
    headline = {
        "cc naive/collective added-time ratio at 1e-2":
            added["cc", "naive", worst] / max(added["cc", "collective", worst], 1e-12),
        "mst naive/collective added-time ratio at 1e-2":
            added["mst", "naive", worst] / max(added["mst", "collective", worst], 1e-12),
        "cc retries naive vs collective at 1e-2":
            retries["cc", "naive", worst] / max(retries["cc", "collective", worst], 1),
    }
    return rows, straggler_rows, headline


def render(rows, straggler_rows, headline) -> str:
    out = [
        "Fault degradation: modeled slowdown under message loss",
        format_table(
            ["problem", "impl", "loss", "total ms", "added ms", "slowdown", "retries"], rows
        ),
        "",
        "Straggler threads (4x slowdown each)",
        format_table(["problem", "impl", "stragglers", "total ms", "slowdown"], straggler_rows),
        "",
    ]
    for key, value in headline.items():
        out.append(f"  {key}: {value:.3g}")
    return "\n".join(out)


def test_fault_degradation(benchmark, repro_scale):
    rows, straggler_rows, headline = benchmark.pedantic(
        run_degradation, kwargs={"scale": repro_scale}, rounds=1, iterations=1
    )
    text = render(rows, straggler_rows, headline)
    print()
    print(text)
    from conftest import RESULTS_DIR

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fault_degradation.txt").write_text(text + "\n")
    for key, value in headline.items():
        benchmark.extra_info[key] = round(float(value), 3)
    # The tentpole claim, pinned: collectives degrade more gracefully.
    assert headline["cc naive/collective added-time ratio at 1e-2"] > 2
    assert headline["mst naive/collective added-time ratio at 1e-2"] > 2
    assert headline["cc retries naive vs collective at 1e-2"] > 10


if __name__ == "__main__":
    print(render(*run_degradation()))
