"""Fig. 6 reproduction: the Fig. 5 breakdown on a hybrid (hub-heavy)
graph.

Paper claims: "similar impact is also observed for the hybrid graph";
hubs create neither load imbalance nor communication hotspots.
"""

from repro.bench import fig6_optimization_breakdown_hybrid


def test_fig06_breakdown_hybrid(figure_runner):
    fig = figure_runner(fig6_optimization_breakdown_hybrid)
    assert fig.headline["Comm reduction at circular"] > 1.5
    assert fig.headline["optimized vs base"] > 1.5
    totals = [row["total ms"] for row in fig.rows]
    assert totals == sorted(totals, reverse=True)
