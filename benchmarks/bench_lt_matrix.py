"""Liu–Tarjan variant matrix: every registered LT variant against the
grafting (``collective``) and Shiloach-Vishkin baselines, across machine
presets and input families.

Every cell is one verified solve: labels are checked against the
networkx oracle and the benchmark fails (nonzero exit under pytest) if
any variant is ever wrong — a fast variant with a wrong answer is not a
result.  The per-preset winner among the LT variants is reported along
with how it compares to the baselines, and the payload lands in
``BENCH_lt.json`` for CI to archive.

The interesting question the matrix answers: *which lattice point wins
where*.  Full shortcutting pays more per round and converges in fewer
rounds; partial shortcutting is the opposite; alter spends two extra
collectives per round to shrink later rounds.  The balance flips with
the machine's communication/compute ratio, so winners are expected to
differ across presets (the payload records whether they did).
"""

import networkx as nx
import numpy as np

from repro.bench import bench_graph, format_table, write_bench_json
from repro.core import connected_components, machine_for_input
from repro.lt import LT_VARIANT_NAMES
from repro.perf.fanout import fanout_map
from repro.runtime import hps_cluster, infiniband_cluster, smp_node

#: preset name -> base machine builder (rebuilt inside workers; machine
#: configs are derived deterministically from the preset name + n).
PRESETS = {
    "hps-4x2": lambda: hps_cluster(4, 2),
    "hps-16x8": lambda: hps_cluster(16, 8),
    "infiniband-16x8": lambda: infiniband_cluster(16, 8),
    "smp-16": lambda: smp_node(16),
}

KINDS = ("random", "powerlaw")
BASELINES = ("collective", "sv")
IMPLS = BASELINES + LT_VARIANT_NAMES


def _oracle(graph) -> np.ndarray:
    labels = np.arange(graph.n, dtype=np.int64)
    for comp in nx.connected_components(graph.to_networkx()):
        root = min(comp)
        for vtx in comp:
            labels[vtx] = root
    return labels


def _cell_task(task):
    """One (preset, kind) row: solve every impl, verify each against the
    networkx oracle computed once for the row."""
    preset, kind, n = task
    g = bench_graph(kind, n, 4 * n, seed=23)
    machine = machine_for_input(PRESETS[preset](), n)
    want = _oracle(g)
    out = []
    for impl in IMPLS:
        res = connected_components(g, machine, impl=impl, tprime=2)
        out.append((impl, res.info.sim_time_ms, bool(np.array_equal(res.labels, want))))
    return preset, kind, out


def test_lt_variant_matrix(benchmark, repro_scale, repro_workers):
    n = max(2048, int(20_000 * repro_scale))
    tasks = [(preset, kind, n) for preset in PRESETS for kind in KINDS]

    def run():
        return fanout_map(_cell_task, tasks, workers=repro_workers)

    rows_raw = benchmark.pedantic(run, rounds=1, iterations=1)

    payload = {"n": n, "m": 4 * n, "impls": list(IMPLS), "cells": {}, "winners": {}}
    table_rows = []
    wrong = []
    for preset, kind, cells in rows_raw:
        times = {impl: ms for impl, ms, _ in cells}
        for impl, _, correct in cells:
            if not correct:
                wrong.append(f"{preset}/{kind}/{impl}")
        lt_winner = min(LT_VARIANT_NAMES, key=lambda name: times[name])
        payload["cells"][f"{preset}/{kind}"] = {
            impl: round(ms, 6) for impl, ms in times.items()
        }
        payload["winners"][f"{preset}/{kind}"] = {
            "lt": lt_winner,
            "lt_ms": round(times[lt_winner], 6),
            "collective_ms": round(times["collective"], 6),
            "sv_ms": round(times["sv"], 6),
            "lt_beats_collective": times[lt_winner] < times["collective"],
        }
        table_rows.append([
            preset, kind, lt_winner,
            f"{times[lt_winner]:.3f}",
            f"{times['collective']:.3f}",
            f"{times['sv']:.3f}",
        ])

    lt_winners = {w["lt"] for w in payload["winners"].values()}
    payload["winners_differ_across_presets"] = len(lt_winners) > 1
    payload["verified"] = not wrong
    if len(lt_winners) == 1:
        payload["winners_note"] = (
            "one variant won every preset at this scale; the comm/compute"
            " balance did not cross a lattice boundary"
        )

    print()
    print(format_table(
        ["preset", "kind", "best LT", "LT ms", "collective ms", "sv ms"], table_rows
    ))
    path = write_bench_json("lt", payload)
    print(f"wrote {path}")

    # The gate: a single wrong answer anywhere in the matrix fails the
    # benchmark — speed results for incorrect variants are meaningless.
    assert not wrong, f"variants failed the networkx oracle: {wrong}"
    benchmark.extra_info["winners_differ"] = payload["winners_differ_across_presets"]
    benchmark.extra_info["lt_winners"] = sorted(lt_winners)
