"""Service benchmark: open-loop load at several offered rates.

Stands up a real :class:`~repro.service.ServiceServer` (ephemeral port,
journal on) and drives it with the :mod:`repro.service.loadtest`
open-loop generator at three offered rates — the last one deliberately
past saturation for the configured worker count — measuring what the
*service layer* adds to the solvers: admission outcomes (accepted /
429 / shed), end-to-end p50/p99 latency, delivered throughput, and the
verified-result contract.

Acceptance criteria enforced here (the robustness analogue of the
figure benchmarks' accuracy criteria):

* the server stays healthy through every level, saturation included;
* zero contract violations — every served result carries
  ``verify.status == "verified"``; nothing unverified or wrong is ever
  returned;
* the saturated level actually saturates: delivered throughput stays
  below the offered rate (otherwise the "past saturation" level was not
  past saturation and the numbers are not measuring degradation).

Results land in ``BENCH_service.json`` for CI to archive.  Wall-clock
latencies here are real (this benchmark times the service, not the
simulator), so numbers vary run to run; the *contract* assertions do
not.
"""

from __future__ import annotations

import os

from repro.bench import format_table, write_bench_json
from repro.service import LoadtestConfig, ServiceConfig, ServiceServer, run_loadtest


def test_service_open_loop(benchmark, repro_scale, tmp_path):
    n = max(128, int(512 * repro_scale))
    jobs = max(8, int(24 * repro_scale))
    server = ServiceServer(ServiceConfig(
        port=0,
        workers=2,
        queue_capacity=16,
        quota_rate=30.0,
        quota_burst=40.0,
        journal_path=str(tmp_path / "journal.jsonl"),
        journal_fsync=False,
    ))
    server.start_background()
    try:
        config = LoadtestConfig(
            base_url=server.url,
            # Low, near-capacity, and past saturation for 2 workers.
            rates_per_s=(2.0, 10.0, 40.0),
            jobs_per_level=jobs,
            n=n,
            seed=7,
            poll_timeout_s=300.0,
        )
        report = benchmark.pedantic(run_loadtest, args=(config,), rounds=1, iterations=1)
    finally:
        server.stop()

    rows = []
    for level in report["levels"]:
        rows.append([
            f"{level['offered_rate_per_s']:g}",
            level["offered"],
            level["accepted"],
            level["rejected_429"],
            level["completed"],
            f"{level['throughput_per_s']:.2f}",
            f"{level['shed_rate']:.0%}",
            "-" if level["latency_p50_s"] is None else f"{level['latency_p50_s'] * 1e3:.0f}",
            "-" if level["latency_p99_s"] is None else f"{level['latency_p99_s'] * 1e3:.0f}",
        ])
    print()
    print(format_table(
        ["rate/s", "offered", "accepted", "429", "done", "done/s", "shed", "p50 ms", "p99 ms"],
        rows,
    ))
    out_dir = os.environ.get("REPRO_BENCH_OUT") or None
    path = write_bench_json("service", report, directory=out_dir)
    print(f"report: {path}")

    assert report["contract_violations"] == [], report["contract_violations"]
    assert report["ok"]
    saturated = report["levels"][-1]
    assert saturated["throughput_per_s"] < saturated["offered_rate_per_s"], (
        "the top load level must be past saturation: delivered"
        f" {saturated['throughput_per_s']:.2f}/s vs offered"
        f" {saturated['offered_rate_per_s']:g}/s"
    )
    benchmark.extra_info["p50_ms_low"] = round((report["levels"][0]["latency_p50_s"] or 0) * 1e3, 1)
    benchmark.extra_info["p99_ms_saturated"] = round((saturated["latency_p99_s"] or 0) * 1e3, 1)
    benchmark.extra_info["throughput_saturated"] = round(saturated["throughput_per_s"], 2)
    benchmark.extra_info["shed_rate_saturated"] = round(saturated["shed_rate"], 3)
