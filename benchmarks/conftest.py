"""Shared fixtures for the figure benchmarks.

Scale: ``REPRO_BENCH_SCALE`` (default 0.5) multiplies the already
~1000x-shrunk default inputs; machines are recalibrated automatically.
Each benchmark prints its figure table (run with ``-s`` to see it live)
and writes it under ``benchmarks/results/`` for EXPERIMENTS.md.

Sanitizer: ``REPRO_BENCH_ANALYZE=1`` runs every figure under the epoch
race detector and prints the report (report-only — the naive-UPC figures
race *by design*; that is the point of the comparison, so the bench
never fails on it).  The detector is observation-only, so the printed
modeled times are unchanged.

Fan-out: ``REPRO_BENCH_WORKERS`` (int or ``auto``) spreads benchmarks
with independent sweep points (e.g. the tuning lattice) across a
process pool via :mod:`repro.perf.fanout`; tables are identical for
any worker count because all reported times are modeled.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def repro_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def repro_workers() -> int:
    """Fan-out width for benchmarks with independent sweep points:
    ``REPRO_BENCH_WORKERS`` (int or ``auto``; default serial).  Every
    consumer must produce the identical table for any worker count —
    modeled times come from the simulator, not from wall-clock."""
    from repro.perf.fanout import resolve_workers

    return resolve_workers(os.environ.get("REPRO_BENCH_WORKERS"), source="REPRO_BENCH_WORKERS")


@pytest.fixture
def figure_runner(benchmark, repro_scale):
    """Run a figure driver once under pytest-benchmark, print and persist
    its table, and surface its headline metrics as extra_info."""

    def run(driver, **kwargs):
        if os.environ.get("REPRO_BENCH_ANALYZE"):
            from repro.analysis import analyzed

            with analyzed() as session:
                fig = benchmark.pedantic(
                    driver, kwargs={"scale": repro_scale, **kwargs}, rounds=1, iterations=1
                )
            print()
            print("[REPRO_BENCH_ANALYZE] " + session.render().replace("\n", "\n  "))
        else:
            fig = benchmark.pedantic(
                driver, kwargs={"scale": repro_scale, **kwargs}, rounds=1, iterations=1
            )
        text = fig.render()
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = fig.figure.lower().replace(".", "").replace(" ", "_")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        for key, value in fig.headline.items():
            try:
                benchmark.extra_info[key] = round(float(value), 4)
            except (TypeError, ValueError):
                benchmark.extra_info[key] = str(value)
        return fig

    return run
