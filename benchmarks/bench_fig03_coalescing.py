"""Fig. 3 reproduction: impact of communication coalescing (1 thread per
node, unoptimized collectives, quicksort grouping).

Paper claims: rewritten CC ~70x faster than the naive translation; SV
slower than CC (more collective calls per iteration).
"""

from repro.bench import fig3_coalescing


def test_fig03_coalescing(figure_runner):
    fig = figure_runner(fig3_coalescing)
    assert fig.headline["CC speedup over Orig"] > 20
    assert fig.headline["SV slower than CC"] > 1.0
    by = {r["config"]: r for r in fig.rows}
    # Coalescing reduces message counts drastically (at tiny scales the
    # fixed SMatrix setup messages dilute the ratio; at the default
    # scale it is orders of magnitude).
    assert by["CC"]["remote messages"] < by["Orig"]["remote messages"] / 2
