"""Ablation: linear vs circular communication orchestration.

Regenerates the paper's "communication time is reduced by a factor of 2
with circular" in isolation (all other optimizations held at their
optimized settings).
"""

from repro.bench import bench_graph, format_table
from repro.core import OptimizationFlags, cluster_for_input, connected_components


def test_circular_ablation(benchmark, repro_scale):
    n = max(2048, int(100_000 * repro_scale))
    g = bench_graph("random", n, 4 * n, seed=31)
    cluster = cluster_for_input(n, 16, 8)
    with_circ = OptimizationFlags.all()
    without = with_circ.with_(circular=False)

    def run():
        return {
            "circular": connected_components(g, cluster, opts=with_circ, tprime=2),
            "linear": connected_components(g, cluster, opts=without, tprime=2),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [k, r.info.sim_time_ms, r.info.breakdown()["Comm"] * 1e3]
        for k, r in results.items()
    ]
    print()
    print(format_table(["order", "total ms", "Comm ms/thread"], rows))
    comm_lin = results["linear"].info.breakdown()["Comm"]
    comm_circ = results["circular"].info.breakdown()["Comm"]
    assert comm_circ < comm_lin
    benchmark.extra_info["comm_reduction"] = round(comm_lin / comm_circ, 3)
