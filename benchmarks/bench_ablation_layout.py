"""Ablation: vertex-layout sensitivity of the blocked shared arrays.

The paper deliberately uses inputs with "no obvious locality pattern"
and notes that R-MAT graphs "contain artificial locality, and random
permutation on the vertices needs to be performed".  This ablation shows
why that matters: on a 2-D grid, the natural row-major numbering keeps
most neighbors on the same node (little remote traffic), while a
block-cyclic relabeling destroys the locality and multiplies the
communicated bytes — same graph, same algorithm, different layout.
"""

import numpy as np

from repro.bench import format_table
from repro.core import canonical_labels, cluster_for_input, connected_components
from repro.graph import block_cyclic_permutation, grid_graph, random_permutation


def test_layout_sensitivity(benchmark, repro_scale):
    side = max(64, int(300 * repro_scale))
    g = grid_graph(side, side)
    n = g.n
    cluster = cluster_for_input(n, 16, 8)
    layouts = {
        "natural (row-major)": None,
        "random permutation": random_permutation(n, seed=1),
        "block-cyclic": block_cyclic_permutation(n, cluster.total_threads),
    }

    def run():
        out = {}
        for label, perm in layouts.items():
            graph = g if perm is None else g.permuted(perm)
            out[label] = connected_components(graph, cluster, tprime=2)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base_labels = canonical_labels(results["natural (row-major)"].labels)
    rows = []
    for label, res in results.items():
        rows.append([
            label,
            res.info.sim_time_ms,
            f"{res.info.trace.counters.remote_bytes:,}",
        ])
        assert res.num_components == 1
    print()
    print(format_table(["vertex layout", "sim ms", "remote bytes"], rows))
    natural = results["natural (row-major)"].info.trace.counters.remote_bytes
    scrambled = results["random permutation"].info.trace.counters.remote_bytes
    # Destroying locality multiplies the remote traffic.
    assert scrambled > 2 * natural
    benchmark.extra_info["traffic_inflation"] = round(scrambled / natural, 2)
