"""Section VI reproduction: hybrid-graph speedup summary.

Paper claims (best configuration): CC 2.5x / 2.8x over SMP; MST 5.1x /
6.7x over sequential Kruskal; hubs cause no load-balance or hotspot
problems.
"""

from repro.bench import sec6_hybrid_summary


def test_sec6_hybrid_summary(figure_runner):
    fig = figure_runner(sec6_hybrid_summary)
    assert fig.headline["CC vs SMP (m/n=4)"] > 1.0
    assert fig.headline["CC vs SMP (m/n=10)"] > 1.0
    assert fig.headline["MST vs seq (m/n=4)"] > 2.0
    assert fig.headline["MST vs seq (m/n=10)"] > 2.0
