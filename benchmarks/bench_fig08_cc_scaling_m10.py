"""Fig. 8 reproduction: optimized CC vs threads/node, m/n = 10.

Paper claims: best at 8 threads/node — 3x over CC-SMP, ~11x over the
sequential baseline.
"""

from repro.bench import fig8_cc_scaling_dense


def test_fig08_cc_scaling_dense(figure_runner, repro_scale):
    fig = figure_runner(fig8_cc_scaling_dense)
    assert fig.headline["best threads/node"] == 8
    assert fig.headline["degradation 8->16 threads"] > 5
    if repro_scale >= 0.25:
        assert fig.headline["best speedup vs SMP"] > 1.2
