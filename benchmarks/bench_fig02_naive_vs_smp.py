"""Fig. 2 reproduction: naive CC-UPC vs CC-SMP on four random graphs.

Paper claim: the literal UPC translation is drastically slower in wall
time and ~3 orders of magnitude slower normalized per processor.
"""

from repro.bench import fig2_naive_vs_smp


def test_fig02_naive_vs_smp(figure_runner):
    fig = figure_runner(fig2_naive_vs_smp)
    # Shape assertions: UPC never wins, and the normalized gap is orders
    # of magnitude, on every input.
    for row in fig.rows:
        assert row["raw ratio"] > 10
        assert row["normalized ratio"] > 100
    assert fig.headline["normalized slowdown (orders of magnitude)"] > 2.5
