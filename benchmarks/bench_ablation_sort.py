"""Ablation: count sort vs quicksort inside the collectives.

The paper notes its Fig. 3 configuration used a quicksort "more than 50
times slower than count sort"; this bench regenerates the end-to-end
impact of the grouping-sort choice on optimized CC.
"""

from repro.bench import bench_graph, format_table
from repro.core import OptimizationFlags, cluster_for_input, connected_components


def test_sort_method_ablation(benchmark, repro_scale):
    # Keep per-thread request counts in the regime where count sort's
    # linear passes beat quicksort (tiny inputs flip the comparison, as
    # they would on real hardware too).
    n = max(100_000, int(200_000 * repro_scale))
    g = bench_graph("random", n, 4 * n, seed=30)
    cluster = cluster_for_input(n, 16, 8)

    def run():
        out = {}
        for method in ("count", "quick"):
            res = connected_components(
                g, cluster, impl="collective", opts=OptimizationFlags.all(),
                tprime=2, sort_method=method,
            )
            out[method] = res
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [m, results[m].info.sim_time_ms, results[m].info.breakdown()["Sort"] * 1e3]
        for m in ("count", "quick")
    ]
    print()
    print(format_table(["sort", "total ms", "Sort ms/thread"], rows))
    assert results["count"].info.sim_time < results["quick"].info.sim_time
    benchmark.extra_info["quick_over_count"] = round(
        results["quick"].info.sim_time / results["count"].info.sim_time, 3
    )
