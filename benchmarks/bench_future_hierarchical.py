"""The paper's future-work proposal, implemented: hierarchical collectives.

Section VI: "This problem is due to the flat organization of threads in
UPC ... the solution lies either in better runtime support or language
support.  The thread-process hierarchy is exposed to the runtime, and
the AlltoAll collective does not have to involve s = p x t threads in
communication across the network.  Instead, it may involve only p
processes."

With ``OptimizationFlags(hierarchical=True)`` each node's threads
aggregate their SMatrix entries and payload messages, and only node
leaders talk across the network.  This bench shows the Fig. 7 16-thread
collapse disappearing — the configuration the paper had to avoid becomes
the fastest one.
"""

from repro.bench import bench_graph, format_table
from repro.core import OptimizationFlags, cluster_for_input, connected_components


def test_hierarchical_fixes_the_collapse(benchmark, repro_scale):
    n = max(4096, int(100_000 * repro_scale))
    g = bench_graph("random", n, 4 * n, seed=50)
    flat = OptimizationFlags.all()
    hier = flat.with_(hierarchical=True)

    def run():
        out = {}
        for t in (4, 8, 16):
            machine = cluster_for_input(n, 16, t)
            tp = max(1, 16 // t)
            out[(t, "flat")] = connected_components(g, machine, opts=flat, tprime=tp)
            out[(t, "hier")] = connected_components(g, machine, opts=hier, tprime=tp)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for t in (4, 8, 16):
        rows.append(
            [
                f"16x{t} (s={16 * t})",
                results[(t, "flat")].info.sim_time_ms,
                results[(t, "hier")].info.sim_time_ms,
                results[(t, "flat")].info.trace.counters.remote_messages,
                results[(t, "hier")].info.trace.counters.remote_messages,
            ]
        )
    print()
    print(format_table(
        ["cluster", "flat ms", "hierarchical ms", "flat msgs", "hier msgs"], rows
    ))
    flat16 = results[(16, "flat")].info.sim_time
    hier16 = results[(16, "hier")].info.sim_time
    flat8 = results[(8, "flat")].info.sim_time
    # The collapse: flat s=256 is much slower than flat s=128.
    assert flat16 > 3 * flat8
    # The fix: hierarchical s=256 is at least as good as flat s=128.
    assert hier16 < 1.5 * flat8
    benchmark.extra_info["collapse_removed"] = round(flat16 / hier16, 2)
