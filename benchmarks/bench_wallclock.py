"""Wall-clock engine benchmark: fast engine vs legacy engine, honestly.

Runs :func:`repro.perf.bench.run_wallclock_bench` — the same pinned
workload timed under both engines in one process — so the reported
speedup is a real before/after on *this* machine, never a stale number
from different hardware.  The payload lands in ``BENCH_wallclock.json``
(archived by CI, gated by the perf-smoke job via
``python -m repro perf --min-speedup``).

Scale follows ``REPRO_BENCH_SCALE``; ``REPRO_BENCH_WORKERS`` sizes the
fan-out throughput leg (only meaningful on multi-core hosts — the
payload records the CPU count so readers can interpret a ~1x ratio).
"""

from repro.bench import format_table
from repro.perf.bench import run_wallclock_bench


def test_wallclock_fast_vs_legacy(benchmark, repro_scale, repro_workers):
    payload = benchmark.pedantic(
        run_wallclock_bench,
        kwargs={"scale": max(0.25, repro_scale), "repeats": 2, "workers": repro_workers},
        rounds=1,
        iterations=1,
    )
    serial = payload["serial"]
    fan = payload["fanout"]
    print()
    print(
        format_table(
            ["measurement", "fast", "legacy", "speedup"],
            [
                [
                    "serial workload (s)",
                    f"{serial['fast_seconds']:.3f}",
                    f"{serial['legacy_seconds']:.3f}",
                    f"{serial['speedup']:.2f}x",
                ],
                [
                    "soak throughput (it/s)",
                    f"{fan['parallel']['iterations_per_second']:.2f}",
                    f"{fan['serial']['iterations_per_second']:.2f}",
                    f"{fan['throughput_speedup']:.2f}x",
                ],
            ],
        )
    )
    print(f"cpus={payload['cpus']} workers={fan['parallel']['workers']}"
          f" report={payload['path']}")

    # The engines must both have produced a measurable run; the speedup
    # *gate* lives in the CI perf-smoke job (same-machine comparison),
    # not here — a loaded laptop must not fail the figure suite.
    assert serial["fast_seconds"] > 0 and serial["legacy_seconds"] > 0
    assert payload["arena"]["leases"] > 0, "fast engine never touched the arena"

    benchmark.extra_info["serial_speedup"] = round(serial["speedup"], 3)
    benchmark.extra_info["fanout_speedup"] = round(fan["throughput_speedup"], 3)
    benchmark.extra_info["cpus"] = payload["cpus"]
