"""Fig. 5 reproduction: cumulative optimization breakdown on a random
graph (16 nodes x 8 threads), six time categories.

Paper claims: compact improves nearly every category; circular halves
communication; localcpy halves Copy; id slashes the target-id Work.
"""

from repro.bench import fig5_optimization_breakdown


def test_fig05_breakdown_random(figure_runner):
    fig = figure_runner(fig5_optimization_breakdown)
    assert fig.headline["Comm reduction at circular"] > 1.5
    assert fig.headline["Copy reduction at localcpy"] > 1.5
    assert fig.headline["optimized vs base"] > 1.5
    totals = [row["total ms"] for row in fig.rows]
    assert totals == sorted(totals, reverse=True)  # cumulative improvement
