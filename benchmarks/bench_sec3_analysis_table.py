"""Section III reproduction: the analytic complexity table and the
"CC-UPC is over 20 times slower per data access" estimate, cross-checked
against the simulator's measured per-access ratio.
"""

from repro.bench import sec3_analysis


def test_sec3_analysis(figure_runner):
    fig = figure_runner(sec3_analysis)
    # Paper's estimate with IB/DDR3 constants lands near 20x.
    assert 10 < fig.headline["per-access slowdown estimate"] < 30
