"""Fig. 7 reproduction: optimized CC vs threads/node, m/n = 4.

Paper claims: best at 8 threads/node (2.2x over CC-SMP, ~9x over the
sequential baseline); ~10x degradation at 16 threads/node from the
all-to-all burst of 256 threads.
"""

from repro.bench import fig7_cc_scaling


def test_fig07_cc_scaling(figure_runner, repro_scale):
    fig = figure_runner(fig7_cc_scaling)
    assert fig.headline["best threads/node"] == 8
    assert fig.headline["degradation 8->16 threads"] > 5
    if repro_scale >= 0.25:
        assert fig.headline["best speedup vs SMP"] > 1.2
        assert 4 < fig.headline["best speedup vs seq"] < 25
