"""The paper's thesis, regenerated: coordinated-parallel beats
round-minimizing.

Section I: "instead of taking the approach of communication-efficient
algorithms that have one processor work on the large contracted inputs
to reduce communication rounds, it is faster to coordinate multiple
processors to process the same input in parallel."

This bench runs connected components three ways — the round-minimizing
CGM scheme (log p communication rounds, sequential merge steps), the
paper's collective rewrite, and the sequential baseline — and list
ranking (the paper's Section I example) with Wyllie-with-collectives vs
the CGM contract/sequential/broadcast scheme.
"""

from repro.bench import bench_graph, format_table
from repro.core import (
    cluster_for_input,
    connected_components,
    sequential_for_input,
)
from repro.listrank import random_list, solve_ranks_cgm, solve_ranks_sequential, solve_ranks_wyllie


def test_thesis_cc_cgm_vs_collective(benchmark, repro_scale):
    n = max(4096, int(100_000 * repro_scale))
    g = bench_graph("random", n, 4 * n, seed=40)
    cluster = cluster_for_input(n, 16, 8)

    def run():
        return {
            "CGM (log p rounds)": connected_components(g, cluster, impl="cgm"),
            "collectives (paper)": connected_components(g, cluster, impl="collective", tprime=2),
            "sequential": connected_components(
                g, sequential_for_input(n), impl="sequential"
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, res.info.sim_time_ms, res.info.trace.counters.remote_messages]
        for label, res in results.items()
    ]
    print()
    print(format_table(["CC implementation", "sim ms", "remote messages"], rows))
    cgm = results["CGM (log p rounds)"].info.sim_time
    coll = results["collectives (paper)"].info.sim_time
    seq = results["sequential"].info.sim_time
    # The thesis: fewer rounds is not faster — the serial merge chain
    # keeps CGM at (or below) sequential speed while the collectives win.
    assert coll < cgm / 5
    assert cgm > 0.5 * seq
    benchmark.extra_info["collective_over_cgm"] = round(cgm / coll, 2)
    benchmark.extra_info["cgm_over_sequential"] = round(seq / cgm, 2)


def test_thesis_listranking(benchmark, repro_scale):
    n = max(4096, int(200_000 * repro_scale))
    lst = random_list(n, seed=41)
    cluster = cluster_for_input(n, 16, 8)

    def run():
        wy, wy_info = solve_ranks_wyllie(lst, cluster, tprime=2)
        cg, cg_info = solve_ranks_cgm(lst, cluster, tprime=2)
        sq, sq_info = solve_ranks_sequential(lst, sequential_for_input(n))
        assert (wy == cg).all() and (wy == sq).all()
        return {"Wyllie+collectives": wy_info, "CGM contraction": cg_info,
                "sequential": sq_info}

    infos = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, info.sim_time_ms, info.iterations]
        for label, info in infos.items()
    ]
    print()
    print(format_table(["list ranking", "sim ms", "rounds"], rows))
    # Both parallel schemes beat sequential here; the CC experiment above
    # is where the CGM approach collapses (its merge steps are Theta(n)
    # serial work per round — list ranking's contraction is not).
    assert infos["Wyllie+collectives"].sim_time < infos["sequential"].sim_time
    benchmark.extra_info["wyllie_vs_seq"] = round(
        infos["sequential"].sim_time / infos["Wyllie+collectives"].sim_time, 2
    )
