"""Resilience economics: redundancy overhead vs recovery latency.

Owner-block redundancy is not free — every round ships the dirty owner
deltas to replica (buddy) or parity-group owners, and that traffic is
charged modeled time like any other communication.  What it buys is
survival: a permanent node loss that would otherwise abort the run gets
absorbed by reconstruct + remap + replay, at a one-time recovery cost.

This bench quantifies both sides of that trade for CC and MST in both
redundancy modes:

* **overhead** — modeled-time ratio of a redundancy-on run (no loss
  fires) over the unprotected baseline: the steady-state premium;
* **recovery** — added modeled ms when one node is permanently lost
  mid-solve (same mode, same graph), with the result still verified:
  the price of the event itself.

The structured report lands in ``BENCH_resilience.json`` for the CI
``resilience-smoke`` job to archive.

Run directly (``python benchmarks/bench_resilience.py``) or via
pytest-benchmark like the figure benches.
"""

from repro import (
    FaultPlan,
    NodeLossEvent,
    RedundancyConfig,
    connected_components,
    minimum_spanning_forest,
)
from repro.bench import bench_graph, format_table, write_bench_json
from repro.core import cluster_for_input
from repro.graph import with_random_weights

MODES = ("buddy", "parity")
LOSS_AT = 3.0e-4  # modeled seconds; early enough to fire in every run
FAULT_SEED = 7


def _solve(problem, graph, machine, plan, resilience):
    solver = connected_components if problem == "cc" else minimum_spanning_forest
    return solver(
        graph, machine, impl="collective", faults=plan,
        resilience=resilience, validate=True,
    )


def run_resilience(scale: float = 0.5):
    """Measure overhead and recovery for the mode matrix; returns
    (rows, report) and asserts the economics hold."""
    n = max(2_000, int(8_000 * scale))
    g = bench_graph("random", n, 4 * n, seed=33)
    gw = with_random_weights(g, seed=34)
    machine = cluster_for_input(n, 4, 2)
    loss_plan = FaultPlan(
        seed=FAULT_SEED, node_losses=(NodeLossEvent(node=1, at_time=LOSS_AT),)
    )

    rows = []
    measurements = {}
    for problem, graph in (("cc", g), ("mst", gw)):
        base = _solve(problem, graph, machine, None, None).info.sim_time
        for mode in MODES:
            config = RedundancyConfig(mode=mode, group=2)
            quiet = _solve(problem, graph, machine, None, config)
            lossy = _solve(problem, graph, machine, loss_plan, config)
            c = lossy.info.trace.counters
            assert c.node_losses == 1 and c.epoch_changes == 1
            assert c.blocks_reconstructed > 0
            overhead = quiet.info.sim_time / base
            recovery_ms = (lossy.info.sim_time - quiet.info.sim_time) * 1e3
            measurements[problem, mode] = {
                "baseline_ms": base * 1e3,
                "protected_ms": quiet.info.sim_time * 1e3,
                "overhead": overhead,
                "lossy_ms": lossy.info.sim_time * 1e3,
                "recovery_added_ms": recovery_ms,
                "replicas_written": c.replicas_written,
                "blocks_reconstructed": c.blocks_reconstructed,
            }
            rows.append([
                problem, mode, f"{base * 1e3:.3f}", f"{quiet.info.sim_time * 1e3:.3f}",
                f"{overhead:.3f}", f"{lossy.info.sim_time * 1e3:.3f}",
                f"{recovery_ms:.3f}", c.replicas_written,
            ])

    # The economics this subsystem claims: redundancy costs something
    # every round (the premium is real, charged communication), and a
    # survived loss costs more on top (reconstruct + replay are not
    # free) — but both runs still verified, which is the whole point.
    for (problem, mode), m in measurements.items():
        assert m["overhead"] > 1.0, (problem, mode, m)
        assert m["recovery_added_ms"] > 0.0, (problem, mode, m)
        assert m["replicas_written"] > 0

    worst_overhead = max(m["overhead"] for m in measurements.values())
    report = {
        "n": n,
        "machine": machine.describe(),
        "loss_at_s": LOSS_AT,
        "measurements": {
            f"{problem}-{mode}": m for (problem, mode), m in measurements.items()
        },
        "headline": {
            "worst_overhead": worst_overhead,
            "worst_recovery_added_ms": max(
                m["recovery_added_ms"] for m in measurements.values()
            ),
        },
    }
    return rows, report


def render(rows, report) -> str:
    out = [
        "Resilience: redundancy overhead vs recovery latency (all runs verified)",
        format_table(
            ["problem", "mode", "base ms", "protected ms", "overhead",
             "with-loss ms", "recovery ms", "replica elems"],
            rows,
        ),
        "",
        f"  worst steady-state overhead: {report['headline']['worst_overhead']:.3f}x",
        f"  worst recovery latency     : "
        f"{report['headline']['worst_recovery_added_ms']:.3f} ms",
    ]
    return "\n".join(out)


def test_resilience_economics(benchmark, repro_scale):
    rows, report = benchmark.pedantic(
        run_resilience, kwargs={"scale": repro_scale}, rounds=1, iterations=1
    )
    text = render(rows, report)
    print()
    print(text)
    from conftest import RESULTS_DIR

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "resilience.txt").write_text(text + "\n")
    report["path"] = str(write_bench_json("resilience", report))
    benchmark.extra_info["worst_overhead"] = round(report["headline"]["worst_overhead"], 3)
    benchmark.extra_info["worst_recovery_added_ms"] = round(
        report["headline"]["worst_recovery_added_ms"], 3
    )


if __name__ == "__main__":
    rows, report = run_resilience()
    print(render(rows, report))
    print(f"\nreport: {write_bench_json('resilience', report)}")
