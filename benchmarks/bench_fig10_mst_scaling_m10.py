"""Fig. 10 reproduction: optimized MST vs threads/node, m/n = 10.

Paper claims: best speedup 10.2 at 8 threads/node.
"""

from repro.bench import fig10_mst_scaling_dense


def test_fig10_mst_scaling_dense(figure_runner):
    fig = figure_runner(fig10_mst_scaling_dense)
    assert fig.headline["best threads/node"] == 8
    assert fig.headline["best speedup"] > 5
