"""Kernel-backend benchmark: per-backend x per-preset speedup table.

Runs :func:`repro.perf.bench.run_kernel_bench` — every available
backend timed on the same micro presets and the same CC + MST solve in
one process, plus a sharded-solve leg — and prints the speedup table
against the numpy baseline.  The payload lands in ``BENCH_kernels.json``
(archived by the CI backend-matrix legs).

Unavailable backends (numba not installed, say) appear as skipped rows,
never failures; single-core hosts record an honest ~1x sharding ratio
next to the CPU count.
"""

from repro.bench import format_table
from repro.perf.bench import run_kernel_bench


def test_kernel_backends(benchmark, repro_scale, repro_workers):
    payload = benchmark.pedantic(
        run_kernel_bench,
        kwargs={"scale": max(0.25, repro_scale), "repeats": 2, "workers": repro_workers},
        rounds=1,
        iterations=1,
    )
    presets = ["micro-0.5x", "micro-1x", "micro-2x", "solve"]
    rows = []
    for record in payload["backends"]:
        if not record["available"]:
            rows.append([record["backend"], f"skipped — {record['reason']}", "", "", ""])
            continue
        rows.append(
            [record["backend"]]
            + [
                f"{record['presets'][p] * 1e3:.1f} ms"
                f" ({record['speedup_vs_numpy'][p]:.2f}x)"
                for p in presets
            ]
        )
    shard = payload["shard"]
    if shard["seconds"] is not None:
        rows.append(
            [
                f"numpy+shard[{shard['workers']}]",
                "-",
                "-",
                "-",
                f"{shard['seconds'] * 1e3:.1f} ms ({shard['speedup']:.2f}x)",
            ]
        )
    print()
    print(format_table(["backend"] + presets, rows))
    print(f"cpus={payload['cpus']} shard_note={shard['note'] or '-'}"
          f" report={payload['path']}")

    # Availability and bit-identity are test-suite concerns; here we
    # only require that every available backend produced a measurable
    # run (the speedup gate lives in the CI backend-matrix job, which
    # compares numbers measured on one runner).
    available = [r for r in payload["backends"] if r["available"]]
    assert any(r["backend"] == "numpy" for r in available)
    for record in available:
        assert all(seconds > 0 for seconds in record["presets"].values())

    benchmark.extra_info["cpus"] = payload["cpus"]
    for record in available:
        if record["backend"] != "numpy":
            benchmark.extra_info[f"{record['backend']}_solve_speedup"] = round(
                record["speedup_vs_numpy"]["solve"], 3
            )
    if shard["speedup"] is not None:
        benchmark.extra_info["shard_solve_speedup"] = round(shard["speedup"], 3)
