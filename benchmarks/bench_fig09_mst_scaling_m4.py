"""Fig. 9 reproduction: optimized MST vs threads/node, m/n = 4.

Paper claims: best speedup 5.5 at 8 threads/node; MST-SMP "either slower
or only slightly faster" than sequential Kruskal (the 100M-lock effect).
"""

from repro.bench import fig9_mst_scaling


def test_fig09_mst_scaling(figure_runner):
    fig = figure_runner(fig9_mst_scaling)
    assert fig.headline["best threads/node"] == 8
    assert fig.headline["best speedup"] > 3
    assert 0.4 < fig.headline["SMP vs Kruskal"] < 2.5
