"""Related-work contrast: BFS's O(d) round bound vs poly-log CC.

The paper's Section I: Yoo et al.'s BlueGene/L BFS "has a lower bound of
O(d) ... for the running time regardless of the number of processors.
Many poly-log time graph algorithms that scale to O(n) processors
exhibit different algorithmic behavior."  This bench measures both on a
low-diameter random graph and a maximal-diameter path: CC's rounds stay
flat while BFS's track the diameter.
"""

from repro.bench import bench_graph, format_table
from repro.bfs import solve_bfs_collective
from repro.core import cluster_for_input, connected_components
from repro.graph import path_graph


def test_bfs_vs_cc_rounds(benchmark, repro_scale):
    n = max(4096, int(50_000 * repro_scale))
    rnd = bench_graph("random", n, 4 * n, seed=60)
    path = path_graph(n)
    cluster = cluster_for_input(n, 16, 8)

    def run():
        out = {}
        for label, g in [("random (d ~ log n)", rnd), ("path (d = n-1)", path)]:
            _, bfs_info = solve_bfs_collective(g, 0, cluster, tprime=2)
            cc = connected_components(g, cluster, tprime=2)
            out[label] = (bfs_info, cc.info)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (bfs_info, cc_info) in results.items():
        rows.append(
            [label, bfs_info.iterations, f"{bfs_info.sim_time_ms:.3f}",
             cc_info.iterations, f"{cc_info.sim_time_ms:.3f}"]
        )
    print()
    print(format_table(
        ["input", "BFS rounds", "BFS ms", "CC iterations", "CC ms"], rows
    ))
    bfs_path = results["path (d = n-1)"][0]
    cc_path = results["path (d = n-1)"][1]
    bfs_rnd = results["random (d ~ log n)"][0]
    # Diameter-bound: path BFS needs ~n rounds; CC stays poly-log.
    assert bfs_path.iterations >= n - 1
    assert cc_path.iterations < 40
    assert bfs_rnd.iterations < 40
    benchmark.extra_info["path_bfs_rounds"] = bfs_path.iterations
    benchmark.extra_info["path_cc_iterations"] = cc_path.iterations
