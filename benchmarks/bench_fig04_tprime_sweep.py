"""Fig. 4 reproduction: CC-with-collectives speedup over CC-SMP as a
function of the virtual-thread factor t' on one SMP node.

Paper claims: t'=1 already beats the SMP implementation; best t' in the
low-to-mid teens; best configuration approaches 2x.
"""

from repro.bench import fig4_tprime_sweep


def test_fig04_tprime_sweep(figure_runner, repro_scale):
    fig = figure_runner(fig4_tprime_sweep)
    if repro_scale >= 0.25:
        # Cache-fit geometry only matches the paper's at calibrated scale;
        # tiny inputs bottom out at the one-line cache floor.
        assert fig.headline["t'=1 already beats SMP"] == 1.0
        assert 4 <= fig.headline["best t'"] <= 32
        assert fig.headline["best speedup vs SMP"] > 1.1
    # U-shape: the largest t' is not the best.
    per_input = {}
    for row in fig.rows:
        per_input.setdefault(row["input"], []).append((row["t'"], row["sim ms"]))
    for series in per_input.values():
        series.sort()
        times = [t for _, t in series]
        assert min(times) < times[0]  # falls from t'=1
        assert times[-1] > min(times)  # rises again at the tail
