"""Ablation: recursion depth of Algorithm 1 (0-3 levels).

DESIGN.md calls out the depth choice ("no more than three levels" in the
paper).  This bench regenerates the trade-off: each added level cuts the
modeled (and exactly simulated) cache misses of a big irregular gather,
while adding grouping work.
"""

import numpy as np

from repro.bench import format_table
from repro.runtime import CacheParams
from repro.scheduling import (
    scheduled_gather,
    simulate_set_associative,
)


def test_schedule_depth_ablation(benchmark, repro_scale):
    rng = np.random.default_rng(0)
    n = max(1024, int(200_000 * repro_scale))
    m = 4 * n
    d = rng.integers(0, 1000, n)
    r = rng.integers(0, n, m)
    cache = CacheParams(size_bytes=max(256, n // 64), line_bytes=8, associativity=4)

    plans = {"depth-0": (), "depth-1": (16,), "depth-2": (16, 8), "depth-3": (16, 8, 4)}
    rows = []

    def run_all():
        results = {}
        for label, ws in plans.items():
            out, stats = scheduled_gather(d, r, ws)
            assert np.array_equal(out, d[r])
            results[label] = stats
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    misses = {}
    for label, ws in plans.items():
        # Exact simulation of the base-level access trace.
        order = r
        for depth, w in enumerate(ws):
            blk = -(-n // (int(np.prod(ws[: depth + 1]))))
        trace = order if not ws else _grouped_trace(r, n, ws)
        sim = simulate_set_associative(trace, cache)
        misses[label] = sim.misses
        stats = results[label]
        rows.append([label, stats.sorted_elements, sim.misses, f"{sim.miss_rate:.3f}"])
    print()
    print(format_table(["plan", "sorted elems", "exact misses", "miss rate"], rows))
    assert misses["depth-1"] < misses["depth-0"]
    assert misses["depth-2"] <= misses["depth-1"]
    benchmark.extra_info["miss_reduction_depth2"] = round(
        misses["depth-0"] / max(misses["depth-2"], 1), 2
    )


def _grouped_trace(r: np.ndarray, n: int, ws) -> np.ndarray:
    """Access order of the base level after recursive grouping."""
    total_blocks = 1
    for w in ws:
        total_blocks *= w
    blk = -(-n // total_blocks)
    order = np.argsort(r // blk, kind="stable")
    return r[order]
