"""Micro-benchmarks: wall-clock throughput of the simulation itself.

These measure the *simulator* (how many simulated-element-transfers the
NumPy implementation processes per second of real time), guarding
against performance regressions in the library's own hot paths.
"""

import numpy as np

from repro.collectives import getd, setdmin
from repro.core import OptimizationFlags
from repro.runtime import PGASRuntime, PartitionedArray, hps_cluster
from repro.scheduling import scheduled_gather


def test_micro_getd_throughput(benchmark):
    machine = hps_cluster(8, 4)
    rt = PGASRuntime(machine)
    arr = rt.shared_array(np.arange(100_000, dtype=np.int64))
    idx = PartitionedArray.even(
        np.random.default_rng(0).integers(0, 100_000, 400_000), machine.total_threads
    )
    out = benchmark(getd, rt, arr, idx, OptimizationFlags.all())
    assert np.array_equal(out, arr.data[idx.data])


def test_micro_setdmin_throughput(benchmark):
    machine = hps_cluster(8, 4)
    rt = PGASRuntime(machine)
    arr = rt.shared_array(np.full(100_000, 2**40, dtype=np.int64))
    rng = np.random.default_rng(1)
    idx = PartitionedArray.even(rng.integers(0, 100_000, 400_000), machine.total_threads)
    vals = rng.integers(0, 2**31, 400_000)
    benchmark(setdmin, rt, arr, idx, vals, OptimizationFlags.all())


def test_micro_scheduled_gather_throughput(benchmark):
    rng = np.random.default_rng(2)
    d = rng.integers(0, 1000, 200_000)
    r = rng.integers(0, 200_000, 800_000)
    out, _ = benchmark(scheduled_gather, d, r, (16, 8))
    assert out.size == 800_000
