"""Virtual-thread simulation (the paper's ``t'`` parameter).

Applying one more recursion level of Algorithm 1 *inside* a node would
need dynamic scheduling of distributed activities, which UPC lacks; the
paper instead has each of the ``t`` physical threads simulate ``t'``
virtual threads: its local ``D`` block is split into ``t'`` sub-blocks,
requests are grouped per sub-block, and each sub-block is served while it
is cache-resident.  Fig. 4 sweeps ``t'`` and finds a U-shaped optimum
(12-18 for the paper's inputs): larger ``t'`` shrinks the working set,
but every extra virtual thread adds grouping work.

:func:`virtual_gather` is the executable primitive (used in tests and in
the ablation bench with the exact cache simulator);
:func:`charge_local_serve` is the cost hook GetD/SetD call to account
for a local serve phase under a given ``t'``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..runtime.cost import ELEM_BYTES
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category
from .countsort import group_by_key

__all__ = ["virtual_gather", "charge_local_serve", "sub_block_elems"]


def sub_block_elems(block_elems, tprime: int):
    """Elements per virtual-thread sub-block (scalar or per-thread array)."""
    if tprime < 1:
        raise ConfigError(f"t' must be >= 1, got {tprime}")
    return np.maximum(1.0, np.asarray(block_elems, dtype=np.float64) / tprime)


def virtual_gather(
    local_d: np.ndarray, local_r: np.ndarray, tprime: int
) -> tuple[np.ndarray, np.ndarray]:
    """Serve local requests ``local_d[local_r]`` through ``t'`` virtual
    threads.

    Returns ``(values, access_trace)`` where ``access_trace`` is the
    order in which ``local_d`` indices are actually touched (grouped per
    sub-block) — feed it to :mod:`repro.scheduling.cache_sim` to observe
    the miss reduction.
    """
    local_d = np.asarray(local_d)
    local_r = np.asarray(local_r, dtype=np.int64)
    if tprime < 1:
        raise ConfigError(f"t' must be >= 1, got {tprime}")
    n = local_d.shape[0]
    if local_r.size and (local_r.min() < 0 or local_r.max() >= n):
        raise ConfigError("local request out of range")
    if tprime == 1 or n <= 1:
        return local_d[local_r], local_r.copy()
    w = min(tprime, n)
    blk = -(-n // w)
    perm, _, _ = group_by_key(local_r // blk, w)
    trace = local_r[perm]
    served = local_d[trace]
    out = np.empty_like(served)
    out[perm] = served
    return out, trace


def charge_local_serve(
    rt: PGASRuntime,
    nreq,
    block_elems,
    tprime: int,
    localcpy: bool,
    category: str = Category.COPY,
    bytes_per: int = ELEM_BYTES,
    distinct=None,
) -> None:
    """Charge the cost of serving ``nreq`` local requests (per-thread
    array) out of blocks of ``block_elems`` elements under ``t'`` virtual
    threads.

    * ``tprime > 1`` adds the virtual-thread grouping passes;
    * the working set shrinks to ``block / t'`` — and, when the
      per-thread ``distinct`` target counts are supplied, to the
      cold-miss bound (duplicated requests hit cache);
    * without ``localcpy``, every access also pays the UPC shared-pointer
      dereference overhead the compiler emits for unrecognized-local
      accesses.
    """
    if tprime < 1:
        raise ConfigError(f"t' must be >= 1, got {tprime}")
    nreq = np.asarray(nreq, dtype=np.float64)
    block_bytes = np.asarray(block_elems, dtype=np.float64) * bytes_per
    if tprime > 1:
        # Each simulated virtual thread streams the received buffer to
        # pick out its sub-block's requests: t' grouping passes.
        rt.charge(Category.SORT, rt.cost.virtual_scan_time(nreq, tprime, bytes_per))
        rt.counters.add(sorted_elements=int(nreq.sum()))
    if distinct is None:
        distinct = nreq
    ws_bytes = rt.cost.distinct_working_set(distinct, block_bytes, tprime)
    serve = rt.cost.gather_time(nreq, distinct, ws_bytes, bytes_per, mlp=rt.cost.GATHER_MLP)
    if not localcpy:
        serve = serve + rt.cost.op_time(nreq * rt.machine.cpu.upc_deref_factor)
    rt.charge(category, serve)
    rt.counters.add(local_random_accesses=int(nreq.sum()))
