"""Exact cache simulators (small traces).

The analytic working-set model in :mod:`repro.runtime.cost` and
:mod:`repro.scheduling.cache_model` drives the time accounting; these
exact simulators exist to *validate its trends*: tests and the
scheduling ablation bench replay real access traces (e.g. the index
stream of a plain vs scheduled gather) through a direct-mapped or
set-associative LRU cache and check that the scheduler's predicted miss
reduction actually happens.

These are Python-loop simulators — intended for traces up to a few
hundred thousand accesses, not for the main time accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..runtime.machine import CacheParams

__all__ = ["CacheSimResult", "simulate_direct_mapped", "simulate_set_associative", "trace_of_gather"]


@dataclass(frozen=True)
class CacheSimResult:
    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def _block_trace(addresses: np.ndarray, line_bytes: int, elem_bytes: int) -> np.ndarray:
    if line_bytes % elem_bytes:
        raise ConfigError("line size must be a multiple of the element size")
    per_line = line_bytes // elem_bytes
    return np.asarray(addresses, dtype=np.int64) // per_line


def simulate_direct_mapped(
    addresses: np.ndarray, cache: CacheParams, elem_bytes: int = 8
) -> CacheSimResult:
    """Replay element-index accesses through a direct-mapped cache."""
    blocks = _block_trace(addresses, cache.line_bytes, elem_bytes)
    nsets = max(1, cache.num_lines)
    tags = np.full(nsets, -1, dtype=np.int64)
    misses = 0
    for b in blocks.tolist():
        s = b % nsets
        if tags[s] != b:
            tags[s] = b
            misses += 1
    return CacheSimResult(accesses=int(blocks.size), misses=misses)


def simulate_set_associative(
    addresses: np.ndarray, cache: CacheParams, elem_bytes: int = 8
) -> CacheSimResult:
    """Replay element-index accesses through an LRU set-associative cache."""
    blocks = _block_trace(addresses, cache.line_bytes, elem_bytes)
    ways = cache.associativity
    nsets = max(1, cache.num_lines // ways)
    sets: list[list[int]] = [[] for _ in range(nsets)]
    misses = 0
    for b in blocks.tolist():
        s = b % nsets
        ways_list = sets[s]
        try:
            ways_list.remove(b)
            ways_list.append(b)  # hit: move to MRU position
        except ValueError:
            misses += 1
            ways_list.append(b)
            if len(ways_list) > ways:
                ways_list.pop(0)
    return CacheSimResult(accesses=int(blocks.size), misses=misses)


def trace_of_gather(r: np.ndarray) -> np.ndarray:
    """The address trace of a plain gather ``D[R]`` is just ``R``."""
    return np.asarray(r, dtype=np.int64)


def trace_of_scheduled_gather(r: np.ndarray, n: int, w: int) -> np.ndarray:
    """Address trace of the *access phase* of a one-level scheduled
    gather: requests served block by block (within a block the original
    request order is preserved — counting sort is stable)."""
    r = np.asarray(r, dtype=np.int64)
    if w < 1:
        raise ConfigError("need w >= 1")
    blk = -(-max(n, 1) // w)
    keys = r // blk
    order = np.argsort(keys, kind="stable")
    return r[order]
