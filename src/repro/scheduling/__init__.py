"""Access scheduling: the paper's Algorithm 1 and its cache machinery.

* :mod:`access_schedule` — the recursive partition/group/access/permute
  scheduler (gather and min-scatter forms);
* :mod:`countsort` — stable linear-time grouping;
* :mod:`cache_model` — the paper's Eq. (4)/(5) closed forms;
* :mod:`cache_sim` — exact cache simulators validating the model;
* :mod:`virtual_threads` — the in-node ``t'`` virtualization (Fig. 4).
"""

from .access_schedule import (
    ScheduleStats,
    schedule_plan,
    scheduled_gather,
    scheduled_scatter_min,
)
from .cache_model import (
    GatherTimeBreakdown,
    best_tprime,
    scheduled_gather_time,
    scheduling_beneficial,
    unscheduled_gather_time,
)
from .cache_sim import (
    CacheSimResult,
    simulate_direct_mapped,
    simulate_set_associative,
    trace_of_gather,
    trace_of_scheduled_gather,
)
from .countsort import bucket_offsets, counting_sort_permutation, group_by_key
from .virtual_threads import charge_local_serve, sub_block_elems, virtual_gather

__all__ = [
    "CacheSimResult",
    "GatherTimeBreakdown",
    "ScheduleStats",
    "best_tprime",
    "bucket_offsets",
    "charge_local_serve",
    "counting_sort_permutation",
    "group_by_key",
    "schedule_plan",
    "scheduled_gather",
    "scheduled_gather_time",
    "scheduled_scatter_min",
    "scheduling_beneficial",
    "simulate_direct_mapped",
    "simulate_set_associative",
    "sub_block_elems",
    "trace_of_gather",
    "trace_of_scheduled_gather",
    "unscheduled_gather_time",
    "virtual_gather",
]
