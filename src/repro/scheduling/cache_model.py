"""Analytic cache model: the paper's Eq. (4) and Eq. (5).

Section IV-B compares the memory-access time of a plain random gather

    T_orig = m (L_M + 1/B_M)                                      (Eq. 4)

against the scheduled gather with one level of blocking into ``W`` blocks

    T_sched = (2n + 2W + 2) L_M + (4m + 2W) / B_M                 (Eq. 5)

and concludes "for most graphs with m > 3n and most systems with
L_M * B_M > 9, our scheduling improves cache performance".  These closed
forms — with per-term breakdowns matching the paper's derivation (count
sort, routing, access, collect, permute) — are implemented here, along
with the working-set miss predictor used to choose the ``t'`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.derived import memoized
from ..runtime.cost import ELEM_BYTES, CostModel

__all__ = [
    "GatherTimeBreakdown",
    "unscheduled_gather_time",
    "scheduled_gather_time",
    "scheduling_beneficial",
    "best_tprime",
    "tprime_candidates",
]


@dataclass(frozen=True)
class GatherTimeBreakdown:
    """Per-phase modeled seconds of one scheduled gather (Eq. 5 terms)."""

    sort: float
    route: float
    access: float
    collect: float
    permute: float

    @property
    def total(self) -> float:
        return self.sort + self.route + self.access + self.collect + self.permute


def unscheduled_gather_time(m: int, cost: CostModel, bytes_per: int = ELEM_BYTES) -> float:
    """Eq. (4): every random access pays a full memory latency."""
    mem = cost.machine.memory
    return m * (mem.latency + bytes_per / mem.bandwidth)


def scheduled_gather_time(
    m: int, n: int, w: int, cost: CostModel, bytes_per: int = ELEM_BYTES
) -> GatherTimeBreakdown:
    """Eq. (5) with the paper's per-phase derivation.

    * group (count sort): ``2 L_M + m/B_M`` streamed + ``2W`` histogram
      touches;
    * routing requests into blocks: ``W`` block transfers,
      ``W L_M + m/B_M``;
    * access: at most ``n`` misses (each D element faulted in once) plus
      the streamed ``m/B_M`` term;
    * collect: another ``W`` block transfers;
    * permute: mirror of access, ``n L_M + m/B_M``.
    """
    mem = cost.machine.memory
    lm, inv_b = mem.latency, bytes_per / mem.bandwidth
    sort = 2 * lm + m * inv_b + 2 * w * (lm + inv_b)
    route = w * lm + m * inv_b
    access = min(n, m) * lm + m * inv_b
    collect = w * lm + m * inv_b
    permute = min(n, m) * lm + m * inv_b
    return GatherTimeBreakdown(sort, route, access, collect, permute)


def scheduling_beneficial(m: int, n: int, cost: CostModel, w: int | None = None) -> bool:
    """Does Eq. (5) beat Eq. (4) for this input and machine?

    The paper's sufficient condition is ``m > 3n`` and ``L_M B_M > 9``
    (with B_M in elements/time); we evaluate the exact inequality.
    """
    if w is None:
        w = max(2, min(n, 64))
    return scheduled_gather_time(m, n, w, cost).total < unscheduled_gather_time(m, cost)


@memoized(maxsize=1024, name="best_tprime")
def _best_tprime(block_elems: int, cache: float, bytes_per: int, max_tprime: int) -> int:
    for tprime in range(1, max_tprime + 1):
        if block_elems * bytes_per / tprime <= cache:
            return tprime
    return max_tprime


def best_tprime(
    block_elems: int,
    cost: CostModel,
    bytes_per: int = ELEM_BYTES,
    max_tprime: int = 64,
) -> int:
    """Smallest ``t'`` whose sub-block fits the modeled cache.

    The paper: "the size of t' is chosen such that the block fits into a
    certain level cache hierarchy (e.g. L2)".  Benchmarks sweep around
    this prediction (Fig. 4 shows a shallow optimum slightly below the
    exact-fit point because each extra virtual thread adds grouping work).
    Depends only on ``(block_elems, cache size, bytes_per, max_tprime)``,
    so predictions are memoized.
    """
    return _best_tprime(
        int(block_elems), cost.machine.cache.size_bytes, int(bytes_per), int(max_tprime)
    )


@memoized(maxsize=1024, name="tprime_candidates")
def _tprime_candidates(fit: int, max_tprime: int) -> tuple:
    ladder = set()
    step = 1
    while step <= max_tprime:
        ladder.add(step)
        step *= 2
    for near in (fit - 1, fit, fit + 1, 2 * fit):
        if 1 <= near <= max_tprime:
            ladder.add(near)
    return tuple(sorted(ladder))


def tprime_candidates(
    block_elems: int,
    cost: CostModel,
    bytes_per: int = ELEM_BYTES,
    max_tprime: int = 64,
) -> tuple[int, ...]:
    """Deterministic ``t'`` grid for the autotuner's search.

    The Fig. 4 optimum is shallow and sits at-or-below the exact
    cache-fit point :func:`best_tprime` predicts, so the grid is the
    doubling ladder ``1, 2, 4, ...`` up to ``max_tprime`` plus the
    cache-fit value and its immediate neighbours — small enough to sweep
    exhaustively, dense enough around the predicted optimum that the
    true one is never more than one step away.  Memoized like
    :func:`best_tprime` (the grid is pure in the fit point and cap).
    """
    fit = best_tprime(block_elems, cost, bytes_per, max_tprime)
    return _tprime_candidates(int(fit), int(max_tprime))
