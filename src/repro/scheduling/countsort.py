"""Counting-sort based grouping of access requests.

Algorithm 1's *group* phase sorts each request block by target-block key
with a linear-time counting sort; the paper stresses the choice matters
("we use quick sort that is more than 50 times slower than count sort on
the same data" in the Fig. 3 experiment).  This module provides the
stable grouping primitive used by both Algorithm 1 and the GetD/SetD
collectives, plus an explicit two-pass counting sort used to pin the
semantics in tests.

The production path uses ``np.argsort(kind='stable')``, which NumPy
implements with a radix sort for integer keys — a genuine linear-time
counting-style sort, vectorized in C.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError

__all__ = ["group_by_key", "counting_sort_permutation", "bucket_offsets"]


def bucket_offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: offsets[k] is where bucket ``k`` starts."""
    counts = np.asarray(counts, dtype=np.int64)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def counting_sort_permutation(keys: np.ndarray, nbuckets: int) -> np.ndarray:
    """Explicit two-pass counting sort returning the stable permutation
    ``perm`` such that ``keys[perm]`` is sorted and equal keys keep their
    original order.

    This is the textbook histogram/prefix-sum/scatter formulation the
    paper's cost analysis charges (two streamed passes over the data plus
    two passes over the histogram); production code uses
    :func:`group_by_key` which delegates to NumPy's radix sort.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1:
        raise DistributionError("keys must be 1-D")
    if nbuckets < 1:
        raise DistributionError(f"need nbuckets >= 1, got {nbuckets}")
    if keys.size and (keys.min() < 0 or keys.max() >= nbuckets):
        raise DistributionError("key out of bucket range")
    counts = np.bincount(keys, minlength=nbuckets)
    starts = bucket_offsets(counts)[:-1]
    # Stable scatter: position of element i is start of its bucket plus its
    # rank among earlier elements with the same key.
    perm = np.empty(keys.size, dtype=np.int64)
    cursor = starts.copy()
    # Rank-within-key without a Python loop: sort (i) by key with a stable
    # comparison on indices. np.argsort(stable) on int keys is radix sort,
    # but here we want the *explicit* construction; emulate the scatter by
    # computing each element's rank within its bucket via cumulative count.
    order = np.argsort(keys, kind="stable")
    perm[starts[keys[order]] + _rank_within_sorted(keys[order])] = order
    del cursor
    return perm


def _rank_within_sorted(sorted_keys: np.ndarray) -> np.ndarray:
    """For a sorted key array, the rank of each position within its run."""
    if sorted_keys.size == 0:
        return np.empty(0, dtype=np.int64)
    idx = np.arange(sorted_keys.size, dtype=np.int64)
    run_start = np.zeros(sorted_keys.size, dtype=np.int64)
    new_run = np.empty(sorted_keys.size, dtype=bool)
    new_run[0] = True
    new_run[1:] = sorted_keys[1:] != sorted_keys[:-1]
    run_start[new_run] = idx[new_run]
    np.maximum.accumulate(run_start, out=run_start)
    return idx - run_start


def group_by_key(
    keys: np.ndarray, nbuckets: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable grouping of request keys into ``nbuckets``.

    Returns ``(perm, counts, offsets)`` where ``keys[perm]`` is sorted,
    ``counts[k]`` is the bucket population and
    ``perm[offsets[k]:offsets[k+1]]`` selects bucket ``k``'s elements in
    original order.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1:
        raise DistributionError("keys must be 1-D")
    if nbuckets < 1:
        raise DistributionError(f"need nbuckets >= 1, got {nbuckets}")
    if keys.size and (keys.min() < 0 or keys.max() >= nbuckets):
        raise DistributionError(
            f"key out of range: [{keys.min()}, {keys.max()}] vs {nbuckets} buckets"
        )
    perm = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=nbuckets)
    return perm, counts, bucket_offsets(counts)
