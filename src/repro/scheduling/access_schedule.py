"""Algorithm 1: recursive scheduling of irregular memory accesses.

The paper's central locality technique.  Computing ``C[i] = D[R[i]]`` for
a random request array ``R`` walks all of ``D`` in random order; the
scheduler instead:

1. *partition* — splits ``D`` (and ``R``) into ``W`` blocks;
2. *group* — stably sorts each request block by target-block key
   (counting sort), recording the permutation ``P``;
3. *access* — serves all requests to block ``k`` together (recursively,
   with a fresh ``W`` per level, recursion depth <= 3 in practice), so the
   working set shrinks from ``|D|`` to ``|D| / W``;
4. *permute* — scatters retrieved values back to the original request
   order via ``P``.

The roles of reads and writes are symmetric; :func:`scheduled_scatter_min`
is the write-side scheduling used by ``SetD``/``SetDMin``.

Note on the paper's notation: its access phase recurses on
``(D_k, R'_k)`` where the text defines ``R'_k`` as the concatenation of
``R_k``'s *outgoing* groups; dimensional consistency (and the GetD code
in the paper's Algorithm 2) requires the *incoming* groups — all requests
destined to ``D_k`` from every request block.  We implement the incoming
interpretation.

:class:`ScheduleStats` records per-level grouped element counts and the
modeled cache behaviour, so benchmarks can show the miss-count reduction
of Eq. (5) vs Eq. (4) without a hardware counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import DistributionError
from ..perf.derived import memoized
from .countsort import group_by_key

__all__ = ["ScheduleStats", "scheduled_gather", "scheduled_scatter_min", "schedule_plan"]


@dataclass
class ScheduleStats:
    """Work accounting for one scheduled gather/scatter."""

    levels: int = 0
    sorted_elements: int = 0
    blocks_visited: int = 0
    base_accesses: int = 0
    #: Working-set size (elements) at which each base-level access ran.
    base_working_sets: list[tuple[int, int]] = field(default_factory=list)

    def record_base(self, naccesses: int, block_elems: int) -> None:
        self.base_accesses += naccesses
        if naccesses:
            self.base_working_sets.append((naccesses, block_elems))

    def modeled_misses(self, cache_elems: int) -> float:
        """Predicted cache misses of the access phase: random accesses
        into each base block, working-set model (misses only when the
        block exceeds the cache)."""
        total = 0.0
        for naccesses, block in self.base_working_sets:
            if block <= cache_elems:
                total += min(naccesses, block)  # cold misses only
            else:
                total += naccesses * (1.0 - cache_elems / block)
        return total


@memoized(maxsize=512, name="schedule_plan")
def _schedule_plan(n: int, ws: tuple) -> tuple:
    if len(ws) > 3:
        raise DistributionError("recursion depth is limited to 3 levels (as in the paper)")
    for w in ws:
        if not 1 <= w <= max(n, 1):
            raise DistributionError(f"W={w} out of range [1, {n}]")
    return tuple(int(w) for w in ws)


def schedule_plan(n: int, *ws: int) -> tuple[int, ...]:
    """Validate and return a per-level ``W`` plan (depth = len(ws)).

    The paper: "To reduce overhead we limit the recursion depth in our
    implementation to no more than three levels."  Pure in its
    arguments, so validated plans are memoized.
    """
    return _schedule_plan(int(n), tuple(int(w) for w in ws))


def _gather_level(
    d: np.ndarray,
    r: np.ndarray,
    ws: Sequence[int],
    stats: ScheduleStats,
    level: int,
) -> np.ndarray:
    """Serve requests ``r`` (local indices into ``d``) at one level."""
    n = d.shape[0]
    if not ws or n <= 1 or ws[0] <= 1:
        # Base case: direct random access within this block.
        stats.record_base(r.shape[0], n)
        return d[r]

    w = min(int(ws[0]), n)
    blk = -(-n // w)
    keys = r // blk
    perm, counts, offsets = group_by_key(keys, w)
    stats.levels = max(stats.levels, level + 1)
    stats.sorted_elements += int(r.shape[0])

    sorted_r = r[perm]
    out_sorted = np.empty(r.shape[0], dtype=d.dtype)
    for k in range(w):
        lo, hi = offsets[k], offsets[k + 1]
        if lo == hi:
            continue
        stats.blocks_visited += 1
        dlo = k * blk
        dhi = min(dlo + blk, n)
        out_sorted[lo:hi] = _gather_level(
            d[dlo:dhi], sorted_r[lo:hi] - dlo, ws[1:], stats, level + 1
        )
    out = np.empty_like(out_sorted)
    out[perm] = out_sorted
    return out


def scheduled_gather(
    d: np.ndarray, r: np.ndarray, ws: Sequence[int]
) -> tuple[np.ndarray, ScheduleStats]:
    """Compute ``d[r]`` through Algorithm 1 with per-level block counts
    ``ws``; returns the values and the work statistics.

    Semantically identical to plain fancy indexing — property-tested —
    but visits ``d`` one block at a time.
    """
    d = np.asarray(d)
    r = np.asarray(r, dtype=np.int64)
    if d.ndim != 1 or r.ndim != 1:
        raise DistributionError("d and r must be 1-D")
    if r.size and (r.min() < 0 or r.max() >= d.shape[0]):
        raise DistributionError("request index out of range")
    ws = schedule_plan(d.shape[0], *ws)
    stats = ScheduleStats()
    out = _gather_level(d, r, ws, stats, 0)
    return out, stats


def _scatter_level(
    d: np.ndarray,
    r: np.ndarray,
    values: np.ndarray,
    ws: Sequence[int],
    stats: ScheduleStats,
    level: int,
) -> None:
    n = d.shape[0]
    if not ws or n <= 1 or ws[0] <= 1:
        stats.record_base(r.shape[0], n)
        np.minimum.at(d, r, values)
        return

    w = min(int(ws[0]), n)
    blk = -(-n // w)
    keys = r // blk
    perm, counts, offsets = group_by_key(keys, w)
    stats.levels = max(stats.levels, level + 1)
    stats.sorted_elements += int(r.shape[0])

    sorted_r = r[perm]
    sorted_vals = values[perm]
    for k in range(w):
        lo, hi = offsets[k], offsets[k + 1]
        if lo == hi:
            continue
        stats.blocks_visited += 1
        dlo = k * blk
        dhi = min(dlo + blk, n)
        _scatter_level(
            d[dlo:dhi], sorted_r[lo:hi] - dlo, sorted_vals[lo:hi], ws[1:], stats, level + 1
        )


def scheduled_scatter_min(
    d: np.ndarray, r: np.ndarray, values: np.ndarray, ws: Sequence[int]
) -> ScheduleStats:
    """Priority (min) scatter ``d[r] = min(d[r], values)`` scheduled block
    by block — the write-side of Algorithm 1, as used by SetD/SetDMin.

    Mutates ``d`` in place; returns work statistics.
    """
    d = np.asarray(d)
    r = np.asarray(r, dtype=np.int64)
    values = np.asarray(values)
    if r.shape != values.shape:
        raise DistributionError("r and values must have identical shapes")
    if r.size and (r.min() < 0 or r.max() >= d.shape[0]):
        raise DistributionError("request index out of range")
    ws = schedule_plan(d.shape[0], *ws)
    stats = ScheduleStats()
    _scatter_level(d, r, values, ws, stats, 0)
    return stats
