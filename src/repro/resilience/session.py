"""Owner-block redundancy and membership-epoch recovery.

The paper's PGAS model assumes the thread set is fixed for the life of
the solve; :mod:`repro.faults` already absorbs *transient* crashes and
silent corruption through round checkpoints, but a node that dies for
good would stall every barrier forever.  This module adds the missing
rung: keep the answer flowing when a node is permanently gone.

Three pieces compose (see ``docs/fault-model.md`` for the protocol):

* **Redundancy** (:class:`RedundancyConfig`).  Enrolled shared arrays
  keep an off-node copy of their *committed* (round-top) state — either
  a full **buddy** replica (node ``i``'s blocks mirrored on node
  ``(i+1) mod p``) or an XOR **parity** block per group of nodes (RAID-5
  capacity, the parity block itself mirrored inside the group so no
  single loss destroys both a data slice and its only parity).  Replica
  maintenance is *incremental*: the runtime's charged owner-write
  helpers mark dirty elements, and :meth:`ResilientSession.commit_round`
  ships only the dirty deltas — real communication, charged through the
  cost model like any SetD payload.
* **Membership epochs**.  A :class:`~repro.faults.NodeLossEvent` fires
  at a synchronization point; survivors time the silence out, agree the
  loss is permanent (one agreement round on the ``Fault`` clock), and
  :meth:`ResilientSession.on_loss` scrambles the dead node's owner
  blocks (the simulation's one address space would otherwise keep the
  vanished data readable) before raising
  :class:`~repro.errors.NodeLoss` into the solver's recovery scope.
* **Recovery** (:meth:`ResilientSession.recover_loss`).  A new epoch is
  opened, the dead node's owner blocks are reconstructed from the
  buddy replica or the group parity (never from the dead data), block
  ownership is remapped onto the survivors (**shrink**) or a cold
  **spare**, the edge partitions are re-fetched/re-partitioned, fresh
  integrity digests are synced, the fault plan's unfired events are
  remapped onto the new membership, and the solver replays from the
  last round checkpoint under the new layout.

Runs without a session fail loudly: the runtime raises
:class:`~repro.errors.UnrecoverableLossError` the moment an unprotected
loss fires — never a hang, never a silently-wrong forest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ConfigError, NodeLoss, UnrecoverableLossError
from ..faults.checkpoint import RoundCheckpointer
from ..faults.plan import CrashEvent, FaultPlan, NicDegradation, NodeLossEvent
from ..runtime.partitioned import PartitionedArray, even_offsets
from ..runtime.trace import Category

__all__ = ["RedundancyConfig", "ResilientSession", "RecoveredRun"]


@dataclass(frozen=True)
class RedundancyConfig:
    """How enrolled owner blocks are kept recoverable.

    ``mode``
        ``"buddy"`` — full replica of each node's committed blocks on
        the next node (memory overhead 1x, cheapest reconstruction);
        ``"parity"`` — one XOR parity block per ``group`` consecutive
        nodes (memory overhead ``1/group``, reconstruction must fetch
        every surviving group member).
    ``group``
        Parity-group width in nodes (parity mode; clamped to >= 2, and
        a trailing undersized group is merged into its neighbor).
    ``spares``
        Cold spare nodes standing by.  While spares remain, a lost
        node's slot is re-populated instead of shrinking the machine.
    """

    mode: str = "buddy"
    group: int = 4
    spares: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("buddy", "parity"):
            raise ConfigError(f"redundancy mode must be 'buddy' or 'parity', got {self.mode!r}")
        if self.group < 2:
            raise ConfigError(f"parity group width must be >= 2, got {self.group}")
        if self.spares < 0:
            raise ConfigError(f"spare count must be >= 0, got {self.spares}")


@dataclass
class RecoveredRun:
    """What :meth:`ResilientSession.recover_loss` hands back to the
    solver: the post-loss runtime, the rebuilt shared arrays (keyed by
    their names), the restored round-top state with every
    :class:`~repro.runtime.partitioned.PartitionedArray` re-partitioned
    onto the new membership, and a fresh checkpointer bound to the new
    runtime."""

    rt: Any
    machine: Any
    arrays: Dict[str, Any]
    state: Dict[str, Any]
    ck: RoundCheckpointer


class _Enrolled:
    """Per-array redundancy state."""

    __slots__ = ("name", "arr", "corruptible", "committed", "dirty", "parity", "slices")

    def __init__(self, name, arr, corruptible, committed, dirty) -> None:
        self.name = name
        self.arr = arr
        self.corruptible = corruptible
        self.committed = committed
        self.dirty = dirty
        self.parity: "Dict[int, np.ndarray] | None" = None
        self.slices: List[tuple] = []


def _node_slices(arr) -> List[tuple]:
    """Contiguous half-open index range owned by each node (the blocked
    layout keeps a node's threads' blocks adjacent)."""
    m = arr.machine
    tpn = m.threads_per_node
    out = []
    for node in range(m.nodes):
        lo, _ = arr.local_range(node * tpn)
        _, hi = arr.local_range(min((node + 1) * tpn, m.total_threads) - 1)
        out.append((lo, max(hi, lo)))
    return out


def _remap_plan(inj, dead: int, mode: str) -> "FaultPlan | None":
    """The old plan's *unfired* events translated onto the new
    membership.  Shrink: the dead node's entries vanish and everything
    above shifts down; spare: node ids keep their meaning but entries
    naming the dead slot are dropped (the spare is fresh hardware)."""
    if inj is None:
        return None
    plan = inj.plan
    tpn = inj.machine.threads_per_node

    if mode == "spare":
        def node_map(k: int) -> Optional[int]:
            return None if k == dead else k
    else:
        def node_map(k: int) -> Optional[int]:
            return None if k == dead else (k - 1 if k > dead else k)

    def thread_map(t: int) -> Optional[int]:
        nk = node_map(t // tpn)
        return None if nk is None else nk * tpn + (t % tpn)

    link_loss = {
        node_map(k): p for k, p in plan.link_loss.items() if node_map(k) is not None
    }
    stragglers = {
        thread_map(t): f for t, f in plan.stragglers.items() if thread_map(t) is not None
    }
    degradations = tuple(
        NicDegradation(node_map(w.node), w.start, w.end, w.factor)
        for w in plan.nic_degradations
        if node_map(w.node) is not None
    )
    crashes = tuple(
        CrashEvent(thread_map(e.thread), e.at_time, e.recovery)
        for e in inj.unfired_crashes
        if thread_map(e.thread) is not None
    )
    losses = tuple(
        NodeLossEvent(node_map(e.node), e.at_time)
        for e in inj.unfired_node_losses
        if node_map(e.node) is not None
    )
    return FaultPlan(
        seed=plan.seed,
        loss=plan.loss,
        link_loss=link_loss,
        stragglers=stragglers,
        nic_degradations=degradations,
        crashes=crashes,
        node_losses=losses,
        corruption=plan.corruption,
        payload_corruption=plan.payload_corruption,
        retry=plan.retry,
    )


class ResilientSession:
    """Per-run redundancy store and membership-epoch state machine.

    Construct one per run (the runtime does this when handed a
    :class:`RedundancyConfig`); solvers opt their mutable shared arrays
    in through :meth:`enroll` and commit each round top with
    :meth:`commit_round`.  The session survives recovery — it rebinds to
    the rebuilt runtime and re-replicates onto the new membership.
    """

    def __init__(self, config: RedundancyConfig, rt) -> None:
        self.config = config
        self.rt = rt
        self.epoch = 0
        self.spares_left = int(config.spares)
        self._enrolled: Dict[int, _Enrolled] = {}
        self._order: List[_Enrolled] = []

    # -- parity geometry -----------------------------------------------------

    def _gid(self, node: int, nodes: int) -> int:
        width = max(2, self.config.group)
        ngroups = max(1, nodes // width)
        return min(node // width, ngroups - 1)

    def _group_members(self, gid: int, nodes: int) -> List[int]:
        return [k for k in range(nodes) if self._gid(k, nodes) == gid]

    # -- replica traffic accounting ------------------------------------------

    def _charge_replication(self, counts: np.ndarray, bytes_per: int, parity: bool) -> None:
        """Ship ``counts`` committed elements per thread to the replica
        (or parity) owner: real NIC traffic, charged like any SetD
        payload; parity mode additionally pays the XOR fold."""
        rt = self.rt
        nbytes = counts * float(bytes_per)
        rt.charge_comm(rt.cost.remote_message_time(nbytes))
        if parity:
            rt.charge(Category.FAULT, rt.cost.op_time(counts))
        rt.counters.add(
            remote_messages=int(np.count_nonzero(counts)),
            remote_bytes=int(nbytes.sum()),
        )

    # -- enrollment ----------------------------------------------------------

    def enroll(self, arr, corruptible: bool = True):
        """Start keeping ``arr``'s owner blocks recoverable (charged
        initial full replication); idempotent per array.  Enrolled
        arrays must be named — recovery rebuilds them by name."""
        if id(arr) in self._enrolled:
            return arr
        if not arr.name:
            raise ConfigError("resilience-enrolled shared arrays must be named")
        rec = _Enrolled(
            name=arr.name,
            arr=arr,
            corruptible=corruptible,
            committed=arr.data.copy(),
            dirty=np.zeros(arr.size, dtype=bool),
        )
        rec.slices = _node_slices(arr)
        parity = self.config.mode == "parity"
        if parity:
            self._build_parity(rec)
        self._enrolled[id(arr)] = rec
        self._order.append(rec)
        self._charge_replication(
            arr.local_sizes().astype(np.float64), arr.nbytes_per_elem, parity
        )
        self.rt.counters.add(replicas_written=arr.size)
        return arr

    def _build_parity(self, rec: _Enrolled) -> None:
        nodes = rec.arr.machine.nodes
        parity: Dict[int, np.ndarray] = {}
        for node, (lo, hi) in enumerate(rec.slices):
            seg = rec.committed[lo:hi].astype(np.int64)
            gid = self._gid(node, nodes)
            buf = parity.get(gid)
            if buf is None:
                parity[gid] = seg.copy()
            else:
                if buf.shape[0] < seg.shape[0]:
                    grown = np.zeros(seg.shape[0], dtype=np.int64)
                    grown[: buf.shape[0]] = buf
                    parity[gid] = buf = grown
                buf[: seg.shape[0]] ^= seg
        rec.parity = parity

    # -- incremental maintenance ---------------------------------------------

    def mark_write(self, arr, indices=None) -> None:
        """Record a legitimate charged write for the next commit; pure
        bookkeeping (the replica traffic is charged when
        :meth:`commit_round` ships the deltas).  ``indices`` may be
        explicit positions, a boolean mask, or ``None`` for a
        full-block overwrite."""
        rec = self._enrolled.get(id(arr))
        if rec is None:
            return
        if indices is None:
            rec.dirty[:] = True
            return
        idx = np.asarray(indices)
        if idx.dtype == np.bool_:
            rec.dirty |= idx
        elif idx.size:
            rec.dirty[idx] = True

    def commit_round(self) -> None:
        """Ship every enrolled array's dirty elements to its replica or
        parity owner, advancing the committed (recoverable) state to the
        current round top.  Call right after the round checkpoint save,
        so committed state and checkpoint state describe the same
        round."""
        rt = self.rt
        parity_mode = self.config.mode == "parity"
        for rec in self._order:
            idx = np.flatnonzero(rec.dirty)
            if idx.size == 0:
                continue
            arr = rec.arr
            if parity_mode:
                delta = rec.committed[idx].astype(np.int64) ^ arr.data[idx].astype(np.int64)  # repro: charged-local
                nodes = arr.machine.nodes
                for node, (lo, hi) in enumerate(rec.slices):
                    sel = (idx >= lo) & (idx < hi)
                    if not sel.any():
                        continue
                    buf = rec.parity[self._gid(node, nodes)]
                    buf[idx[sel] - lo] ^= delta[sel]
            rec.committed[idx] = arr.data[idx]  # repro: charged-local
            rec.dirty[:] = False
            counts = np.bincount(arr.owner_thread(idx), minlength=rt.s).astype(np.float64)
            self._charge_replication(counts, arr.nbytes_per_elem, parity_mode)
            rt.counters.add(replicas_written=int(idx.size))

    # -- loss detection ------------------------------------------------------

    def on_loss(self, event) -> None:
        """React to a fired :class:`~repro.faults.NodeLossEvent`: charge
        the survivors' detection timeout and epoch agreement, destroy
        the dead node's owner blocks (and, in parity mode, its local
        committed shadow — both died with the hardware), and raise
        :class:`~repro.errors.NodeLoss` into the solver's recovery
        scope.  Raises :class:`~repro.errors.UnrecoverableLossError`
        instead when no recovery is possible."""
        rt = self.rt
        if rt.machine.nodes <= 1:
            raise UnrecoverableLossError(
                event.node, event.at_time, "a single-node machine has no survivors"
            )
        if not self._order:
            raise UnrecoverableLossError(
                event.node,
                event.at_time,
                "no shared arrays are enrolled for redundancy",
            )
        # Survivors wait the retry timeout out on the failed collective,
        # then run one agreement round to open the new epoch.
        rt.charge(Category.FAULT, np.full(rt.s, rt.faults.retry.timeout))
        rt.charge(Category.FAULT, rt.cost.allreduce_time())
        rt.clocks.barrier(0.0)
        # The one-address-space simulation would happily keep serving the
        # dead node's data; scramble it so recovery provably rebuilds
        # from the replicas/parity, never from vanished memory.
        rng = np.random.default_rng(
            np.random.SeedSequence(rt.faults.plan.seed, spawn_key=(2, self.epoch))
        )
        for rec in self._order:
            lo, hi = rec.slices[event.node]
            if hi <= lo:
                continue
            hi_dom = max(int(rec.arr.size), 2)
            rec.arr.data[lo:hi] = rng.integers(0, hi_dom, size=hi - lo)
            if self.config.mode == "parity":
                # Parity keeps the committed shadow node-local; the dead
                # node's shadow is gone too (buddy keeps it off-node).
                rec.committed[lo:hi] = rng.integers(0, hi_dom, size=hi - lo)
        raise NodeLoss(event.node, event.at_time)

    # -- recovery ------------------------------------------------------------

    def recover_loss(self, loss, ck: RoundCheckpointer, adapter=None) -> RecoveredRun:
        """Rebuild the run on the post-loss membership and return the
        pieces the solver rebinds before replaying the round.

        Opens a new epoch; reconstructs the dead node's committed owner
        blocks (buddy: fetch the replica; parity: XOR the group parity
        with every surviving member's committed slice); restores the
        round checkpoint and overwrites the dead shards with the
        reconstruction; remaps onto the survivors (shrink) or a cold
        spare; re-partitions every PartitionedArray in the restored
        state; rebuilds and re-protects the enrolled shared arrays on a
        fresh runtime (carrying clocks, trace, integrity config, and
        the fault plan's unfired events); and re-replicates onto the
        new membership.  Notifies ``adapter`` so tuning re-plans for
        the new machine.
        """
        old_rt = self.rt
        old_machine = old_rt.machine
        dead = int(loss.node)
        tpn = old_machine.threads_per_node
        self.epoch += 1
        old_rt.counters.add(epoch_changes=1)

        alive = np.ones(old_rt.s, dtype=bool)
        alive[dead * tpn : (dead + 1) * tpn] = False
        nalive = max(int(alive.sum()), 1)

        # Reconstruct each enrolled array's dead slice into `committed`
        # from the redundancy store — never from the (scrambled) dead
        # data.  Buddy: one replica fetch; parity: fetch every surviving
        # group member's committed slice and XOR with the group parity.
        recon_bytes = 0.0
        xor_elems = 0.0
        for rec in self._order:
            lo, hi = rec.slices[dead]
            span = hi - lo
            if span > 0:
                if self.config.mode == "parity":
                    gid = self._gid(dead, old_machine.nodes)
                    buf = rec.parity[gid].copy()
                    for member in self._group_members(gid, old_machine.nodes):
                        if member == dead:
                            continue
                        mlo, mhi = rec.slices[member]
                        seg = rec.committed[mlo:mhi].astype(np.int64)
                        buf[: mhi - mlo] ^= seg
                        recon_bytes += (mhi - mlo) * rec.arr.nbytes_per_elem
                        xor_elems += mhi - mlo
                    rec.committed[lo:hi] = buf[:span].astype(rec.committed.dtype)
                else:
                    recon_bytes += span * rec.arr.nbytes_per_elem
            old_rt.counters.add(blocks_reconstructed=tpn)
        fetch = np.zeros(old_rt.s, dtype=np.float64)
        fetch[alive] = recon_bytes / nalive
        old_rt.charge_comm(old_rt.cost.remote_message_time(fetch))
        if xor_elems:
            ops = np.zeros(old_rt.s, dtype=np.float64)
            ops[alive] = xor_elems / nalive
            old_rt.charge(Category.FAULT, old_rt.cost.op_time(ops))

        # Replay state: survivors' shards from the checkpoint, the dead
        # node's shards from the reconstruction (the checkpoint's dead
        # shards died with the node and are overwritten unconditionally).
        state = ck.restore()
        for rec in self._order:
            if rec.name in state:
                payload = np.asarray(state[rec.name])
                lo, hi = rec.slices[dead]
                payload[lo:hi] = rec.committed[lo:hi]
                state[rec.name] = payload

        # New membership: adopt a cold spare while any remain, else
        # shrink to the survivors.
        if self.spares_left > 0:
            self.spares_left -= 1
            mode = "spare"
            new_machine = old_machine
        else:
            mode = "shrink"
            new_machine = old_machine.with_(nodes=old_machine.nodes - 1)

        from ..runtime.runtime import PGASRuntime

        new_plan = _remap_plan(old_rt.faults, dead, mode)
        integ_cfg = old_rt.integrity.config if old_rt.integrity is not None else None
        new_rt = PGASRuntime(
            new_machine,
            profile=old_rt.profiler is not None,
            faults=new_plan,
            integrity=integ_cfg,
            resilience=self,
        )
        new_rt.clocks.times[:] = old_rt.clocks.elapsed
        new_rt.trace.merge(old_rt.trace)
        new_rt.trace.record_event(
            f"resilience: epoch {self.epoch} opened ({mode}) after losing node {dead}"
        )

        # Rebuild the enrolled arrays on the new runtime and start a
        # fresh redundancy store for the new layout (full charged
        # re-replication — survivors cannot stay one loss from ruin).
        old_order = self._order
        self._enrolled = {}
        self._order = []
        arrays: Dict[str, Any] = {}
        for rec in old_order:
            payload = state.get(rec.name)
            if payload is None:
                payload = rec.committed
            arr = new_rt.shared_array(np.asarray(payload).copy(), name=rec.name)
            new_rt.protect_array(arr, corruptible=rec.corruptible)
            self.enroll(arr, corruptible=rec.corruptible)
            arrays[rec.name] = arr

        # The edge partitions are re-fetchable input segments: the new
        # owners of the dead node's share re-read it (one NIC transfer
        # plus a streamed pass), and every partition is re-balanced onto
        # the new thread count.
        refetch_elems = 0.0
        refetch_bytes = 0.0
        for key, value in list(state.items()):
            if isinstance(value, PartitionedArray):
                sizes = value.sizes()
                dead_elems = float(sizes[dead * tpn : (dead + 1) * tpn].sum())
                refetch_elems += dead_elems
                refetch_bytes += dead_elems * value.data.dtype.itemsize
                state[key] = PartitionedArray(
                    value.data, even_offsets(value.total, new_rt.s)
                )
        if refetch_elems:
            per_bytes = np.full(new_rt.s, refetch_bytes / new_rt.s)
            new_rt.charge_comm(new_rt.cost.remote_message_time(per_bytes))
            new_rt.charge(
                Category.FAULT,
                new_rt.cost.seq_access_time(np.full(new_rt.s, refetch_elems / new_rt.s)),
            )

        new_ck = RoundCheckpointer(new_rt, enabled=ck.enabled)
        if adapter is not None:
            adapter.on_membership_change(new_rt)
        return RecoveredRun(
            rt=new_rt, machine=new_machine, arrays=arrays, state=state, ck=new_ck
        )
