"""Permanent-node-loss survival for the simulated PGAS cluster.

:class:`RedundancyConfig` declares how enrolled owner blocks stay
recoverable (buddy replication or XOR parity groups, plus cold spares);
:class:`ResilientSession` maintains the replicas incrementally from the
runtime's charged write helpers, detects a fired
:class:`~repro.faults.NodeLossEvent`, and rebuilds the run on the
post-loss membership (new epoch, reconstructed blocks, shrink-to-
survivors or spare adoption, checkpoint replay).  Unprotected runs
raise :class:`~repro.errors.UnrecoverableLossError` instead — loud,
never hung, never silently wrong.
"""

from ..errors import NodeLoss, UnrecoverableLossError
from .session import RecoveredRun, RedundancyConfig, ResilientSession

__all__ = [
    "NodeLoss",
    "RecoveredRun",
    "RedundancyConfig",
    "ResilientSession",
    "UnrecoverableLossError",
]
