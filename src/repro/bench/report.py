"""Plain-text rendering for benchmark results.

The paper's figures are bar/line charts; the harness renders the same
data as aligned ASCII tables and series so they diff cleanly in CI logs
and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_kv", "format_ratio", "banner"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned table with a header rule."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, header has {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_kv(pairs: Mapping[str, object]) -> str:
    """Render key/value pairs, one per line, keys aligned."""
    if not pairs:
        return ""
    width = max(len(k) for k in pairs)
    return "\n".join(f"{k.ljust(width)} : {_cell(v)}" for k, v in pairs.items())


def format_ratio(label: str, numerator: float, denominator: float) -> str:
    """Render a speedup/slowdown line; guards division by zero."""
    if denominator == 0:
        return f"{label}: n/a (zero denominator)"
    return f"{label}: {numerator / denominator:.2f}x"


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"
