"""Benchmark harness: cached inputs, figure-result containers, speedups.

Generated graphs are cached on disk (``REPRO_BENCH_CACHE`` overrides the
location) because input generation would otherwise dominate benchmark
wall time — mirroring the paper's own remark about generation cost.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from ..atomicio import atomic_write_text
from ..graph.edgelist import EdgeList
from ..graph.generators import hybrid_graph, powerlaw_graph, random_graph, with_random_weights
from ..graph.io import cached_graph
from .report import format_table

__all__ = ["bench_cache_dir", "bench_graph", "write_bench_json", "FigureResult", "speedup"]


def bench_cache_dir() -> Path:
    """Directory for cached benchmark inputs."""
    env = os.environ.get("REPRO_BENCH_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".bench_cache"


def bench_graph(
    kind: str, n: int, m: int, seed: int = 0, weighted: bool = False
) -> EdgeList:
    """Deterministic benchmark input, cached on disk.

    ``kind`` is ``'random'`` or ``'hybrid'`` (the paper's two families)
    or ``'powerlaw'`` (the heavy-tailed stress input).
    """
    if kind == "random":
        builder = lambda: random_graph(n, m, seed)  # noqa: E731
    elif kind == "hybrid":
        builder = lambda: hybrid_graph(n, m, seed)  # noqa: E731
    elif kind == "powerlaw":
        builder = lambda: powerlaw_graph(n, m, seed)  # noqa: E731
    else:
        raise ValueError(f"unknown graph kind {kind!r}; use 'random', 'hybrid', or 'powerlaw'")
    tag = f"{kind}_n{n}_m{m}_s{seed}{'_w' if weighted else ''}.npz"
    path = bench_cache_dir() / tag

    def build() -> EdgeList:
        g = builder()
        return with_random_weights(g, seed + 1) if weighted else g

    return cached_graph(path, build)


def write_bench_json(name: str, payload: dict, directory: "Path | None" = None) -> Path:
    """Write a machine-readable benchmark result file (``BENCH_<name>.json``).

    The benchmarks print human tables; CI additionally wants structured
    numbers it can archive and diff across runs.  Files land next to the
    working directory by default (CI uploads them as artifacts) with
    sorted keys, so identical results produce identical bytes.  Writes
    are atomic (unique temp + rename): concurrent soak/service workers
    rewriting the same report can never leave a torn file behind.
    """
    directory = Path(directory) if directory is not None else Path.cwd()
    path = directory / f"BENCH_{name}.json"
    return atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=1, default=float) + "\n")


def speedup(baseline_time: float, time: float) -> float:
    """``baseline / time`` — >1 means faster than the baseline."""
    if time <= 0:
        raise ValueError("time must be positive")
    return baseline_time / time


@dataclass
class FigureResult:
    """Structured output of one figure reproduction.

    ``rows`` hold one dict per data point; ``headline`` maps metric names
    (e.g. ``"best speedup vs SMP"``) to measured values; ``paper`` maps
    the same names to the paper's reported values, so EXPERIMENTS.md can
    print paper-vs-measured side by side.
    """

    figure: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    headline: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add(self, **cells: object) -> None:
        self.rows.append(cells)

    def table(self) -> str:
        body = [[row.get(c, "") for c in self.columns] for row in self.rows]
        return format_table(list(self.columns), body)

    def render(self) -> str:
        out = [f"{self.figure}: {self.title}", self.table()]
        if self.headline:
            out.append("")
            for key, value in self.headline.items():
                paper_val = self.paper.get(key, "n/a")
                out.append(f"  {key}: measured {value:.3g} (paper: {paper_val})")
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)
