"""Experiment harness: cached inputs, figure drivers, report rendering."""

from .figures import (
    ALL_FIGURES,
    fig2_naive_vs_smp,
    fig3_coalescing,
    fig4_tprime_sweep,
    fig5_optimization_breakdown,
    fig6_optimization_breakdown_hybrid,
    fig7_cc_scaling,
    fig8_cc_scaling_dense,
    fig9_mst_scaling,
    fig10_mst_scaling_dense,
    sec3_analysis,
    sec6_hybrid_summary,
)
from .harness import FigureResult, bench_cache_dir, bench_graph, speedup, write_bench_json
from .report import banner, format_kv, format_ratio, format_table

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "banner",
    "bench_cache_dir",
    "bench_graph",
    "fig10_mst_scaling_dense",
    "fig2_naive_vs_smp",
    "fig3_coalescing",
    "fig4_tprime_sweep",
    "fig5_optimization_breakdown",
    "fig6_optimization_breakdown_hybrid",
    "fig7_cc_scaling",
    "fig8_cc_scaling_dense",
    "fig9_mst_scaling",
    "format_kv",
    "format_ratio",
    "format_table",
    "sec3_analysis",
    "sec6_hybrid_summary",
    "speedup",
    "write_bench_json",
]
