"""Per-figure experiment drivers.

One function per evaluation artifact in the paper (Figures 2-10 plus the
Section III analysis and the Section VI hybrid-graph summary).  Each
returns a :class:`~repro.bench.harness.FigureResult` whose ``headline``
values are directly comparable with the paper's reported numbers (listed
in ``paper``).

Scaling: inputs are the paper's graphs shrunk ~1000x with densities
preserved; machines are calibrated through
:func:`repro.core.calibration.machine_for_input` so cache-overflow
ratios match the paper's (see calibration.py for the argument).  Pass
``scale < 1`` to shrink further (tests use ``scale=0.1``).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.analysis import naive_slowdown_estimate, section3_table
from ..core.calibration import (
    PAPER_N_FIG3,
    cluster_for_input,
    machine_for_input,
    sequential_for_input,
    smp_for_input,
)
from ..core.optimizations import OptimizationFlags
from ..core.pipeline import connected_components, minimum_spanning_forest
from ..runtime.machine import infiniband_cluster, smp_node
from ..runtime.trace import Category
from .harness import FigureResult, bench_graph, speedup

__all__ = [
    "fig2_naive_vs_smp",
    "fig3_coalescing",
    "fig4_tprime_sweep",
    "fig5_optimization_breakdown",
    "fig6_optimization_breakdown_hybrid",
    "fig7_cc_scaling",
    "fig8_cc_scaling_dense",
    "fig9_mst_scaling",
    "fig10_mst_scaling_dense",
    "sec3_analysis",
    "sec6_hybrid_summary",
    "ALL_FIGURES",
]


def _scaled(value: int, scale: float, minimum: int = 256) -> int:
    return max(minimum, int(value * scale))


def fig2_naive_vs_smp(scale: float = 1.0) -> FigureResult:
    """Fig. 2: naive CC-UPC vs CC-SMP on four random graphs.

    Paper: the UPC translation is much slower in absolute time and
    "3 orders of magnitude slower than CC-SMP" normalized per processor.
    """
    fig = FigureResult(
        figure="Fig. 2",
        title="naive CC-UPC (16x16) vs CC-SMP (1x16), random graphs",
        columns=["graph", "n", "m/n", "CC-UPC ms", "CC-SMP ms", "raw ratio", "normalized ratio"],
        paper={
            "normalized slowdown (orders of magnitude)": "~3",
            "raw slowdown": ">> 1 (log-scale gap)",
        },
    )
    inputs = [
        (_scaled(10_000, scale), 4),
        (_scaled(10_000, scale), 10),
        (_scaled(50_000, scale), 4),
        (_scaled(50_000, scale), 10),
    ]
    worst_norm = 0.0
    for i, (n, density) in enumerate(inputs):
        g = bench_graph("random", n, n * density, seed=i)
        cluster = cluster_for_input(n, 16, 16, paper_n=PAPER_N_FIG3)
        smp = machine_for_input(smp_node(16), n, paper_n=PAPER_N_FIG3)
        upc = connected_components(g, cluster, impl="naive")
        base = connected_components(g, smp, impl="smp")
        raw = upc.info.sim_time / base.info.sim_time
        normalized = raw * cluster.total_threads / smp.total_threads
        worst_norm = max(worst_norm, normalized)
        fig.add(
            graph=f"random-{i}", n=n, **{"m/n": density},
            **{
                "CC-UPC ms": upc.info.sim_time_ms,
                "CC-SMP ms": base.info.sim_time_ms,
                "raw ratio": raw,
                "normalized ratio": normalized,
            },
        )
    fig.headline["normalized slowdown (orders of magnitude)"] = math.log10(worst_norm)
    fig.headline["raw slowdown"] = worst_norm * 16 / 256
    return fig


def fig3_coalescing(scale: float = 1.0) -> FigureResult:
    """Fig. 3: impact of communication coalescing, one thread per node.

    Paper: with unoptimized collectives and quicksort, "the rewritten CC
    is about 70 times faster than the naive implementation.  SV is
    slower than CC due to more collective calls in one iteration."
    """
    n = _scaled(10_000, scale)
    m = 4 * n
    g = bench_graph("random", n, m, seed=3)
    cluster = cluster_for_input(n, 16, 1, paper_n=PAPER_N_FIG3)
    fig = FigureResult(
        figure="Fig. 3",
        title=f"communication coalescing, random n={n} m={m}, 16 nodes x 1 thread",
        columns=["config", "sim ms", "remote messages", "speedup vs Orig"],
        paper={"CC speedup over Orig": "~70", "SV slower than CC": "yes"},
    )
    base_opts = OptimizationFlags.none()
    orig = connected_components(g, cluster, impl="naive")
    cc = connected_components(g, cluster, impl="collective", opts=base_opts, sort_method="quick")
    sv = connected_components(g, cluster, impl="sv", opts=base_opts, sort_method="quick")
    for label, res in [("Orig", orig), ("CC", cc), ("SV", sv)]:
        fig.add(
            config=label,
            **{
                "sim ms": res.info.sim_time_ms,
                "remote messages": res.info.trace.counters.remote_messages,
                "speedup vs Orig": speedup(orig.info.sim_time, res.info.sim_time),
            },
        )
    fig.headline["CC speedup over Orig"] = speedup(orig.info.sim_time, cc.info.sim_time)
    fig.headline["SV slower than CC"] = sv.info.sim_time / cc.info.sim_time
    return fig


def fig4_tprime_sweep(
    scale: float = 1.0, tprimes: Sequence[int] = (1, 2, 4, 8, 12, 16, 20, 24)
) -> FigureResult:
    """Fig. 4: CC with collectives vs ``t'`` on one SMP node, 3 inputs.

    Paper: with t'=1 the collective version already beats the SMP
    implementation; the best t' is 12 (smallest input) / 18 (two larger
    inputs), and the best configuration is "nearly twice as fast" as the
    SMP implementation.
    """
    inputs = [
        ("n=100K m=400K", _scaled(100_000, scale), 4),
        ("n=100K m=1M", _scaled(100_000, scale), 10),
        ("n=200K m=800K", _scaled(200_000, scale), 4),
    ]
    fig = FigureResult(
        figure="Fig. 4",
        title="CC-with-collectives speedup over CC-SMP vs t' (1 node, 16 threads)",
        columns=["input", "t'", "sim ms", "speedup vs SMP"],
        paper={
            "best t'": "12-18",
            "best speedup vs SMP": "~2",
            "t'=1 already beats SMP": "yes",
        },
    )
    best_tprime, best_speedup, t1_beats = 0, 0.0, True
    for label, n, density in inputs:
        g = bench_graph("random", n, n * density, seed=4)
        machine = smp_for_input(n, 16)
        base = connected_components(g, machine, impl="smp")
        for tp in tprimes:
            res = connected_components(
                g, machine, impl="collective", opts=OptimizationFlags.all(), tprime=tp
            )
            sp = speedup(base.info.sim_time, res.info.sim_time)
            fig.add(input=label, **{"t'": tp, "sim ms": res.info.sim_time_ms, "speedup vs SMP": sp})
            if sp > best_speedup:
                best_speedup, best_tprime = sp, tp
            if tp == 1 and sp <= 1.0:
                t1_beats = False
    fig.headline["best t'"] = float(best_tprime)
    fig.headline["best speedup vs SMP"] = best_speedup
    fig.headline["t'=1 already beats SMP"] = 1.0 if t1_beats else 0.0
    return fig


def _breakdown_figure(kind: str, figure: str, scale: float) -> FigureResult:
    n = _scaled(100_000, scale)
    m = 4 * n
    g = bench_graph(kind, n, m, seed=5)
    cluster = cluster_for_input(n, 16, 8)
    fig = FigureResult(
        figure=figure,
        title=f"cumulative optimizations, {kind} n={n} m={m}, 16 nodes x 8 threads",
        columns=["config", "total ms"] + list(Category.FIG5),
        paper={
            "Comm reduction at circular": "~2x",
            "Copy reduction at localcpy": "~2x",
            "optimized vs base": "large",
        },
    )
    results = {}
    for label, opts in OptimizationFlags.cumulative():
        res = connected_components(g, cluster, impl="collective", opts=opts, tprime=2)
        results[label] = res
        breakdown = res.info.breakdown()
        fig.add(
            config=label,
            **{"total ms": res.info.sim_time_ms},
            **{c: breakdown[c] * 1e3 for c in Category.FIG5},
        )
    comm_before = results["offload"].info.breakdown()[Category.COMM]
    comm_after = results["circular"].info.breakdown()[Category.COMM]
    copy_before = results["circular"].info.breakdown()[Category.COPY]
    copy_after = results["localcpy"].info.breakdown()[Category.COPY]
    fig.headline["Comm reduction at circular"] = comm_before / max(comm_after, 1e-12)
    fig.headline["Copy reduction at localcpy"] = copy_before / max(copy_after, 1e-12)
    fig.headline["optimized vs base"] = (
        results["base"].info.sim_time / results["id"].info.sim_time
    )
    return fig


def fig5_optimization_breakdown(scale: float = 1.0) -> FigureResult:
    """Fig. 5: per-category time under cumulative optimizations (random).

    Paper: compact improves almost all categories; circular halves
    communication time; localcpy halves Copy; id greatly improves Work.
    """
    return _breakdown_figure("random", "Fig. 5", scale)


def fig6_optimization_breakdown_hybrid(scale: float = 1.0) -> FigureResult:
    """Fig. 6: the same breakdown on a hybrid (hub-heavy) graph.

    Paper: "similar impact is also observed for the hybrid graph"; hubs
    create neither load imbalance (edges are split evenly) nor
    communication hotspots (one message per thread pair).
    """
    return _breakdown_figure("hybrid", "Fig. 6", scale)


def _cc_scaling_figure(figure: str, density: int, scale: float) -> FigureResult:
    n = _scaled(100_000, scale)
    m = density * n
    g = bench_graph("random", n, m, seed=6)
    fig = FigureResult(
        figure=figure,
        title=f"optimized CC vs threads/node, random n={n} m={m}, 16 nodes",
        columns=["threads/node", "t'", "sim ms", "vs SMP", "vs sequential"],
        paper=(
            {"best threads/node": 8, "best speedup vs SMP": 2.2, "best speedup vs seq": "~9",
             "degradation 8->16 threads": "~10x"}
            if density == 4
            else {"best threads/node": 8, "best speedup vs SMP": 3.0, "best speedup vs seq": "~11",
                  "degradation 8->16 threads": "~10x"}
        ),
    )
    smp = connected_components(g, smp_for_input(n, 16), impl="smp")
    seq = connected_components(g, sequential_for_input(n), impl="sequential")
    by_t = {}
    for t in (1, 2, 4, 8, 16):
        tp = max(1, 16 // t)
        res = connected_components(
            g, cluster_for_input(n, 16, t), impl="collective",
            opts=OptimizationFlags.all(), tprime=tp,
        )
        by_t[t] = res
        fig.add(
            **{"threads/node": t, "t'": tp, "sim ms": res.info.sim_time_ms,
               "vs SMP": speedup(smp.info.sim_time, res.info.sim_time),
               "vs sequential": speedup(seq.info.sim_time, res.info.sim_time)},
        )
    fig.add(**{"threads/node": "SMP 1x16", "t'": "-", "sim ms": smp.info.sim_time_ms,
               "vs SMP": 1.0, "vs sequential": speedup(seq.info.sim_time, smp.info.sim_time)})
    fig.add(**{"threads/node": "seq 1x1", "t'": "-", "sim ms": seq.info.sim_time_ms,
               "vs SMP": speedup(smp.info.sim_time, seq.info.sim_time), "vs sequential": 1.0})
    best_t = min(by_t, key=lambda t: by_t[t].info.sim_time)
    best = by_t[best_t]
    fig.headline["best threads/node"] = float(best_t)
    fig.headline["best speedup vs SMP"] = speedup(smp.info.sim_time, best.info.sim_time)
    fig.headline["best speedup vs seq"] = speedup(seq.info.sim_time, best.info.sim_time)
    fig.headline["degradation 8->16 threads"] = (
        by_t[16].info.sim_time / by_t[8].info.sim_time
    )
    return fig


def fig7_cc_scaling(scale: float = 1.0) -> FigureResult:
    """Fig. 7: optimized CC, m/n = 4 (paper: 100M/400M).

    Paper: best at 8 threads/node — 2.2x over CC-SMP, ~9x over
    sequential; 16 threads/node degrades ~10x (all-to-all burst)."""
    return _cc_scaling_figure("Fig. 7", 4, scale)


def fig8_cc_scaling_dense(scale: float = 1.0) -> FigureResult:
    """Fig. 8: optimized CC, m/n = 10 (paper: 100M/1G).

    Paper: best at 8 threads/node — 3x over CC-SMP, ~11x over sequential."""
    return _cc_scaling_figure("Fig. 8", 10, scale)


def _mst_scaling_figure(figure: str, density: int, scale: float) -> FigureResult:
    n = _scaled(100_000, scale)
    m = density * n
    g = bench_graph("random", n, m, seed=7, weighted=True)
    fig = FigureResult(
        figure=figure,
        title=f"optimized MST vs threads/node, random n={n} m={m}, 16 nodes",
        columns=["threads/node", "t'", "sim ms", "vs SMP", "vs Kruskal"],
        paper=(
            {"best threads/node": 8, "best speedup": 5.5, "SMP vs Kruskal": "~1 (lock overhead)"}
            if density == 4
            else {"best threads/node": 8, "best speedup": 10.2, "SMP vs Kruskal": "~1 (lock overhead)"}
        ),
    )
    smp = minimum_spanning_forest(g, smp_for_input(n, 16), impl="smp")
    seq = minimum_spanning_forest(g, sequential_for_input(n), impl="kruskal")
    by_t = {}
    for t in (1, 2, 4, 8, 16):
        tp = max(1, 16 // t)
        res = minimum_spanning_forest(
            g, cluster_for_input(n, 16, t), impl="collective",
            opts=OptimizationFlags.all(), tprime=tp,
        )
        by_t[t] = res
        fig.add(
            **{"threads/node": t, "t'": tp, "sim ms": res.info.sim_time_ms,
               "vs SMP": speedup(smp.info.sim_time, res.info.sim_time),
               "vs Kruskal": speedup(seq.info.sim_time, res.info.sim_time)},
        )
    fig.add(**{"threads/node": "SMP 1x16", "t'": "-", "sim ms": smp.info.sim_time_ms,
               "vs SMP": 1.0, "vs Kruskal": speedup(seq.info.sim_time, smp.info.sim_time)})
    fig.add(**{"threads/node": "Kruskal 1x1", "t'": "-", "sim ms": seq.info.sim_time_ms,
               "vs SMP": speedup(smp.info.sim_time, seq.info.sim_time), "vs Kruskal": 1.0})
    best_t = min(by_t, key=lambda t: by_t[t].info.sim_time)
    best = by_t[best_t]
    fig.headline["best threads/node"] = float(best_t)
    fig.headline["best speedup"] = speedup(
        max(smp.info.sim_time, seq.info.sim_time), best.info.sim_time
    )
    fig.headline["SMP vs Kruskal"] = speedup(seq.info.sim_time, smp.info.sim_time)
    return fig


def fig9_mst_scaling(scale: float = 1.0) -> FigureResult:
    """Fig. 9: optimized MST, m/n = 4.

    Paper: best speedup 5.5 at 8 threads/node; MST-SMP is "either slower
    or only slightly faster" than sequential Kruskal (100M locks)."""
    return _mst_scaling_figure("Fig. 9", 4, scale)


def fig10_mst_scaling_dense(scale: float = 1.0) -> FigureResult:
    """Fig. 10: optimized MST, m/n = 10.  Paper: best speedup 10.2."""
    return _mst_scaling_figure("Fig. 10", 10, scale)


def sec3_analysis(scale: float = 1.0) -> FigureResult:
    """Section III: analytic model table + the ">20x slower per access"
    estimate, cross-checked against the simulator's measured ratio."""
    n = _scaled(10_000, scale)
    m = 4 * n
    fig = FigureResult(
        figure="Sec. III",
        title="analytic estimates (paper's constants) vs simulated measurement",
        columns=["quantity", "value", "unit"],
        paper={"per-access slowdown estimate": ">20 (IB/DDR3 constants)"},
    )
    for row in section3_table(10_000_000, 40_000_000, infiniband_cluster()):
        fig.add(quantity=row.quantity, value=row.value, unit=row.unit)
    # Measured: naive vs smp per-access time ratio on the simulator.
    g = bench_graph("random", n, m, seed=8)
    cluster = cluster_for_input(n, 16, 16, paper_n=PAPER_N_FIG3)
    smp = machine_for_input(smp_node(16), n, paper_n=PAPER_N_FIG3)
    upc = connected_components(g, cluster, impl="naive")
    base = connected_components(g, smp, impl="smp")
    upc_accesses = (
        upc.info.trace.counters.fine_remote_accesses
        + upc.info.trace.counters.local_random_accesses
    )
    smp_accesses = base.info.trace.counters.local_random_accesses
    measured = (upc.info.sim_time / max(upc_accesses, 1)) / (
        base.info.sim_time / max(smp_accesses, 1)
    )
    fig.add(quantity="simulated per-access slowdown (HPS cluster)", value=measured, unit="x")
    fig.headline["per-access slowdown estimate"] = naive_slowdown_estimate()
    fig.notes.append(
        "analytic estimate uses the paper's Infiniband/DDR3 constants; the simulated"
        " measurement uses the HPS-cluster preset, hence the larger ratio"
    )
    return fig


def sec6_hybrid_summary(scale: float = 1.0) -> FigureResult:
    """Section VI hybrid-graph summary.

    Paper (hybrid graphs, best configuration): CC 2.5x / 2.8x over SMP
    (~9x / ~10x over sequential); MST 5.1x / 6.7x over sequential."""
    fig = FigureResult(
        figure="Sec. VI (hybrid)",
        title="hybrid-graph speedups at the best configuration (16 nodes x 8 threads, t'=2)",
        columns=["problem", "m/n", "sim ms", "vs SMP", "vs sequential"],
        paper={
            "CC vs SMP (m/n=4)": 2.5, "CC vs SMP (m/n=10)": 2.8,
            "MST vs seq (m/n=4)": 5.1, "MST vs seq (m/n=10)": 6.7,
        },
    )
    n = _scaled(100_000, scale)
    cluster = cluster_for_input(n, 16, 8)
    for density in (4, 10):
        g = bench_graph("hybrid", n, density * n, seed=9)
        smp = connected_components(g, smp_for_input(n, 16), impl="smp")
        seq = connected_components(g, sequential_for_input(n), impl="sequential")
        res = connected_components(g, cluster, impl="collective", tprime=2)
        fig.add(problem="CC", **{"m/n": density, "sim ms": res.info.sim_time_ms,
                "vs SMP": speedup(smp.info.sim_time, res.info.sim_time),
                "vs sequential": speedup(seq.info.sim_time, res.info.sim_time)})
        fig.headline[f"CC vs SMP (m/n={density})"] = speedup(smp.info.sim_time, res.info.sim_time)

        gw = bench_graph("hybrid", n, density * n, seed=9, weighted=True)
        msmp = minimum_spanning_forest(gw, smp_for_input(n, 16), impl="smp")
        mseq = minimum_spanning_forest(gw, sequential_for_input(n), impl="kruskal")
        mres = minimum_spanning_forest(gw, cluster, impl="collective", tprime=2)
        fig.add(problem="MST", **{"m/n": density, "sim ms": mres.info.sim_time_ms,
                "vs SMP": speedup(msmp.info.sim_time, mres.info.sim_time),
                "vs sequential": speedup(mseq.info.sim_time, mres.info.sim_time)})
        fig.headline[f"MST vs seq (m/n={density})"] = speedup(mseq.info.sim_time, mres.info.sim_time)
    return fig


#: Registry used by the EXPERIMENTS.md generator and the smoke tests.
ALL_FIGURES = {
    "fig2": fig2_naive_vs_smp,
    "fig3": fig3_coalescing,
    "fig4": fig4_tprime_sweep,
    "fig5": fig5_optimization_breakdown,
    "fig6": fig6_optimization_breakdown_hybrid,
    "fig7": fig7_cc_scaling,
    "fig8": fig8_cc_scaling_dense,
    "fig9": fig9_mst_scaling,
    "fig10": fig10_mst_scaling_dense,
    "sec3": sec3_analysis,
    "sec6": sec6_hybrid_summary,
}
