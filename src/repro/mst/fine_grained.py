"""Fine-grained MST: the lock-based SMP baseline and the naive UPC port.

MST-SMP (Bader-Cong) guards each supervertex's minimum-edge record with a
fine-grained lock: "Fine-grained locks are used to guard against race
conditions among these processors when they attempt to update the
minimum-weight edge".  On 100M-vertex inputs the paper finds the SMP
implementation "either slower or only slightly faster than the
sequential Kruskal implementation ... largely due to the locking
overhead with using 100M locks" — this module charges exactly those
costs: per-vertex lock initialization, an acquire/release pair per
candidate update, and a contention surcharge proportional to how many
candidates collide on one supervertex.

``style='upc'`` is the literal cluster port, where a lock acquisition is
*two more* blocking remote messages and the record update three
fine-grained remote accesses.  The paper: "The UPC implementation of MST
performs poorly on our target platform.  We had to abort most of the
runs after hours passed without termination." — the modeled times are
correspondingly enormous (the benchmarks print them; nothing hangs,
because execution and time are decoupled in the simulation).
"""

from __future__ import annotations

import time

import numpy as np

from ..cc.common import check_converged
from ..core.results import MSTResult, SolveInfo
from ..errors import ConfigError, GraphError
from ..graph.distribute import distribute_edges
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category
from .common import NO_EDGE, break_hook_cycles, extract_winners, pack_candidates

__all__ = ["solve_mst_fine_grained"]

_STYLES = ("upc", "smp")


def _contention(targets: np.ndarray) -> float:
    """Expected fraction of candidate updates hitting a contended lock."""
    if targets.size == 0:
        return 0.0
    return 1.0 - np.unique(targets).size / targets.size


def solve_mst_fine_grained(
    graph: EdgeList, machine: MachineConfig, style: str, faults=None
) -> MSTResult:
    """Lock-based Borůvka with per-element access costs.

    ``faults`` accepts a :class:`~repro.faults.FaultPlan`; loss and
    stragglers apply to every fine-grained access.  Crash events never
    fire here — the asynchronous loops have no synchronization points —
    which is itself part of the model (see docs/fault-model.md).
    """
    if style not in _STYLES:
        raise ConfigError(f"style must be one of {_STYLES}, got {style!r}")
    if graph.w is None:
        raise GraphError("MST needs a weighted graph; use with_random_weights()")
    wall_start = time.perf_counter()
    rt = PGASRuntime(machine, faults=faults)
    n = graph.n
    if n == 0 or graph.m == 0:
        info = SolveInfo(machine, f"mst-{style}", rt.elapsed, time.perf_counter() - wall_start, 0, rt.trace)
        return MSTResult(np.empty(0, dtype=np.int64), 0, np.arange(n, dtype=np.int64), info)

    ep = distribute_edges(graph, rt.s)
    d = rt.shared_array(np.arange(n, dtype=np.int64))
    minedge = rt.shared_array(np.full(n, NO_EDGE, dtype=np.int64))
    sizes_local = d.local_sizes().astype(np.float64)
    vert_offsets = np.zeros(rt.s + 1, dtype=np.int64)
    np.cumsum(d.local_sizes(), out=vert_offsets[1:])
    ws_bytes = n * 8 / machine.nodes

    # One lock per vertex, initialized up front (the "100M locks" cost).
    rt.charge(Category.WORK, rt.cost.lock_init_time(sizes_local))
    rt.counters.add(lock_inits=n)

    def charge_smp_access(indices: PartitionedArray, target_ws: float) -> None:
        sizes = indices.sizes().astype(np.float64)
        distinct = indices.segment_distinct().astype(np.float64)
        ws = rt.cost.distinct_working_set(distinct, target_ws)
        rt.charge(Category.IRREGULAR, rt.cost.gather_time(sizes, distinct, ws))
        rt.counters.add(local_random_accesses=int(sizes.sum()))

    def read(indices: PartitionedArray) -> np.ndarray:
        if style == "upc":
            return rt.fine_grained_read(d, indices)
        charge_smp_access(indices, ws_bytes)
        return d.gather(indices.data)

    chosen: list[np.ndarray] = []
    iteration = 0
    while True:
        iteration += 1
        check_converged(iteration, n, f"mst-{style}")
        rt.counters.add(iterations=1)

        du = read(ep.u)
        dv = read(ep.v)
        cross = du != dv
        rt.local_ops(2.0 * ep.sizes().astype(np.float64))
        if not cross.any():
            break

        live = ep.u.filter(cross)
        du_c, dv_c = du[cross], dv[cross]
        w_c = ep.w.data[cross]
        id_c = ep.edge_ids().data[cross]
        positions = np.arange(live.total, dtype=np.int64)
        keys = pack_candidates(w_c, positions)

        rt.owner_block_write(minedge, NO_EDGE, counts=sizes_local)

        # Locked candidate updates: each live edge bids for both
        # endpoints' records.
        targets = PartitionedArray.concat_pairwise(
            live.with_data(du_c), live.with_data(dv_c)
        )
        bids = PartitionedArray.concat_pairwise(
            live.with_data(keys), live.with_data(keys)
        )
        contention = _contention(targets.data)
        nbids = targets.sizes().astype(np.float64)
        rt.charge(Category.WORK, rt.cost.lock_op_time(nbids, contention))
        rt.counters.add(lock_ops=int(targets.total))
        # Lock convoy: every bid for one supervertex serializes through
        # that vertex's lock.  Late iterations funnel almost all bids to
        # the few surviving components' records, and the barriered
        # iteration structure makes every thread wait for the hottest
        # queue — the heart of the paper's "locking overhead" finding.
        if targets.total:
            hot = int(np.bincount(targets.data).max())
            critical = rt.machine.locks.acquire_time + 2.0 * rt.machine.memory.latency
            rt.charge(Category.WORK, float(hot) * critical)
        if style == "upc":
            # Lock acquire + release are remote round-trips; the record
            # read-modify-write is three more fine-grained accesses.
            local, remote = rt.split_local_remote(minedge, targets)
            rt.charge_fine_grained(5 * remote, 8)
            rt.charge(Category.IRREGULAR, rt.cost.upc_local_deref_time(3 * local, ws_bytes))
        else:
            # Read-modify-write of a *contended shared* record: unlike
            # duplicated reads, duplicated writes are anti-cached — every
            # update invalidates the other CPUs' copies, so each bid pays
            # a coherence transfer, not a cache hit.
            coherence = 2.0 * rt.machine.memory.latency
            rt.charge(Category.IRREGULAR, nbids * coherence)
            rt.counters.add(local_random_accesses=int(targets.total))
        np.minimum.at(minedge.data, targets.data, bids.data)

        # Winners, hooks, cycle break (owner-local scans + one irregular
        # grandparent read per winner).
        rt.local_stream(sizes_local, Category.COPY)
        roots, pos = extract_winners(minedge.data)
        chosen.append(np.unique(id_c[pos]))
        ra, rb = du_c[pos], dv_c[pos]
        partners = ra + rb - roots
        rt.owner_indexed_write(d, roots, partners, category=Category.COPY)
        owners_sorted = d.owner_thread(roots)
        offsets = np.searchsorted(owners_sorted, np.arange(rt.s + 1, dtype=np.int64))
        read(PartitionedArray(partners, offsets))
        break_hook_cycles(d.data, roots)
        rt.local_ops(float(roots.size))

        # Asynchronous pointer jumping to stars.
        active = np.ones(n, dtype=bool)
        guard = 0
        while True:
            guard += 1
            check_converged(guard, n, f"mst-{style} shortcut")
            counts = PartitionedArray(active.astype(np.int64), vert_offsets).segment_sums()
            sub = PartitionedArray(rt.owner_block_read(d, counts=counts), vert_offsets).filter(active)
            if style == "upc":
                grand_sub = rt.fine_grained_read(d, sub)
                grand = d.data.copy()
                grand[active] = grand_sub
            else:
                charge_smp_access(sub, ws_bytes)
                grand = d.gather(d.data)
            moved = grand != d.data
            if not moved.any():
                break
            # The async write-back is deliberately uncharged in the
            # lock-based baseline: it rides the movers' read pass above.
            # repro: waive[CM01] uncharged async write-back (modeled with the read)
            d.data[moved] = grand[moved]
            active = moved

    edge_ids = (
        np.sort(np.concatenate(chosen)) if chosen else np.empty(0, dtype=np.int64)
    )
    total = int(graph.w[edge_ids].sum()) if edge_ids.size else 0
    info = SolveInfo(
        machine, f"mst-{style}", rt.elapsed, time.perf_counter() - wall_start, iteration, rt.trace
    )
    return MSTResult(edge_ids, total, d.data.copy(), info)
