"""Cost charging for the sequential MST algorithms.

Split out of :mod:`repro.mst.sequential` so the benchmark that ranks the
three algorithms (the paper: Kruskal beats Prim and Borůvka on these
inputs) can evaluate the models directly without running a solve.
"""

from __future__ import annotations

import math

from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category

__all__ = ["charge_kruskal", "charge_prim", "charge_boruvka"]

#: Irregular parent-array accesses per union-find operation.
UF_ACCESSES = 2.5
#: Edge record size: (u, v, w) as three words.
EDGE_RECORD_BYTES = 24


def charge_kruskal(rt: PGASRuntime, n: int, m: int) -> None:
    """Merge sort over edge records + union-find over the sorted list."""
    if m == 0:
        return
    passes = max(1, math.ceil(math.log2(max(m, 2))))
    # Cache-friendly merge sort: each pass streams all m records once
    # (read + write), plus the comparison work.
    rt.charge(
        Category.SORT,
        passes * 2.0 * rt.cost.seq_access_time(float(m), EDGE_RECORD_BYTES),
    )
    rt.local_ops(2.0 * m * passes, Category.SORT)
    rt.counters.add(sorted_elements=m)
    # Union-find over sorted edges.
    rt.local_random_access(2.0 * m * UF_ACCESSES, n * 8, Category.IRREGULAR)
    rt.local_ops(4.0 * m)


def charge_prim(rt: PGASRuntime, n: int, m: int) -> None:
    """Binary-heap Prim: every edge relaxation walks ~log2 n heap levels,
    each an irregular access; adjacency is streamed once."""
    if m == 0:
        return
    logn = max(1.0, math.log2(max(n, 2)))
    rt.charge(Category.WORK, rt.cost.seq_access_time(float(2 * m), EDGE_RECORD_BYTES))
    rt.local_random_access(2.0 * m * logn, n * 16, Category.IRREGULAR)
    rt.local_ops(3.0 * m * logn)


def charge_boruvka(rt: PGASRuntime, n: int, m: int) -> None:
    """Sequential Borůvka: ~log2 n rounds, each streaming the edge list
    with two irregular supervertex-label reads per edge plus a
    per-vertex hook/shortcut pass."""
    if m == 0:
        return
    rounds = max(1, math.ceil(math.log2(max(n, 2))))
    for _ in range(rounds):
        rt.charge(Category.WORK, rt.cost.seq_access_time(float(m), EDGE_RECORD_BYTES))
        rt.local_random_access(2.0 * m, n * 8, Category.IRREGULAR)
        rt.local_random_access(2.0 * n, n * 8, Category.IRREGULAR)
        rt.local_ops(4.0 * m + 2.0 * n)
