"""Verification of minimum spanning forests.

The total weight of a minimum spanning forest is unique even when the
forest itself is not (equal-weight edges), so verification compares:

* structural validity — the chosen edges exist, are distinct, form a
  forest (no cycles), and span exactly the graph's components;
* optimality — total weight equals the scipy reference.

Zero weights are legal inputs (the paper draws weights from
``[0, 2^31)``), but scipy's sparse MST drops explicit zeros; the
reference therefore runs on ``w + 1`` and shifts back (an affine weight
shift does not change which forests are minimum).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from ..errors import VerificationError
from ..graph.edgelist import EdgeList

__all__ = ["scipy_msf", "reference_msf_weight", "check_spanning_forest"]


def _shifted_matrix(graph: EdgeList) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Symmetric CSR of the min-weight-deduplicated graph with weights
    shifted by +1; also returns the kept global edge positions."""
    if graph.w is None:
        raise VerificationError("MST verification needs a weighted graph")
    keep = graph.dedup_min_weight_index()
    u, v, w = graph.u[keep], graph.v[keep], graph.w[keep]
    mat = sparse.coo_matrix(
        ((w + 1).astype(np.float64), (u, v)), shape=(graph.n, graph.n)
    ).tocsr()
    return mat + mat.T, keep


def scipy_msf(graph: EdgeList) -> tuple[np.ndarray, int]:
    """Reference minimum spanning forest via scipy.

    Returns ``(edge_ids, total_weight)`` where ``edge_ids`` index the
    *input* edge list (each chosen undirected pair mapped back to its
    minimum-weight earliest occurrence).
    """
    if graph.n == 0 or graph.m == 0:
        return np.empty(0, dtype=np.int64), 0
    mat, keep = _shifted_matrix(graph)
    tree = csgraph.minimum_spanning_tree(mat).tocoo()
    if tree.nnz == 0:
        return np.empty(0, dtype=np.int64), 0
    lo = np.minimum(tree.row, tree.col).astype(np.int64)
    hi = np.maximum(tree.row, tree.col).astype(np.int64)
    chosen_keys = lo * np.int64(graph.n) + hi
    sub = graph.take(keep)
    sub_keys = sub.canonical_pairs()
    order = np.argsort(sub_keys)
    pos = order[np.searchsorted(sub_keys[order], chosen_keys)]
    if not np.array_equal(sub_keys[pos], chosen_keys):  # pragma: no cover - internal
        raise VerificationError("failed to map scipy MST edges back to the input")
    edge_ids = keep[pos]
    total = int(graph.w[edge_ids].sum())
    return np.sort(edge_ids), total


def reference_msf_weight(graph: EdgeList) -> int:
    """Total weight of any minimum spanning forest of ``graph``."""
    return scipy_msf(graph)[1]


def check_spanning_forest(graph: EdgeList, edge_ids: np.ndarray) -> None:
    """Raise :class:`VerificationError` unless ``edge_ids`` is a minimum
    spanning forest of ``graph``."""
    if graph.w is None:
        raise VerificationError("MST verification needs a weighted graph")
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    if edge_ids.size != np.unique(edge_ids).size:
        raise VerificationError("forest contains a duplicate edge id")
    if edge_ids.size and (edge_ids.min() < 0 or edge_ids.max() >= graph.m):
        raise VerificationError("edge id out of range")

    # Forest check via union-find; also counts the components it builds.
    parent = list(range(graph.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for e in edge_ids.tolist():
        a, b = find(int(graph.u[e])), find(int(graph.v[e]))
        if a == b:
            raise VerificationError(f"edge {e} closes a cycle in the claimed forest")
        parent[a] = b

    # Must span: forest components == graph components.
    ncomp_graph = _component_count(graph)
    ncomp_forest = len({find(i) for i in range(graph.n)})
    if ncomp_forest != ncomp_graph:
        raise VerificationError(
            f"forest leaves {ncomp_forest} components but the graph has {ncomp_graph}"
        )
    expected_edges = graph.n - ncomp_graph
    if int(edge_ids.size) != expected_edges:
        raise VerificationError(
            f"forest has {edge_ids.size} edges, expected n - #components = {expected_edges}"
        )

    total = int(graph.w[edge_ids].sum()) if edge_ids.size else 0
    expected = reference_msf_weight(graph)
    if total != expected:
        raise VerificationError(f"forest weight {total} != minimum {expected}")


def _component_count(graph: EdgeList) -> int:
    if graph.n == 0:
        return 0
    if graph.m == 0:
        return graph.n
    mat, _ = _shifted_matrix(graph)
    ncomp, _ = csgraph.connected_components(mat, directed=False)
    return int(ncomp)
