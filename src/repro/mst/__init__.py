"""Minimum spanning tree/forest: every implementation the paper evaluates.

* :func:`solve_mst_collective` — lock-free Borůvka via GetD/SetDMin (the
  paper's optimized MST, Figs. 9-10);
* :func:`solve_mst_smp` — lock-based SMP baseline (MST-SMP);
* :func:`solve_mst_naive_upc` — the literal cluster port (aborted in the
  paper; finite modeled time here);
* :func:`solve_mst_sequential` — Kruskal (default) / Prim / Borůvka cost
  models over a scipy execution engine.

All parallel implementations use the same packed (weight, edge-id)
tie-break, so the chosen forest is identical across machines and thread
counts and — on tie-free inputs — equals the reference Kruskal forest.
"""

from .collective import partition_by_owner, solve_mst_collective
from .common import (
    NO_EDGE,
    break_hook_cycles,
    extract_winners,
    pack_candidates,
    unpack_positions,
    unpack_weights,
)
from .fine_grained import solve_mst_fine_grained
from .naive_upc import solve_mst_naive_upc
from .reference import reference_kruskal, reference_prim_weight
from .sequential import SEQUENTIAL_ALGORITHMS, solve_mst_sequential
from .smp import solve_mst_smp
from .verify import check_spanning_forest, reference_msf_weight, scipy_msf

__all__ = [
    "NO_EDGE",
    "SEQUENTIAL_ALGORITHMS",
    "break_hook_cycles",
    "check_spanning_forest",
    "extract_winners",
    "pack_candidates",
    "partition_by_owner",
    "reference_kruskal",
    "reference_msf_weight",
    "reference_prim_weight",
    "scipy_msf",
    "solve_mst_collective",
    "solve_mst_fine_grained",
    "solve_mst_naive_upc",
    "solve_mst_sequential",
    "solve_mst_smp",
    "unpack_positions",
    "unpack_weights",
]
