"""Sequential MST baselines: Kruskal, Prim, Borůvka.

The paper measures its parallel MST against "the best sequential
algorithm (in this case Kruskal's algorithm beats both the Prim's and
Borůvka's algorithms) ... We use the cache-friendly merge sort in
implementing Kruskal's algorithm."  All three cost models are provided
so the benchmarks can reproduce that ranking; :func:`solve_mst_sequential`
defaults to Kruskal.

Execution engine: ``scipy.sparse.csgraph.minimum_spanning_tree`` (see
:mod:`repro.mst.verify` for the zero-weight shift and the edge-id
recovery); a pure-Python Kruskal with the library's exact (weight, edge
id) tie-break lives in :mod:`repro.mst.reference` for small-input tests.

Cost models (single thread, cache-modeled memory):

* Kruskal — merge sort: ``ceil(log2 m)`` streamed passes over ``m``
  records (the "cache-friendly merge sort"), then ``m`` union-find
  operations (irregular, working set ``n``);
* Prim — ``m`` binary-heap updates of ``log2 n`` irregular accesses each
  plus adjacency streaming;
* Borůvka — ``ceil(log2 n)`` passes, each streaming ``m`` edges with two
  irregular label reads per edge plus per-vertex bookkeeping.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.results import MSTResult, SolveInfo
from ..errors import ConfigError, GraphError
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, sequential_machine
from ..runtime.runtime import PGASRuntime
from .sequential_costs import charge_boruvka, charge_kruskal, charge_prim
from .verify import scipy_msf

__all__ = ["solve_mst_sequential", "SEQUENTIAL_ALGORITHMS"]

SEQUENTIAL_ALGORITHMS = ("kruskal", "prim", "boruvka")


def solve_mst_sequential(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    algorithm: str = "kruskal",
) -> MSTResult:
    """Sequential minimum spanning forest with modeled cost."""
    if algorithm not in SEQUENTIAL_ALGORITHMS:
        raise ConfigError(
            f"algorithm must be one of {SEQUENTIAL_ALGORITHMS}, got {algorithm!r}"
        )
    if graph.w is None:
        raise GraphError("MST needs a weighted graph; use with_random_weights()")
    machine = machine if machine is not None else sequential_machine()
    wall_start = time.perf_counter()
    rt = PGASRuntime(machine)

    n, m = graph.n, graph.m
    if algorithm == "kruskal":
        charge_kruskal(rt, n, m)
    elif algorithm == "prim":
        charge_prim(rt, n, m)
    else:
        charge_boruvka(rt, n, m)
    rt.counters.add(iterations=1)

    edge_ids, total = scipy_msf(graph)
    labels = _labels_from_forest(graph, edge_ids)
    info = SolveInfo(
        machine, f"mst-seq-{algorithm}", rt.elapsed, time.perf_counter() - wall_start, 1, rt.trace
    )
    return MSTResult(edge_ids, total, labels, info)


def _labels_from_forest(graph: EdgeList, edge_ids: np.ndarray) -> np.ndarray:
    """Component labels induced by the forest (min-vertex convention)."""
    from scipy.sparse import coo_matrix, csgraph

    if graph.n == 0:
        return np.empty(0, dtype=np.int64)
    if edge_ids.size == 0:
        return np.arange(graph.n, dtype=np.int64)
    u, v = graph.u[edge_ids], graph.v[edge_ids]
    mat = coo_matrix((np.ones(edge_ids.size), (u, v)), shape=(graph.n, graph.n)).tocsr()
    _, comp = csgraph.connected_components(mat + mat.T, directed=False)
    mins = np.full(int(comp.max()) + 1, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, comp, np.arange(graph.n, dtype=np.int64))
    return mins[comp]
