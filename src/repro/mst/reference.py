"""Pure-Python reference MST implementations (small inputs).

:func:`reference_kruskal` applies the library's global tie-break
(weight, then input edge id) exactly, so tests can compare *edge sets*,
not just totals, against the parallel Borůvka when weights collide.
:func:`reference_prim` is an independent second opinion on the total.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import GraphError
from ..graph.edgelist import EdgeList

__all__ = ["reference_kruskal", "reference_prim_weight"]


def reference_kruskal(graph: EdgeList) -> tuple[np.ndarray, int]:
    """Kruskal with (weight, edge id) tie-break.

    Returns ``(edge_ids, total_weight)`` — the unique minimum spanning
    forest under the library's deterministic edge ordering.
    """
    if graph.w is None:
        raise GraphError("reference Kruskal needs weights")
    parent = list(range(graph.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    order = np.lexsort((np.arange(graph.m), graph.w))
    chosen: list[int] = []
    total = 0
    for e in order.tolist():
        a, b = find(int(graph.u[e])), find(int(graph.v[e]))
        if a != b:
            parent[a] = b
            chosen.append(e)
            total += int(graph.w[e])
    return np.asarray(sorted(chosen), dtype=np.int64), total


def reference_prim_weight(graph: EdgeList) -> int:
    """Total minimum-spanning-forest weight via Prim with a binary heap
    (run once per component)."""
    if graph.w is None:
        raise GraphError("reference Prim needs weights")
    adj: list[list[tuple[int, int]]] = [[] for _ in range(graph.n)]
    for e in range(graph.m):
        a, b, w = int(graph.u[e]), int(graph.v[e]), int(graph.w[e])
        if a != b:
            adj[a].append((w, b))
            adj[b].append((w, a))
    seen = [False] * graph.n
    total = 0
    for start in range(graph.n):
        if seen[start]:
            continue
        seen[start] = True
        heap: list[tuple[int, int]] = list(adj[start])
        heapq.heapify(heap)
        while heap:
            w, x = heapq.heappop(heap)
            if seen[x]:
                continue
            seen[x] = True
            total += w
            for item in adj[x]:
                if not seen[item[1]]:
                    heapq.heappush(heap, item)
    return total
