"""MST-SMP: the lock-based shared-memory baseline (Bader-Cong).

The solid horizontal line of the paper's Figs. 9-10.  On large vertex
counts its lock overhead makes it barely faster (or slower) than
sequential Kruskal — the effect the benchmarks reproduce.
"""

from __future__ import annotations

from ..core.results import MSTResult
from ..errors import ConfigError
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, smp_node
from .fine_grained import solve_mst_fine_grained

__all__ = ["solve_mst_smp"]


def solve_mst_smp(
    graph: EdgeList, machine: MachineConfig | None = None, faults=None
) -> MSTResult:
    """Run MST-SMP on a single-node machine (default: 16 threads).

    A fault plan on an SMP run only models stragglers — there is no
    network to lose messages on.
    """
    machine = machine if machine is not None else smp_node(16)
    if machine.nodes != 1:
        raise ConfigError(
            f"MST-SMP is a single-node baseline; got a {machine.nodes}-node machine"
        )
    return solve_mst_fine_grained(graph, machine, style="smp", faults=faults)
