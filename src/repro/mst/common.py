"""Shared Borůvka machinery for the MST implementations.

The paper's MST is "a variant of the parallel Borůvka algorithm" with
supervertex labels instead of graph compaction.  Every implementation in
this package shares the same per-iteration semantics:

1. every live (cross-component) edge proposes itself as the minimum
   incident edge of *both* endpoint supervertices;
2. proposals are packed ``(weight << 32) | live_position`` so that a
   single minimum reduction picks the lightest edge with a deterministic
   tie-break (lowest position, hence lowest global edge id);
3. each supervertex with a winner hooks onto the other endpoint's
   supervertex; mutual (2-cycle) hooks are broken by keeping the smaller
   label as root;
4. supervertex labels collapse to rooted stars by pointer jumping.

With a consistent global tie-break, Borůvka is correct even with equal
weights, and the chosen forest is identical across implementations and
thread counts — tests rely on that.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError

__all__ = [
    "WEIGHT_SHIFT",
    "NO_EDGE",
    "pack_candidates",
    "unpack_positions",
    "unpack_weights",
    "extract_winners",
    "break_hook_cycles",
]

#: Packed key layout: weight in the high 31 bits, live position in the low 32.
WEIGHT_SHIFT = 32
#: "No candidate" sentinel for the per-supervertex minimum array.
NO_EDGE = np.int64(np.iinfo(np.int64).max)


def pack_candidates(weights: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Pack (weight, live-position) pairs into one int64 min-reducible key."""
    weights = np.asarray(weights, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if weights.shape != positions.shape:
        raise GraphError("weights/positions shape mismatch")
    if weights.size:
        if weights.min() < 0 or weights.max() >= (1 << 31):
            raise GraphError("weights must be in [0, 2^31) for packing")
        if positions.min() < 0 or positions.max() >= (1 << WEIGHT_SHIFT):
            raise GraphError("live positions must fit in 32 bits")
    return (weights << WEIGHT_SHIFT) | positions


def unpack_positions(packed: np.ndarray) -> np.ndarray:
    return np.asarray(packed, dtype=np.int64) & ((np.int64(1) << WEIGHT_SHIFT) - 1)


def unpack_weights(packed: np.ndarray) -> np.ndarray:
    return np.asarray(packed, dtype=np.int64) >> WEIGHT_SHIFT


def extract_winners(minedge: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Supervertices that found a candidate and the winning live positions.

    Returns ``(roots, positions)``; a position may appear twice (both
    endpoints picked the same edge) — deduplication happens when edges
    are marked, not here, because *hooking* needs the per-root winner.
    """
    roots = np.flatnonzero(minedge != NO_EDGE)
    return roots, unpack_positions(minedge[roots])


def break_hook_cycles(parent: np.ndarray, hooked_roots: np.ndarray) -> int:
    """Resolve mutual hooks: if ``parent[parent[r]] == r`` (a 2-cycle),
    the smaller label becomes the root.  Returns the number of repaired
    roots.  Operates in place on ``parent``.

    Borůvka's chosen edges form a pseudo-forest whose only cycles are
    mutual minimum pairs; with the packed deterministic tie-break both
    members of such a pair chose the *same* edge, so the 2-cycle is the
    only case to repair.
    """
    parent = np.asarray(parent)
    r = np.asarray(hooked_roots, dtype=np.int64)
    if r.size == 0:
        return 0
    pr = parent[r]
    in_cycle = (parent[pr] == r) & (pr != r)
    # Of each mutual pair (a, b) with a < b, make a the root: parent[a] = a.
    a = r[in_cycle]
    b = pr[in_cycle]
    keep = a < b  # each pair appears twice (once from each side); fix once
    parent[a[keep]] = a[keep]
    return int(np.count_nonzero(keep))
