"""MST-UPC: the naive PGAS translation with remote fine-grained locks.

"The UPC implementation of MST performs poorly on our target platform.
We had to abort most of the runs after hours passed without
termination."  The simulation completes (execution and modeled time are
decoupled) and reports the enormous modeled time the paper could only
gesture at.
"""

from __future__ import annotations

from ..core.results import MSTResult
from ..errors import ConfigError
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster
from .fine_grained import solve_mst_fine_grained

__all__ = ["solve_mst_naive_upc"]


def solve_mst_naive_upc(
    graph: EdgeList, machine: MachineConfig | None = None, faults=None
) -> MSTResult:
    """Run the literal UPC translation of lock-based Borůvka."""
    machine = machine if machine is not None else hps_cluster()
    if machine.nodes < 1:
        raise ConfigError("naive UPC MST needs a machine")
    return solve_mst_fine_grained(graph, machine, style="upc", faults=faults)
