"""MST via collectives: Borůvka with GetD/SetD/SetDMin (paper Section IV-A).

"To rewrite MST for efficient execution, we propose a new collective
SetDMin that obviates the need of locking. ... In the new implementation
all threads first collectively retrieve the D values for all vertices
appearing in their local edge lists.  For each edge e = (u, v), when u
and v belong to different components, all threads collectively assign"
the minimum-weight candidate to both endpoint supervertices.

Per iteration:

1. ``GetD`` the supervertex labels of every live edge's endpoints;
2. (``compact``) drop intra-component edges permanently;
3. ``SetDMin`` packed ``(weight, position)`` candidates into the
   per-supervertex minimum array — priority concurrent write, no locks;
4. owners scan their block for winners, emit forest edges, and hook each
   winning supervertex onto its partner (2-cycles broken toward the
   smaller label);
5. lock-step pointer jumping collapses the merged supervertices.
"""

from __future__ import annotations

import time

import numpy as np

from ..cc.collective import pointer_jump_to_stars
from ..cc.common import check_converged
from ..collectives.base import CollectiveContext
from ..collectives.getd import getd
from ..collectives.setd import setdmin
from ..core.optimizations import OptimizationFlags
from ..core.results import MSTResult, SolveInfo
from ..errors import FaultError, GraphError, IntegrityError, NodeLoss, ThreadCrash
from ..faults.checkpoint import RoundCheckpointer
from ..graph.distribute import distribute_edges
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.shared_array import SharedArray
from ..runtime.trace import Category
from .common import NO_EDGE, break_hook_cycles, extract_winners, pack_candidates

__all__ = ["solve_mst_collective", "partition_by_owner"]


def partition_by_owner(indices: np.ndarray, shared: SharedArray) -> PartitionedArray:
    """Partition a *sorted* index array by owning thread (blocked layout
    keeps owners monotone, so the split is a searchsorted)."""
    owners = shared.owner_thread(indices)
    s = shared.machine.total_threads
    offsets = np.searchsorted(owners, np.arange(s + 1, dtype=np.int64))
    return PartitionedArray(np.asarray(indices, dtype=np.int64), offsets)


def solve_mst_collective(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: int = 1,
    sort_method: str = "count",
    faults=None,
    adapter=None,
    integrity=None,
    resilience=None,
) -> MSTResult:
    """Minimum spanning forest via the lock-free collective Borůvka.

    ``faults`` accepts a :class:`~repro.faults.FaultPlan`.  When the plan
    schedules crashes, each Borůvka round checkpoints the supervertex
    labels, the live edge partitions, and the forest size; an injected
    crash restores the last checkpoint and replays only the lost round.

    ``integrity`` accepts an :class:`~repro.integrity.IntegrityConfig`
    (or ``True``): the label array is checksummed (``minedge`` digests
    ride along), SetDMin bid payloads are end-to-end checked, each
    round's winners are spot-checked against the Borůvka cut property,
    and detected corruption restores the round checkpoint and replays.

    ``adapter`` accepts a :class:`~repro.tuning.OnlineAdapter` (built
    with ``allow_offload=False`` — see the invariant note below); it may
    revise ``tprime`` between Borůvka rounds, never the forest.

    ``resilience`` accepts a :class:`~repro.resilience.RedundancyConfig`
    (or ``True``): the supervertex labels keep a charged off-node
    replica/parity of their round-top state, and a permanent node loss
    triggers epoch recovery — blocks reconstructed, ownership remapped
    onto the survivors or a cold spare, the lost round replayed.
    ``minedge`` carries per-round scratch only (reset at every round
    top), so it is rebuilt fresh on the new membership rather than
    replicated.
    """
    if graph.w is None:
        raise GraphError("MST needs a weighted graph; use with_random_weights()")
    machine = machine if machine is not None else hps_cluster()
    wall_start = time.perf_counter()
    rt = PGASRuntime(
        machine,
        profile=adapter is not None,
        faults=faults,
        integrity=integrity,
        resilience=resilience,
    )
    if adapter is not None:
        adapter.begin(rt)
    n = graph.n
    if n == 0 or graph.m == 0:
        info = SolveInfo(machine, "mst-collective", rt.elapsed, time.perf_counter() - wall_start, 0, rt.trace)
        labels = np.arange(n, dtype=np.int64)
        return MSTResult(np.empty(0, dtype=np.int64), 0, labels, info)

    ep = distribute_edges(graph, rt.s)
    u_part, v_part, w_part = ep.u, ep.v, ep.w
    id_part = ep.edge_ids()
    d = rt.shared_array(np.arange(n, dtype=np.int64), name="mst.d")
    minedge = rt.shared_array(np.full(n, NO_EDGE, dtype=np.int64), name="mst.minedge")
    rt.protect_array(d)
    # Packed (weight, position) keys have no fold-safe flip domain, so
    # minedge is digest-verified but not a block-flip target.
    rt.protect_array(minedge, corruptible=False)
    if rt.resilience is not None:
        rt.resilience.enroll(d)
    sizes_local = d.local_sizes().astype(np.float64)
    vert_offsets = np.zeros(rt.s + 1, dtype=np.int64)
    np.cumsum(d.local_sizes(), out=vert_offsets[1:])
    ctx = CollectiveContext()
    # The `offload` optimization's invariant (D[0] stays 0) holds for CC,
    # where grafting always hooks larger labels onto smaller ones.  It
    # does NOT hold for Boruvka: a supervertex hooks along its own
    # minimum edge regardless of label order, so d[0] may legitimately
    # rise.  The paper scopes offload to CC/spanning-tree accordingly
    # ("Fortunately, D[0] remains constant for CC"); MST must fetch
    # honestly.
    hot = None
    jump_opts = opts.with_(offload=False)

    # Verify-and-repair needs the checkpoint even with a crash-free plan,
    # and loss recovery replays from it under the new membership.
    ck = RoundCheckpointer(
        rt,
        enabled=True if (rt.integrity is not None or rt.resilience is not None) else None,
    )
    repairs = 0
    repair_bound = 8 * (4 + int(np.ceil(np.log2(max(n, 2)))))
    chosen: list[np.ndarray] = []
    iteration = 0
    while True:
        iteration += 1
        check_converged(iteration, n, "mst-collective")
        try:
            # Round-top invariants run BEFORE the save so the checkpoint
            # only ever holds invariant-clean state to restore into.
            if rt.integrity is not None:
                rt.integrity.verify_star_round(d)
            ck.save(
                arrays={d.name: d.data},
                u_part=u_part, v_part=v_part, w_part=w_part, id_part=id_part,
                nchosen=len(chosen),
            )
            if rt.resilience is not None:
                rt.resilience.commit_round()
            rt.counters.add(iterations=1)

            du = getd(rt, d, u_part, opts, ctx, "edges.u", tprime, sort_method, hot_value=hot)
            dv = getd(rt, d, v_part, opts, ctx, "edges.v", tprime, sort_method, hot_value=hot)
            cross = du != dv
            rt.local_ops(u_part.sizes().astype(np.float64))
            cross_per_thread = u_part.segment_counts_where(cross)
            if not rt.allreduce_flag(cross_per_thread > 0):
                break

            if opts.compact and not cross.all():
                u_part = u_part.filter(cross)
                v_part = v_part.filter(cross)
                w_part = w_part.filter(cross)
                id_part = id_part.filter(cross)
                du, dv = du[cross], dv[cross]
                ctx.invalidate()
                live = u_part
                du_c, dv_c = du, dv
                w_c, id_c = w_part.data, id_part.data
            elif cross.all():
                live = u_part
                du_c, dv_c = du, dv
                w_c, id_c = w_part.data, id_part.data
            else:
                live = u_part.filter(cross)
                du_c, dv_c = du[cross], dv[cross]
                w_c, id_c = w_part.data[cross], id_part.data[cross]

            # Candidate keys: (weight, live position) packed for min-reduction.
            positions = np.arange(live.total, dtype=np.int64)
            keys = pack_candidates(w_c, positions)
            rt.local_ops(2.0 * live.sizes().astype(np.float64))
            # Streaming the live edge slice (u, v, w, id) to build the bids.
            rt.local_stream(4.0 * live.sizes().astype(np.float64), Category.WORK)

            # Reset the per-supervertex minimum array (owner-local).
            rt.owner_block_write(minedge, NO_EDGE, counts=sizes_local)

            # Every live edge bids for both endpoint supervertices.
            targets = PartitionedArray.concat_pairwise(
                live.with_data(du_c), live.with_data(dv_c)
            )
            bids = PartitionedArray.concat_pairwise(
                live.with_data(keys), live.with_data(keys)
            )
            # Each bid ships a 4-word record: packed key, both endpoint
            # labels, and the global edge id.
            setdmin(
                rt, minedge, targets, bids.data, opts, None, None, tprime, sort_method,
                record_words=4, packed_payload=True,
            )

            # Owners scan their blocks for winners.
            rt.local_stream(sizes_local, Category.COPY)
            roots, pos = extract_winners(minedge.data)
            if rt.integrity is not None:
                # Cut-property spot check: sampled winners must be real
                # candidates, incident to their supervertex, weight intact.
                rt.integrity.verify_mst_selection(minedge, roots, pos, du_c, dv_c, w_c)
            chosen.append(np.unique(id_c[pos]))
            # The winning record's endpoints/edge-id ride along with the key
            # (the SetDMin payload); charge the owner-side unpack.
            rt.local_ops(4.0 * float(roots.size) / rt.s)

            # Hook each winning supervertex onto its partner (owner-local
            # write: minedge and d share the same distribution).
            ra, rb = du_c[pos], dv_c[pos]
            partners = ra + rb - roots
            rt.owner_indexed_write(d, roots, partners, category=Category.COPY)

            # Break mutual hooks; needs d[partner] — a collective gather.
            partner_part = partition_by_owner(roots, d).with_data(partners)
            getd(rt, d, partner_part, opts, None, None, tprime, sort_method)
            break_hook_cycles(d.data, roots)
            rt.local_ops(float(roots.size))
            if rt.integrity is not None:
                # Fold the in-place cycle-break stores into d's digests.
                rt.integrity.note_write(d, roots)

            pointer_jump_to_stars(rt, d, jump_opts, tprime, sort_method, vert_offsets)
            if adapter is not None:
                new_opts, tprime = adapter.on_round(opts, tprime)
                # Never let an adaptation re-enable offload here: the
                # D[0] invariant it relies on fails for Boruvka.
                opts = new_opts.with_(offload=False)
                jump_opts = opts
        except NodeLoss as loss:
            # Permanent membership change: reconstruct d from redundancy,
            # remap onto the post-loss machine, and replay the round.
            # minedge is per-round scratch (reset at every round top), so
            # it is simply re-allocated on the new membership.
            recovered = rt.resilience.recover_loss(loss, ck, adapter=adapter)
            rt, machine, ck = recovered.rt, recovered.machine, recovered.ck
            d = recovered.arrays[d.name]
            state = recovered.state
            u_part, v_part = state["u_part"], state["v_part"]
            w_part, id_part = state["w_part"], state["id_part"]
            del chosen[state["nchosen"]:]
            minedge = rt.shared_array(np.full(n, NO_EDGE, dtype=np.int64), name="mst.minedge")
            rt.protect_array(minedge, corruptible=False)
            sizes_local = d.local_sizes().astype(np.float64)
            vert_offsets = np.zeros(rt.s + 1, dtype=np.int64)
            np.cumsum(d.local_sizes(), out=vert_offsets[1:])
            ctx = CollectiveContext()
            iteration -= 1
            continue
        except (ThreadCrash, IntegrityError) as fault:
            state = ck.restore()
            # repro: waive[CM01] checkpoint restore; RoundCheckpointer charges the pass
            d.data[:] = state[d.name]
            u_part, v_part = state["u_part"], state["v_part"]
            w_part, id_part = state["w_part"], state["id_part"]
            del chosen[state["nchosen"]:]
            if rt.integrity is not None:
                rt.integrity.resync(d)
            if isinstance(fault, IntegrityError):
                rt.counters.add(repairs=1)
                repairs += 1
                if repairs > repair_bound:
                    raise FaultError(
                        f"mst-collective gave up after {repairs} integrity repairs"
                        " (corruption rate exceeds what replay can absorb)"
                    ) from fault
            ctx.invalidate()
            iteration -= 1
            continue

    edge_ids = (
        np.sort(np.concatenate(chosen)) if chosen else np.empty(0, dtype=np.int64)
    )
    total = int(graph.w[edge_ids].sum()) if edge_ids.size else 0
    info = SolveInfo(
        machine, "mst-collective", rt.elapsed, time.perf_counter() - wall_start, iteration, rt.trace
    )
    return MSTResult(edge_ids, total, d.data.copy(), info)
