"""Process-global active-backend name holder.

Kept free of imports from the rest of the package (and of the rest of
the tree) so low-level machinery — the buffer arena keys its pools by
backend name — can consult the active backend without pulling in the
backend registry, and the registry can set it without cycles.

``None`` means "not resolved yet": the first consumer triggers the
lazy ``REPRO_PERF_BACKEND`` resolution in :mod:`repro.kernels`.
"""

from __future__ import annotations

__all__ = ["current_name", "set_current"]

_active_name: str | None = None


def current_name() -> "str | None":
    """The resolved backend name, or ``None`` before first resolution."""
    return _active_name


def set_current(name: "str | None") -> "str | None":
    """Install a resolved backend name; returns the previous value."""
    global _active_name
    previous = _active_name
    _active_name = name
    return previous
