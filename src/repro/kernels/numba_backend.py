"""Optional Numba backend: ``@njit``-compiled scalar loops.

The UPC address-mapping study (Serres et al.) attributes much of PGAS
overhead to per-element translation work that a compiled kernel
eliminates; this backend is that experiment for the simulator's hot
loops.  Where NumPy pays for materialized sort permutations, fused key
vectors, and full presence-mask scans, the compiled loops stream each
input once with no temporaries.

Numba is **not** a dependency of this tree: the backend registers
itself as unavailable (with the import error as the reason) when the
package is missing, and :func:`repro.kernels.resolve_backend` falls
back to NumPy with a one-line warning — never a crash.  Compilation is
lazy (first call per signature); the JIT'd results are bit-identical to
the baseline because every loop computes the same min/count/presence
reduction in the same integer domain.

Float-valued grouped minima delegate to the baseline: ``np.minimum``
has IEEE NaN-propagation rules a plain ``<`` loop would not reproduce,
and the solvers only scatter integer labels/keys anyway.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .numpy_backend import NumpyKernels

__all__ = ["NumbaKernels"]

_missing: "str | None" = None
try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit
except ImportError as exc:  # the common case in this tree's base image
    _missing = f"python package 'numba' is not installed ({exc})"

    def njit(*args, **kwargs):  # pragma: no cover - never called when missing
        raise RuntimeError("numba backend used while unavailable")


if _missing is None:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=False, nogil=True)
    def _scan_minima(sidx, svals, targets, minima):
        k = 0
        for i in range(sidx.shape[0]):
            if i == 0 or sidx[i] != sidx[i - 1]:
                targets[k] = sidx[i]
                minima[k] = svals[i]
                k += 1
            elif svals[i] < minima[k - 1]:
                minima[k - 1] = svals[i]
        return k

    @njit(cache=False, nogil=True)
    def _count_pairs(requesters, owners, out_flat, s):
        for i in range(owners.shape[0]):
            out_flat[owners[i] * s + requesters[i]] += 1

    @njit(cache=False, nogil=True)
    def _owner_distinct(idx, present, counts, size, block, s):
        for i in range(idx.shape[0]):
            present[idx[i]] = 1
        for t in range(s):
            lo = min(t * block, size)
            hi = min((t + 1) * block, size)
            if t == s - 1:
                hi = size
            c = 0
            for j in range(lo, hi):
                c += present[j]
            counts[t] = c

    @njit(cache=False, nogil=True)
    def _segment_distinct(tids, vals, present, counts, vmin, vrange):
        for i in range(tids.shape[0]):
            present[tids[i] * vrange + (vals[i] - vmin)] = 1
        for p in range(counts.shape[0]):
            c = 0
            base = p * vrange
            for j in range(vrange):
                c += present[base + j]
            counts[p] = c


class NumbaKernels(NumpyKernels):
    """Compiled scalar-loop kernels; NumPy baseline for everything else."""

    name = "numba"
    requires = "numba"
    native_ops = ("group_minima", "exchange_matrix", "owner_distinct", "segment_distinct")

    @classmethod
    def missing_reason(cls):
        return _missing

    # pragma-free: the methods below only run where numba imports, and
    # the golden matrix in tests/test_kernels.py covers them there.

    def group_minima(self, idx, vals):  # pragma: no cover - needs numba
        if vals.dtype.kind not in "iu":
            return super().group_minima(idx, vals)
        order = np.argsort(idx)
        sidx = idx[order]
        svals = np.ascontiguousarray(vals[order])
        targets = np.empty(sidx.shape[0], dtype=np.int64)
        minima = np.empty(svals.shape[0], dtype=svals.dtype)
        k = _scan_minima(sidx, svals, targets, minima)
        return targets[:k], minima[:k]

    def exchange_matrix(self, requesters, owners, s):  # pragma: no cover - needs numba
        out = np.zeros(s * s, dtype=np.int64)
        _count_pairs(
            np.ascontiguousarray(requesters, dtype=np.int64),
            np.ascontiguousarray(owners, dtype=np.int64),
            out,
            s,
        )
        return out.reshape(s, s)

    def owner_distinct(self, idx, size, block, s):  # pragma: no cover - needs numba
        present = np.zeros(size, dtype=np.uint8)
        counts = np.empty(s, dtype=np.int64)
        _owner_distinct(np.ascontiguousarray(idx), present, counts, size, block, s)
        return counts

    def segment_distinct(self, tids, vals, parts, vmin, vrange):  # pragma: no cover - needs numba
        present = np.zeros(parts * vrange, dtype=np.uint8)
        counts = np.empty(parts, dtype=np.int64)
        _segment_distinct(
            np.ascontiguousarray(tids, dtype=np.int64),
            np.ascontiguousarray(vals, dtype=np.int64),
            present,
            counts,
            vmin,
            vrange,
        )
        return counts
