"""The NumPy baseline backend: PR 5's fast-engine hot loops, extracted.

This is the reference implementation every other backend is compared
against (and falls back to, per-op, for anything outside its
``native_ops``).  The code is the vectorized rewrite that bought the
original ~2x serial speedup — argsort + ``np.minimum.reduceat`` grouped
minima, fused pair keys through the pooled arena, presence masks with
prefix sums — moved verbatim behind the backend interface.
"""

from __future__ import annotations

import numpy as np

from ..perf import arena
from .base import KERNEL_OPS, KernelBackend

__all__ = ["NumpyKernels", "group_minima_numpy"]


def group_minima_numpy(idx: np.ndarray, vals: np.ndarray):
    """Sort-reduce duplicate targets: returns ``(targets, minima)`` with
    ``targets`` the ascending unique indices and ``minima`` the minimum
    value proposed for each (same adjudication as ``np.minimum.at``,
    without its per-element inner loop).  Module-level so the sharding
    workers can call it without instantiating a backend."""
    order = np.argsort(idx)
    sidx = idx[order]
    svals = vals[order]
    starts = np.flatnonzero(np.concatenate(([True], sidx[1:] != sidx[:-1])))
    return sidx[starts], np.minimum.reduceat(svals, starts)


class NumpyKernels(KernelBackend):
    """Pure-NumPy kernels — always available, the bit-identity reference."""

    name = "numpy"
    requires = None
    native_ops = KERNEL_OPS

    def group_minima(self, idx, vals):
        return group_minima_numpy(idx, vals)

    def exchange_matrix(self, requesters, owners, s):
        # Fused key build into pooled scratch (this runs once per
        # collective call on a vector the size of the request buffer).
        with arena.lease(owners.size, np.int64) as keys:
            np.multiply(owners, np.int64(s), out=keys)
            keys += requesters
            return np.bincount(keys, minlength=s * s).reshape(s, s)

    def owner_distinct(self, idx, size, block, s):
        # Presence mask + prefix sums over the blocked layout instead of
        # sorting the (much larger) request vector with np.unique: the
        # distinct count for thread t is the number of marked slots in
        # its affinity range.
        with arena.lease(size, np.int8, clear=True) as present:
            present[idx] = 1
            with arena.lease(size + 1, np.int64) as cum:
                cum[0] = 0
                np.cumsum(present, out=cum[1:])
                tids = np.arange(s, dtype=np.int64)
                starts = np.minimum(tids * block, size)
                ends = np.minimum((tids + 1) * block, size)
                ends[-1] = size
                return cum[ends] - cum[starts]

    def segment_distinct(self, tids, vals, parts, vmin, vrange):
        # Presence mask instead of sorting: mark each (thread, value)
        # slot, then count marks per thread row.
        with arena.lease(parts * vrange, np.int8, clear=True) as present:
            key = tids * np.int64(vrange) + (vals - vmin)
            present[key] = 1
            return present.reshape(parts, vrange).sum(axis=1, dtype=np.int64)

    def concat_segments(self, a_data, a_offsets, b_data, b_offsets, offsets):
        # One scatter per input instead of a Python loop of per-segment
        # concatenations: place segment i of `a` at the interleaved
        # output offset, then segment i of `b` right after it.
        sa = np.diff(a_offsets)
        sb = np.diff(b_offsets)
        out = np.empty(
            int(offsets[-1]), dtype=np.result_type(a_data.dtype, b_data.dtype)
        )
        shift_a = np.repeat(offsets[:-1] - a_offsets[:-1], sa)
        out[np.arange(a_data.shape[0], dtype=np.int64) + shift_a] = a_data
        shift_b = np.repeat(offsets[:-1] + sa - b_offsets[:-1], sb)
        out[np.arange(b_data.shape[0], dtype=np.int64) + shift_b] = b_data
        return out
