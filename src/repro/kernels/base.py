"""The kernel-backend interface.

A *kernel backend* implements the handful of array primitives that
dominate the fast engine's wall-clock profile — grouped minima for the
CRCW scatters, presence-mask distinct counts for the cost model's
cold-miss bounds, and the pair-key exchange packing of the all-to-all
setup.  Backends are interchangeable at runtime (``REPRO_PERF_BACKEND``
/ ``--backend``) and bound by the same contract as the fast/legacy
engine switch: **bit-identical modeled time and result bytes** on the
golden fingerprint matrix (:mod:`repro.perf.golden`), enforced by
``tests/test_kernels.py`` for every backend importable on the host.

Subclasses override the operations they implement natively and list
them in :attr:`KernelBackend.native_ops`; everything else inherits the
NumPy baseline (:class:`repro.kernels.numpy_backend.NumpyKernels`), so
a partial backend — e.g. scipy.sparse, which only reformulates the
collective exchanges — degrades to the baseline per-op rather than
per-process.

The interface deliberately traffics in plain arrays and scalars, never
in :class:`~repro.runtime.shared_array.SharedArray` or
:class:`~repro.runtime.partitioned.PartitionedArray` objects: argument
validation, legacy-engine fallbacks, and cost accounting stay at the
call sites; backends are pure compute.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelBackend", "KERNEL_OPS"]

#: The dispatchable operations every backend must answer (natively or
#: by inheriting the NumPy baseline).
KERNEL_OPS = (
    "group_minima",
    "exchange_matrix",
    "owner_distinct",
    "segment_distinct",
    "concat_segments",
)


class KernelBackend:
    """Base class for kernel backends (see module docstring).

    ``name`` is the registry key; ``requires`` names the optional
    package the backend needs (``None`` for always-available);
    ``native_ops`` lists the operations the subclass implements itself
    — the capability table in ``docs/performance.md`` and
    :func:`repro.kernels.backend_capabilities` render exactly this.
    """

    name = "base"
    requires: "str | None" = None
    native_ops: tuple = ()

    # -- dispatchable operations ------------------------------------------

    def group_minima(self, idx: np.ndarray, vals: np.ndarray):
        """Sort-reduce duplicate scatter targets.

        Returns ``(targets, minima)``: ascending unique target indices
        and the minimum value proposed for each — the adjudication core
        of ``SharedArray.scatter_min`` / ``scatter_store_min``.
        """
        raise NotImplementedError

    def exchange_matrix(self, requesters: np.ndarray, owners: np.ndarray, s: int) -> np.ndarray:
        """The ``(s, s)`` SMatrix: counts of (owner, requester) pairs in
        a request vector (``collectives.alltoall.send_matrix`` core)."""
        raise NotImplementedError

    def owner_distinct(self, idx: np.ndarray, size: int, block: int, s: int) -> np.ndarray:
        """Distinct requested indices per owning thread of a blocked
        shared array (``collectives.getd.owner_distinct_counts`` core).
        ``idx`` is already validated to ``[0, size)``."""
        raise NotImplementedError

    def segment_distinct(
        self, tids: np.ndarray, vals: np.ndarray, parts: int, vmin: int, vrange: int
    ) -> np.ndarray:
        """Distinct values per segment of a partitioned array
        (``PartitionedArray.segment_distinct`` core).  Only called when
        ``parts * vrange`` fits the presence-mask slot cap; ``vals`` is
        int64 with values in ``[vmin, vmin + vrange)``."""
        raise NotImplementedError

    def concat_segments(
        self,
        a_data: np.ndarray,
        a_offsets: np.ndarray,
        b_data: np.ndarray,
        b_offsets: np.ndarray,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """Interleave two partitioned payloads segment-by-segment into
        one flat array laid out by ``offsets``
        (``PartitionedArray.concat_pairwise`` core)."""
        raise NotImplementedError

    # -- registry metadata ------------------------------------------------

    @classmethod
    def missing_reason(cls) -> "str | None":
        """Why this backend cannot run here, or ``None`` if it can."""
        return None

    @classmethod
    def available(cls) -> bool:
        """True when the backend's optional dependency is importable."""
        return cls.missing_reason() is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} native={self.native_ops}>"
