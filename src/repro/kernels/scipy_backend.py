"""Optional scipy.sparse backend: exchange packing as sparse matrices.

The all-to-all bookkeeping of Algorithm 2 *is* sparse linear algebra:
the SMatrix is the (owner, requester) coincidence matrix of the request
vector, and the distinct-count bounds are row-nnz queries on indicator
matrices.  This backend states that directly — ``coo_matrix`` sums
duplicate coordinates on CSR conversion, so the count matrices fall out
of the format conversion itself, and per-row nnz (``diff(indptr)``)
counts distinct columns without sorting or presence scans.

Only the exchange/count formulations are native; the grouped-minima
scatter core has no natural sparse phrasing and inherits the NumPy
baseline (per-op fallback, see the capability table in
``docs/performance.md``).  scipy ships in this tree's baseline
environment, but the backend still gates on import so a trimmed
install degrades to NumPy with a warning rather than a crash.
"""

from __future__ import annotations

import numpy as np

from .numpy_backend import NumpyKernels

__all__ = ["ScipyKernels"]

_missing: "str | None" = None
try:
    from scipy import sparse
except ImportError as exc:  # pragma: no cover - scipy is in the base image
    _missing = f"python package 'scipy' is not installed ({exc})"
    sparse = None


class ScipyKernels(NumpyKernels):
    """scipy.sparse exchange/count kernels; NumPy baseline elsewhere."""

    name = "scipy"
    requires = "scipy"
    native_ops = ("exchange_matrix", "owner_distinct", "segment_distinct")

    @classmethod
    def missing_reason(cls):
        return _missing

    def exchange_matrix(self, requesters, owners, s):
        # COO -> dense sums duplicate (owner, requester) coordinates:
        # exactly the pair-count SMatrix.
        ones = np.ones(owners.size, dtype=np.int64)
        mat = sparse.coo_matrix((ones, (owners, requesters)), shape=(s, s))
        return np.asarray(mat.todense(), dtype=np.int64)

    def owner_distinct(self, idx, size, block, s):
        # Row r of the indicator matrix holds thread r's requested
        # indices; CSR conversion dedups coordinates, so row nnz is the
        # distinct count.  int64 data so duplicate summing cannot wrap
        # a count to an explicit zero (which would still occupy a slot).
        owners = np.minimum(idx // np.int64(block), s - 1)
        ones = np.ones(idx.size, dtype=np.int64)
        csr = sparse.coo_matrix((ones, (owners, idx)), shape=(s, size)).tocsr()
        return np.diff(csr.indptr).astype(np.int64)

    def segment_distinct(self, tids, vals, parts, vmin, vrange):
        ones = np.ones(tids.size, dtype=np.int64)
        csr = sparse.coo_matrix(
            (ones, (tids, vals - vmin)), shape=(parts, vrange)
        ).tocsr()
        return np.diff(csr.indptr).astype(np.int64)
