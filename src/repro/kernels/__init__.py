"""Pluggable kernel backends for the fast engine's hot loops.

DART-MPI layers a PGAS runtime over an interchangeable host transport;
this package is the same split one level down: the algorithm-facing
runtime (``SharedArray``, the collectives) stays put, while the compute
kernels underneath it — grouped minima, exchange-matrix packing,
distinct counts — dispatch to an interchangeable backend:

``numpy``
    the PR 5 vectorized baseline, always available, the reference;
``numba``
    ``@njit`` scalar loops (optional — falls back when not installed);
``scipy``
    sparse-matrix formulations of the collective exchanges.

Selection is process-global: ``REPRO_PERF_BACKEND`` in the environment
(resolved lazily on first use) or ``--backend`` on every CLI command
(resolved eagerly, so a typo exits 2 before any work).  Unknown names
raise :class:`~repro.errors.UsageError`; a *known but unavailable*
backend (numba/scipy not importable) falls back to ``numpy`` with a
one-line stderr warning — never a crash.  ``auto`` picks the fastest
available backend by wall-clock micro-probe (:func:`recommend_backend`).

Every backend is bound by the golden bit-identity contract
(:mod:`repro.perf.golden`): modeled times, counters, and result bytes
must match the baseline exactly.  Backends therefore never feed the
cost model — they are wall-clock machinery, like the rest of
:mod:`repro.perf`, and the choice of backend is invisible to everything
the simulation reports except the time it takes to report it.
"""

from __future__ import annotations

import contextlib
import os
import sys
import time

import numpy as np

from ..errors import UsageError
from . import state as _state
from .base import KERNEL_OPS, KernelBackend

__all__ = [
    "KERNEL_OPS",
    "KernelBackend",
    "active_backend",
    "available_backends",
    "backend_capabilities",
    "backend_name",
    "calibrate_backends",
    "missing_reason",
    "recommend_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: Registry: backend name -> (module, class) loaded on first use, so
#: importing this package never imports numba/scipy.
_REGISTRY = {
    "numpy": (".numpy_backend", "NumpyKernels"),
    "numba": (".numba_backend", "NumbaKernels"),
    "scipy": (".scipy_backend", "ScipyKernels"),
}
BACKENDS = tuple(_REGISTRY)

_instances: "dict[str, KernelBackend]" = {}
_warned: "set[str]" = set()
_recommended: "str | None" = None


def _load(name: str) -> KernelBackend:
    backend = _instances.get(name)
    if backend is None:
        import importlib

        module, cls = _REGISTRY[name]
        backend = getattr(importlib.import_module(module, __package__), cls)()
        _instances[name] = backend
    return backend


def _warn_once(message: str) -> None:
    if message not in _warned:
        _warned.add(message)
        sys.stderr.write(f"repro: {message}\n")


def missing_reason(name: str) -> "str | None":
    """Why backend ``name`` cannot run on this host (``None`` = it can)."""
    if name not in _REGISTRY:
        raise UsageError(f"unknown kernel backend {name!r}")
    module, cls = _REGISTRY[name]
    import importlib

    return getattr(importlib.import_module(module, __package__), cls).missing_reason()


def available_backends() -> tuple:
    """Backend names importable on this host (always includes numpy)."""
    return tuple(n for n in BACKENDS if missing_reason(n) is None)


def resolve_backend(value, source: "str | None" = None) -> str:
    """Normalize a backend selection to a concrete available name.

    Mirrors the strictness contract of
    :func:`repro.perf.fanout.resolve_workers`: ``None``/empty means the
    default (``numpy``), ``auto`` means the probe-measured
    recommendation, an unknown name raises
    :class:`~repro.errors.UsageError` naming ``source`` (the flag or
    environment variable it came from, so the error says where to fix
    it), and a known-but-unavailable backend returns ``numpy`` after a
    one-line stderr warning with the skip reason.
    """
    if value is None:
        return "numpy"
    where = f" (from {source})" if source else ""
    text = str(value).strip().lower()
    if not text:
        return "numpy"
    if text == "auto":
        return recommend_backend()
    if text not in _REGISTRY:
        choices = "|".join(BACKENDS)
        raise UsageError(
            f"unknown kernel backend {text!r}{where}: use {choices} or 'auto'"
        )
    reason = missing_reason(text)
    if reason is not None:
        _warn_once(
            f"kernel backend '{text}' skipped — {reason}; falling back to 'numpy'"
        )
        return "numpy"
    return text


def backend_name() -> str:
    """The active backend's name, resolving ``REPRO_PERF_BACKEND`` on
    first use (lazy, so library imports never pay a probe or a crash —
    the CLI resolves eagerly instead)."""
    name = _state.current_name()
    if name is None:
        env = os.environ.get("REPRO_PERF_BACKEND", "")
        name = resolve_backend(env, source="REPRO_PERF_BACKEND")
        _state.set_current(name)
    return name


def active_backend() -> KernelBackend:
    """The active :class:`KernelBackend` instance."""
    return _load(backend_name())


def set_backend(value, source: "str | None" = None) -> str:
    """Install a backend selection process-wide (validated immediately);
    returns the previous effective name."""
    previous = _state.current_name() or "numpy"
    _state.set_current(resolve_backend(value, source=source))
    return previous


@contextlib.contextmanager
def use_backend(value, source: "str | None" = None):
    """Run the body under a specific backend, restoring the previous
    selection (including "unresolved") on exit.  Used by the golden
    cross-backend suite and the kernel benchmark."""
    previous = _state.current_name()
    _state.set_current(resolve_backend(value, source=source))
    try:
        yield active_backend()
    finally:
        _state.set_current(previous)


def backend_capabilities() -> tuple:
    """One record per registered backend: availability, the optional
    package it needs, and which ops are native vs delegated to the
    NumPy baseline.  Rendered by ``repro info`` and the docs table."""
    records = []
    for name in BACKENDS:
        module, cls = _REGISTRY[name]
        import importlib

        kind = getattr(importlib.import_module(module, __package__), cls)
        reason = kind.missing_reason()
        records.append(
            {
                "backend": name,
                "available": reason is None,
                "reason": reason,
                "requires": kind.requires,
                "native_ops": tuple(kind.native_ops),
                "delegated_ops": tuple(
                    op for op in KERNEL_OPS if op not in kind.native_ops
                ),
            }
        )
    return tuple(records)


def _probe_workload(backend: KernelBackend, scale: float) -> None:
    """One pass of every kernel op on synthetic data shaped like a
    mid-size solve round (seeded — identical inputs for every backend)."""
    rng = np.random.default_rng(12345)
    n = max(1024, int(200_000 * scale))
    size = max(256, int(50_000 * scale))
    s = 64
    block = -(-size // s)
    idx = rng.integers(0, size, size=n, dtype=np.int64)
    vals = rng.integers(0, size, size=n, dtype=np.int64)
    tids = np.sort(rng.integers(0, s, size=n, dtype=np.int64))
    owners = np.minimum(idx // block, s - 1)
    backend.group_minima(idx, vals)
    backend.exchange_matrix(tids, owners, s)
    backend.owner_distinct(idx, size, block, s)
    vrange = int(vals.max()) + 1
    backend.segment_distinct(tids, vals, s, 0, vrange)


def calibrate_backends(repeats: int = 3, scale: float = 1.0) -> tuple:
    """Wall-clock micro-probe of every backend on this host.

    Returns one record per backend: availability, best-of-``repeats``
    seconds for the fused kernel workload, and the speedup over the
    NumPy baseline.  **Wall-clock, not modeled**: the numbers vary by
    host and must never enter a :class:`~repro.tuning.TuningPlan` (the
    PlanCache is byte-deterministic); the tuner reports them alongside
    the plan instead, and ``auto`` selection consumes them via
    :func:`recommend_backend`.
    """
    records = []
    baseline = None
    for name in BACKENDS:
        reason = missing_reason(name)
        if reason is not None:
            records.append(
                {"backend": name, "available": False, "reason": reason, "seconds": None}
            )
            continue
        backend = _load(name)
        _probe_workload(backend, scale)  # warm: JIT compile, pool scratch
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            _probe_workload(backend, scale)
            best = min(best, time.perf_counter() - start)
        record = {"backend": name, "available": True, "reason": None, "seconds": best}
        if name == "numpy":
            baseline = best
        records.append(record)
    for record in records:
        if record["seconds"] is not None and baseline:
            record["speedup_vs_numpy"] = baseline / record["seconds"]
    return tuple(records)


def recommend_backend(repeats: int = 2, scale: float = 0.25) -> str:
    """The fastest available backend by micro-probe (cached per process).

    This is what ``--backend auto`` resolves to.  With only the NumPy
    baseline importable the probe is skipped entirely.
    """
    global _recommended
    if _recommended is None:
        names = available_backends()
        if len(names) == 1:
            _recommended = names[0]
        else:
            timed = [
                r
                for r in calibrate_backends(repeats=repeats, scale=scale)
                if r["seconds"] is not None
            ]
            _recommended = min(timed, key=lambda r: r["seconds"])["backend"]
    return _recommended
