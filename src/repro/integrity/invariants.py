"""Algorithmic invariants checked between rounds.

These are pure predicates over solver state; the
:class:`~repro.integrity.monitor.IntegrityMonitor` charges their modeled
cost and turns violations into :class:`~repro.errors.IntegrityError`.

CC (grafting + pointer jumping) maintains, at every round boundary:

* every label is a valid vertex id;
* labels never exceed the vertex id (``D`` starts as the identity and is
  only ever lowered through min-combining scatters);
* the forest is all stars (``D[D[v]] == D[v]``) — each round ends with
  pointer jumping run to convergence.

MST (Borůvka) hooks along minimum edges regardless of label order, so
monotonicity does not hold there; round tops guarantee only valid labels
and all-stars.  The per-round selection check instead spot-checks the
cut property: a sampled winner recorded for supervertex ``r`` must be a
real candidate edge incident to ``r`` whose weight matches the packed
key that won the min-combine.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cc_invariant_violation",
    "lt_invariant_violation",
    "star_invariant_violation",
    "mst_selection_violation",
]


def _labels_in_range(labels: np.ndarray) -> bool:
    n = labels.size
    return bool(n == 0 or (labels.min() >= 0 and labels.max() < n))


def cc_invariant_violation(labels: np.ndarray) -> "str | None":
    """First violated CC round-top invariant, or ``None`` if clean."""
    if not _labels_in_range(labels):
        return "label out of range [0, n)"
    if np.any(labels > np.arange(labels.size)):
        return "label exceeds vertex id (min-combine monotonicity)"
    if np.any(labels[labels] != labels):
        return "forest is not all stars (root not a fixed point)"
    return None


def lt_invariant_violation(
    labels: np.ndarray,
    prev: "np.ndarray | None" = None,
    final: bool = False,
) -> "str | None":
    """First violated Liu–Tarjan round-top invariant, or ``None``.

    Unlike the grafting solver's :func:`cc_invariant_violation`, the LT
    round tops do *not* guarantee all-stars — the partial-shortcut
    variants leave deep trees mid-run.  What every variant maintains:

    * valid labels;
    * ``D[v] <= v`` — every connect rule proposes values strictly below
      the target's id and writes are min-adjudicated, so parent pointers
      only ever point downward.  This doubles as the rooted-forest-shape
      check: strictly decreasing pointers cannot form a cycle, and
      chains terminate at fixed points (roots);
    * elementwise non-increase against the previous round top (``prev``)
      — labels are monotone under min-combining.

    ``final=True`` adds the all-stars termination condition: a variant
    only stops once a whole round moves nothing, which implies the
    forest has collapsed to rooted stars.
    """
    if not _labels_in_range(labels):
        return "label out of range [0, n)"
    if np.any(labels > np.arange(labels.size)):
        return "label exceeds vertex id (rooted-forest monotonicity)"
    if prev is not None and np.any(labels > prev):
        return "label increased between rounds (min-combine monotonicity)"
    if final and np.any(labels[labels] != labels):
        return "terminated without all-stars (root not a fixed point)"
    return None


def star_invariant_violation(labels: np.ndarray) -> "str | None":
    """Round-top invariant for solvers that only guarantee stars (MST)."""
    if not _labels_in_range(labels):
        return "label out of range [0, n)"
    if np.any(labels[labels] != labels):
        return "forest is not all stars (root not a fixed point)"
    return None


def mst_selection_violation(
    keys: np.ndarray,
    roots: np.ndarray,
    positions: np.ndarray,
    du_c: np.ndarray,
    dv_c: np.ndarray,
    w_c: np.ndarray,
) -> "str | None":
    """Cut-property spot check on sampled Borůvka winners.

    ``keys`` are the packed ``(weight << 32) | position`` entries that
    won the min-combine for supervertices ``roots``; ``positions`` index
    into the round's compacted candidate arrays ``du_c/dv_c/w_c``.
    """
    if keys.size == 0:
        return None
    weights = keys >> np.int64(32)
    if np.any(w_c[positions] != weights):
        return "winner weight disagrees with its candidate edge (cut property)"
    if np.any((du_c[positions] != roots) & (dv_c[positions] != roots)):
        return "winner edge is not incident to its supervertex"
    return None
