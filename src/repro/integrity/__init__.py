"""Silent-data-corruption resilience: detection and repair.

Injection of silent faults lives in :mod:`repro.faults`
(``FaultPlan.corruption`` / ``FaultPlan.payload_corruption``); this
package holds the defenses — checksummed shared-array blocks, end-to-end
payload checksums, per-round invariant verification — and the composed
chaos/soak harness that demonstrates them end to end.  See
``docs/fault-model.md`` ("Silent faults and integrity").
"""

from .config import IntegrityConfig
from .monitor import IntegrityMonitor, guard_payload
from .soak import ServiceSoakConfig, SoakConfig, run_service_soak, run_soak

__all__ = [
    "IntegrityConfig",
    "IntegrityMonitor",
    "guard_payload",
    "SoakConfig",
    "run_soak",
    "run_service_soak",
    "ServiceSoakConfig",
]
