"""Configuration of the silent-fault detection/repair layer.

An :class:`IntegrityConfig` selects which defenses a run pays for:

* ``checksums`` — per-owner-block digests of protected shared arrays,
  verified at every synchronization point, plus end-to-end checksums on
  multi-node collective payloads (detected corruption triggers a
  retransmission from the clean buffer);
* ``invariants`` — algorithmic verify-and-repair between rounds: CC
  checks the pointer-jumping forest invariants at every round top, MST
  spot-checks the Borůvka cut property on sampled selected edges.

Both defenses are charged to the ``Fault`` trace category at modeled
memory bandwidth, so protection overhead shows up in the breakdown; a
run with no config (the default) pays exactly nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["IntegrityConfig"]


@dataclass(frozen=True)
class IntegrityConfig:
    """What the integrity layer checks, and how hard.

    Parameters
    ----------
    checksums:
        Maintain per-owner-block digests of protected arrays (verified
        at every barrier) and end-to-end checksums on collective
        payloads.  This is the complete defense: every injected block
        flip is detected at the first synchronization point after it
        lands, before any thread reads it.
    invariants:
        Run the per-round algorithmic checks (CC forest invariants, MST
        cut-property spot checks).  Cheaper than checksums but partial:
        a folded flip that still encodes a valid forest slips through.
    mst_samples:
        How many selected edges the MST spot check samples per round.
    seed:
        Seed of the monitor's private sampling Generator (which edges
        the MST spot check draws); independent of the fault plan's seed.
    """

    checksums: bool = True
    invariants: bool = True
    mst_samples: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mst_samples < 1:
            raise ConfigError(f"mst_samples must be >= 1: got {self.mst_samples}")

    @property
    def enabled(self) -> bool:
        """False iff every defense is switched off (the runtime then
        skips the integrity layer entirely)."""
        return self.checksums or self.invariants
