"""Composed chaos/soak harness for the silent-fault story.

Each soak iteration builds a fresh seeded graph, composes a fault plan
(silent block/payload corruption, optionally message loss, stragglers,
and scheduled crashes), and solves it twice per algorithm:

* **unprotected** — fault plan only.  Silent flips land and nothing
  checks them; the run is expected to sometimes produce a *wrong but
  plausible* answer (or trip a convergence bound), which is exactly the
  failure mode this subsystem exists to close.
* **protected** — same plan plus the full
  :class:`~repro.integrity.IntegrityConfig`.  Every result must verify.

Every result is checked against networkx (components for CC; minimum
forest weight for MST, plus the scipy structural checker), so "wrong"
means *provably* wrong, not merely different.  The report — per
iteration and in aggregate — lands in ``BENCH_soak.json`` via the bench
harness, and the CI ``soak-smoke`` job fails on any unrepaired wrong
result.

Heavy imports (solvers, generators, networkx) stay function-local: this
module is imported by ``repro.integrity.__init__``, which the
collectives pull in at package-import time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..errors import ConfigError, ReproError
from ..faults.plan import CrashEvent, FaultPlan
from .config import IntegrityConfig

__all__ = ["SoakConfig", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak campaign: how many iterations, over what, under what.

    ``corruption``/``payload_corruption`` follow
    :class:`~repro.faults.FaultPlan` semantics; ``loss``, ``stragglers``
    and ``crashes`` compose the fail-stop fault classes in so the repair
    paths are exercised together, not in isolation.
    """

    iterations: int = 5
    seed: int = 0
    algos: tuple = ("cc", "mst")
    nodes: int = 16
    threads: int = 8
    n: int = 2048
    m: int = 8192
    corruption: float = 2.0e-2
    payload_corruption: float = 1.0e-4
    loss: float = 0.0
    stragglers: int = 0
    crashes: int = 0
    unprotected: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError(f"soak iterations must be >= 1: got {self.iterations}")
        if self.n < 2 or self.m < 1:
            raise ConfigError(f"soak graph must have n >= 2, m >= 1: got n={self.n} m={self.m}")
        for algo in self.algos:
            if algo not in ("cc", "mst"):
                raise ConfigError(f"unknown soak algo {algo!r}; expected 'cc' or 'mst'")


def _compose_plan(config: SoakConfig, seed: int, total_threads: int) -> FaultPlan:
    """The iteration's fault plan: corruption always, fail-stop classes
    as configured (stragglers drawn from a dedicated picker stream)."""
    slow: dict[int, float] = {}
    if config.stragglers:
        picker = np.random.default_rng(seed)
        chosen = picker.choice(total_threads, size=config.stragglers, replace=False)
        slow = {int(t): 4.0 for t in chosen}
    crashes = tuple(
        CrashEvent(thread=int((seed + j) % total_threads), at_time=2.0e-4 * (j + 1))
        for j in range(config.crashes)
    )
    return FaultPlan(
        seed=seed,
        loss=config.loss,
        stragglers=slow,
        crashes=crashes,
        corruption=config.corruption,
        payload_corruption=config.payload_corruption,
    )


def _cc_wrong(labels: np.ndarray, graph) -> "str | None":
    """Compare a CC labeling against networkx's components."""
    import networkx as nx

    labels = np.asarray(labels)
    seen: set = set()
    for comp in nx.connected_components(graph.to_networkx()):
        ids = np.fromiter(comp, dtype=np.int64, count=len(comp))
        lab = np.unique(labels[ids])
        if lab.size != 1:
            return "one component carries several labels"
        root = int(lab[0])
        if root in seen:
            return "two components share a label"
        seen.add(root)
    return None


def _mst_wrong(result, graph) -> "str | None":
    """Compare an MST result against networkx's minimum forest weight
    and the scipy structural checker."""
    import networkx as nx

    from ..errors import VerificationError
    from ..mst.verify import check_spanning_forest

    ids = np.asarray(result.edge_ids, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= graph.m):
        return "forest edge id out of range"
    # Parallel edges resolved to their minimum weight first, so the
    # networkx total is the well-defined optimum of the multigraph.
    dedup = graph.take(graph.dedup_min_weight_index())
    expected = int(
        sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(dedup.to_networkx(), data=True))
    )
    total = int(graph.w[ids].sum()) if ids.size else 0
    if total != expected:
        return f"forest weight {total} != networkx minimum {expected}"
    try:
        check_spanning_forest(graph, ids)
    except VerificationError as err:
        return str(err)
    return None


def _counters(result) -> dict:
    c = result.info.trace.counters
    return {
        "injected": c.corruptions_injected,
        "detected": c.corruptions_detected,
        "repairs": c.repairs,
        "retries": c.retries,
        "crashes": c.crashes,
        "restores": c.checkpoint_restores,
    }


def _solve(algo: str, g, gw, machine, plan, integrity):
    from ..core.pipeline import connected_components, minimum_spanning_forest

    if algo == "cc":
        return connected_components(g, machine, impl="collective", faults=plan, integrity=integrity)
    return minimum_spanning_forest(gw, machine, impl="collective", faults=plan, integrity=integrity)


def _run_iteration(task: "tuple[SoakConfig, int]") -> list:
    """One soak iteration (all algos, protected + unprotected).

    Module-level and fully determined by ``(config, i)`` so the fan-out
    layer can run iterations in worker processes; returns the iteration's
    records, from which the summary is derived afterwards.
    """
    from ..graph.generators import random_graph, with_random_weights
    from ..runtime.machine import hps_cluster

    config, i = task
    machine = hps_cluster(config.nodes, config.threads)
    seed_i = config.seed + i
    g = random_graph(config.n, config.m, seed=seed_i)
    gw = with_random_weights(g, seed=seed_i + 1)
    plan = _compose_plan(config, seed_i, machine.total_threads)
    records = []
    for algo in config.algos:
        record = {"iteration": i, "algo": algo, "seed": seed_i}
        try:
            res = _solve(algo, g, gw, machine, plan, IntegrityConfig())
        except ReproError as err:
            record["protected"] = {"failed": f"{type(err).__name__}: {err}"}
        else:
            wrong = _cc_wrong(res.labels, g) if algo == "cc" else _mst_wrong(res, gw)
            record["protected"] = {
                "wrong": wrong,
                "sim_time_ms": res.info.sim_time_ms,
                **_counters(res),
            }
        if config.unprotected:
            try:
                res = _solve(algo, g, gw, machine, plan, None)
            except ReproError as err:
                record["unprotected"] = {"error": f"{type(err).__name__}: {err}"}
            else:
                wrong = _cc_wrong(res.labels, g) if algo == "cc" else _mst_wrong(res, gw)
                record["unprotected"] = {
                    "wrong": wrong,
                    "injected": _counters(res)["injected"],
                }
        records.append(record)
    return records


def _summarize(records: list) -> dict:
    """Aggregate the CI contract's summary from the per-run records
    (pure fold over the records, so it cannot depend on worker count)."""
    summary = {
        "runs": 0,
        "protected_wrong": 0,
        "protected_failed": 0,
        "injected": 0,
        "detected": 0,
        "repairs": 0,
        "unprotected_runs": 0,
        "unprotected_wrong_or_error": 0,
    }
    for record in records:
        summary["runs"] += 1
        prot = record["protected"]
        if "failed" in prot:
            summary["protected_failed"] += 1
        else:
            if prot["wrong"] is not None:
                summary["protected_wrong"] += 1
            summary["injected"] += prot["injected"]
            summary["detected"] += prot["detected"]
            summary["repairs"] += prot["repairs"]
        unprot = record.get("unprotected")
        if unprot is not None:
            summary["unprotected_runs"] += 1
            if "error" in unprot or unprot["wrong"] is not None:
                summary["unprotected_wrong_or_error"] += 1
    return summary


def run_soak(config: SoakConfig, out_dir=None, write_json: bool = True, workers=None) -> dict:
    """Run the soak campaign and return (and optionally write) the report.

    The report's ``summary`` is the contract the CI job enforces:
    ``protected_wrong`` and ``protected_failed`` must be zero — every
    injected silent fault is either harmless or detected and repaired —
    while ``unprotected_wrong_or_error`` documents what the same plans
    do to an undefended run.

    ``workers`` fans the (independent, seeded) iterations out across a
    process pool (``None``/1 = serial, ``"auto"`` = one per CPU).  The
    report is identical for any worker count except the ``wallclock``
    block, which records how this campaign actually ran.
    """
    import time

    from ..bench.harness import write_bench_json
    from ..perf.fanout import fanout_map, resolve_workers

    nworkers = resolve_workers(workers)
    t0 = time.perf_counter()
    per_iteration = fanout_map(
        _run_iteration, [(config, i) for i in range(config.iterations)], workers=nworkers
    )
    seconds = time.perf_counter() - t0
    records = [record for chunk in per_iteration for record in chunk]
    report = {
        "config": asdict(config),
        "summary": _summarize(records),
        "iterations": records,
        "wallclock": {"workers": nworkers, "seconds": seconds},
    }
    if write_json:
        report["path"] = str(write_bench_json("soak", report, directory=out_dir))
    return report
