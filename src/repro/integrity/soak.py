"""Composed chaos/soak harness for the silent-fault story.

Each soak iteration builds a fresh seeded graph, composes a fault plan
(silent block/payload corruption, optionally message loss, stragglers,
scheduled crashes, and permanent node losses), and solves it twice per
algorithm:

* **unprotected** — fault plan only.  Silent flips land and nothing
  checks them; the run is expected to sometimes produce a *wrong but
  plausible* answer (or trip a convergence bound), which is exactly the
  failure mode this subsystem exists to close.
* **protected** — same plan plus the full
  :class:`~repro.integrity.IntegrityConfig`.  Every result must verify.

Every result is checked against networkx (components for CC; minimum
forest weight for MST, plus the scipy structural checker), so "wrong"
means *provably* wrong, not merely different.  The report — per
iteration and in aggregate — lands in ``BENCH_soak.json`` via the bench
harness, and the CI ``soak-smoke`` job fails on any unrepaired wrong
result.

Heavy imports (solvers, generators, networkx) stay function-local: this
module is imported by ``repro.integrity.__init__``, which the
collectives pull in at package-import time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..errors import ConfigError, ReproError
from ..faults.plan import CrashEvent, FaultPlan, NodeLossEvent
from .config import IntegrityConfig

__all__ = ["SoakConfig", "run_soak", "ServiceSoakConfig", "run_service_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak campaign: how many iterations, over what, under what.

    ``corruption``/``payload_corruption`` follow
    :class:`~repro.faults.FaultPlan` semantics; ``loss``, ``stragglers``
    and ``crashes`` compose the fail-stop fault classes in so the repair
    paths are exercised together, not in isolation.
    """

    iterations: int = 5
    seed: int = 0
    algos: tuple = ("cc", "mst")
    nodes: int = 16
    threads: int = 8
    n: int = 2048
    m: int = 8192
    corruption: float = 2.0e-2
    payload_corruption: float = 1.0e-4
    loss: float = 0.0
    stragglers: int = 0
    crashes: int = 0
    #: Permanent node losses scheduled per run.  The protected leg
    #: survives them through ``redundancy``; the unprotected leg aborts
    #: with ``UnrecoverableLossError`` — the loud failure the report
    #: documents.
    node_losses: int = 0
    redundancy: str = ""
    spares: int = 0
    unprotected: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError(f"soak iterations must be >= 1: got {self.iterations}")
        if self.n < 2 or self.m < 1:
            raise ConfigError(f"soak graph must have n >= 2, m >= 1: got n={self.n} m={self.m}")
        for algo in self.algos:
            if algo not in ("cc", "mst"):
                raise ConfigError(f"unknown soak algo {algo!r}; expected 'cc' or 'mst'")
        if self.node_losses < 0:
            raise ConfigError(f"node_losses must be >= 0: got {self.node_losses}")
        if self.redundancy not in ("", "buddy", "parity"):
            raise ConfigError(
                f"redundancy must be '', 'buddy' or 'parity': got {self.redundancy!r}"
            )
        if self.node_losses and not self.redundancy:
            raise ConfigError(
                "node_losses > 0 needs a redundancy mode, or every protected"
                " run would abort unrecoverably"
            )
        if self.node_losses >= self.nodes:
            raise ConfigError(
                f"cannot lose {self.node_losses} of {self.nodes} nodes and keep solving"
            )


def _compose_plan(config: SoakConfig, seed: int, total_threads: int) -> FaultPlan:
    """The iteration's fault plan: corruption always, fail-stop classes
    as configured (stragglers drawn from a dedicated picker stream)."""
    slow: dict[int, float] = {}
    if config.stragglers:
        picker = np.random.default_rng(seed)
        chosen = picker.choice(total_threads, size=config.stragglers, replace=False)
        slow = {int(t): 4.0 for t in chosen}
    crashes = tuple(
        CrashEvent(thread=int((seed + j) % total_threads), at_time=2.0e-4 * (j + 1))
        for j in range(config.crashes)
    )
    losses = tuple(
        NodeLossEvent(node=int((seed + j) % config.nodes), at_time=3.0e-4 * (j + 1))
        for j in range(config.node_losses)
    )
    return FaultPlan(
        seed=seed,
        loss=config.loss,
        stragglers=slow,
        crashes=crashes,
        node_losses=losses,
        corruption=config.corruption,
        payload_corruption=config.payload_corruption,
    )


def _cc_wrong(labels: np.ndarray, graph) -> "str | None":
    """Compare a CC labeling against networkx's components."""
    import networkx as nx

    labels = np.asarray(labels)
    seen: set = set()
    for comp in nx.connected_components(graph.to_networkx()):
        ids = np.fromiter(comp, dtype=np.int64, count=len(comp))
        lab = np.unique(labels[ids])
        if lab.size != 1:
            return "one component carries several labels"
        root = int(lab[0])
        if root in seen:
            return "two components share a label"
        seen.add(root)
    return None


def _mst_wrong(result, graph) -> "str | None":
    """Compare an MST result against networkx's minimum forest weight
    and the scipy structural checker."""
    import networkx as nx

    from ..errors import VerificationError
    from ..mst.verify import check_spanning_forest

    ids = np.asarray(result.edge_ids, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= graph.m):
        return "forest edge id out of range"
    # Parallel edges resolved to their minimum weight first, so the
    # networkx total is the well-defined optimum of the multigraph.
    dedup = graph.take(graph.dedup_min_weight_index())
    expected = int(
        sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(dedup.to_networkx(), data=True))
    )
    total = int(graph.w[ids].sum()) if ids.size else 0
    if total != expected:
        return f"forest weight {total} != networkx minimum {expected}"
    try:
        check_spanning_forest(graph, ids)
    except VerificationError as err:
        return str(err)
    return None


def _counters(result) -> dict:
    c = result.info.trace.counters
    return {
        "injected": c.corruptions_injected,
        "detected": c.corruptions_detected,
        "repairs": c.repairs,
        "retries": c.retries,
        "crashes": c.crashes,
        "restores": c.checkpoint_restores,
        "node_losses": c.node_losses,
        "epoch_changes": c.epoch_changes,
        "blocks_reconstructed": c.blocks_reconstructed,
    }


def _solve(algo: str, g, gw, machine, plan, integrity, resilience=None):
    from ..core.pipeline import connected_components, minimum_spanning_forest

    if algo == "cc":
        return connected_components(
            g, machine, impl="collective", faults=plan,
            integrity=integrity, resilience=resilience,
        )
    return minimum_spanning_forest(
        gw, machine, impl="collective", faults=plan,
        integrity=integrity, resilience=resilience,
    )


def _run_iteration(task: "tuple[SoakConfig, int]") -> list:
    """One soak iteration (all algos, protected + unprotected).

    Module-level and fully determined by ``(config, i)`` so the fan-out
    layer can run iterations in worker processes; returns the iteration's
    records, from which the summary is derived afterwards.
    """
    from ..graph.generators import random_graph, with_random_weights
    from ..runtime.machine import hps_cluster

    config, i = task
    machine = hps_cluster(config.nodes, config.threads)
    seed_i = config.seed + i
    g = random_graph(config.n, config.m, seed=seed_i)
    gw = with_random_weights(g, seed=seed_i + 1)
    plan = _compose_plan(config, seed_i, machine.total_threads)
    resilience = None
    if config.redundancy:
        from ..resilience import RedundancyConfig

        resilience = RedundancyConfig(mode=config.redundancy, spares=config.spares)
    records = []
    for algo in config.algos:
        record = {"iteration": i, "algo": algo, "seed": seed_i}
        try:
            res = _solve(algo, g, gw, machine, plan, IntegrityConfig(), resilience)
        except ReproError as err:
            record["protected"] = {"failed": f"{type(err).__name__}: {err}"}
        else:
            wrong = _cc_wrong(res.labels, g) if algo == "cc" else _mst_wrong(res, gw)
            record["protected"] = {
                "wrong": wrong,
                "sim_time_ms": res.info.sim_time_ms,
                **_counters(res),
            }
        if config.unprotected:
            try:
                res = _solve(algo, g, gw, machine, plan, None)
            except ReproError as err:
                record["unprotected"] = {"error": f"{type(err).__name__}: {err}"}
            else:
                wrong = _cc_wrong(res.labels, g) if algo == "cc" else _mst_wrong(res, gw)
                record["unprotected"] = {
                    "wrong": wrong,
                    "injected": _counters(res)["injected"],
                }
        records.append(record)
    return records


def _summarize(records: list) -> dict:
    """Aggregate the CI contract's summary from the per-run records
    (pure fold over the records, so it cannot depend on worker count)."""
    summary = {
        "runs": 0,
        "protected_wrong": 0,
        "protected_failed": 0,
        "injected": 0,
        "detected": 0,
        "repairs": 0,
        "node_losses": 0,
        "epoch_changes": 0,
        "blocks_reconstructed": 0,
        "unprotected_runs": 0,
        "unprotected_wrong_or_error": 0,
    }
    for record in records:
        summary["runs"] += 1
        prot = record["protected"]
        if "failed" in prot:
            summary["protected_failed"] += 1
        else:
            if prot["wrong"] is not None:
                summary["protected_wrong"] += 1
            summary["injected"] += prot["injected"]
            summary["detected"] += prot["detected"]
            summary["repairs"] += prot["repairs"]
            summary["node_losses"] += prot.get("node_losses", 0)
            summary["epoch_changes"] += prot.get("epoch_changes", 0)
            summary["blocks_reconstructed"] += prot.get("blocks_reconstructed", 0)
        unprot = record.get("unprotected")
        if unprot is not None:
            summary["unprotected_runs"] += 1
            if "error" in unprot or unprot["wrong"] is not None:
                summary["unprotected_wrong_or_error"] += 1
    return summary


def run_soak(config: SoakConfig, out_dir=None, write_json: bool = True, workers=None) -> dict:
    """Run the soak campaign and return (and optionally write) the report.

    The report's ``summary`` is the contract the CI job enforces:
    ``protected_wrong`` and ``protected_failed`` must be zero — every
    injected silent fault is either harmless or detected and repaired —
    while ``unprotected_wrong_or_error`` documents what the same plans
    do to an undefended run.

    ``workers`` fans the (independent, seeded) iterations out across a
    process pool (``None``/1 = serial, ``"auto"`` = one per CPU).  The
    report is identical for any worker count except the ``wallclock``
    block, which records how this campaign actually ran.
    """
    import time

    from ..bench.harness import write_bench_json
    from ..perf.fanout import fanout_map, resolve_workers

    nworkers = resolve_workers(workers)
    t0 = time.perf_counter()
    per_iteration = fanout_map(
        _run_iteration, [(config, i) for i in range(config.iterations)], workers=nworkers
    )
    seconds = time.perf_counter() - t0
    records = [record for chunk in per_iteration for record in chunk]
    report = {
        "config": asdict(config),
        "summary": _summarize(records),
        "iterations": records,
        "wallclock": {"workers": nworkers, "seconds": seconds},
    }
    if write_json:
        report["path"] = str(write_bench_json("soak", report, directory=out_dir))
    return report


# ---------------------------------------------------------------------------
# Chaos traffic through the service
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceSoakConfig:
    """Chaos campaign routed through the HTTP service.

    Instead of calling the solvers directly, this leg submits
    fault-laden jobs over the wire against a live
    :class:`~repro.service.ServiceServer`, bursty enough to trip the
    per-tenant quota and the bounded queue, and (optionally) kills the
    server mid-campaign to exercise journal recovery.  The contract it
    enforces is the service's, one level above ``run_soak``'s: the
    server never dies, never serves an unverified or wrong result, and
    after the crash-restart every journaled job is accounted for.
    """

    jobs: int = 24
    seed: int = 0
    n: int = 512
    density: float = 4.0
    machine: str = "4x2"
    workers: int = 2
    queue_capacity: int = 8
    quota_rate: float = 20.0
    quota_burst: float = 8.0
    corruption: float = 0.0
    payload_corruption: float = 0.0
    loss: float = 0.05
    fault_fraction: float = 0.5
    #: Fraction of jobs that permanently lose one node of their simulated
    #: machine mid-solve (redundancy-protected, so the job must still
    #: verify and complete).
    node_loss_fraction: float = 0.0
    redundancy: str = "buddy"
    deadline_s: float = 30.0
    restart: bool = True
    poll_timeout_s: float = 180.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError(f"service soak needs >= 1 job: got {self.jobs}")
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise ConfigError(f"fault_fraction must be in [0, 1]: got {self.fault_fraction}")
        if not 0.0 <= self.node_loss_fraction <= 1.0:
            raise ConfigError(
                f"node_loss_fraction must be in [0, 1]: got {self.node_loss_fraction}"
            )
        if self.redundancy not in ("buddy", "parity"):
            raise ConfigError(f"redundancy must be 'buddy' or 'parity': got {self.redundancy!r}")


def _service_soak_body(config: ServiceSoakConfig, rng, index: int) -> dict:
    """One chaos job body: fault-heavy, integrity-protected when silent
    corruption is in the mix (the solver contract requires it)."""
    algo = rng.choice(("cc", "cc", "mst"))
    body = {
        "tenant": rng.choice(("acme", "globex")),
        "algo": algo,
        "n": config.n,
        "density": config.density,
        "kind": rng.choice(("random", "hybrid")),
        "seed": rng.randrange(4),
        "machine": config.machine,
        "priority": rng.choice(("low", "normal", "normal", "high")),
        "deadline_s": config.deadline_s,
    }
    if rng.random() < config.fault_fraction:
        body["loss"] = config.loss
        body["fault_seed"] = index
        if config.corruption or config.payload_corruption:
            body["corruption"] = config.corruption
            body["payload_corruption"] = config.payload_corruption
            body["integrity"] = True
    if rng.random() < config.node_loss_fraction:
        # Kill one node of this job's simulated machine mid-solve; the
        # worker must recover through redundancy and still verify.
        body["node_loss_at"] = 3.0e-4
        body["node_loss_node"] = 1
        body["redundancy"] = config.redundancy
    return body


def _service_soak_drain(base_url: str, job_ids: list, timeout_s: float) -> "tuple[dict, list]":
    """Poll ``job_ids`` to terminal states; returns (outcomes, violations)."""
    import time

    from ..service.jobs import JobState, TERMINAL_STATES
    from ..service.loadtest import _http_json

    outcomes: dict = {}
    violations: list = []
    pending = list(job_ids)
    give_up_at = time.monotonic() + timeout_s
    while pending and time.monotonic() < give_up_at:
        still = []
        for job_id in pending:
            status, body = _http_json(f"{base_url}/status/{job_id}")
            if status != 200:
                violations.append(f"status for {job_id} returned {status}")
                continue
            state = body.get("state")
            if state not in TERMINAL_STATES:
                still.append(job_id)
                continue
            outcomes[state] = outcomes.get(state, 0) + 1
            if state == JobState.DONE:
                rstatus, rbody = _http_json(f"{base_url}/result/{job_id}")
                verify = ((rbody.get("result") or {}).get("verify") or {}).get("status")
                if rstatus != 200 or verify != "verified":
                    violations.append(
                        f"job {job_id}: served result not verified"
                        f" (status={rstatus}, verify={verify!r})"
                    )
        pending = still
        if pending:
            time.sleep(0.05)
    for job_id in pending:
        outcomes["unresolved"] = outcomes.get("unresolved", 0) + 1
        violations.append(f"job {job_id} never reached a terminal state")
    return outcomes, violations


def run_service_soak(config: ServiceSoakConfig, out_dir=None, write_json: bool = True) -> dict:
    """Drive chaos traffic through a live service; report the contract.

    The report's ``summary.violations`` is the CI gate: it must be
    empty — a violation means the server died, served an unverified or
    wrong result, or lost a journaled job across the crash-restart.
    """
    import random
    import tempfile
    import time
    from pathlib import Path

    from ..bench.harness import write_bench_json
    from ..service import ServiceConfig, ServiceServer
    from ..service.loadtest import _http_json

    rng = random.Random(f"service-soak:{config.seed}")
    journal_path = Path(tempfile.mkdtemp(prefix="repro-service-soak-")) / "journal.jsonl"
    service_config = ServiceConfig(
        port=0,
        workers=config.workers,
        queue_capacity=config.queue_capacity,
        quota_rate=config.quota_rate,
        quota_burst=config.quota_burst,
        journal_path=str(journal_path),
        journal_fsync=False,  # chaos volume; the torn-tail test covers fsync
    )
    t0 = time.perf_counter()
    server = ServiceServer(service_config)
    server.start_background()
    submitted = accepted = rejected_429 = rejected_503 = bad = 0
    accepted_ids: list = []
    violations: list = []
    try:
        def submit_burst(indices) -> None:
            # No pacing: the burst is what makes quota + shedding engage.
            nonlocal submitted, accepted, rejected_429, rejected_503, bad
            for index in indices:
                body = _service_soak_body(config, rng, index)
                submitted += 1
                status, reply = _http_json(f"{server.url}/submit", body)
                if status == 202:
                    accepted += 1
                    accepted_ids.append(reply["job_id"])
                elif status == 429:
                    rejected_429 += 1
                elif status == 503:
                    rejected_503 += 1
                else:
                    bad += 1
                    violations.append(f"unexpected submit status {status}: {reply}")

        half = config.jobs // 2 if config.restart else config.jobs
        submit_burst(range(half))
        recovered = 0
        if config.restart:
            # Crash the server mid-campaign (socket, workers, and
            # journal all vanish while jobs are queued or running),
            # restart it on the same journal, and keep the traffic
            # coming.
            server.crash()
            server = ServiceServer(service_config)
            server.start_background()
            recovered = server.service.recovered_jobs
            submit_burst(range(half, config.jobs))

        outcomes, drain_violations = _service_soak_drain(
            server.url, accepted_ids, config.poll_timeout_s
        )
        violations.extend(drain_violations)
        hstatus, _ = _http_json(f"{server.url}/healthz", timeout=5.0)
        if hstatus != 200:
            violations.append(f"server unhealthy after campaign: {hstatus}")
        _, metrics = _http_json(f"{server.url}/metrics", timeout=5.0)
    finally:
        server.stop()
    report = {
        "config": asdict(config),
        "summary": {
            "submitted": submitted,
            "accepted": accepted,
            "rejected_429": rejected_429,
            "rejected_503": rejected_503,
            "unexpected": bad,
            "outcomes": dict(sorted(outcomes.items())),
            "recovered_after_restart": recovered,
            "violations": violations,
        },
        "server_metrics": metrics,
        "wallclock": {"seconds": time.perf_counter() - t0},
    }
    if write_json:
        report["path"] = str(write_bench_json("service_soak", report, directory=out_dir))
    return report
