"""Checksummed shared arrays and end-to-end payload protection.

The :class:`IntegrityMonitor` is the detection half of the silent-fault
story (injection lives in :mod:`repro.faults`, repair in the solvers):

* **Block digests.**  Every protected shared array gets a per-owner-
  block digest, maintained incrementally by the runtime's charged write
  helpers and re-verified at every synchronization point — so a bit flip
  that lands in an owner block is caught at the first barrier after it
  strikes, before any thread consumes the value.  The simulation keeps a
  private shadow copy per array and compares elementwise, which detects
  exactly what a per-block digest would while staying trivially honest
  about *where* the corruption sits; the modeled cost is the digest
  cost — one streamed pass over the owner block at memory bandwidth,
  charged to the ``Fault`` category.
* **Payload checksums.**  :func:`guard_payload` wraps the wire leg of
  the multi-node collectives: the sender summarises the buffer, the
  receiver re-summarises and compares (two charged passes), and a
  mismatch triggers a retransmission from the clean buffer — bounded by
  the plan's :class:`~repro.faults.RetryPolicy` budget.
* **Invariant checks.**  Per-round algorithmic verification (CC forest
  invariants, MST cut-property spot checks) for corruption that slips
  past — or runs without — the checksums.

Detection raises :class:`~repro.errors.IntegrityError`; the solvers
catch it, restore the round checkpoint, resync the shadows, and replay.
The monitor never touches the fault injector's RNG streams and never
charges anything when no config is active, so integrity-off runs stay
bit-identical to builds without this module.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import IntegrityError
from ..perf import arena
from ..perf import state as perf_state
from ..runtime.trace import Category
from .config import IntegrityConfig
from .invariants import (
    cc_invariant_violation,
    lt_invariant_violation,
    mst_selection_violation,
    star_invariant_violation,
)

__all__ = ["IntegrityMonitor", "guard_payload"]


class IntegrityMonitor:
    """Per-run detection state: shadow digests and the sampling RNG.

    Construct one per :class:`~repro.runtime.runtime.PGASRuntime` (the
    runtime does this when handed an :class:`IntegrityConfig`); arrays
    opt in through :meth:`~repro.runtime.runtime.PGASRuntime.protect_array`.
    """

    def __init__(self, config: IntegrityConfig, rt) -> None:
        self.config = config
        self.rt = rt
        #: id(arr) -> (arr, shadow copy standing in for its block digests).
        self._tracked: Dict[int, Tuple] = {}
        #: Private Generator for the MST spot-check sample — independent
        #: of the fault plan's streams so protection never perturbs
        #: injection (and vice versa).
        self._sample_rng = np.random.default_rng(config.seed)

    # -- digest bookkeeping (charged at memory bandwidth) --------------------

    def _charge_digest(self, counts, bytes_per: int) -> None:
        """One digest pass over ``counts`` elements per thread."""
        self.rt.charge(
            Category.FAULT,
            self.rt.cost.seq_access_time(np.asarray(counts, dtype=np.float64), bytes_per),
        )

    def track(self, arr) -> None:
        """Start maintaining block digests for ``arr`` (charged initial
        pass); no-op without checksums or if already tracked."""
        if not self.config.checksums or id(arr) in self._tracked:
            return
        self._tracked[id(arr)] = (arr, arr.data.copy())
        self._charge_digest(arr.local_sizes(), arr.nbytes_per_elem)

    def note_write(self, arr, indices=None) -> None:
        """Fold a legitimate charged write into the digests.

        ``indices`` may be explicit positions, a boolean mask, or
        ``None`` for a full-block overwrite.  The shadow update itself is
        raw NumPy — digest bookkeeping is the monitor's private state,
        invisible to the race detector, never double-charged as an
        algorithmic access; only the digest pass itself is priced.
        """
        rec = self._tracked.get(id(arr))
        if rec is None:
            return
        _, shadow = rec
        if indices is None:
            shadow[:] = arr.data
            written = arr.local_sizes().astype(np.float64)
        else:
            idx = np.asarray(indices)
            if idx.dtype == np.bool_:
                idx = np.flatnonzero(idx)
            if idx.size == 0:
                return
            shadow[idx] = arr.data[idx]
            written = np.bincount(arr.owner_thread(idx), minlength=self.rt.s)
        self._charge_digest(written, arr.nbytes_per_elem)

    def resync(self, arr) -> None:
        """Rebuild ``arr``'s digests from its current (just-restored)
        contents — the repair path calls this after a checkpoint
        restore, priced as one full digest pass."""
        rec = self._tracked.get(id(arr))
        if rec is None:
            return
        _, shadow = rec
        shadow[:] = arr.data
        self._charge_digest(arr.local_sizes(), arr.nbytes_per_elem)

    def on_barrier(self) -> None:
        """Verify every tracked array's digests (one charged pass each);
        raises :class:`IntegrityError` naming the damaged arrays.

        Runs at *every* synchronization point, right after the injector's
        corruption poll: a flip must be caught before the next charged
        write could launder it into a refreshed digest.
        """
        if not self._tracked:
            return
        detected = 0
        damaged = []
        for arr, shadow in self._tracked.values():
            self._charge_digest(arr.local_sizes(), arr.nbytes_per_elem)
            if perf_state.fast_engine_enabled():
                # Digest verification runs at every barrier; compare into
                # a pooled buffer instead of allocating a fresh mask.
                with arena.lease(arr.data.shape[0], np.bool_) as diff:
                    np.not_equal(arr.data, shadow, out=diff)
                    bad = int(np.count_nonzero(diff))
            else:
                bad = int(np.count_nonzero(arr.data != shadow))
            if bad:
                detected += bad
                damaged.append(f"{arr.name or 'array'}:{bad}")
        if detected:
            self.rt.counters.add(corruptions_detected=detected)
            raise IntegrityError(
                f"block digest mismatch ({', '.join(damaged)})", detected=detected
            )

    # -- per-round algorithmic verification ----------------------------------

    def _invariant_failure(self, what: str, msg: str) -> None:
        self.rt.counters.add(corruptions_detected=1)
        raise IntegrityError(f"{what}: {msg}")

    def verify_cc_round(self, d) -> None:
        """CC round-top forest invariants (two charged passes: stream the
        labels, gather each label's label)."""
        if not self.config.invariants:
            return
        self._charge_digest(2.0 * d.local_sizes(), d.nbytes_per_elem)
        msg = cc_invariant_violation(d.data)
        if msg is not None:
            self._invariant_failure("cc round invariant", msg)

    def verify_lt_round(self, d, prev=None, final: bool = False) -> None:
        """Liu–Tarjan round-top invariants: valid monotone labels forming
        a downward-pointing rooted forest, non-increasing against the
        previous round top, and — with ``final=True`` — all-stars at
        termination.  Two charged passes (stream the labels, compare to
        the id ramp), plus one per optional check."""
        if not self.config.invariants:
            return
        passes = 2.0 + (prev is not None) + final
        self._charge_digest(passes * d.local_sizes(), d.nbytes_per_elem)
        msg = lt_invariant_violation(d.data, prev=prev, final=final)
        if msg is not None:
            self._invariant_failure("lt round invariant", msg)

    def verify_star_round(self, d) -> None:
        """MST round-top invariant: valid labels forming all stars."""
        if not self.config.invariants:
            return
        self._charge_digest(2.0 * d.local_sizes(), d.nbytes_per_elem)
        msg = star_invariant_violation(d.data)
        if msg is not None:
            self._invariant_failure("mst round invariant", msg)

    def verify_mst_selection(self, minedge, roots, positions, du_c, dv_c, w_c) -> None:
        """Cut-property spot check on a sample of this round's winners
        (``config.mst_samples`` of them), priced as a handful of random
        accesses per thread."""
        if not self.config.invariants or roots.size == 0:
            return
        k = min(self.config.mst_samples, roots.size)
        if k < roots.size:
            sel = np.sort(self._sample_rng.choice(roots.size, size=k, replace=False))
        else:
            sel = np.arange(roots.size)
        self.rt.charge(
            Category.FAULT,
            self.rt.cost.op_time(np.full(self.rt.s, 4.0 * k / self.rt.s)),
        )
        msg = mst_selection_violation(
            minedge.data[roots[sel]], roots[sel], positions[sel], du_c, dv_c, w_c
        )
        if msg is not None:
            self._invariant_failure("mst selection check", msg)


def guard_payload(rt, values, sizes, bytes_per, domain=None, packed=False):
    """The wire leg of a multi-node collective payload.

    Composes injection and protection:

    * with an active ``payload_corruption`` rate, each transmission of
      the buffer may flip records (counted as injected);
    * with checksums on, sender and receiver each pay one digest pass
      over the buffer (always — protection costs even when nothing goes
      wrong), a corrupted delivery is detected (counted), discarded, and
      retransmitted from the clean buffer (checksum passes + wire time
      again, on the ``Fault``/``Comm`` clocks), bounded by the retry
      policy's ``max_attempts``;
    * unprotected corrupted deliveries are returned as-is — the silent
      wrong value the soak harness exists to demonstrate.

    Returns the delivered buffer.
    """
    inj = rt.faults
    corrupting = inj is not None and inj.plan.payload_corruption > 0.0
    mon = rt.integrity
    protected = mon is not None and mon.config.checksums
    if not corrupting and not protected:
        return values
    counts = np.asarray(sizes, dtype=np.float64)
    if protected:
        # Sender digest + receiver verify: two passes over the payload.
        rt.charge(Category.FAULT, rt.cost.seq_access_time(2.0 * counts, bytes_per))
    if not corrupting:
        return values
    attempts = 0
    while True:
        delivered, flipped = inj.corrupt_payload(values, domain=domain, packed=packed)
        if flipped:
            rt.counters.add(corruptions_injected=flipped)
        if not protected:
            return delivered
        if not flipped:
            return values
        rt.counters.add(corruptions_detected=flipped)
        attempts += 1
        if attempts >= inj.retry.max_attempts:
            raise IntegrityError(
                f"collective payload failed its checksum {attempts} consecutive times",
                detected=flipped,
            )
        # Retransmission: fresh digest passes plus the wire time of
        # shipping the records again through each node's NIC.
        rt.charge(Category.FAULT, rt.cost.seq_access_time(2.0 * counts, bytes_per))
        rt.charge_comm(rt.cost.remote_message_time(counts * bytes_per))
        rt.counters.add(remote_messages=int(np.count_nonzero(counts)))
