"""Pluggable algorithm registry: one record per selectable solver.

Every implementation name accepted by
:func:`repro.connected_components`/:func:`repro.minimum_spanning_forest`
— and therefore by the CLI ``--impl`` flags, the service's ``impl``/
``variant`` fields, and the tuner's impl lattice — resolves through this
registry.  An :class:`AlgorithmSpec` bundles what used to be scattered
if/elif knowledge:

* the solver entry point behind a uniform call signature;
* capability flags (fault injection, integrity protection, the online
  adapter, whether Section V flags/t' apply at all);
* the invariant predicates the :class:`~repro.integrity.monitor.
  IntegrityMonitor` runs for it and the runtime-facing effects
  (:data:`repro.analysis.effects.EFFECTS` keys) it leans on — both
  testable claims, not prose;
* an optional :class:`TuningEntry` describing how the
  :mod:`repro.tuning` planner should include it in the search lattice.

Adding an algorithm variant is now one ``register()`` call: the
pipeline, CLI, service validation, and tuner pick it up from here.  The
Liu–Tarjan lattice (:mod:`repro.lt`) registers all twelve of its
variants this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .cc.cgm import solve_cc_cgm
from .cc.collective import solve_cc_collective
from .cc.naive_upc import solve_cc_naive_upc
from .cc.sequential import solve_cc_sequential
from .cc.smp import solve_cc_smp
from .cc.sv import solve_cc_sv
from .errors import ConfigError
from .lt.variants import ALL_VARIANTS
from .lt.solver import solve_cc_lt
from .mst.collective import solve_mst_collective
from .mst.naive_upc import solve_mst_naive_upc
from .mst.sequential import solve_mst_sequential
from .mst.smp import solve_mst_smp

__all__ = [
    "AlgorithmSpec",
    "TuningEntry",
    "REGISTRY",
    "get_algorithm",
    "implementations",
    "lt_variant_names",
    "register",
]

_KINDS = ("cc", "mst")


@dataclass(frozen=True)
class TuningEntry:
    """How the planner's analytic stage prices and searches one impl.

    ``lattice`` is ``"full"`` (search every flag combination — the
    paper's own configurations) or ``"all-flags"`` (search only the
    all-optimizations column across t' candidates — used for the LT
    variants, whose flags are strictly beneficial inside the shared
    collectives; this keeps the lattice bounded while still ranking the
    variant).  The three cost hints parameterize the shared per-round
    price list: edge-list collectives per round, pointer-jump rounds per
    iteration, and a round-count multiplier relative to the grafting
    solver.
    """

    lattice: str = "full"
    edge_collectives: float = 4.0
    jump_rounds: float = 2.0
    round_factor: float = 1.0


@dataclass(frozen=True)
class AlgorithmSpec:
    """Registry record for one named implementation."""

    name: str
    kind: str
    description: str
    solve: Callable
    invariants: Tuple[str, ...] = ()
    effects: Tuple[str, ...] = ()
    supports_flags: bool = False
    supports_faults: bool = False
    supports_integrity: bool = False
    supports_adapter: bool = False
    supports_resilience: bool = False
    tuning: Optional[TuningEntry] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"algorithm kind must be one of {_KINDS}, got {self.kind!r}")


#: (kind, name) -> AlgorithmSpec, in registration order (the order the
#: public ``*_IMPLS`` tuples expose).
REGISTRY: "Dict[Tuple[str, str], AlgorithmSpec]" = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    if (spec.kind, spec.name) in REGISTRY:
        raise ConfigError(f"duplicate algorithm registration {spec.kind}/{spec.name}")
    REGISTRY[(spec.kind, spec.name)] = spec
    return spec


def get_algorithm(kind: str, name: str) -> AlgorithmSpec:
    """Resolve an impl name (ConfigError naming the valid set on junk)."""
    spec = REGISTRY.get((kind, name))
    if spec is None:
        raise ConfigError(
            f"unknown {kind.upper()} impl {name!r}; expected one of"
            f" {implementations(kind) + ('auto',)}"
        )
    return spec


def implementations(kind: str) -> tuple:
    """Registered impl names for ``kind``, in registration order
    (``'auto'`` is a pipeline mode, not an algorithm — it is appended by
    the public ``CC_IMPLS``/``MST_IMPLS`` tuples, not listed here)."""
    return tuple(name for (k, name) in REGISTRY if k == kind)


def lt_variant_names() -> tuple:
    """The registered Liu–Tarjan variant names (all start ``lt-``)."""
    return tuple(n for n in implementations("cc") if n.startswith("lt-"))


# ---------------------------------------------------------------------------
# Connected components
# ---------------------------------------------------------------------------

_COLLECTIVE_EFFECTS = (
    "getd", "setd", "allreduce_flag", "owner_block_read", "owner_block_write",
    "local_ops", "guard_payload",
)
_REPAIR_EFFECTS = ("save", "restore", "resync", "on_barrier")
_RESILIENCE_EFFECTS = ("enroll", "commit_round", "recover_loss", "on_loss")

register(AlgorithmSpec(
    name="collective",
    kind="cc",
    description="the paper's optimized CC: grafting + full pointer jumping on GetD/SetD",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_cc_collective(
            graph, machine, opts, tprime, sort_method,
            faults=faults, adapter=adapter, integrity=integrity, resilience=resilience,
        ),
    invariants=("cc_invariant_violation",),
    effects=_COLLECTIVE_EFFECTS + _REPAIR_EFFECTS + _RESILIENCE_EFFECTS
    + ("verify_cc_round",),
    supports_flags=True,
    supports_faults=True,
    supports_integrity=True,
    supports_adapter=True,
    supports_resilience=True,
    tuning=TuningEntry(lattice="full"),
))

register(AlgorithmSpec(
    name="sv",
    kind="cc",
    description="Shiloach-Vishkin with collectives (star detection + stagnant-star hook)",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_cc_sv(graph, machine, opts, tprime, sort_method),
    effects=_COLLECTIVE_EFFECTS + ("owner_masked_write",),
    supports_flags=True,
    tuning=TuningEntry(lattice="full", round_factor=1.35),
))

register(AlgorithmSpec(
    name="naive",
    kind="cc",
    description="literal UPC translation: blocking fine-grained remote accesses",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_cc_naive_upc(graph, machine, faults=faults),
    effects=("fine_grained_read", "fine_grained_write", "barrier"),
    supports_faults=True,
))

register(AlgorithmSpec(
    name="smp",
    kind="cc",
    description="single-node shared-memory baseline",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_cc_smp(graph, machine, faults=faults),
    supports_faults=True,
))

register(AlgorithmSpec(
    name="sequential",
    kind="cc",
    description="sequential reference (union-find semantics via the shared grafting rule)",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_cc_sequential(graph, machine),
))

register(AlgorithmSpec(
    name="cgm",
    kind="cc",
    description="round-minimizing CGM baseline the paper argues against",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_cc_cgm(graph, machine),
))


def _lt_solve(variant):
    def solve(graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience):
        return solve_cc_lt(
            graph, machine, opts, tprime, sort_method,
            variant=variant, faults=faults, integrity=integrity, resilience=resilience,
        )
    return solve


#: Analytic cost hints per LT axis (see TuningEntry): edge collectives
#: per round by connect rule, +2 for alter; pointer-jump rounds per
#: iteration; round-count multipliers — partial-shortcut variants run
#: more, cheaper rounds.  Chosen so an LT configuration is never priced
#: below the grafting solver at identical flags (probes, not the
#: analytic fiction, decide real rankings).
_LT_EDGE_COLLECTIVES = {"parent": 3.0, "extended": 3.0, "root": 5.0}
_LT_ROUND_FACTOR = {
    ("parent", "partial"): 2.2, ("parent", "full"): 1.35,
    ("extended", "partial"): 2.3, ("extended", "full"): 1.4,
    ("root", "partial"): 2.0, ("root", "full"): 1.15,
}

for _variant in ALL_VARIANTS:
    register(AlgorithmSpec(
        name=_variant.name,
        kind="cc",
        description=f"Liu–Tarjan {_variant.describe()}",
        solve=_lt_solve(_variant),
        invariants=("lt_invariant_violation",),
        effects=_COLLECTIVE_EFFECTS + _REPAIR_EFFECTS + _RESILIENCE_EFFECTS
        + ("verify_lt_round",),
        supports_flags=True,
        supports_faults=True,
        supports_integrity=True,
        supports_resilience=True,
        tuning=TuningEntry(
            lattice="all-flags",
            edge_collectives=_LT_EDGE_COLLECTIVES[_variant.connect]
            + (2.0 if _variant.alter else 0.0),
            jump_rounds=1.0 if _variant.shortcut == "partial" else 2.0,
            round_factor=_LT_ROUND_FACTOR[(_variant.connect, _variant.shortcut)],
        ),
    ))


# ---------------------------------------------------------------------------
# Minimum spanning forest
# ---------------------------------------------------------------------------

register(AlgorithmSpec(
    name="collective",
    kind="mst",
    description="lock-free SetDMin Borůvka on the collectives",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_mst_collective(
            graph, machine, opts, tprime, sort_method,
            faults=faults, adapter=adapter, integrity=integrity, resilience=resilience,
        ),
    invariants=("star_invariant_violation", "mst_selection_violation"),
    effects=_COLLECTIVE_EFFECTS + _REPAIR_EFFECTS + _RESILIENCE_EFFECTS
    + ("setdmin", "verify_star_round", "verify_mst_selection"),
    supports_flags=True,
    supports_faults=True,
    supports_integrity=True,
    supports_adapter=True,
    supports_resilience=True,
    tuning=TuningEntry(lattice="full"),
))

register(AlgorithmSpec(
    name="naive",
    kind="mst",
    description="literal UPC translation with per-vertex locks",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_mst_naive_upc(graph, machine, faults=faults),
    supports_faults=True,
))

register(AlgorithmSpec(
    name="smp",
    kind="mst",
    description="single-node lock-based Borůvka baseline",
    solve=lambda graph, machine, opts, tprime, sort_method, faults, adapter, integrity, resilience:
        solve_mst_smp(graph, machine, faults=faults),
    supports_faults=True,
))

for _algo in ("kruskal", "prim", "boruvka"):
    register(AlgorithmSpec(
        name=_algo,
        kind="mst",
        description=f"sequential {_algo}",
        solve=(lambda a: lambda graph, machine, opts, tprime, sort_method,
               faults, adapter, integrity, resilience:
               solve_mst_sequential(graph, machine, algorithm=a))(_algo),
    ))
