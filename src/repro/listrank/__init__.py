"""List ranking: the paper's motivating contrast (Section I/II).

Three implementations of distance-to-tail ranking:

* :func:`solve_ranks_sequential` — one dependent pointer chase;
* :func:`solve_ranks_wyllie` — PRAM pointer jumping with coalescing
  collectives, every thread busy (the paper's approach);
* :func:`solve_ranks_cgm` — Dehne et al.'s contract/sequential/broadcast
  scheme with O(log p)-ish communication rounds but one busy node (the
  communication-efficient school the paper argues against).

The benchmark ``bench_thesis_listranking.py`` regenerates the paper's
Section I argument: on large inputs with deep memory hierarchies, the
coordinated-parallel approach beats the round-minimizing one.
"""

from .cgm import solve_ranks_cgm
from .generator import LinkedList, random_list, sequential_list
from .sequential import charge_pointer_chase, ranks_by_walk, solve_ranks_sequential
from .wyllie import solve_ranks_wyllie

__all__ = [
    "LinkedList",
    "charge_pointer_chase",
    "random_list",
    "ranks_by_walk",
    "sequential_list",
    "solve_ranks_cgm",
    "solve_ranks_sequential",
    "solve_ranks_wyllie",
]
