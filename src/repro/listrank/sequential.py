"""Sequential list ranking: one pointer chase from head to tail.

The baseline both parallel algorithms are measured against, and — run on
the *contracted* list — the sequential step inside the CGM algorithm.
Dependent loads, zero memory-level parallelism: every hop is a full
memory latency once the list outgrows the cache.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.results import SolveInfo
from ..runtime.machine import MachineConfig, sequential_machine
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category
from .generator import LinkedList

__all__ = ["solve_ranks_sequential", "ranks_by_walk", "charge_pointer_chase"]


def ranks_by_walk(lst: LinkedList) -> np.ndarray:
    """Exact ranks (distance to tail) — the execution engine.

    Implemented with vectorized pointer doubling (O(log n) NumPy rounds)
    rather than a Python-level head-to-tail walk; the *charged cost* of
    the sequential algorithm is the dependent chase, modeled separately
    by :func:`charge_pointer_chase`.
    """
    n = lst.n
    succ = lst.succ.copy()
    dist = (succ != np.arange(n)).astype(np.int64)
    while True:
        new_succ = succ[succ]
        if np.array_equal(new_succ, succ):
            return dist
        dist = dist + dist[succ]
        succ = new_succ


def charge_pointer_chase(rt: PGASRuntime, hops: int, ws_bytes: float, thread: int = 0) -> None:
    """Charge ``hops`` dependent loads to one thread: each hop is a full
    (miss-probability-weighted) memory latency — no overlap, no
    prefetching, the cache behaviour the paper's Section I criticizes."""
    per = float(rt.cost.miss_rate(ws_bytes)) * rt.machine.memory.latency + (
        8.0 / rt.machine.memory.bandwidth
    )
    rt.charge_thread(Category.IRREGULAR, thread, hops * per)
    rt.counters.add(local_random_accesses=hops)


def solve_ranks_sequential(
    lst: LinkedList, machine: MachineConfig | None = None
) -> tuple[np.ndarray, SolveInfo]:
    """Rank the list on one thread; returns ``(ranks, info)``."""
    machine = machine if machine is not None else sequential_machine()
    wall = time.perf_counter()
    rt = PGASRuntime(machine)
    charge_pointer_chase(rt, lst.n, lst.n * 8.0)
    rt.counters.add(iterations=1)
    ranks = ranks_by_walk(lst)
    info = SolveInfo(machine, "listrank-seq", rt.elapsed, time.perf_counter() - wall, 1, rt.trace)
    return ranks, info
