"""Wyllie list ranking with coalescing collectives — the paper's way.

The PRAM pointer-jumping algorithm mapped onto the cluster exactly like
the synchronous short-cutting of CC: every round, each thread reads its
local successor pointers, collectively fetches the successors' ranks and
successors (two GetD calls), and doubles.  ``O(log n)`` rounds; all
threads busy; every byte moved in coalesced messages.

This is the "coordinate multiple processors to process the same input in
parallel" side of the paper's argument against contraction-style
communication-efficient algorithms (see :mod:`repro.listrank.cgm`).
"""

from __future__ import annotations

import time

import numpy as np

from ..cc.common import check_converged
from ..collectives.base import CollectiveContext
from ..collectives.getd import getd
from ..core.optimizations import OptimizationFlags
from ..core.results import SolveInfo
from ..runtime.machine import MachineConfig, hps_cluster
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from .generator import LinkedList

__all__ = ["solve_ranks_wyllie"]


def solve_ranks_wyllie(
    lst: LinkedList,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: int = 1,
    sort_method: str = "count",
) -> tuple[np.ndarray, SolveInfo]:
    """Rank the list by collective pointer jumping; returns ``(ranks, info)``."""
    machine = machine if machine is not None else hps_cluster()
    wall = time.perf_counter()
    rt = PGASRuntime(machine)
    n = lst.n

    succ = rt.shared_array(lst.succ.copy())
    rank = rt.shared_array((lst.succ != np.arange(n)).astype(np.int64))
    sizes_local = succ.local_sizes().astype(np.float64)
    vert_offsets = np.zeros(rt.s + 1, dtype=np.int64)
    np.cumsum(succ.local_sizes(), out=vert_offsets[1:])
    ctx = CollectiveContext()

    rounds = 0
    while True:
        rounds += 1
        check_converged(rounds, n, "Wyllie list ranking")
        rt.counters.add(iterations=1)
        idxp = PartitionedArray(rt.owner_block_read(succ, counts=sizes_local), vert_offsets)
        rank_of_succ = getd(rt, rank, idxp, opts, ctx, None, tprime, sort_method)
        succ_of_succ = getd(rt, succ, idxp, opts, ctx, None, tprime, sort_method)
        moved = succ_of_succ != succ.data
        # rank[tail] stays 0, so the unconditional add is exact.  Both
        # block stores are priced as one double-width stream.
        rt.owner_block_write(rank, rank.data + rank_of_succ, counts=2.0 * sizes_local)
        rt.owner_block_write(succ, succ_of_succ, charge="none")
        rt.local_ops(sizes_local)
        moved_per_thread = PartitionedArray(
            moved.astype(np.int64), vert_offsets
        ).segment_sums()
        if not rt.allreduce_flag(moved_per_thread > 0):
            break

    info = SolveInfo(
        machine, "listrank-wyllie", rt.elapsed, time.perf_counter() - wall, rounds, rt.trace
    )
    return rank.data.copy(), info
