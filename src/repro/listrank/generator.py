"""Linked-list inputs for the list-ranking algorithms.

List ranking is the paper's Section I/II motivating example for the
communication-efficient (CGM) school it argues against: Dehne et al.'s
algorithm contracts the distributed list onto one node, ranks it
sequentially, and broadcasts — O(log p) communication rounds, but one
busy node with terrible cache behaviour.

A list over ``n`` nodes is a successor array ``succ`` where the tail
points to itself; the *rank* of a node is its distance to the tail
(tail rank 0, head rank n-1).  Random lists (successor order drawn from
a seeded permutation) have no locality whatsoever — the adversarial case
for everything.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import GraphError

__all__ = ["LinkedList", "random_list", "sequential_list"]


@dataclass
class LinkedList:
    """A singly linked list as a successor array (tail self-loops)."""

    succ: np.ndarray

    def __post_init__(self) -> None:
        self.succ = np.ascontiguousarray(self.succ, dtype=np.int64)
        self.validate()

    @property
    def n(self) -> int:
        return int(self.succ.shape[0])

    @property
    def tail(self) -> int:
        """The unique self-looping node."""
        loops = np.flatnonzero(self.succ == np.arange(self.n))
        return int(loops[0])

    @property
    def head(self) -> int:
        """The unique node that is nobody's successor."""
        indeg = np.bincount(self.succ, minlength=self.n)
        indeg[self.tail] -= 1  # ignore the tail's self-loop
        heads = np.flatnonzero(indeg == 0)
        return int(heads[0])

    def validate(self) -> None:
        if self.succ.ndim != 1 or self.n == 0:
            raise GraphError("successor array must be a non-empty 1-D array")
        if self.succ.min() < 0 or self.succ.max() >= self.n:
            raise GraphError("successor out of range")
        loops = np.flatnonzero(self.succ == np.arange(self.n))
        if loops.size != 1:
            raise GraphError(f"a list needs exactly one tail, found {loops.size}")
        indeg = np.bincount(self.succ, minlength=self.n)
        indeg[loops[0]] -= 1
        if indeg.max(initial=0) > 1:
            raise GraphError("a node has two predecessors — not a list")
        if np.flatnonzero(indeg == 0).size != 1:
            raise GraphError("a list needs exactly one head")


def random_list(n: int, seed: int = 0) -> LinkedList:
    """A random-order list: node ids carry no positional information."""
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    entropy = [zlib.crc32(b"list"), n & 0xFFFFFFFF, seed & 0xFFFFFFFF]
    rng = np.random.default_rng(np.random.SeedSequence(entropy))
    order = rng.permutation(n)
    succ = np.empty(n, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    succ[order[-1]] = order[-1]
    return LinkedList(succ)


def sequential_list(n: int) -> LinkedList:
    """The identity-order list 0 -> 1 -> ... -> n-1 (best case)."""
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    succ = np.arange(1, n + 1, dtype=np.int64)
    succ[-1] = n - 1
    return LinkedList(succ)
