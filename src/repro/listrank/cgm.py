"""CGM (communication-efficient) list ranking — the algorithm the paper
argues against.

Dehne et al.'s scheme, summarized by the paper: "The algorithm first
contracts the distributed list to fit into the local memory on one node.
It then invokes a sequential algorithm to rank the contracted list.
Finally the contracted list is broadcast to all processors and the rank
of each element in the original list is computed.  The algorithm takes
O(log p) rounds of communication, regardless of the input size."  And the
paper's criticism: "all but one processor remain idle during the
sequential processing step.  As n/p can be large ... the performance
gain from reduced communication rounds may be offset by poor cache
performance in the sequential processing step."

Implementation (ruling-set contraction, fully executable):

1. pick a ruling set ``C`` of expected density ``1/p`` (head and tail
   forced in) — the contracted list has ~``n/p`` nodes;
2. frozen pointer doubling: every node finds its nearest downstream
   ``C`` member and the distance to it (collective rounds — this is the
   ``O(log p)``-ish communication phase);
3. ship the contracted chain to thread 0, which ranks it with a
   *sequential pointer chase* while every other thread idles — charged
   exactly like the sequential baseline, over a working set of
   contracted records;
4. broadcast the contracted ranks; every node computes
   ``rank[i] = rank_C[target(i)] + dist(i)`` locally.
"""

from __future__ import annotations

import time
import zlib

import numpy as np

from ..cc.common import check_converged
from ..collectives.base import CollectiveContext
from ..collectives.getd import getd
from ..core.optimizations import OptimizationFlags
from ..core.results import SolveInfo
from ..runtime.machine import MachineConfig, hps_cluster
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category
from .generator import LinkedList
from .sequential import charge_pointer_chase

__all__ = ["solve_ranks_cgm"]

#: Contracted record: (node, next C node, gap) — three words.
RECORD_BYTES = 24


def _ruling_set(lst: LinkedList, p: int, seed: int = 0) -> np.ndarray:
    """Boolean membership mask of expected density 1/p, head/tail forced."""
    entropy = [zlib.crc32(b"ruling"), lst.n & 0xFFFFFFFF, p & 0xFFFFFFFF, seed]
    rng = np.random.default_rng(np.random.SeedSequence(entropy))
    mask = rng.random(lst.n) < (1.0 / max(p, 1))
    mask[lst.head] = True
    mask[lst.tail] = True
    return mask


def solve_ranks_cgm(
    lst: LinkedList,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: int = 1,
    sort_method: str = "count",
    seed: int = 0,
) -> tuple[np.ndarray, SolveInfo]:
    """Rank the list the communication-efficient way; returns
    ``(ranks, info)``."""
    machine = machine if machine is not None else hps_cluster()
    wall = time.perf_counter()
    rt = PGASRuntime(machine)
    n = lst.n

    in_c_mask = _ruling_set(lst, machine.nodes, seed)
    succ = rt.shared_array(lst.succ.copy())
    # Jump pointers frozen at C: C members self-loop with distance 0.
    jp_init = np.where(in_c_mask, np.arange(n), lst.succ)
    jd_init = np.where(in_c_mask | (lst.succ == np.arange(n)), 0, 1)
    jp = rt.shared_array(jp_init.astype(np.int64))
    jd = rt.shared_array(jd_init.astype(np.int64))
    sizes_local = succ.local_sizes().astype(np.float64)
    vert_offsets = np.zeros(rt.s + 1, dtype=np.int64)
    np.cumsum(succ.local_sizes(), out=vert_offsets[1:])
    ctx = CollectiveContext()

    # -- phase 1: frozen doubling to the nearest C member ---------------------
    rounds = 0
    while True:
        rounds += 1
        check_converged(rounds, n, "CGM contraction")
        rt.counters.add(iterations=1)
        idxp = PartitionedArray(rt.owner_block_read(jp, counts=sizes_local), vert_offsets)
        jd_t = getd(rt, jd, idxp, opts, ctx, None, tprime, sort_method)
        jp_t = getd(rt, jp, idxp, opts, ctx, None, tprime, sort_method)
        moved = jp_t != jp.data
        # Both frozen-doubling stores are priced as one double-width stream.
        rt.owner_block_write(jd, jd.data + jd_t, counts=2.0 * sizes_local)
        rt.owner_block_write(jp, jp_t, charge="none")
        moved_per_thread = PartitionedArray(
            moved.astype(np.int64), vert_offsets
        ).segment_sums()
        if not rt.allreduce_flag(moved_per_thread > 0):
            break

    # -- phase 2: build the contracted chain and gather it on thread 0 --------
    c_nodes = np.flatnonzero(in_c_mask)
    tail = lst.tail
    # next C member after each C node = target of its original successor.
    succ_of_c = lst.succ[c_nodes]
    owners_sorted = succ.owner_thread(c_nodes)
    offsets = np.searchsorted(owners_sorted, np.arange(rt.s + 1, dtype=np.int64))
    next_c = getd(
        rt, jp, PartitionedArray(succ_of_c, offsets), opts, None, None, tprime, sort_method
    )
    gap_tail = getd(
        rt, jd, PartitionedArray(succ_of_c, offsets), opts, None, None, tprime, sort_method
    )
    gaps = np.where(c_nodes == tail, 0, 1 + gap_tail)
    # Gather: p-1 coalesced messages converge on thread 0.
    recv_bytes = float(c_nodes.size) * RECORD_BYTES
    rt.charge_thread(
        Category.COMM,
        0,
        float(rt.cost.bulk_transfer_time(c_nodes.size * 3, machine.nodes - 1, 8)),
    )
    rt.counters.add(
        remote_messages=max(machine.nodes - 1, 0), remote_bytes=int(recv_bytes)
    )
    rt.barrier()

    # -- phase 3: sequential rank of the contracted chain on thread 0 ---------
    # (everyone else idles — the paper's criticism, visible as clock skew
    # until the barrier.)
    nxt = dict(zip(c_nodes.tolist(), next_c.tolist()))
    gap = dict(zip(c_nodes.tolist(), gaps.tolist()))
    # repro: waive[CM01] thread-0 head lookup; covered by the chain-walk charge
    start = int(jp.data[lst.head])
    chain = []
    node = start
    guard = 0
    while True:
        guard += 1
        if guard > n + 2:
            raise AssertionError("contracted chain walk did not terminate")
        chain.append(node)
        if node == tail:
            break
        node = nxt[node]
    charge_pointer_chase(rt, len(chain), len(chain) * RECORD_BYTES, thread=0)
    rank_c = {}
    total = 0
    for node in reversed(chain):
        total += gap[node]  # gap[tail] is 0, so rank_c[tail] == 0
        rank_c[node] = total
    rt.barrier()

    # -- phase 4: broadcast + local fix-up -------------------------------------
    rt.charge_comm(
        np.full(rt.s, float(rt.cost.remote_message_time(c_nodes.size * 8)))
        / max(machine.threads_per_node, 1)
    )
    rt.counters.add(remote_messages=max(machine.nodes - 1, 0))
    rank_c_arr = np.zeros(n, dtype=np.int64)
    rank_c_arr[list(rank_c)] = list(rank_c.values())
    ranks = rank_c_arr[jp.data] + jd.data
    rt.local_stream(sizes_local, Category.COPY)
    rt.local_ops(sizes_local)
    rt.barrier()

    info = SolveInfo(
        machine, "listrank-cgm", rt.elapsed, time.perf_counter() - wall, rounds, rt.trace
    )
    return ranks, info
