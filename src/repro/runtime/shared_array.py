"""UPC-style shared arrays with blocked distribution.

A UPC declaration ``shared [blk] int64_t D[n]`` distributes ``n`` elements
across the ``s`` threads in contiguous blocks of ``blk`` elements; the
default used throughout the paper (and here) is the even blocked layout
``blk = ceil(n / s)`` so thread ``i`` has affinity to
``D[i*blk : (i+1)*blk]``.

The class stores the full array as one NumPy vector (the simulation runs
in one address space) and exposes the *affinity geometry*: which thread
and node own each index, and each thread's local view.  Cost accounting
is not done here — the runtime and the collectives charge time based on
the geometry this class reports.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..errors import DistributionError
from ..perf import shard as perf_shard
from ..perf import state as perf_state
from .machine import MachineConfig

__all__ = ["SharedArray"]


class SharedArray:
    """A blocked-distributed shared array over a simulated machine.

    ``name`` labels the array in sanitizer reports (the race detector
    auto-assigns ``shared<N>`` when the allocator did not name it).
    """

    __slots__ = ("machine", "data", "block", "name")

    def __init__(
        self,
        machine: MachineConfig,
        data: np.ndarray,
        block: int | None = None,
        name: str | None = None,
    ) -> None:
        data = np.asarray(data)
        if data.ndim != 1:
            raise DistributionError("shared arrays are one-dimensional")
        if data.shape[0] == 0:
            raise DistributionError("cannot distribute an empty array")
        s = machine.total_threads
        if block is None:
            block = -(-data.shape[0] // s)  # ceil division: UPC even blocked layout
        if block < 1:
            raise DistributionError(f"block size must be >= 1, got {block}")
        self.machine = machine
        self.data = data
        self.block = int(block)
        self.name = name

    # -- geometry -------------------------------------------------------------

    @property
    def size(self) -> int:
        return int(self.data.shape[0])

    @property
    def nbytes_per_elem(self) -> int:
        return int(self.data.dtype.itemsize)

    def owner_thread(self, indices: np.ndarray) -> np.ndarray:
        """Thread with affinity to each index (blocked layout)."""
        idx = np.asarray(indices, dtype=np.int64)
        owners = idx // self.block
        # Indices past the last full block belong to the last thread.
        return np.minimum(owners, self.machine.total_threads - 1)

    def owner_node(self, indices: np.ndarray) -> np.ndarray:
        """Node hosting each index."""
        return self.owner_thread(indices) // self.machine.threads_per_node

    def local_range(self, thread: int) -> tuple[int, int]:
        """Half-open index range with affinity to ``thread``."""
        s = self.machine.total_threads
        if not 0 <= thread < s:
            raise DistributionError(f"thread id {thread} out of range [0, {s})")
        lo = min(thread * self.block, self.size)
        hi = min((thread + 1) * self.block, self.size)
        if thread == s - 1:
            hi = self.size
        return lo, hi

    def local_view(self, thread: int) -> np.ndarray:
        """Writable view of the portion local to ``thread``."""
        lo, hi = self.local_range(thread)
        return self.data[lo:hi]

    def local_sizes(self) -> np.ndarray:
        """Number of elements with affinity to each thread."""
        s = self.machine.total_threads
        ends = np.minimum((np.arange(s, dtype=np.int64) + 1) * self.block, self.size)
        ends[-1] = self.size
        starts = np.minimum(np.arange(s, dtype=np.int64) * self.block, self.size)
        return np.maximum(ends - starts, 0)

    def node_working_set_bytes(self) -> float:
        """Bytes of this array resident on one node (the working set a
        node-local random access walks over)."""
        return self.size / self.machine.nodes * self.nbytes_per_elem

    # -- raw access (uncharged; callers account for cost) ----------------------

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Raw ``data[indices]``; bounds-checked."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise DistributionError("shared array index out of range")
        if perf_state.fast_engine_enabled():
            session = perf_shard.current_session()
            if session is not None:
                served = session.try_gather(self, idx)
                if served is not None:
                    return served
        return self.data[idx]

    def scatter_min(self, indices: np.ndarray, values: np.ndarray) -> int:
        """Priority (minimum) concurrent write: ``data[i] = min(data[i],
        v)`` for each pair, resolving duplicate targets deterministically.

        Returns the number of locations actually changed.
        """
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if idx.shape != vals.shape:
            raise DistributionError("indices/values shape mismatch")
        if idx.size == 0:
            return 0
        if idx.min() < 0 or idx.max() >= self.size:
            raise DistributionError("shared array index out of range")
        if perf_state.fast_engine_enabled():
            session = perf_shard.current_session()
            if session is not None:
                changed = session.try_scatter_min(self, idx, vals)
                if changed is not None:
                    return changed
            targets, minima = kernels.active_backend().group_minima(idx, vals)
            before = self.data[targets]
            new = np.minimum(before, minima)
            changed = int(np.count_nonzero(new != before))
            self.data[targets] = new
            return changed
        uniq = np.unique(idx)
        before = self.data[uniq].copy()
        np.minimum.at(self.data, idx, vals)
        return int(np.count_nonzero(self.data[uniq] != before))

    def scatter_store_min(self, indices: np.ndarray, values: np.ndarray) -> int:
        """Unconditional store with deterministic adjudication: each
        targeted location receives the *minimum of the values proposed
        for it*, regardless of its current content.

        This differs from :meth:`scatter_min` (which never increases a
        value) and models an arbitrary-CRCW plain store; it is what the
        Shiloach-Vishkin stagnant-star hook needs, since that hook may
        legitimately raise a star root's label.  Returns the number of
        changed locations.
        """
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if idx.shape != vals.shape:
            raise DistributionError("indices/values shape mismatch")
        if idx.size == 0:
            return 0
        if idx.min() < 0 or idx.max() >= self.size:
            raise DistributionError("shared array index out of range")
        if perf_state.fast_engine_enabled():
            session = perf_shard.current_session()
            if session is not None:
                changed = session.try_scatter_store_min(self, idx, vals)
                if changed is not None:
                    return changed
            targets, minima = kernels.active_backend().group_minima(idx, vals.astype(np.int64))
            # Match the sentinel path exactly: a proposal equal to the
            # sentinel is indistinguishable from "untouched" there.
            keep = minima != np.iinfo(np.int64).max
            targets, minima = targets[keep], minima[keep]
            changed = int(np.count_nonzero(self.data[targets] != minima))
            self.data[targets] = minima.astype(self.data.dtype)
            return changed
        sentinel = np.iinfo(np.int64).max
        proposal = np.full(self.size, sentinel, dtype=np.int64)
        np.minimum.at(proposal, idx, vals.astype(np.int64))
        touched = np.flatnonzero(proposal != sentinel)
        changed = int(np.count_nonzero(self.data[touched] != proposal[touched]))
        self.data[touched] = proposal[touched].astype(self.data.dtype)
        return changed

    def scatter(self, indices: np.ndarray, values: np.ndarray) -> int:
        """Arbitrary concurrent write resolved deterministically: when
        several values target one location, the minimum wins (a legal
        arbitrary-CRCW outcome, and the one that keeps results identical
        across thread counts).  Returns the number of changed locations.
        """
        return self.scatter_min(indices, values)

    def snapshot(self) -> np.ndarray:
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedArray(n={self.size}, block={self.block}, dtype={self.data.dtype},"
            f" s={self.machine.total_threads})"
        )
