"""Execution trace: operation counters and time-category breakdown.

The paper's Fig. 5/6 break execution time into six categories; the trace
records the same six so the optimization-ablation benchmarks can emit the
same stacked bars:

* ``Comm``      — time in ``upc_memget`` / ``upc_memput`` (bulk transfers
                  and fine-grained remote accesses);
* ``Sort``      — sorting/grouping requests by target;
* ``Copy``      — reading/writing the local portion of shared arrays;
* ``Irregular`` — reordering retrieved elements to match request order;
* ``Setup``     — building the SMatrix/PMatrix structures (the all-to-all);
* ``Work``      — allocation, initialization, target-id computation and
                  the algorithm's own compute.

Two fault-layer categories (``Retry``, ``Fault``) sit alongside the six:
they record retransmission penalties and crash-recovery/checkpoint time
when a :mod:`repro.faults` plan is active, and stay exactly zero
otherwise (see ``docs/fault-model.md``).

Counters additionally record message/byte/access totals so tests can
assert communication-efficiency claims (e.g. "after rewriting, each
collective incurs O(p) messages per thread") independent of the time
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

__all__ = ["Category", "Counters", "Trace"]


class Category:
    """Time categories (string constants).

    ``FIG5`` holds the paper's six Fig. 5 categories; ``ALL`` extends
    them with the fault-layer categories (``Retry`` — timeout/backoff/
    retransmit time of lost messages; ``Fault`` — crash recovery and
    checkpoint passes), which stay zero whenever no fault plan is
    active.
    """

    COMM = "Comm"
    SORT = "Sort"
    COPY = "Copy"
    IRREGULAR = "Irregular"
    SETUP = "Setup"
    WORK = "Work"
    RETRY = "Retry"
    FAULT = "Fault"

    FIG5 = (COMM, SORT, COPY, IRREGULAR, SETUP, WORK)
    ALL = FIG5 + (RETRY, FAULT)


@dataclass
class Counters:
    """Raw operation counts accumulated over a run."""

    remote_messages: int = 0
    remote_bytes: int = 0
    fine_remote_accesses: int = 0
    local_random_accesses: int = 0
    local_seq_elements: int = 0
    alu_ops: int = 0
    lock_ops: int = 0
    lock_inits: int = 0
    barriers: int = 0
    collective_calls: int = 0
    sorted_elements: int = 0
    iterations: int = 0
    retries: int = 0
    crashes: int = 0
    checkpoint_restores: int = 0
    tuning_adaptations: int = 0
    corruptions_injected: int = 0
    corruptions_detected: int = 0
    repairs: int = 0
    node_losses: int = 0
    blocks_reconstructed: int = 0
    replicas_written: int = 0
    epoch_changes: int = 0

    def add(self, **deltas: int) -> None:
        for key, value in deltas.items():
            if not hasattr(self, key):
                raise AttributeError(f"unknown counter {key!r}")
            setattr(self, key, getattr(self, key) + int(value))

    def as_dict(self) -> Dict[str, int]:
        return {k: int(v) for k, v in self.__dict__.items()}


#: Fixed category -> accumulator-slot mapping (insertion order of
#: ``Category.ALL``, which is also the reporting order).
_CAT_INDEX = {c: i for i, c in enumerate(Category.ALL)}

#: Default bound on retained free-form events.  Soak campaigns run the
#: adapter's decision stream for hours; without a cap the list grows
#: linearly with solve count.  Runtimes built with ``profile=True`` lift
#: the cap (``event_cap = None``) for full fidelity.
DEFAULT_EVENT_CAP = 256


class Trace:
    """Counters plus per-category accumulated thread-seconds.

    ``category_seconds[c]`` is the total time charged to category ``c``
    summed over all threads; divide by the thread count for the average
    per-thread breakdown the figures report.

    Internally the per-category totals live in a flat list indexed by
    the fixed ``Category.ALL`` position — ``charge_category`` is on the
    charging hot path, and a list slot add beats per-call dict churn.
    The additions happen in exactly the same order either way, so the
    float64 totals are bit-identical to the dict-accumulator layout.
    """

    __slots__ = ("counters", "_cat", "events", "event_cap", "dropped_events")

    def __init__(self, counters: Counters | None = None, category_seconds=None) -> None:
        self.counters = counters if counters is not None else Counters()
        self._cat: List[float] = [0.0] * len(Category.ALL)
        if category_seconds:
            for cat, sec in category_seconds.items():
                self._cat[_CAT_INDEX[cat]] = float(sec)
        #: Structured decision records (e.g. the autotuner's mid-solve
        #: adaptations); free-form strings, in the order they happened.
        self.events: List[str] = []
        self.event_cap: "int | None" = DEFAULT_EVENT_CAP
        self.dropped_events = 0

    @property
    def category_seconds(self) -> Dict[str, float]:
        """Per-category totals as a fresh ``{category: seconds}`` dict."""
        cat = self._cat
        return {c: cat[i] for c, i in _CAT_INDEX.items()}

    def record_event(self, event: str) -> None:
        """Append a decision/annotation record to the trace (used by the
        online tuning adapter so every adaptation is auditable).  Beyond
        ``event_cap`` events are counted, not stored."""
        if self.event_cap is not None and len(self.events) >= self.event_cap:
            self.dropped_events += 1
            return
        self.events.append(str(event))

    def charge_category(self, category: str, thread_seconds: float) -> None:
        i = _CAT_INDEX.get(category)
        if i is None:
            raise KeyError(f"unknown time category {category!r}; expected one of {Category.ALL}")
        if thread_seconds < 0:
            raise ValueError("cannot charge negative time to a category")
        self._cat[i] += float(thread_seconds)

    def breakdown(self, nthreads: int) -> Dict[str, float]:
        """Average per-thread seconds in each category."""
        if nthreads <= 0:
            raise ValueError("nthreads must be positive")
        cat = self._cat
        return {c: cat[i] / nthreads for c, i in _CAT_INDEX.items()}

    def total_thread_seconds(self) -> float:
        return sum(self._cat)

    def merge(self, other: "Trace") -> None:
        """Accumulate another trace into this one (used when a solve is
        composed of sub-phases traced separately)."""
        for key, value in other.counters.as_dict().items():
            self.counters.add(**{key: value})
        for i, sec in enumerate(other._cat):
            self._cat[i] += sec
        for event in other.events:
            self.record_event(event)
        self.dropped_events += other.dropped_events

    def summary_lines(self, nthreads: int) -> Iterable[str]:
        bd = self.breakdown(nthreads)
        yield "category breakdown (avg seconds/thread):"
        for cat in Category.ALL:
            yield f"  {cat:<10s} {bd[cat] * 1e3:10.3f} ms"
        c = self.counters
        yield (
            f"counters: msgs={c.remote_messages} bytes={c.remote_bytes}"
            f" fine={c.fine_remote_accesses} rand={c.local_random_accesses}"
            f" locks={c.lock_ops} barriers={c.barriers} colls={c.collective_calls}"
        )
        if c.retries or c.crashes or c.checkpoint_restores:
            yield (
                f"faults  : retries={c.retries} crashes={c.crashes}"
                f" restores={c.checkpoint_restores}"
            )
        if c.corruptions_injected or c.corruptions_detected or c.repairs:
            yield (
                f"silent  : injected={c.corruptions_injected}"
                f" detected={c.corruptions_detected} repairs={c.repairs}"
            )
        if c.node_losses or c.replicas_written or c.blocks_reconstructed or c.epoch_changes:
            yield (
                f"resil   : losses={c.node_losses} epochs={c.epoch_changes}"
                f" replicas={c.replicas_written} rebuilt={c.blocks_reconstructed}"
            )
        for event in self.events:
            yield f"event   : {event}"
        if self.dropped_events:
            yield f"event   : ... {self.dropped_events} further event(s) dropped (cap {self.event_cap})"
