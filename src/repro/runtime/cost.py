"""Cost model mapping algorithm actions to simulated time.

Every primitive the simulated PGAS runtime exposes (fine-grained remote
access, coalesced bulk transfer, local sequential / random memory access,
lock operations, all-to-all matrix setup) has a corresponding costing
function here.  The functions are deliberately *vectorized*: they accept
NumPy arrays of counts/sizes (one entry per simulated thread) and return
arrays of seconds, so charging 256 threads is a handful of NumPy ops.

The model follows the paper's own Section III/IV analysis:

* a fine-grained blocking remote access is a round trip (``2L``) plus
  per-dereference software handling and small-message congestion; the
  latency waits of a node's threads overlap, but their handling/wire
  occupancy serializes through the NIC ("the messages from the t threads
  on one node are serialized");
* a coalesced transfer of ``k`` elements costs one per-message charge
  (scaled by :attr:`MachineConfig.per_call_scale`) plus ``k*w/B``;
* a sequential scan of ``k`` elements costs ``L_M + k*w/B_M``
  ("Sequentially accessing k elements is charged L_M + k/B_M time
  considering the prefetch or bulk transfer optimization");
* a random access into a working set of ``S`` bytes through a cache of
  ``z`` bytes misses with probability ``exp(-z/S)`` (independent-
  reference-model shape); index vectors are additionally bounded by
  their *distinct*-target cold-miss count — this is the machinery behind
  the paper's Eq. (4)/(5) comparison and the Fig. 4 ``t'`` sweep;
* the all-to-all SMatrix/PMatrix setup of Algorithm 2 issues ``O(s)``
  short messages per thread and *collapses* beyond ``incast_threshold``
  simultaneously bursting threads (the paper's observed 16-thread
  AlltoAll failure; the collapse amplitude is the model's one fitted
  constant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .machine import MachineConfig

__all__ = ["CostModel", "ELEM_BYTES"]

#: Default element width: the algorithms move 64-bit vertex ids / packed
#: weight-edge keys.
ELEM_BYTES = 8

ArrayLike = Union[float, int, np.ndarray]


def _as_array(x: ArrayLike) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


@dataclass(frozen=True)
class CostModel:
    """Derives simulated times from a :class:`MachineConfig`.

    All methods return seconds (scalar or array, matching the input
    shape).  The model never inspects wall-clock time; it is a pure
    function of operation counts and machine parameters.
    """

    machine: MachineConfig

    # -- network ------------------------------------------------------------

    def remote_message_time(self, nbytes: ArrayLike, rdma: bool = False) -> np.ndarray:
        """One coalesced message of ``nbytes`` between two nodes.

        With ``rdma=True`` the per-message software overhead is skipped
        (the paper: "RDMA improves the communication efficiency with
        large messages").
        """
        net = self.machine.network
        overhead = 0.0 if rdma else net.msg_overhead
        per_call = (net.latency + overhead) * self.machine.per_call_scale
        return per_call + _as_array(nbytes) / net.bandwidth

    def fine_grained_remote_time(
        self, naccesses: ArrayLike, bytes_per: int = ELEM_BYTES
    ) -> np.ndarray:
        """Total blocking time of ``naccesses`` fine-grained remote
        accesses as seen by ONE issuing thread (round trip + handling +
        wire, congestion-scaled).  Use the blocking/occupancy split below
        when charging multi-thread nodes."""
        return self.fine_grained_blocking_time(naccesses, bytes_per) + (
            self.fine_grained_occupancy_time(naccesses, bytes_per)
        )

    def fine_grained_blocking_time(
        self, naccesses: ArrayLike, bytes_per: int = ELEM_BYTES
    ) -> np.ndarray:
        """Latency portion of blocking fine-grained accesses: the issuing
        thread waits a full round trip per access, but the *waits* of
        different threads on one node overlap — charge this part
        per-thread, in parallel."""
        net = self.machine.network
        per = (2.0 * net.latency + bytes_per / net.bandwidth) * net.fine_congestion
        return _as_array(naccesses) * per

    def fine_grained_occupancy_time(
        self, naccesses: ArrayLike, bytes_per: int = ELEM_BYTES
    ) -> np.ndarray:
        """NIC/software occupancy of fine-grained accesses: per-message
        runtime handling and wire time occupy the node's injection path
        exclusively — charge this part node-serialized (the paper: "the
        messages from the t threads on one node are serialized")."""
        net = self.machine.network
        per = (net.fine_overhead + bytes_per / net.bandwidth) * net.fine_congestion
        return _as_array(naccesses) * per

    def bulk_transfer_time(
        self,
        nelems: ArrayLike,
        nmessages: ArrayLike = 1,
        bytes_per: int = ELEM_BYTES,
        rdma: bool = False,
        linear_order: bool = False,
    ) -> np.ndarray:
        """``nmessages`` coalesced messages moving ``nelems`` total elements.

        ``linear_order=True`` applies the incast penalty of the naive
        (non-circular) peer ordering in which every thread targets the
        same peer at each step.
        """
        net = self.machine.network
        overhead = 0.0 if rdma else net.msg_overhead
        factor = net.linear_order_factor if linear_order else 1.0
        per_msg = (net.latency + overhead) * self.machine.per_call_scale
        return _as_array(nmessages) * per_msg + factor * _as_array(nelems) * bytes_per / net.bandwidth

    def congestion_factor(self, participants: int) -> float:
        """Multiplier on short-message all-to-all traffic.

        1.0 up to ``incast_threshold`` simultaneously bursting threads;
        beyond it the switch collapses:
        ``1 + amplitude * ((s - threshold)/threshold) ** exponent``.
        This is the paper's 256-thread AlltoAll failure mode ("the burst
        of the short messages overwhelms the cluster and the nodes").
        """
        net = self.machine.network
        if participants <= net.incast_threshold:
            return 1.0
        excess = (participants - net.incast_threshold) / net.incast_threshold
        return float(1.0 + net.incast_amplitude * excess**net.incast_exponent)

    def alltoall_setup_time(
        self, participants: int | None = None, hierarchical: bool = False
    ) -> float:
        """Per-thread cost of the SMatrix/PMatrix setup (Algorithm 2 step 3).

        Flat (UPC-standard) organization: each thread writes two matrix
        entries to every peer.  Peers on *other* nodes cost short network
        messages, serialized and congestion-scaled — the term that blows
        up at 256 threads in the paper's Figs. 7-10.  Peers on the *same*
        node are shared-memory writes (a cache-line transfer each).

        ``hierarchical=True`` implements the paper's future-work fix: a
        node's threads aggregate their entries in shared memory and one
        leader per node exchanges them — only ``p`` processes burst, so
        the congestion factor is evaluated at ``p`` instead of ``s``.
        """
        m = self.machine
        s = m.total_threads if participants is None else participants
        t = min(m.threads_per_node, s)
        net, mem = m.network, m.memory
        if hierarchical:
            nodes = max(s // max(t, 1), 1)
            # Intra-node aggregation: every thread deposits its row of
            # 2s entries into the node buffer (cache-line transfers).
            local = 2 * s * 4.0 * mem.latency
            # One aggregated count-matrix message per peer node (plus its
            # bandwidth), sent by the node leader.
            remote = 2 * max(nodes - 1, 0) * (net.latency + net.msg_overhead)
            remote += 2 * max(nodes - 1, 0) * t * t * 8 / net.bandwidth
            if nodes > 1:
                remote *= self.congestion_factor(nodes)
            return (remote + local) * m.per_call_scale
        remote_peers = max(s - t, 0)
        local_peers = max(t - 1, 0)
        remote = 2 * remote_peers * (net.latency + net.msg_overhead)
        if remote_peers:
            remote *= self.congestion_factor(s)
        local = 2 * local_peers * 4.0 * mem.latency
        return (remote + local) * m.per_call_scale

    def allreduce_time(self) -> float:
        """Per-thread cost of a small allreduce (termination flags):
        ``log2(s)`` dissemination rounds — network-priced across nodes,
        memory-priced within one."""
        m = self.machine
        s = m.total_threads
        if s <= 1:
            return 0.0
        rounds = int(np.ceil(np.log2(s)))
        if m.nodes > 1:
            per = m.network.latency + m.network.msg_overhead
        else:
            per = 4.0 * m.memory.latency
        return rounds * per * m.per_call_scale

    # -- memory -------------------------------------------------------------

    def seq_access_time(self, nelems: ArrayLike, bytes_per: int = ELEM_BYTES) -> np.ndarray:
        """Sequential scan of ``nelems`` contiguous elements:
        ``L_M + nelems * w / B_M`` (one latency, then streamed)."""
        mem = self.machine.memory
        return mem.latency + _as_array(nelems) * bytes_per / mem.bandwidth

    def miss_rate(self, working_set_bytes: ArrayLike) -> np.ndarray:
        """Probability a random access into a working set misses the
        modeled cache.

        Uses the independent-reference-model shape ``exp(-z / S)``: ~1
        when the working set ``S`` dwarfs the cache ``z``, decaying
        smoothly (not linearly) as the working set shrinks — real LRU
        miss curves have this diminishing-returns form, which is what
        puts Fig. 4's optimal ``t'`` *before* the exact cache-fit point.
        A 2% floor covers cold and conflict misses.
        """
        z = float(self.machine.cache.size_bytes)
        ws = np.maximum(_as_array(working_set_bytes), 1.0)
        rate = np.exp(-z / ws)
        return np.clip(rate, 0.02, 1.0)

    def distinct_working_set(
        self,
        distinct: ArrayLike,
        ceiling_bytes: ArrayLike,
        divisor: float = 1.0,
    ) -> np.ndarray:
        """Effective working set of an index vector with ``distinct``
        unique targets: one cache line per distinct element, capped by
        the traversed region (``ceiling_bytes``), divided by the number
        of block passes the access schedule splits it into."""
        line = float(self.machine.cache.line_bytes)
        ws = np.minimum(_as_array(distinct) * line, _as_array(ceiling_bytes))
        return np.maximum(ws / max(divisor, 1.0), line)

    #: Memory-level parallelism of a *grouped, independent* gather: the
    #: loop's next addresses are known, so several misses overlap in the
    #: memory system.  A dependent pointer-chase (D[D[i]]) gets none of
    #: this — each miss must resolve before the next address exists —
    #: which is one reason the paper's scheduled access beats the plain
    #: SMP loop even before blocks fit in cache.
    GATHER_MLP = 1.6

    def gather_time(
        self,
        counts: ArrayLike,
        distinct: ArrayLike,
        ws_bytes: ArrayLike,
        bytes_per: int = ELEM_BYTES,
        mlp: float = 1.0,
    ) -> np.ndarray:
        """Serving ``counts`` index-vector accesses with ``distinct``
        unique targets: only first touches can miss (cold-miss bound) —
        the duplicated majority of a request vector hits cache, which is
        what keeps the late-iteration label reads (thousands of requests
        for a handful of component roots) nearly free on real hardware.
        Every access still pays the bandwidth term.  ``mlp > 1`` overlaps
        miss latencies (grouped independent gathers only).
        """
        mem = self.machine.memory
        misses = _as_array(distinct) * self.miss_rate(ws_bytes)
        return misses * mem.latency / max(mlp, 1.0) + (
            _as_array(counts) * bytes_per / mem.bandwidth
        )

    def grouped_permute_time(self, nelems: ArrayLike, bytes_per: int = ELEM_BYTES) -> np.ndarray:
        """Applying a *known* permutation to ``nelems`` elements with one
        level of destination blocking: two streamed passes (group by
        destination block, then place within blocks) plus one cold miss
        per destination cache line.  This is the paper's own recipe —
        "Parallel writes in a parallel step can be scheduled similarly"
        — and is why the Irregular slice of Fig. 5 stays moderate.
        """
        mem = self.machine.memory
        n = _as_array(nelems)
        streams = 2.0 * (mem.latency + n * bytes_per / mem.bandwidth)
        cold = n * bytes_per / self.machine.cache.line_bytes * mem.latency
        return streams + cold

    #: Relative cost of one virtual-thread selection pass vs a full
    #: streamed copy: the pass reads indices only and its compare/select
    #: vectorizes, so it moves ~a quarter of the bytes a copy would.
    VSCAN_PASS_WEIGHT = 0.45

    def virtual_scan_time(self, nelems: ArrayLike, tprime: int, bytes_per: int = ELEM_BYTES) -> np.ndarray:
        """Grouping cost of simulating ``t'`` virtual threads: each
        virtual thread sweeps the received request buffer selecting its
        sub-block's requests — ``t'`` (cheap, SIMD-friendly) passes over
        ``nelems`` elements.  This is the overhead that bends Fig. 4's
        curve back up past the optimal ``t'``."""
        if tprime <= 1:
            return np.zeros_like(_as_array(nelems))
        per_pass = self.seq_access_time(_as_array(nelems), bytes_per) * self.VSCAN_PASS_WEIGHT
        return tprime * per_pass

    def random_access_time(
        self,
        naccesses: ArrayLike,
        working_set_bytes: ArrayLike,
        bytes_per: int = ELEM_BYTES,
    ) -> np.ndarray:
        """``naccesses`` random accesses into a working set of the given
        size: each access pays the bandwidth term, and a full memory
        latency on a (modeled) miss."""
        mem = self.machine.memory
        per = self.miss_rate(working_set_bytes) * mem.latency + bytes_per / mem.bandwidth
        return _as_array(naccesses) * per

    # -- compute ------------------------------------------------------------

    def op_time(self, nops: ArrayLike) -> np.ndarray:
        """``nops`` simple vectorizable ALU operations."""
        return _as_array(nops) * self.machine.cpu.op_time

    def intrinsic_id_time(self, nops: ArrayLike) -> np.ndarray:
        """Target-thread-id computation via the UPC compiler intrinsic
        (what the ``id`` optimization replaces with direct arithmetic)."""
        return _as_array(nops) * self.machine.cpu.op_time * self.machine.cpu.intrinsic_factor

    def upc_local_deref_time(self, naccesses: ArrayLike, working_set_bytes: ArrayLike) -> np.ndarray:
        """Local accesses performed through shared pointers, paying the
        runtime's affinity checks (what ``localcpy`` avoids by casting to
        private pointers)."""
        return (
            self.random_access_time(naccesses, working_set_bytes)
            + _as_array(naccesses) * self.machine.cpu.op_time * self.machine.cpu.upc_deref_factor
        )

    # -- sorting ------------------------------------------------------------

    def count_sort_time(self, nelems: ArrayLike, nbuckets: ArrayLike) -> np.ndarray:
        """Linear-time counting sort of ``nelems`` keys into ``nbuckets``.

        Matches the paper's Section IV accounting: two streamed passes
        over the data plus two passes over the (cache-resident) histogram,
        and a random-scatter pass bounded by the bucket count.
        """
        mem = self.machine.memory
        n = _as_array(nelems)
        w = _as_array(nbuckets)
        stream = 2.0 * (mem.latency + n * ELEM_BYTES / mem.bandwidth)
        histogram = 2.0 * w * (mem.latency + 1.0 / mem.bandwidth)
        scatter = self.random_access_time(n, np.minimum(w, n) * ELEM_BYTES)
        return stream + histogram + scatter + self.op_time(2.0 * n)

    def comparison_sort_time(self, nelems: ArrayLike) -> np.ndarray:
        """Quicksort-style comparison sort: ``n log n`` compares with the
        branch-miss-heavy inner loop, plus ``log n`` partitioning passes.

        Quicksort's partitioning is *sequential* scans, so no random-miss
        term applies; the cost is dominated by the comparison/branch work
        (~10 cycle-equivalents per element per level, reflecting branch
        mispredictions), which is what makes it ">50x slower than count
        sort" at the paper's request sizes.
        """
        n = np.maximum(_as_array(nelems), 1.0)
        logn = np.log2(np.maximum(n, 2.0))
        compares = self.op_time(10.0 * n * logn)
        passes = logn * self.seq_access_time(n)
        return compares + passes

    # -- locks --------------------------------------------------------------

    def lock_init_time(self, nlocks: ArrayLike) -> np.ndarray:
        """Initialization of ``nlocks`` fine-grained locks (MST-SMP pays
        this once per run for every vertex)."""
        return _as_array(nlocks) * self.machine.locks.init_time

    def lock_op_time(self, nops: ArrayLike, contention: ArrayLike = 0.0) -> np.ndarray:
        """``nops`` acquire/release pairs; ``contention`` is the expected
        fraction of operations that hit a contended lock (cache-line
        transfer between CPUs)."""
        locks = self.machine.locks
        per = locks.acquire_time + _as_array(contention) * locks.contention_time
        return _as_array(nops) * per

    # -- barrier ------------------------------------------------------------

    def barrier_time(self, participants: int | None = None) -> float:
        return self.machine.barrier_time(participants)
