"""Per-thread virtual clocks for the simulated SPMD execution.

Each of the ``s = p * t`` simulated threads owns a clock (seconds).  The
algorithms never sleep or measure wall time; they *charge* modeled costs
to clocks through the runtime.  Synchronization semantics:

* ``charge`` — advance selected clocks by per-thread amounts (local work
  proceeds in parallel across threads);
* ``node_serialize`` — communication issued by the threads of one node
  shares that node's NIC, so each thread's effective communication time
  is the *sum* over its node ("the messages from the t threads on one
  node are serialized", Section III);
* ``barrier`` — all participants advance to the maximum clock plus the
  barrier cost (lock-step collectives).

The reported execution time of a run is the maximum clock.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .machine import MachineConfig

__all__ = ["ThreadClocks"]


class ThreadClocks:
    """Virtual clocks for ``s`` simulated threads on ``p`` nodes."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.s = machine.total_threads
        self.times = np.zeros(self.s, dtype=np.float64)
        #: imbalance (max - min) observed at the most recent barrier,
        #: before clocks were equalized — profiling reads this to expose
        #: hotspots that barriers would otherwise hide.
        self.last_barrier_skew = 0.0
        self.last_hot_thread = 0
        #: thread -> node map (node-major layout, matching UPC blocked THREADS)
        self.node_of = np.arange(self.s, dtype=np.int64) // machine.threads_per_node

    # -- charging -----------------------------------------------------------

    def _amounts(self, amount) -> np.ndarray:
        arr = np.asarray(amount, dtype=np.float64)
        if arr.ndim == 0:
            arr = np.full(self.s, float(arr))
        if arr.shape != (self.s,):
            raise ConfigError(f"expected scalar or shape ({self.s},), got {arr.shape}")
        if np.any(arr < 0):
            raise ConfigError("cannot charge negative time")
        return arr

    def charge(self, amount) -> np.ndarray:
        """Advance every clock by its own amount (scalar broadcasts).

        Returns the per-thread amounts actually charged.
        """
        arr = self._amounts(amount)
        self.times += arr
        return arr

    def charge_thread(self, thread: int, amount: float) -> None:
        """Advance a single thread's clock."""
        if not 0 <= thread < self.s:
            raise ConfigError(f"thread id {thread} out of range")
        if amount < 0:
            raise ConfigError("cannot charge negative time")
        self.times[thread] += amount

    def node_serialize(self, amount) -> np.ndarray:
        """Charge per-thread communication amounts serialized through each
        node's NIC: every thread on a node advances by the node's total.

        Returns the per-thread amounts actually charged (the node sums).
        """
        arr = self._amounts(amount)
        node_sum = np.bincount(self.node_of, weights=arr, minlength=self.machine.nodes)
        per_thread = node_sum[self.node_of]
        self.times += per_thread
        return per_thread

    # -- synchronization ----------------------------------------------------

    def barrier(self, cost: float = 0.0) -> float:
        """All threads advance to ``max(times) + cost``.

        Returns the new common clock value.
        """
        if cost < 0:
            raise ConfigError("cannot charge negative barrier cost")
        self.last_barrier_skew = float(self.times.max() - self.times.min())
        self.last_hot_thread = int(np.argmax(self.times))
        now = float(self.times.max()) + cost
        self.times[:] = now
        return now

    def skew(self) -> float:
        """Current clock imbalance (max - min); useful for hotspot tests."""
        return float(self.times.max() - self.times.min())

    # -- reporting ----------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Simulated execution time so far (the slowest thread's clock)."""
        return float(self.times.max(initial=0.0))

    @property
    def mean_elapsed(self) -> float:
        return float(self.times.mean()) if self.s else 0.0

    def copy(self) -> "ThreadClocks":
        clone = ThreadClocks(self.machine)
        clone.times = self.times.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadClocks(s={self.s}, elapsed={self.elapsed:.6f}s, skew={self.skew():.6f}s)"
