"""The simulated PGAS runtime.

:class:`PGASRuntime` ties together a machine description, its cost model,
per-thread clocks, and an execution trace.  Algorithm code is written in
a bulk-SPMD style: each step is expressed as an operation over
:class:`~repro.runtime.partitioned.PartitionedArray` per-thread data, and
the runtime both *performs* the data movement (NumPy) and *charges* the
modeled time to the right threads and trace categories.

Two access disciplines are exposed:

* **fine-grained** (:meth:`fine_grained_read` / :meth:`fine_grained_write`)
  — one small blocking message per remote element, UPC-pointer overhead
  per local element.  This is what the naive translation of the
  shared-memory code (Fig. 1 right) compiles to, and why it is three
  orders of magnitude slower.
* **coalesced collectives** — implemented in :mod:`repro.collectives`
  on top of the charging primitives here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import CollectiveError, FaultError, ThreadCrash, UnrecoverableLossError
from ..perf import shard as perf_shard
from ..perf import state as perf_state
from .clocks import ThreadClocks
from .cost import CostModel
from .machine import MachineConfig
from .partitioned import PartitionedArray
from .shared_array import SharedArray
from .trace import Category, Counters, Trace

__all__ = ["PGASRuntime", "set_sync_poll"]

#: Optional observation-only callback invoked at every synchronization
#: point (barrier / allreduce).  Installed by :mod:`repro.service.
#: deadlines` for cooperative job cancellation; it must never charge
#: modeled time or draw random numbers, so modeled results stay
#: bit-identical with the hook on or off.  It may raise (e.g.
#: :class:`~repro.errors.JobCancelled`) to unwind the enclosing solve.
_SYNC_POLL: "Callable[[], None] | None" = None


def set_sync_poll(fn: "Callable[[], None] | None") -> "Callable[[], None] | None":
    """Install (or clear, with ``None``) the global sync-point poll.

    Returns the previously installed poll so callers can restore it.
    """
    global _SYNC_POLL
    previous = _SYNC_POLL
    _SYNC_POLL = fn
    return previous


class PGASRuntime:
    """Executable simulation context for one run of one algorithm.

    ``profile=True`` attaches a :class:`~repro.runtime.profiling.PhaseProfiler`
    that records one entry per collective call (duration, mean thread
    time, skew) — the tool for locating hotspots like the label-
    concentrated serves that the ``offload`` optimization defuses.

    ``faults`` accepts a :class:`~repro.faults.FaultPlan` (or a
    pre-built :class:`~repro.faults.FaultInjector`): lost messages then
    cost timeout + backoff + retransmit on the issuing thread's clock,
    stragglers and degraded NICs stretch their charges, and scheduled
    crashes fire at synchronization points.  With no plan (or a no-op
    plan) the fault layer is skipped entirely and modeled times are
    bit-identical to a fault-free build.

    ``analyze`` attaches a
    :class:`~repro.analysis.race.EpochRaceDetector` (pass ``True`` for a
    fresh one or an existing detector to share).  Runtimes built inside
    a :func:`repro.analysis.analyzed` block attach automatically.  The
    detector only *observes* — it never charges time or draws random
    numbers — so modeled results are bit-identical with it on or off.

    ``integrity`` accepts an :class:`~repro.integrity.IntegrityConfig`
    (or ``True`` for the defaults): arrays registered through
    :meth:`protect_array` then carry verified block digests, collective
    payloads are end-to-end checked, and detection raises
    :class:`~repro.errors.IntegrityError` for the solver's repair path.
    With no config (or an all-off one) the integrity layer is skipped
    entirely and modeled times are bit-identical to a build without it.

    ``resilience`` accepts a
    :class:`~repro.resilience.RedundancyConfig` (or ``True`` for the
    defaults, or an existing :class:`~repro.resilience.ResilientSession`
    to adopt across a membership change): enrolled shared arrays then
    keep charged off-node replicas/parity of their committed state, and
    a fired permanent :class:`~repro.faults.NodeLossEvent` is routed to
    the session's recovery protocol instead of killing the run.  With no
    session, a permanent loss raises
    :class:`~repro.errors.UnrecoverableLossError` — loud, never a hang.
    """

    def __init__(
        self,
        machine: MachineConfig,
        profile: bool = False,
        faults=None,
        analyze=False,
        integrity=None,
        resilience=None,
    ) -> None:
        self.machine = machine
        self.cost = CostModel(machine)
        self.clocks = ThreadClocks(machine)
        self.trace = Trace()
        if profile:
            # Full event fidelity when profiling; the default cap only
            # bounds memory on long unprofiled campaigns.
            self.trace.event_cap = None
        self.faults = None
        if faults is not None:
            from ..faults.injector import FaultInjector

            injector = (
                faults if isinstance(faults, FaultInjector) else FaultInjector(faults, machine)
            )
            # A no-op plan keeps the zero-overhead default path engaged.
            if injector.plan.any_faults:
                self.faults = injector
        self.integrity = None
        if integrity is not None:
            from ..integrity.config import IntegrityConfig
            from ..integrity.monitor import IntegrityMonitor

            cfg = IntegrityConfig() if integrity is True else integrity
            if cfg.enabled:
                self.integrity = IntegrityMonitor(cfg, self)
        self.resilience = None
        if resilience is not None:
            from ..resilience.session import RedundancyConfig, ResilientSession

            if isinstance(resilience, ResilientSession):
                # Adopted across a membership change: the session keeps
                # its epoch/spare state and rebinds to this runtime.
                self.resilience = resilience
                resilience.rt = self
            else:
                rcfg = RedundancyConfig() if resilience is True else resilience
                self.resilience = ResilientSession(rcfg, self)
        self.profiler = None
        from .profiling import PhaseProfiler, current_session

        session = current_session()
        if profile or session is not None:
            self.profiler = PhaseProfiler()
            if session is not None:
                session.profilers.append(self.profiler)
        self.analyzer = None
        from ..analysis.race import EpochRaceDetector, current_analysis

        analysis = current_analysis()
        if analyze or analysis is not None:
            if isinstance(analyze, EpochRaceDetector):
                self.analyzer = analyze
            else:
                self.analyzer = EpochRaceDetector()
            self.analyzer.attach(machine)
            if analysis is not None:
                analysis.add(self.analyzer)

    def phase_start(self) -> "tuple[np.ndarray, int] | None":
        """Snapshot clocks and retry count if profiling; collectives call
        this on entry."""
        if self.profiler is None:
            return None
        return self.clocks.times.copy(), self.counters.retries

    def phase_end(self, name: str, requests: int, before) -> None:
        """Record a profiled phase; no-op unless profiling is on.

        The imbalance is read from the most recent barrier (collectives
        end with one), so hotspots survive the clock equalization.
        """
        if self.profiler is not None and before is not None:
            times_before, retries_before = before
            self.profiler.record(
                name,
                requests,
                times_before,
                self.clocks.times,
                imbalance_s=self.clocks.last_barrier_skew,
                hottest_thread=getattr(self.clocks, "last_hot_thread", 0),
                retries=self.counters.retries - retries_before,
            )

    # -- convenience --------------------------------------------------------

    @property
    def s(self) -> int:
        return self.machine.total_threads

    @property
    def counters(self) -> Counters:
        return self.trace.counters

    @property
    def elapsed(self) -> float:
        """Simulated execution time so far (slowest thread)."""
        return self.clocks.elapsed

    def shared_array(
        self, data: np.ndarray, block: int | None = None, name: str | None = None
    ) -> SharedArray:
        """Allocate and distribute a shared array, charging each thread
        for touching (initializing) its local portion."""
        arr = SharedArray(self.machine, data, block, name=name)
        if perf_state.fast_engine_enabled():
            session = perf_shard.current_session()
            if session is not None:
                # Back the owner blocks with a real shared-memory
                # segment so the shard pool's workers can serve them.
                # Pure wall-clock machinery: contents, charges, and
                # digests are unchanged (arr.data *is* the segment).
                session.adopt(arr)
        init = self.cost.seq_access_time(arr.local_sizes(), arr.nbytes_per_elem)
        self.charge(Category.WORK, init)
        self.counters.add(local_seq_elements=arr.size)
        if self.analyzer is not None:
            self.analyzer.register_array(arr)
        return arr

    def protect_array(self, arr: SharedArray, corruptible: bool = True) -> SharedArray:
        """Opt a shared array into the silent-fault story on both sides:
        register it as a bit-flip target with the active fault plan
        (unless ``corruptible=False`` — e.g. packed-key arrays whose
        values have no fold-safe flip domain), and start maintaining
        verified block digests when an integrity config is attached.
        Returns ``arr`` for chaining."""
        if corruptible and self.faults is not None:
            self.faults.register_corruptible(arr)
        if self.integrity is not None:
            self.integrity.track(arr)
        return arr

    # -- charging primitives --------------------------------------------------

    def charge(self, category: str, per_thread_seconds) -> None:
        """Charge per-thread local time (parallel across threads)."""
        if self.faults is not None:
            factor = self.faults.local_factor()
            if factor is not None:
                per_thread_seconds = np.asarray(per_thread_seconds, dtype=np.float64) * factor
        charged = self.clocks.charge(per_thread_seconds)
        self.trace.charge_category(category, float(charged.sum()))

    def charge_thread(self, category: str, thread: int, seconds: float) -> None:
        if self.faults is not None:
            seconds = seconds * float(self.faults.slowdown[thread])
        self.clocks.charge_thread(thread, seconds)
        self.trace.charge_category(category, seconds)

    def charge_comm(self, per_thread_seconds, serialize: bool = True) -> None:
        """Charge communication time; by default serialized through each
        node's NIC (blocking messages from one node share the link).

        With faults active, stragglers and any NIC-degradation window
        covering a node's current virtual time stretch that node's
        charges."""
        if self.faults is not None:
            factor = self.faults.comm_factor(self.clocks.times)
            if factor is not None:
                per_thread_seconds = np.asarray(per_thread_seconds, dtype=np.float64) * factor
        if serialize:
            charged = self.clocks.node_serialize(per_thread_seconds)
        else:
            charged = self.clocks.charge(per_thread_seconds)
        self.trace.charge_category(Category.COMM, float(charged.sum()))

    # -- fault consequences ----------------------------------------------------

    def charge_message_faults(self, msg_counts, per_message_seconds) -> None:
        """Price message loss for a batch of simulated messages.

        ``msg_counts`` is per-thread messages issued; each retransmit
        costs the :class:`~repro.faults.RetryPolicy` timeout + backoff
        plus ``per_message_seconds`` of wire/handling time, charged to
        the issuing thread's clock under the ``Retry`` category.  Raises
        :class:`~repro.errors.FaultError` when a message exhausts the
        retry budget.  No-op without an active fault plan.
        """
        if self.faults is None:
            return
        retries, dead = self.faults.sample_retries(msg_counts)
        total = int(retries.sum())
        if dead:
            self.counters.add(retries=total)
            raise FaultError(
                f"{dead} simulated message(s) exceeded "
                f"max_attempts={self.faults.retry.max_attempts} and were dropped for good"
            )
        if total == 0:
            return
        penalty = self.faults.retry.penalty_seconds(retries)
        penalty = penalty + retries * np.asarray(per_message_seconds, dtype=np.float64)
        self.charge(Category.RETRY, penalty)
        self.counters.add(retries=total, remote_messages=total)

    def _poll_crash(self) -> None:
        """Fire a due crash event: the crashed thread pays its recovery
        time, every other thread waits at the barrier, and the enclosing
        round is signalled to replay via :class:`ThreadCrash`."""
        event = self.faults.poll_crash(self.clocks.times)
        if event is None:
            return
        self.counters.add(crashes=1)
        self.charge_thread(Category.FAULT, event.thread, event.recovery)
        self.clocks.barrier(0.0)
        raise ThreadCrash(event.thread, event.at_time, event.recovery)

    def _poll_node_loss(self) -> None:
        """Fire a due permanent node loss.  With a resilience session the
        session runs loss detection (and raises
        :class:`~repro.errors.NodeLoss` into the solver's recovery
        scope); without one the run fails loudly — survivors would block
        on the dead node's barrier arrivals forever, and a hang or a
        silently-wrong answer are the two outcomes this layer exists to
        rule out."""
        event = self.faults.poll_node_loss(self.clocks.times)
        if event is None:
            return
        self.counters.add(node_losses=1)
        if self.resilience is None:
            raise UnrecoverableLossError(
                event.node,
                event.at_time,
                "no redundancy is configured (run with repro.resilience to survive)",
            )
        self.resilience.on_loss(event)

    def _poll_corruption(self) -> None:
        """Fire due silent bit-flip events against the registered arrays
        (Poisson process on the virtual clock; each event fires once)."""
        flips = self.faults.poll_corruption(self.clocks.times)
        if flips:
            self.counters.add(corruptions_injected=flips)

    def barrier(self) -> None:
        """Full barrier across all simulated threads."""
        if _SYNC_POLL is not None:
            _SYNC_POLL()
        self.clocks.barrier(self.cost.barrier_time())
        self.counters.add(barriers=1)
        # Close the detector epoch BEFORE crash polling: a ThreadCrash
        # replays the round in fresh epochs, so the replay cannot
        # conflict with the aborted attempt (no phantom reports).
        if self.analyzer is not None:
            self.analyzer.on_barrier()
        if self.faults is not None:
            # Permanent losses outrank transient crashes: a node that is
            # gone for good must open a new epoch, not a round replay.
            self._poll_node_loss()
            self._poll_crash()
            self._poll_corruption()
        # Digest verification runs at every sync point, right after the
        # corruption poll: a flip must be caught before the next charged
        # write could launder it into a refreshed digest.
        if self.integrity is not None:
            self.integrity.on_barrier()

    def allreduce_flag(self, flags: np.ndarray) -> bool:
        """Logical-OR allreduce used for termination detection.

        Synchronizes clocks (it is a collective) and charges a
        dissemination pattern: ``log2(s)`` rounds of one short message.
        Returns the reduced boolean.
        """
        flags = np.asarray(flags)
        if flags.shape != (self.s,):
            raise CollectiveError(
                f"allreduce expects one flag per thread ({self.s}), got shape {flags.shape}"
            )
        if _SYNC_POLL is not None:
            _SYNC_POLL()
        rounds = int(np.ceil(np.log2(self.s))) if self.s > 1 else 0
        self.clocks.barrier(self.cost.barrier_time())
        self.charge(Category.SETUP, self.cost.allreduce_time())
        if self.machine.nodes > 1:
            self.counters.add(remote_messages=rounds * self.s)
        self.counters.add(barriers=1)
        if self.analyzer is not None:
            self.analyzer.on_barrier()
        if self.faults is not None:
            self._poll_node_loss()
            self._poll_crash()
            self._poll_corruption()
        if self.integrity is not None:
            self.integrity.on_barrier()
        return bool(flags.any())

    # -- fine-grained shared access (the naive discipline) ---------------------

    def split_local_remote(
        self, arr: SharedArray, indices: PartitionedArray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-thread counts of node-local vs remote accesses for the
        given request partition (requests from thread i target the node
        owning each index; same node => local)."""
        owner_nodes = arr.owner_node(indices.data)
        req_threads = indices.thread_ids()
        req_nodes = req_threads // self.machine.threads_per_node
        remote_mask = owner_nodes != req_nodes
        remote = np.bincount(req_threads[remote_mask], minlength=self.s)
        local = indices.sizes() - remote
        return local.astype(np.int64), remote.astype(np.int64)

    def fine_grained_read(self, arr: SharedArray, indices: PartitionedArray) -> np.ndarray:
        """Element-wise reads ``arr[indices]`` with naive per-access cost.

        Every remote element is a blocking small message (node-serialized);
        every local element pays a UPC shared-pointer dereference into the
        node's working set.  Returns the gathered values.
        """
        local, remote = self.split_local_remote(arr, indices)
        w = arr.nbytes_per_elem
        self.charge_fine_grained(remote, w)
        self._charge_fine_local(arr, indices, local)
        if self.analyzer is not None:
            self.analyzer.record_fine(
                arr, "r", indices.data, indices.thread_ids(), phase="fine-read"
            )
        return arr.gather(indices.data)

    def _charge_fine_local(
        self, arr: SharedArray, indices: PartitionedArray, local_counts: np.ndarray
    ) -> None:
        """Node-local portion of fine-grained access: a cache-modeled
        irregular access (cold-miss bounded by the distinct targets) plus
        the UPC runtime's per-dereference affinity handling."""
        distinct = np.minimum(
            indices.segment_distinct().astype(np.float64), local_counts.astype(np.float64)
        )
        ws = self.cost.distinct_working_set(distinct, arr.node_working_set_bytes())
        time = self.cost.gather_time(local_counts, distinct, ws, arr.nbytes_per_elem)
        time = time + self.cost.op_time(local_counts * self.machine.cpu.upc_deref_factor)
        self.charge(Category.IRREGULAR, time)
        self.counters.add(local_random_accesses=int(local_counts.sum()))

    def charge_fine_grained(self, remote_counts: np.ndarray, bytes_per: int) -> None:
        """Charge fine-grained remote accesses with the blocking/occupancy
        split: round-trip waits run in parallel across a node's threads;
        per-message handling serializes through the NIC."""
        self.charge(Category.COMM, self.cost.fine_grained_blocking_time(remote_counts, bytes_per))
        self.charge_comm(self.cost.fine_grained_occupancy_time(remote_counts, bytes_per))
        total = int(np.asarray(remote_counts).sum())
        self.counters.add(
            fine_remote_accesses=total,
            remote_messages=total,
            remote_bytes=total * bytes_per,
        )
        if self.faults is not None:
            # Every per-element message is a loss opportunity; a dropped
            # one costs a timeout plus a fresh blocking round trip.
            self.charge_message_faults(
                remote_counts, self.cost.fine_grained_remote_time(1.0, bytes_per)
            )

    def fine_grained_write(
        self,
        arr: SharedArray,
        indices: PartitionedArray,
        values: np.ndarray,
        combine: str = "min",
    ) -> int:
        """Element-wise writes with naive per-access cost.

        ``combine='min'`` resolves concurrent writes to one location by
        priority (minimum) — deterministic and a legal arbitrary-CRCW
        outcome.  ``combine='store'`` asserts targets are unique.
        Returns the number of changed locations.
        """
        values = np.asarray(values)
        if values.shape[0] != indices.total:
            raise CollectiveError("values length must match request partition")
        local, remote = self.split_local_remote(arr, indices)
        w = arr.nbytes_per_elem
        self.charge_fine_grained(remote, w)
        self._charge_fine_local(arr, indices, local)
        if self.analyzer is not None:
            self.analyzer.record_fine(
                arr,
                "w",
                indices.data,
                indices.thread_ids(),
                combining=combine in ("min", "store_min"),
                phase="fine-write",
            )
        if combine == "min":
            changed = arr.scatter_min(indices.data, values)
        elif combine == "store_min":
            changed = arr.scatter_store_min(indices.data, values)
        elif combine == "store":
            uniq = np.unique(indices.data)
            if uniq.size != indices.total:
                raise CollectiveError("combine='store' requires unique targets")
            before = arr.data[indices.data].copy()
            arr.data[indices.data] = values
            changed = int(np.count_nonzero(arr.data[indices.data] != before))
        else:
            raise CollectiveError(f"unknown combine mode {combine!r}")
        if self.integrity is not None:
            self.integrity.note_write(arr, indices.data)
        if self.resilience is not None:
            self.resilience.mark_write(arr, indices.data)
        return changed

    # -- local (per-thread) modeled work ---------------------------------------

    def _count_total(self, amount) -> int:
        """Total element count across threads: scalars broadcast to every
        thread, arrays are per-thread already."""
        arr = np.asarray(amount)
        if arr.ndim == 0:
            return int(arr) * self.s
        return int(arr.sum())

    def local_random_access(
        self, naccesses, working_set_bytes, category: str = Category.COPY
    ) -> None:
        """Charge random accesses into per-thread working sets."""
        self.charge(category, self.cost.random_access_time(naccesses, working_set_bytes))
        self.counters.add(local_random_accesses=self._count_total(naccesses))

    def local_stream(self, nelems, category: str = Category.WORK) -> None:
        """Charge streamed sequential passes."""
        self.charge(category, self.cost.seq_access_time(nelems))
        self.counters.add(local_seq_elements=self._count_total(nelems))

    def local_ops(self, nops, category: str = Category.WORK) -> None:
        """Charge simple ALU work."""
        self.charge(category, self.cost.op_time(nops))
        self.counters.add(alu_ops=self._count_total(nops))

    # -- owner-local charged access ---------------------------------------------
    #
    # The SPMD solvers update each thread's own block of a shared array
    # ("owner computes"); these helpers bundle the store, the charge, and
    # the sanitizer registration so no call site touches ``arr.data``
    # raw.  Charge shape matches the hand-written originals exactly:
    # ``counts`` per-thread elements through ``local_stream`` (streamed
    # pass) or ``local_ops`` (ALU pass), defaulting to one pass over each
    # thread's block.

    def _owner_counts(self, arr: SharedArray, counts) -> np.ndarray:
        if counts is None:
            return arr.local_sizes().astype(np.float64)
        return counts

    def _owner_charge(self, arr: SharedArray, charge: str, counts, category) -> None:
        if charge == "none":
            # Cost fused into an adjacent charge (e.g. two block stores
            # priced as one double-width stream); caller documents why.
            return
        counts = self._owner_counts(arr, counts)
        if charge == "stream":
            self.local_stream(counts, Category.COPY if category is None else category)
        elif charge == "ops":
            self.local_ops(counts, Category.WORK if category is None else category)
        else:
            raise CollectiveError(f"unknown owner charge mode {charge!r}")

    def owner_block_read(
        self, arr: SharedArray, *, counts=None, category: str = Category.COPY
    ) -> np.ndarray:
        """Each thread streams its own block; returns a copy of the full
        array (the simulation's one-address-space shortcut)."""
        self.local_stream(self._owner_counts(arr, counts), category)
        if self.analyzer is not None:
            self.analyzer.record_block(arr, "r", phase="owner-block-read")
        return arr.data.copy()

    def owner_block_write(
        self, arr: SharedArray, values, *, charge: str = "stream", counts=None, category=None
    ) -> None:
        """Each thread overwrites its own block (``arr[:] = values``)."""
        arr.data[:] = values
        self._owner_charge(arr, charge, counts, category)
        if self.analyzer is not None:
            self.analyzer.record_block(arr, "w", phase="owner-block-write")
        if self.integrity is not None:
            self.integrity.note_write(arr)
        if self.resilience is not None:
            self.resilience.mark_write(arr)

    def owner_masked_write(
        self,
        arr: SharedArray,
        mask: np.ndarray,
        values,
        *,
        charge: str = "stream",
        counts=None,
        category=None,
    ) -> None:
        """Each thread stores into the masked subset of its own block."""
        arr.data[mask] = values
        self._owner_charge(arr, charge, counts, category)
        if self.analyzer is not None:
            self.analyzer.record_owner_write(
                arr, np.flatnonzero(mask), phase="owner-masked-write"
            )
        if self.integrity is not None:
            self.integrity.note_write(arr, mask)
        if self.resilience is not None:
            self.resilience.mark_write(arr, mask)

    def owner_indexed_write(
        self, arr: SharedArray, indices: np.ndarray, values, *, category: str = Category.WORK
    ) -> None:
        """Store at explicit indices, charged to each index's owning
        thread (one streamed element per write on the owner's clock)."""
        arr.data[indices] = values
        writes = np.bincount(arr.owner_thread(indices), minlength=self.s)
        self.local_stream(writes.astype(np.float64), category)
        if self.analyzer is not None:
            self.analyzer.record_owner_write(arr, indices, phase="owner-indexed-write")
        if self.integrity is not None:
            self.integrity.note_write(arr, indices)
        if self.resilience is not None:
            self.resilience.mark_write(arr, indices)

    # -- structured helpers -----------------------------------------------------

    def run_phase(self, name: str, fn: Callable[[], None]) -> None:
        """Run a named sub-phase (placeholder hook for tracing tools)."""
        fn()

    def fork(self) -> "PGASRuntime":
        """A fresh runtime on the same machine (independent clocks/trace);
        used by benchmarks that time sub-algorithms in isolation."""
        return PGASRuntime(self.machine)
