"""Per-phase profiling of simulated runs.

The trace's six categories say *what kind* of time a run spent; the
phase profiler says *where*: one record per collective call (and per
explicitly marked phase) with the phase's duration, the mean thread
time, and the skew — the max/mean ratio that exposes hotspots like the
label-concentrated serves the ``offload`` optimization targets.

Enable per-runtime (``PGASRuntime(machine, profile=True)``) or per-solve
through the pipeline's ``profile=True``; records land in
``runtime.phases`` / ``SolveInfo.phases`` and render with
:func:`render_phases`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "PhaseRecord",
    "PhaseProfiler",
    "ProfileSession",
    "RoundWindow",
    "current_session",
    "profiled",
    "render_phases",
]


@dataclass(frozen=True)
class PhaseRecord:
    """One profiled phase (usually one collective call)."""

    name: str
    requests: int
    duration_s: float    # phase wall on the simulated clock (max thread)
    imbalance_s: float   # max - min thread time at the phase's final barrier
    hottest_thread: int
    retries: int = 0     # message retransmits injected during the phase

    @property
    def wait_fraction(self) -> float:
        """Fraction of the phase the fastest thread spent waiting at the
        closing barrier — ~0 means balanced, ~1 means one thread did
        everything (a hotspot)."""
        return self.imbalance_s / self.duration_s if self.duration_s > 0 else 0.0


@dataclass(frozen=True)
class RoundWindow:
    """Summary of the phase records between two profiler checkpoints —
    what the online tuning adapter reads after each CC/MST round."""

    phases: int
    duration_s: float        # sum of phase durations in the window
    requests: int
    max_wait_fraction: float  # worst barrier-wait share of any phase
    hottest_thread: int       # hottest thread of that worst phase


class PhaseProfiler:
    """Collects :class:`PhaseRecord`s from a run's clock deltas."""

    def __init__(self) -> None:
        self.records: List[PhaseRecord] = []

    def checkpoint(self) -> int:
        """Mark the current record count; pass to :meth:`window_since`."""
        return len(self.records)

    def window_since(self, checkpoint: int) -> RoundWindow:
        """Summarize the records appended since ``checkpoint``."""
        window = self.records[checkpoint:]
        worst = max(window, key=lambda r: r.wait_fraction, default=None)
        return RoundWindow(
            phases=len(window),
            duration_s=sum(r.duration_s for r in window),
            requests=sum(r.requests for r in window),
            max_wait_fraction=worst.wait_fraction if worst is not None else 0.0,
            hottest_thread=worst.hottest_thread if worst is not None else 0,
        )

    def record(
        self,
        name: str,
        requests: int,
        before: np.ndarray,
        after: np.ndarray,
        imbalance_s: float = 0.0,
        hottest_thread: int = 0,
        retries: int = 0,
    ) -> None:
        delta = after - before
        self.records.append(
            PhaseRecord(
                name=name,
                requests=int(requests),
                duration_s=float(delta.max(initial=0.0)),
                imbalance_s=float(imbalance_s),
                hottest_thread=int(hottest_thread),
                retries=int(retries),
            )
        )

    def total_s(self) -> float:
        return sum(r.duration_s for r in self.records)

    def hottest(self, k: int = 5) -> List[PhaseRecord]:
        """The k most expensive phases."""
        return sorted(self.records, key=lambda r: r.duration_s, reverse=True)[:k]

    def by_name(self) -> dict[str, float]:
        """Total duration per phase name."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.duration_s
        return out


def render_phases(records: Sequence[PhaseRecord], limit: int | None = 20) -> str:
    """Aligned table of phase records (most expensive first)."""
    from ..bench.report import format_table

    chosen = sorted(records, key=lambda r: r.duration_s, reverse=True)
    if limit is not None:
        chosen = chosen[:limit]
    rows = [
        [r.name, r.requests, f"{r.duration_s * 1e3:.4f}", f"{r.imbalance_s * 1e3:.4f}",
         f"{r.wait_fraction:.2f}", r.hottest_thread, r.retries]
        for r in chosen
    ]
    return format_table(
        ["phase", "requests", "ms", "imbalance ms", "wait frac", "hot thread", "retries"], rows
    )


class ProfileSession:
    """Aggregates the profilers of every runtime created inside a
    :func:`profiled` block."""

    def __init__(self) -> None:
        self.profilers: List[PhaseProfiler] = []

    @property
    def records(self) -> List[PhaseRecord]:
        out: List[PhaseRecord] = []
        for profiler in self.profilers:
            out.extend(profiler.records)
        return out

    def render(self, limit: int | None = 20) -> str:
        return render_phases(self.records, limit)


_ACTIVE_SESSIONS: List[ProfileSession] = []


def current_session() -> "ProfileSession | None":
    """The innermost active :func:`profiled` session, if any."""
    return _ACTIVE_SESSIONS[-1] if _ACTIVE_SESSIONS else None


class profiled:
    """Context manager that profiles every solve run inside it::

        with repro.profiled() as session:
            repro.connected_components(g, machine)
        print(session.render())

    Any :class:`~repro.runtime.runtime.PGASRuntime` constructed while the
    block is active records its collective phases into the session.
    """

    def __enter__(self) -> ProfileSession:
        self.session = ProfileSession()
        _ACTIVE_SESSIONS.append(self.session)
        return self.session

    def __exit__(self, *exc) -> None:
        _ACTIVE_SESSIONS.remove(self.session)
