"""Simulated PGAS runtime substrate.

The paper runs UPC on a real 16-node cluster of SMPs; this package is the
reproduction's substitute: a machine model (:mod:`machine`), a cost model
(:mod:`cost`), per-thread virtual clocks (:mod:`clocks`), blocked shared
arrays (:mod:`shared_array`), per-thread partitioned private data
(:mod:`partitioned`), an execution trace with the paper's six time
categories (:mod:`trace`), and the :class:`PGASRuntime` façade tying them
together (:mod:`runtime`).
"""

from .clocks import ThreadClocks
from .cost import ELEM_BYTES, CostModel
from .machine import (
    CacheParams,
    CpuParams,
    LockParams,
    MachineConfig,
    MemoryParams,
    NetworkParams,
    hps_cluster,
    infiniband_cluster,
    scaled_cache,
    sequential_machine,
    smp_node,
)
from .partitioned import PartitionedArray, even_offsets
from .profiling import (
    PhaseProfiler,
    PhaseRecord,
    ProfileSession,
    profiled,
    render_phases,
)
from .runtime import PGASRuntime
from .shared_array import SharedArray
from .trace import Category, Counters, Trace

__all__ = [
    "CacheParams",
    "Category",
    "CostModel",
    "Counters",
    "CpuParams",
    "ELEM_BYTES",
    "LockParams",
    "MachineConfig",
    "MemoryParams",
    "NetworkParams",
    "PGASRuntime",
    "PartitionedArray",
    "PhaseProfiler",
    "PhaseRecord",
    "ProfileSession",
    "profiled",
    "render_phases",
    "SharedArray",
    "ThreadClocks",
    "Trace",
    "even_offsets",
    "hps_cluster",
    "infiniband_cluster",
    "scaled_cache",
    "sequential_machine",
    "smp_node",
]
