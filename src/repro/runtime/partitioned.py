"""Per-thread partitioned data for the simulated SPMD execution.

In a real UPC program every thread holds private arrays (its slice of the
edge list, its request buffers).  The simulation represents the union of
one private array across all ``s`` threads as a single flat NumPy array
plus an ``offsets`` vector of length ``s + 1``: thread ``i`` owns
``data[offsets[i]:offsets[i+1]]``.  Keeping the segments contiguous in
one array is what lets a "loop over all threads" be a single vectorized
NumPy operation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from .. import kernels
from ..errors import DistributionError
from ..perf import arena
from ..perf import state as perf_state
from ..perf.derived import freeze, memoized

__all__ = ["PartitionedArray", "even_offsets"]

#: Presence-mask slot cap for the vectorized distinct counts; sparser
#: payloads fall back to the ``np.unique`` path.
_DISTINCT_SLOT_CAP = 1 << 26


@memoized(maxsize=512, name="even_offsets")
def _even_offsets(total: int, parts: int) -> np.ndarray:
    base, extra = divmod(total, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:extra] += 1
    offsets = np.zeros(parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return freeze(offsets)


def even_offsets(total: int, parts: int) -> np.ndarray:
    """Offsets that split ``total`` items into ``parts`` near-even
    contiguous segments (the paper partitions edge lists "by dividing the
    edges evenly instead of the vertices")."""
    if parts < 1:
        raise DistributionError(f"need at least one part, got {parts}")
    if total < 0:
        raise DistributionError(f"negative total {total}")
    return _even_offsets(int(total), int(parts))


class PartitionedArray:
    """A flat array split into ``s`` contiguous per-thread segments."""

    __slots__ = ("data", "offsets", "_tids")

    def __init__(self, data: np.ndarray, offsets: np.ndarray) -> None:
        data = np.asarray(data)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 2:
            raise DistributionError("offsets must be a 1-D array of length >= 2")
        if offsets[0] != 0 or offsets[-1] != data.shape[0]:
            raise DistributionError(
                f"offsets must start at 0 and end at len(data)={data.shape[0]}, got "
                f"[{offsets[0]}, ..., {offsets[-1]}]"
            )
        if np.any(np.diff(offsets) < 0):
            raise DistributionError("offsets must be non-decreasing")
        self.data = data
        self.offsets = offsets
        self._tids = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def even(cls, data: np.ndarray, parts: int) -> "PartitionedArray":
        """Split ``data`` evenly into ``parts`` segments."""
        data = np.asarray(data)
        return cls(data, even_offsets(data.shape[0], parts))

    @classmethod
    def from_segments(cls, segments: Sequence[np.ndarray]) -> "PartitionedArray":
        if not segments:
            raise DistributionError("need at least one segment")
        sizes = np.array([np.asarray(seg).shape[0] for seg in segments], dtype=np.int64)
        offsets = np.zeros(len(segments) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        data = np.concatenate([np.asarray(seg) for seg in segments]) if offsets[-1] else (
            np.asarray(segments[0])[:0]
        )
        return cls(data, offsets)

    @classmethod
    def empty_like(cls, parts: int, dtype=np.int64) -> "PartitionedArray":
        return cls(np.empty(0, dtype=dtype), np.zeros(parts + 1, dtype=np.int64))

    @classmethod
    def concat_pairwise(cls, a: "PartitionedArray", b: "PartitionedArray") -> "PartitionedArray":
        """Per-thread concatenation: thread ``i``'s new segment is
        ``a.segment(i)`` followed by ``b.segment(i)``."""
        if a.parts != b.parts:
            raise DistributionError("cannot concat partitions with different part counts")
        if not perf_state.fast_engine_enabled():
            segs = [np.concatenate([a.segment(i), b.segment(i)]) for i in range(a.parts)]
            return cls.from_segments(segs)
        # Interleaved scatter instead of a Python loop of per-segment
        # concatenations; the placement itself is the active kernel
        # backend's `concat_segments`.
        offsets = np.zeros(a.parts + 1, dtype=np.int64)
        np.cumsum(a.sizes() + b.sizes(), out=offsets[1:])
        out = kernels.active_backend().concat_segments(
            a.data, a.offsets, b.data, b.offsets, offsets
        )
        return cls(out, offsets)

    # -- basic accessors --------------------------------------------------------

    @property
    def parts(self) -> int:
        return self.offsets.size - 1

    @property
    def total(self) -> int:
        return int(self.offsets[-1])

    def sizes(self) -> np.ndarray:
        """Per-thread segment lengths."""
        return np.diff(self.offsets)

    def segment(self, i: int) -> np.ndarray:
        """View of thread ``i``'s segment."""
        if not 0 <= i < self.parts:
            raise DistributionError(f"segment index {i} out of range [0, {self.parts})")
        return self.data[self.offsets[i] : self.offsets[i + 1]]

    def segments(self) -> Iterator[np.ndarray]:
        for i in range(self.parts):
            yield self.segment(i)

    def thread_ids(self) -> np.ndarray:
        """For every flat position, the owning thread id.

        The partitioning is immutable, so the fast engine computes this
        once per instance and returns the cached (read-only) vector.
        """
        if not perf_state.fast_engine_enabled():
            return np.repeat(np.arange(self.parts, dtype=np.int64), self.sizes())
        if self._tids is None:
            tids = np.repeat(np.arange(self.parts, dtype=np.int64), self.sizes())
            tids.setflags(write=False)
            self._tids = tids
        return self._tids

    # -- transformations ---------------------------------------------------------

    def with_data(self, data: np.ndarray) -> "PartitionedArray":
        """Same partitioning, new payload (must have identical length)."""
        data = np.asarray(data)
        if data.shape[0] != self.total:
            raise DistributionError(
                f"payload length {data.shape[0]} != partition total {self.total}"
            )
        return PartitionedArray(data, self.offsets)

    def filter(self, mask: np.ndarray) -> "PartitionedArray":
        """Keep only positions where ``mask`` is True, compacting each
        thread's segment in place (the paper's ``compact`` optimization:
        edges internal to a component are dropped from further rounds)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.total:
            raise DistributionError("mask length mismatch")
        if perf_state.fast_engine_enabled():
            # Per-thread kept counts straight from the mask's prefix
            # sums (one cumsum instead of bincount over thread ids).
            offsets = np.zeros(self.parts + 1, dtype=np.int64)
            with arena.lease(self.total + 1, np.int64) as cum:
                cum[0] = 0
                np.cumsum(mask, out=cum[1:])
                np.cumsum(cum[self.offsets[1:]] - cum[self.offsets[:-1]], out=offsets[1:])
        else:
            kept_per_thread = np.bincount(self.thread_ids()[mask], minlength=self.parts)
            offsets = np.zeros(self.parts + 1, dtype=np.int64)
            np.cumsum(kept_per_thread, out=offsets[1:])
        return PartitionedArray(self.data[mask], offsets)

    def segment_sums(self, values: np.ndarray | None = None) -> np.ndarray:
        """Per-thread sum of ``values`` (or of the payload itself)."""
        vals = self.data if values is None else np.asarray(values)
        if vals.shape[0] != self.total:
            raise DistributionError("values length mismatch")
        return np.bincount(self.thread_ids(), weights=vals.astype(np.float64), minlength=self.parts)

    def segment_distinct(self) -> np.ndarray:
        """Number of distinct values in each segment (vectorized).

        Used by the cost model's cold-miss bound: a request vector's
        cache footprint is governed by its *distinct* targets, not its
        length.  Requires a non-negative integer payload.
        """
        if self.total == 0:
            return np.zeros(self.parts, dtype=np.int64)
        vals = self.data.astype(np.int64)
        vmin = int(vals.min())
        vrange = int(vals.max()) - vmin + 1
        slots = self.parts * vrange
        if perf_state.fast_engine_enabled() and slots <= _DISTINCT_SLOT_CAP:
            # Presence-mask counting (backend-dispatched): mark each
            # (thread, value) slot, then count marks per thread row.
            return kernels.active_backend().segment_distinct(
                self.thread_ids(), vals, self.parts, vmin, vrange
            )
        key = self.thread_ids() * np.int64(vrange) + (vals - vmin)
        uniq = np.unique(key)
        return np.bincount(uniq // vrange, minlength=self.parts)

    def segment_counts_where(self, mask: np.ndarray) -> np.ndarray:
        """Per-thread count of True entries in ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.total:
            raise DistributionError("mask length mismatch")
        return np.bincount(self.thread_ids()[mask], minlength=self.parts)

    def concat_payloads(self, others: Iterable["PartitionedArray"]) -> List[np.ndarray]:
        """Convenience for tests: materialize each thread's segment."""
        return [seg.copy() for seg in self.segments()]

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionedArray(parts={self.parts}, total={self.total}, dtype={self.data.dtype})"
