"""Machine description for the simulated PGAS cluster.

The paper's platform is a cluster of 16 IBM P575+ nodes (16 CPUs each,
1.9 GHz, 64 GB DDR2) connected by a dual-plane 2 GB/s High Performance
Switch.  We cannot run UPC on that hardware, so the reproduction executes
the algorithms on a *simulated* cluster: every algorithm manipulates real
NumPy data, while time is charged to per-thread virtual clocks according
to a cost model parameterized by this machine description.

The parameters are grouped the same way the paper's Section III analysis
groups them:

* network — latency ``L``, bandwidth ``B``, plus the software per-message
  overhead and congestion behaviour the paper discusses qualitatively;
* memory — latency ``L_M`` and bandwidth ``B_M`` (the paper quotes DDR3
  ~9 ns for its analytic estimate; real random-access DRAM latency on the
  P575+ generation is closer to 90 ns — both presets are provided);
* cache — a single modeled cache level per thread (the paper tunes its
  ``t'`` parameter so blocks fit "a certain level cache hierarchy, e.g. L2");
* cpu — a scalar cost per simple ALU operation;
* locks — acquisition/contention parameters for the MST-SMP baseline.

Presets mirror the paper's machines; see :func:`hps_cluster`,
:func:`smp_node`, and :func:`sequential_machine`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import ConfigError

__all__ = [
    "NetworkParams",
    "MemoryParams",
    "CacheParams",
    "CpuParams",
    "LockParams",
    "MachineConfig",
    "hps_cluster",
    "infiniband_cluster",
    "smp_node",
    "sequential_machine",
    "scaled_cache",
]


@dataclass(frozen=True)
class NetworkParams:
    """Inter-node network parameters.

    Attributes
    ----------
    latency:
        One-way network latency ``L`` in seconds for a message between two
        nodes (HPS MPI-level latency is on the order of 5 us).
    bandwidth:
        Peak point-to-point bandwidth ``B`` in bytes/second (HPS: 2 GB/s).
    msg_overhead:
        Software (runtime) overhead per coalesced message in seconds.
        RDMA transfers skip it.
    fine_overhead:
        Extra software overhead per *fine-grained* blocking access (the
        UPC runtime's per-dereference handling — "software handling of
        communication" in the paper's Section III).  A blocking get is a
        full round trip, so it additionally pays ``2 * latency``.
    fine_congestion:
        Multiplier on fine-grained traffic modeling the "network
        congestion incurred by numerous small messages" the paper cites:
        per-element messages swamp switch buffers and remote handlers in
        a way coalesced transfers do not.
    incast_threshold:
        Number of simultaneously communicating threads above which the
        all-to-all setup traffic collapses the switch.  Models the
        paper's observation that the burst of ``s^2`` short messages in
        Algorithm 2's step 3 "overwhelms the cluster" at 256 threads.
    incast_exponent, incast_amplitude:
        Shape and magnitude of the collapse:
        ``factor = 1 + amplitude * ((s - threshold)/threshold)**exponent``.
        The amplitude is the model's one *fitted* constant, calibrated so
        the 8 -> 16 threads/node transition reproduces the paper's
        measured ~10x degradation (incast goodput collapse of this
        magnitude is well documented for bursty many-to-many traffic).
    linear_order_factor:
        Slowdown multiplier applied to bulk-transfer time when the
        *linear* (non-circular) communication schedule is used: every
        thread targets the same peer at the same step, halving effective
        bandwidth.  The paper measures "communication time reduced by a
        factor of 2 with circular"; the default reproduces that.
    """

    latency: float = 5.0e-6
    bandwidth: float = 2.0e9
    msg_overhead: float = 1.0e-6
    fine_overhead: float = 8.0e-6
    fine_congestion: float = 2.0
    incast_threshold: int = 128
    incast_exponent: float = 2.0
    incast_amplitude: float = 2000.0
    linear_order_factor: float = 2.0

    def validate(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0 or self.msg_overhead < 0:
            raise ConfigError(f"invalid network parameters: {self}")
        if self.fine_overhead < 0 or self.fine_congestion < 1.0:
            raise ConfigError(f"invalid fine-grained parameters: {self}")
        if self.incast_threshold < 1 or self.incast_exponent < 0 or self.incast_amplitude < 0:
            raise ConfigError(f"invalid incast parameters: {self}")
        if self.linear_order_factor < 1.0:
            raise ConfigError("linear_order_factor must be >= 1")


@dataclass(frozen=True)
class MemoryParams:
    """Node-local memory parameters (``L_M``, ``B_M`` in the paper)."""

    latency: float = 9.0e-8
    bandwidth: float = 5.0e9

    def validate(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigError(f"invalid memory parameters: {self}")


@dataclass(frozen=True)
class CacheParams:
    """Single modeled cache level per thread.

    The analytic working-set model in :mod:`repro.scheduling.cache_model`
    uses ``size_bytes`` and ``line_bytes``; the exact simulator in
    :mod:`repro.scheduling.cache_sim` additionally uses associativity.
    """

    size_bytes: int = 1_875_000  # P575+ (POWER5+) L2 per core, ~1.875 MB
    line_bytes: int = 128
    associativity: int = 8

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigError(f"invalid cache parameters: {self}")
        if self.line_bytes > self.size_bytes:
            raise ConfigError("cache line larger than cache")

    @property
    def num_lines(self) -> int:
        return max(1, self.size_bytes // self.line_bytes)


@dataclass(frozen=True)
class CpuParams:
    """Scalar compute cost.

    ``op_time`` is the charged time per simple vectorizable ALU operation
    (compare, add, index computation).  ``intrinsic_factor`` is the
    multiplier applied to target-thread-id computation when the UPC
    compiler intrinsic is used instead of direct arithmetic (removed by
    the paper's ``id`` optimization), and ``upc_deref_factor`` the
    multiplier on local shared-pointer dereferences that private pointer
    arithmetic avoids (the ``localcpy`` optimization).
    """

    op_time: float = 1.0e-9
    intrinsic_factor: float = 8.0
    #: An un-cast local dereference of a shared pointer enters the UPC
    #: runtime for affinity resolution — tens of cycles, not a plain
    #: load.  (What the ``localcpy`` optimization eliminates; calibrated
    #: so the Fig. 5 Copy-category reduction lands near the paper's ~2x.)
    upc_deref_factor: float = 12.0

    def validate(self) -> None:
        if self.op_time <= 0:
            raise ConfigError(f"invalid cpu parameters: {self}")
        if self.intrinsic_factor < 1 or self.upc_deref_factor < 1:
            raise ConfigError("compiler overhead factors must be >= 1")


@dataclass(frozen=True)
class LockParams:
    """Fine-grained lock costs for the MST-SMP baseline.

    The paper attributes MST-SMP's poor showing on 100M-vertex inputs
    "largely due to the locking overhead with using 100M locks":
    initialization touches every lock once, and every min-edge update
    attempt pays an acquire/release pair plus a cache-line transfer when
    contended.
    """

    init_time: float = 5.0e-8
    acquire_time: float = 1.5e-7
    contention_time: float = 4.0e-7

    def validate(self) -> None:
        if min(self.init_time, self.acquire_time, self.contention_time) < 0:
            raise ConfigError(f"invalid lock parameters: {self}")


@dataclass(frozen=True)
class MachineConfig:
    """A simulated cluster of SMP nodes.

    Parameters
    ----------
    nodes:
        Number of nodes ``p``.
    threads_per_node:
        Number of threads per node ``t``.  The paper's ``s = p * t`` total
        thread count is :attr:`total_threads`.
    network, memory, cache, cpu, locks:
        Parameter groups; see the individual dataclasses.
    barrier_base, barrier_per_thread:
        Cost of a full barrier: ``barrier_base + barrier_per_thread *
        log2(s)`` (dissemination barrier).
    name:
        Human-readable label used in benchmark reports.
    """

    nodes: int = 16
    threads_per_node: int = 16
    network: NetworkParams = field(default_factory=NetworkParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    cache: CacheParams = field(default_factory=CacheParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    locks: LockParams = field(default_factory=LockParams)
    barrier_base: float = 2.0e-6
    barrier_per_thread: float = 1.0e-6
    #: Scale applied to *per-call* costs: coalesced message latencies,
    #: all-to-all setup, allreduces, barriers.  Benchmarks that shrink the
    #: paper's inputs by a factor f also set this to f, because per-call
    #: costs are incurred a constant number of times per collective while
    #: per-element costs shrink with the input — without this, a scaled
    #: input sits in a latency-bound regime the paper's machine was never
    #: in.  Per-element and fine-grained per-access costs are NOT scaled.
    per_call_scale: float = 1.0
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.threads_per_node < 1:
            raise ConfigError(
                f"machine needs >=1 node and >=1 thread per node, got "
                f"nodes={self.nodes}, threads_per_node={self.threads_per_node}"
            )
        if self.barrier_base < 0 or self.barrier_per_thread < 0:
            raise ConfigError("barrier costs must be non-negative")
        if self.per_call_scale <= 0:
            raise ConfigError("per_call_scale must be positive")
        self.network.validate()
        self.memory.validate()
        self.cache.validate()
        self.cpu.validate()
        self.locks.validate()

    # -- derived quantities -------------------------------------------------

    @property
    def total_threads(self) -> int:
        """``s = p * t``."""
        return self.nodes * self.threads_per_node

    @property
    def is_distributed(self) -> bool:
        """True when remote (inter-node) traffic is possible."""
        return self.nodes > 1

    def node_of_thread(self, thread: int) -> int:
        """Node hosting global thread id ``thread`` (threads are laid out
        node-major, matching UPC's blocked THREADS layout)."""
        if not 0 <= thread < self.total_threads:
            raise ConfigError(f"thread id {thread} out of range [0, {self.total_threads})")
        return thread // self.threads_per_node

    def barrier_time(self, participants: int | None = None) -> float:
        """Modeled cost of a barrier among ``participants`` threads."""
        s = self.total_threads if participants is None else participants
        if s <= 1:
            return 0.0
        return (self.barrier_base + self.barrier_per_thread * math.log2(s)) * self.per_call_scale

    def with_(self, **updates: Any) -> "MachineConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **updates)

    def describe(self) -> str:
        """One-line summary used by the benchmark harness."""
        return (
            f"{self.name}: {self.nodes} node(s) x {self.threads_per_node} thread(s)"
            f" (s={self.total_threads}), L={self.network.latency * 1e6:.2f}us,"
            f" B={self.network.bandwidth / 1e9:.1f}GB/s,"
            f" L_M={self.memory.latency * 1e9:.0f}ns,"
            f" B_M={self.memory.bandwidth / 1e9:.1f}GB/s,"
            f" cache={self.cache.size_bytes / 1024:.0f}KB"
        )


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


def hps_cluster(nodes: int = 16, threads_per_node: int = 16, **overrides: Any) -> MachineConfig:
    """The paper's target platform: 16 P575+ nodes on a 2 GB/s HPS."""
    cfg = MachineConfig(
        nodes=nodes,
        threads_per_node=threads_per_node,
        name=f"hps-{nodes}x{threads_per_node}",
    )
    return cfg.with_(**overrides) if overrides else cfg


def infiniband_cluster(nodes: int = 16, threads_per_node: int = 16) -> MachineConfig:
    """The hypothetical machine of the paper's Section III estimate:
    Infiniband (190 ns adapter latency, 4 GB/s) + DDR3 (9 ns)."""
    return MachineConfig(
        nodes=nodes,
        threads_per_node=threads_per_node,
        network=NetworkParams(latency=1.9e-7, bandwidth=4.0e9, msg_overhead=0.0),
        memory=MemoryParams(latency=9.0e-9, bandwidth=4.0e9),
        name=f"ib-{nodes}x{threads_per_node}",
    )


def smp_node(threads: int = 16, **overrides: Any) -> MachineConfig:
    """A single SMP node (the CC-SMP / MST-SMP baseline platform)."""
    cfg = MachineConfig(nodes=1, threads_per_node=threads, name=f"smp-{threads}")
    return cfg.with_(**overrides) if overrides else cfg


def sequential_machine(**overrides: Any) -> MachineConfig:
    """A single thread on a single node (sequential baselines)."""
    cfg = MachineConfig(nodes=1, threads_per_node=1, name="sequential")
    return cfg.with_(**overrides) if overrides else cfg


def scaled_cache(machine: MachineConfig, scale: float) -> MachineConfig:
    """Scale the cache size by ``scale`` (used when benchmark inputs are
    scaled down from the paper's 100M-vertex graphs so that cache-fit
    crossovers — e.g. the Fig. 4 ``t'`` sweep — land in the same relative
    position)."""
    if scale <= 0:
        raise ConfigError("cache scale must be positive")
    new_size = max(machine.cache.line_bytes, int(machine.cache.size_bytes * scale))
    return machine.with_(cache=replace(machine.cache, size_bytes=new_size))
