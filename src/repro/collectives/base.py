"""Shared machinery for the GetD/SetD/SetDMin collectives.

Holds the per-solver :class:`CollectiveContext` (caches target-thread-id
buffers across iterations for the ``ids`` optimization) and the request
pre-processing steps common to reads and writes:

* target-id computation (intrinsic vs direct arithmetic vs cached);
* the ``offload`` filter that drops requests for the known-constant
  ``D[0]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.optimizations import OptimizationFlags
from ..errors import CollectiveError
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.shared_array import SharedArray
from ..runtime.trace import Category

__all__ = ["CollectiveContext", "compute_owner_threads", "OffloadResult", "apply_offload"]


@dataclass
class CollectiveContext:
    """Cross-iteration state for a family of collective calls.

    ``id_cache`` maps a caller-chosen key (e.g. ``"edges.u"``) to the
    owner-thread array previously computed for a request buffer of a
    given length.  The paper's ``id`` optimization: "Noticing that the
    target ids do not change across iteration, we compute them once and
    store them in a global buffer."  The cache is invalidated whenever
    the request buffer changes length (i.e. after ``compact``).
    """

    id_cache: Dict[str, tuple[int, np.ndarray]] = field(default_factory=dict)

    def invalidate(self, key: str | None = None) -> None:
        if key is None:
            self.id_cache.clear()
        else:
            self.id_cache.pop(key, None)


def compute_owner_threads(
    rt: PGASRuntime,
    array: SharedArray,
    indices: PartitionedArray,
    opts: OptimizationFlags,
    ctx: Optional[CollectiveContext] = None,
    cache_key: Optional[str] = None,
) -> np.ndarray:
    """Owner thread of every request, with the ``ids`` cost semantics.

    * without ``ids``: every element pays the compiler-intrinsic cost on
      every call;
    * with ``ids`` but no cache hit: one direct vectorized computation;
    * with ``ids`` and a cache hit (same key, same request length): free.
    """
    sizes = indices.sizes().astype(np.float64)
    if opts.ids and ctx is not None and cache_key is not None:
        hit = ctx.id_cache.get(cache_key)
        if hit is not None and hit[0] == indices.total:
            return hit[1]
    owners = array.owner_thread(indices.data)
    if opts.ids:
        rt.charge(Category.WORK, rt.cost.op_time(sizes))
        if ctx is not None and cache_key is not None:
            ctx.id_cache[cache_key] = (indices.total, owners)
    else:
        rt.charge(Category.WORK, rt.cost.intrinsic_id_time(sizes))
    rt.counters.add(alu_ops=int(indices.total))
    return owners


@dataclass
class OffloadResult:
    """Outcome of the ``offload`` filter on one request partition."""

    indices: PartitionedArray
    owners: np.ndarray
    #: Boolean mask over the *original* flat request array: True = kept.
    kept_mask: np.ndarray
    dropped: int

    def expand(self, served: np.ndarray, fill_value) -> np.ndarray:
        """Re-inflate served values to the original request order,
        filling dropped positions with the known constant."""
        if self.dropped == 0:
            return served
        out = np.empty(self.kept_mask.shape[0], dtype=served.dtype)
        out[self.kept_mask] = served
        out[~self.kept_mask] = fill_value
        return out


def apply_offload(
    rt: PGASRuntime,
    indices: PartitionedArray,
    owners: np.ndarray,
    opts: OptimizationFlags,
    hot_index: int = 0,
) -> OffloadResult:
    """Drop requests for the known-constant hot index (vertex 0).

    "For each thread issuing a GetD operation, it first checks whether
    the index is 0.  If it is, it knows the value already and drops this
    element from the request list."  The check itself is one pass of
    vectorizable compares.
    """
    if owners.shape[0] != indices.total:
        raise CollectiveError("owners array must align with the request partition")
    kept_mask = np.ones(indices.total, dtype=bool)
    if not opts.offload or indices.total == 0:
        return OffloadResult(indices, owners, kept_mask, 0)
    rt.charge(Category.WORK, rt.cost.op_time(indices.sizes().astype(np.float64)))
    kept_mask = indices.data != hot_index
    dropped = int(indices.total - np.count_nonzero(kept_mask))
    if dropped == 0:
        return OffloadResult(indices, owners, kept_mask, 0)
    filtered = indices.filter(kept_mask)
    return OffloadResult(filtered, owners[kept_mask], kept_mask, dropped)
