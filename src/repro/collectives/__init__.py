"""Coalescing collectives: GetD, SetD, SetDMin (paper Section IV-A / V).

These are the paper's mechanism for turning fine-grained shared-memory
access patterns into CGM-style rounds: at most one coalesced message per
thread pair per call, with the serve phase scheduled for cache residency.
"""

from .alltoall import charge_setup, exchange_counts, position_matrix, send_matrix
from .base import CollectiveContext, OffloadResult, apply_offload, compute_owner_threads
from .getd import TransferPlan, build_transfer_plan, getd
from .schedule import (
    circular_schedule,
    is_contention_free,
    linear_schedule,
    max_step_contention,
)
from .setd import setd, setdmin

__all__ = [
    "CollectiveContext",
    "OffloadResult",
    "TransferPlan",
    "apply_offload",
    "build_transfer_plan",
    "charge_setup",
    "circular_schedule",
    "compute_owner_threads",
    "exchange_counts",
    "getd",
    "is_contention_free",
    "linear_schedule",
    "max_step_contention",
    "position_matrix",
    "send_matrix",
    "setd",
    "setdmin",
]
