"""SetD and SetDMin: coordinated parallel writes.

``SetD`` implements *arbitrary* concurrent write (several threads may
target one location; one of them wins) and ``SetDMin`` implements
*priority* concurrent write — "when multiple threads compete to write to
the same location the request with the smallest value wins".  SetDMin is
the paper's replacement for MST's fine-grained locks: the min-reduction
happens inside the collective at the owning thread, so no lock is ever
taken.

For determinism the simulation resolves SetD's "arbitrary" outcome with
the same minimum rule — a legal arbitrary-CRCW adjudication that keeps
results bit-identical across thread counts (the grafting algorithms only
ever *shrink* labels, so min is also what a real execution converges to).

Structure mirrors GetD with the transfer direction reversed: requesters
ship coalesced ``(index, value)`` pairs to owners, who apply them to
their local block.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.optimizations import OptimizationFlags
from ..errors import CollectiveError
from ..integrity.monitor import guard_payload
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.shared_array import SharedArray
from ..runtime.trace import Category
from ..scheduling.virtual_threads import charge_local_serve
from .alltoall import exchange_counts
from .base import CollectiveContext, apply_offload, compute_owner_threads
from .getd import (
    build_transfer_plan,
    charge_shared_memory_serve,
    charge_sort,
    charge_transfers,
    owner_distinct_counts,
)

__all__ = ["setd", "setdmin"]


def _scatter_collective(
    rt: PGASRuntime,
    array: SharedArray,
    indices: PartitionedArray,
    values: np.ndarray,
    opts: OptimizationFlags,
    ctx: Optional[CollectiveContext],
    cache_key: Optional[str],
    tprime: int,
    sort_method: str,
    drop_hot: bool,
    hot_index: int,
    combine: str = "min",
    record_words: int = 2,
    packed_payload: bool = False,
) -> int:
    if indices.parts != rt.s:
        raise CollectiveError(
            f"request partition has {indices.parts} parts but the machine has {rt.s} threads"
        )
    values = np.asarray(values)
    if values.shape[0] != indices.total:
        raise CollectiveError("values must align with the request partition")
    rt.counters.add(collective_calls=1)
    _profile_before = rt.phase_start()

    owners = compute_owner_threads(rt, array, indices, opts, ctx, cache_key)
    if opts.offload and drop_hot:
        off = apply_offload(rt, indices, owners, opts, hot_index)
        values = values[off.kept_mask] if off.dropped else values
    else:
        off = apply_offload(rt, indices, owners, OptimizationFlags.none(), hot_index)

    charge_sort(rt, off.indices.sizes(), opts, sort_method)
    if rt.analyzer is not None:
        # Coordinated write: adjudicated at the owner inside the
        # collective, so it is exempt from the race analysis.
        rt.analyzer.record_collective(
            array, "w", off.indices.total, phase=f"setd[{cache_key or 'dyn'}]"
        )

    if rt.machine.nodes == 1:
        # Shared-memory SetD: each thread applies its own grouped updates
        # directly, block by block.
        charge_shared_memory_serve(rt, array, off.indices, tprime)
        rt.barrier()
    else:
        smat, _pmat = exchange_counts(rt, off.indices, off.owners, opts.hierarchical)
        # Requester -> owner: (index, value) pairs by default; MST ships
        # wider records (key + endpoints + edge id) via record_words.
        pair_bytes = record_words * array.nbytes_per_elem
        plan = build_transfer_plan(rt, smat, charge_to_owner=False, hierarchical=opts.hierarchical)
        charge_transfers(rt, plan, opts, pair_bytes)
        # Owners apply the received updates to their local block.
        received = smat.sum(axis=1)
        charge_local_serve(
            rt,
            received,
            array.local_sizes().astype(np.float64),
            tprime,
            opts.localcpy,
            category=Category.COPY,
            bytes_per=array.nbytes_per_elem,
            distinct=owner_distinct_counts(array, off.indices.data, rt.s),
        )
        rt.barrier()

    rt.phase_end(f"setd[{cache_key or 'dyn'}]", indices.total, _profile_before)
    if rt.machine.nodes > 1:
        # The requester -> owner wire leg (indices travel checksummed in
        # the same records; the value/key field is the corruptible part).
        values = guard_payload(
            rt,
            values,
            off.indices.sizes(),
            record_words * array.nbytes_per_elem,
            domain=array.size,
            packed=packed_payload,
        )
    if combine == "min":
        changed = array.scatter_min(off.indices.data, values)
    elif combine == "store_min":
        changed = array.scatter_store_min(off.indices.data, values)
    else:
        raise CollectiveError(f"unknown combine mode {combine!r}; use 'min' or 'store_min'")
    if rt.integrity is not None:
        rt.integrity.note_write(array, off.indices.data)
    return changed


def setd(
    rt: PGASRuntime,
    array: SharedArray,
    indices: PartitionedArray,
    values: np.ndarray,
    opts: OptimizationFlags = OptimizationFlags.none(),
    ctx: Optional[CollectiveContext] = None,
    cache_key: Optional[str] = None,
    tprime: int = 1,
    sort_method: str = "count",
    drop_hot: bool = False,
    hot_index: int = 0,
    combine: str = "min",
    record_words: int = 2,
) -> int:
    """Arbitrary concurrent write collective.

    ``drop_hot=True`` extends the ``offload`` optimization to writes: the
    caller asserts that writes targeting ``hot_index`` are no-ops (true
    for grafting — labels only shrink and ``D[0] == 0`` is minimal), so
    they are dropped before communication.

    ``combine`` chooses the deterministic arbitrary-CRCW adjudication:
    ``'min'`` (never increases a stored value; correct for grafting) or
    ``'store_min'`` (plain store of the minimum proposal; needed by
    Shiloach-Vishkin's stagnant-star hook, which may raise a label).
    Returns the number of locations whose value changed.
    """
    return _scatter_collective(
        rt, array, indices, values, opts, ctx, cache_key, tprime, sort_method,
        drop_hot, hot_index, combine, record_words,
    )


def setdmin(
    rt: PGASRuntime,
    array: SharedArray,
    indices: PartitionedArray,
    values: np.ndarray,
    opts: OptimizationFlags = OptimizationFlags.none(),
    ctx: Optional[CollectiveContext] = None,
    cache_key: Optional[str] = None,
    tprime: int = 1,
    sort_method: str = "count",
    drop_hot: bool = False,
    hot_index: int = 0,
    record_words: int = 2,
    packed_payload: bool = False,
) -> int:
    """Priority (minimum) concurrent write collective — the lock-free
    replacement for MST's per-supervertex locks.  ``record_words`` sizes
    the shipped record (MST sends key + endpoints + edge id);
    ``packed_payload=True`` tells the silent-fault layer the values are
    packed ``(weight << 32) | position`` keys, so injected wire flips
    stay confined to the weight field (silent-wrong, never a crash).
    Returns the number of locations whose value changed."""
    return _scatter_collective(
        rt, array, indices, values, opts, ctx, cache_key, tprime, sort_method,
        drop_hot, hot_index, "min", record_words, packed_payload,
    )
