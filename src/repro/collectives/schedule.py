"""Communication orderings: linear vs circular (the ``circular`` opt).

"If all threads initiate communication between themselves and others in
the order of 0, 1, ..., s-1, at step i thread i has to service O(s)
requests. ... We orchestrate the communication pattern so that each
thread starts with itself and wraps around using modulo arithmetic in
the order i, i+1, ..., (i+s) mod s.  In this manner, in each loop step a
thread is only serving one request."

The *cost* consequence (2x communication time for the linear order) is
carried by :meth:`repro.runtime.cost.CostModel.bulk_transfer_time`'s
``linear_order`` factor; this module constructs the actual schedules so
tests can verify the structural claim — the circular order is a perfect
matching at every step, the linear order is an s-way incast.
"""

from __future__ import annotations

import numpy as np

from ..errors import CollectiveError
from ..perf.derived import freeze, memoized

__all__ = ["linear_schedule", "circular_schedule", "max_step_contention", "is_contention_free"]


@memoized(maxsize=64, name="linear_schedule")
def _linear_schedule(s: int) -> np.ndarray:
    return freeze(np.tile(np.arange(s, dtype=np.int64), (s, 1)))


def linear_schedule(s: int) -> np.ndarray:
    """``order[i, step]``: peer contacted by thread ``i`` at ``step``
    under the naive order — everyone walks 0, 1, ..., s-1 together.

    Pure in ``s``, so the order matrix is memoized (and read-only)."""
    if s < 1:
        raise CollectiveError("need s >= 1")
    return _linear_schedule(int(s))


@memoized(maxsize=64, name="circular_schedule")
def _circular_schedule(s: int) -> np.ndarray:
    i = np.arange(s, dtype=np.int64)[:, None]
    step = np.arange(s, dtype=np.int64)[None, :]
    return freeze((i + step) % s)


def circular_schedule(s: int) -> np.ndarray:
    """The paper's order: thread ``i`` contacts ``(i + step) mod s``.

    Pure in ``s``, so the order matrix is memoized (and read-only)."""
    if s < 1:
        raise CollectiveError("need s >= 1")
    return _circular_schedule(int(s))


def max_step_contention(order: np.ndarray) -> int:
    """Worst-case number of threads targeting one peer in any step."""
    order = np.asarray(order)
    if order.ndim != 2 or order.shape[0] != order.shape[1]:
        raise CollectiveError("schedule must be an s x s matrix")
    s = order.shape[0]
    worst = 0
    for step in range(s):
        counts = np.bincount(order[:, step], minlength=s)
        worst = max(worst, int(counts.max()))
    return worst


def is_contention_free(order: np.ndarray) -> bool:
    """True when every step is a perfect matching (each peer contacted by
    exactly one thread)."""
    return max_step_contention(order) == 1
