"""The GetD collective: coordinated parallel reads (paper's Algorithm 2).

``GetD(D, indices)`` fetches ``D[indices]`` for every thread's private
request buffer in one coalesced round:

1. each thread sorts its requests by target thread id (count sort);
2. threads exchange request counts and deposit positions
   (SMatrix/PMatrix — the all-to-all setup phase);
3. barrier;
4. each thread serves the requests against its local block (optionally
   through ``t'`` virtual threads so the block is cache-resident) and
   ships one coalesced message per requesting thread;
5. each thread permutes the received elements back to request order.

Communication drops from one message per element (naive translation) to
at most one message per thread pair per call — "applying communication
coalescing in effect simulates a shared-memory algorithm on CGM".

The simulation executes the data movement with one vectorized gather and
charges each phase to the clocks/trace exactly as decomposed above, so
hot spots (all requests hitting the owner of ``D[0]``) show up as real
clock skew on the owning thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import kernels
from ..core.optimizations import OptimizationFlags
from ..errors import CollectiveError
from ..integrity.monitor import guard_payload
from ..perf import state as perf_state
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.shared_array import SharedArray
from ..runtime.trace import Category
from ..scheduling.virtual_threads import charge_local_serve
from .alltoall import exchange_counts
from .base import CollectiveContext, apply_offload, compute_owner_threads

__all__ = ["getd", "TransferPlan", "charge_sort", "charge_transfers", "charge_permute_back"]


@dataclass(frozen=True)
class TransferPlan:
    """Bulk-transfer volumes derived from an SMatrix.

    All arrays are per-thread (length ``s``).  ``remote_*`` counts cross
    *nodes*; ``peer_*`` counts cross threads within one node (flat UPC
    cannot aggregate those — they remain distinct memputs, but move at
    memory speed); ``self_elems`` stay within the thread.
    """

    remote_elems: np.ndarray
    remote_msgs: np.ndarray  # float: hierarchical plans share node messages across threads
    peer_elems: np.ndarray
    self_elems: np.ndarray


def build_transfer_plan(
    rt: PGASRuntime,
    smat: np.ndarray,
    charge_to_owner: bool,
    hierarchical: bool = False,
) -> TransferPlan:
    """Split SMatrix volumes into remote / same-node-peer / self parts.

    ``charge_to_owner=True`` attributes each pair's traffic to the owner
    (data flows owner -> requester: GetD); ``False`` attributes it to the
    requester (requester -> owner: SetD).

    ``hierarchical=True`` aggregates each node's payload toward a peer
    node into ONE message (the paper's future-work proposal; flat UPC
    "messages from threads on the same node can not be easily
    aggregated"), so the per-thread message count drops from up to
    ``s - t`` to ``(p - 1) / t``.
    """
    s = rt.s
    if smat.shape != (s, s):
        raise CollectiveError(f"SMatrix must be ({s},{s}), got {smat.shape}")
    t = rt.machine.threads_per_node
    owner_node = np.arange(s) // t
    same_node = owner_node[:, None] == owner_node[None, :]
    same_thread = np.eye(s, dtype=bool)
    remote = ~same_node
    peer = same_node & ~same_thread

    axis = 1 if charge_to_owner else 0
    remote_elems = np.where(remote, smat, 0).sum(axis=axis)
    if hierarchical:
        # One aggregated message per (node, peer-node) pair with traffic,
        # shared evenly by the node's threads.
        p = rt.machine.nodes
        node_mat = smat.reshape(p, t, p, t).sum(axis=(1, 3))
        off_diag = ~np.eye(p, dtype=bool)
        node_axis = 1 if charge_to_owner else 0
        node_msgs = ((node_mat > 0) & off_diag).sum(axis=node_axis)
        remote_msgs = np.repeat(node_msgs / t, t)
    else:
        remote_msgs = (np.where(remote, smat, 0) > 0).sum(axis=axis).astype(np.float64)
    peer_elems = np.where(peer, smat, 0).sum(axis=axis)
    self_elems = np.where(same_thread, smat, 0).sum(axis=axis)
    return TransferPlan(
        remote_elems.astype(np.int64),
        remote_msgs,
        peer_elems.astype(np.int64),
        self_elems.astype(np.int64),
    )


def charge_sort(
    rt: PGASRuntime, sizes: np.ndarray, opts: OptimizationFlags, sort_method: str
) -> None:
    """Charge the per-thread grouping of requests by target thread."""
    sizes = sizes.astype(np.float64)
    if sort_method == "count":
        rt.charge(Category.SORT, rt.cost.count_sort_time(sizes, rt.s))
    elif sort_method == "quick":
        rt.charge(Category.SORT, rt.cost.comparison_sort_time(sizes))
    else:
        raise CollectiveError(f"unknown sort method {sort_method!r}; use 'count' or 'quick'")
    rt.counters.add(sorted_elements=int(sizes.sum()))


def charge_transfers(
    rt: PGASRuntime,
    plan: TransferPlan,
    opts: OptimizationFlags,
    bytes_per: int,
) -> None:
    """Charge the bulk-transfer phase of a collective."""
    comm = rt.cost.bulk_transfer_time(
        plan.remote_elems,
        plan.remote_msgs,
        bytes_per=bytes_per,
        rdma=opts.rdma,
        linear_order=not opts.circular,
    )
    # Threads with nothing to send pay nothing.
    comm = np.where(plan.remote_elems + plan.remote_msgs > 0, comm, 0.0)
    rt.charge_comm(comm, serialize=True)
    if opts.hierarchical:
        # Staging pass: each thread copies its outgoing elements into the
        # node's aggregated send buffer.
        rt.charge(
            Category.COPY,
            rt.cost.seq_access_time(plan.remote_elems.astype(np.float64), bytes_per),
        )
    # Same-node peer transfers: distinct memputs at memory speed (the flat
    # thread organization cannot aggregate them), plus self copies.
    peer = rt.cost.seq_access_time(plan.peer_elems.astype(np.float64), bytes_per)
    peer = np.where(plan.peer_elems > 0, peer, 0.0)
    rt.charge(Category.COMM, peer)
    own = rt.cost.seq_access_time(plan.self_elems.astype(np.float64), bytes_per)
    own = np.where(plan.self_elems > 0, own, 0.0)
    rt.charge(Category.COPY, own)
    rt.counters.add(
        remote_messages=int(round(float(np.asarray(plan.remote_msgs, dtype=np.float64).sum()))),
        remote_bytes=int(plan.remote_elems.sum()) * bytes_per,
    )
    if rt.faults is not None:
        # A dropped coalesced message costs a timeout plus retransmitting
        # the whole payload of that (average-sized) message.
        msgs = np.asarray(plan.remote_msgs, dtype=np.float64)
        avg_bytes = np.where(
            msgs > 0, plan.remote_elems.astype(np.float64) * bytes_per / np.maximum(msgs, 1.0), 0.0
        )
        rt.charge_message_faults(msgs, rt.cost.remote_message_time(avg_bytes, rdma=opts.rdma))


def charge_permute_back(rt: PGASRuntime, sizes: np.ndarray, bytes_per: int) -> None:
    """Step 6: reorder received elements to match the request order.

    The permutation is *known* (recorded during the group phase), so it
    is applied with one level of destination blocking — streamed passes
    plus cold line misses, not full random access."""
    sizes = sizes.astype(np.float64)
    rt.charge(Category.IRREGULAR, rt.cost.grouped_permute_time(sizes, bytes_per))
    rt.counters.add(local_random_accesses=int(sizes.sum()))


def owner_distinct_counts(array: SharedArray, indices: np.ndarray, s: int) -> np.ndarray:
    """Distinct requested elements per owning thread (for the cold-miss
    serve bound): the owner's serve loop touches each distinct element
    once; duplicated requests for component roots hit its cache."""
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return np.zeros(s, dtype=np.int64)
    if perf_state.fast_engine_enabled():
        # Distinct-per-owner counting is the active kernel backend's
        # `owner_distinct` (presence mask + prefix sums on numpy, a
        # compiled scan on numba, indicator-CSR row nnz on scipy) —
        # always cheaper than sorting the much larger request vector.
        return kernels.active_backend().owner_distinct(idx, array.size, array.block, s)
    uniq = np.unique(idx)
    return np.bincount(array.owner_thread(uniq), minlength=s)


def charge_shared_memory_serve(
    rt: PGASRuntime,
    array: SharedArray,
    indices,
    tprime: int,
    category: str = Category.COPY,
) -> None:
    """Single-node (shared-memory) GetD/SetD serve phase.

    On one SMP node there is no owner side: after grouping, each thread
    gathers (or scatters) its *own* requests directly, visiting the
    shared array one block at a time, so the working set is the smaller
    of ``block / t'`` and the requests' distinct-target footprint.  No
    SMatrix, no transfers, no serve hotspot — this is the "shared-memory
    versions of GetD and SetD" of the paper's Fig. 4 experiment.
    """
    sizes = indices.sizes().astype(np.float64)
    bytes_per = array.nbytes_per_elem
    total_bytes = float(array.size * bytes_per)
    if tprime > 1:
        rt.charge(Category.SORT, rt.cost.virtual_scan_time(sizes, tprime, bytes_per))
        rt.counters.add(sorted_elements=int(sizes.sum()))
    distinct = indices.segment_distinct().astype(np.float64)
    ws = rt.cost.distinct_working_set(distinct, total_bytes, rt.s * tprime)
    rt.charge(
        category,
        rt.cost.gather_time(sizes, distinct, ws, bytes_per, mlp=rt.cost.GATHER_MLP),
    )
    rt.counters.add(local_random_accesses=int(sizes.sum()))


def getd(
    rt: PGASRuntime,
    array: SharedArray,
    indices: PartitionedArray,
    opts: OptimizationFlags = OptimizationFlags.none(),
    ctx: Optional[CollectiveContext] = None,
    cache_key: Optional[str] = None,
    tprime: int = 1,
    sort_method: str = "count",
    hot_value=None,
    hot_index: int = 0,
) -> np.ndarray:
    """Collective read: returns ``array[indices]`` aligned with the
    original flat request order.

    Parameters
    ----------
    indices:
        Per-thread request buffers (each thread requests its segment).
    opts, ctx, cache_key:
        Optimization flags and the cross-iteration id cache.
    tprime:
        Virtual threads per physical thread in the serve phase (Fig. 4).
    sort_method:
        ``'count'`` (production) or ``'quick'`` (the Fig. 3 configuration).
    hot_value, hot_index:
        When ``opts.offload`` and ``hot_value`` is given, requests for
        ``hot_index`` are answered locally with ``hot_value`` instead of
        being sent (valid because the caller knows that location is
        constant — ``D[0] == 0`` in CC/MST).
    """
    if indices.parts != rt.s:
        raise CollectiveError(
            f"request partition has {indices.parts} parts but the machine has {rt.s} threads"
        )
    rt.counters.add(collective_calls=1)
    _profile_before = rt.phase_start()

    owners = compute_owner_threads(rt, array, indices, opts, ctx, cache_key)
    if opts.offload and hot_value is not None:
        off = apply_offload(rt, indices, owners, opts, hot_index)
    else:
        off = apply_offload(rt, indices, owners, OptimizationFlags.none(), hot_index)

    charge_sort(rt, off.indices.sizes(), opts, sort_method)
    if rt.analyzer is not None:
        # Coordinated read: the collective's protocol orders it, so the
        # detector tracks it for phase stats but exempts it from races.
        rt.analyzer.record_collective(
            array, "r", off.indices.total, phase=f"getd[{cache_key or 'dyn'}]"
        )

    if rt.machine.nodes == 1:
        # Shared-memory GetD: no count exchange, no transfers — each
        # thread walks the shared array block by block itself.
        charge_shared_memory_serve(rt, array, off.indices, tprime)
        charge_permute_back(rt, off.indices.sizes(), array.nbytes_per_elem)
        rt.barrier()
    else:
        smat, _pmat = exchange_counts(rt, off.indices, off.owners, opts.hierarchical)
        # Serve phase: each owner thread gathers the requested elements
        # from its local block (working set shrunk by t' and bounded by
        # the distinct-target footprint), then ships them.
        received = smat.sum(axis=1)
        charge_local_serve(
            rt,
            received,
            array.local_sizes().astype(np.float64),
            tprime,
            opts.localcpy,
            category=Category.COPY,
            bytes_per=array.nbytes_per_elem,
            distinct=owner_distinct_counts(array, off.indices.data, rt.s),
        )
        plan = build_transfer_plan(rt, smat, charge_to_owner=True, hierarchical=opts.hierarchical)
        charge_transfers(rt, plan, opts, array.nbytes_per_elem)
        charge_permute_back(rt, off.indices.sizes(), array.nbytes_per_elem)
        rt.barrier()

    rt.phase_end(f"getd[{cache_key or 'dyn'}]", indices.total, _profile_before)
    served = array.gather(off.indices.data)
    if rt.machine.nodes > 1:
        # The owner -> requester wire leg: may suffer (seeded) silent
        # payload flips, may be end-to-end checksummed — see guard_payload.
        served = guard_payload(
            rt, served, off.indices.sizes(), array.nbytes_per_elem, domain=array.size
        )
    if off.dropped:
        return off.expand(served, hot_value)
    return served
