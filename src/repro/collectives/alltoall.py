"""SMatrix/PMatrix setup: the all-to-all phase of Algorithm 2.

Before data moves, every thread must tell every other thread how many
elements it will request and where to deposit them ("Inform all threads
of number of elements and their target locations", steps 3.1-3.3 of the
paper's Algorithm 2).  That is an all-to-all of two small scalars per
thread pair — ``O(s^2)`` short messages in total — and is the phase whose
burst "overwhelms the cluster and the nodes" at 256 threads (Section VI),
producing the paper's 10x degradation from 8 to 16 threads per node.

This module computes the real matrices (vectorized bincount over
(owner, requester) pair keys) and charges the congestion-scaled setup
cost.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..errors import CollectiveError
from ..perf import state as perf_state
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..runtime.trace import Category

__all__ = ["send_matrix", "position_matrix", "charge_setup", "exchange_counts"]


def send_matrix(
    requesters: np.ndarray, owners: np.ndarray, s: int
) -> np.ndarray:
    """``SMatrix[i][j]``: number of elements thread ``i`` (owner) sends to
    thread ``j`` (requester) — equivalently, how many of ``j``'s requests
    target ``i``'s local block."""
    if requesters.shape != owners.shape:
        raise CollectiveError("requesters/owners shape mismatch")
    if requesters.size == 0:
        return np.zeros((s, s), dtype=np.int64)
    if owners.min() < 0 or owners.max() >= s or requesters.min() < 0 or requesters.max() >= s:
        raise CollectiveError("thread id out of range in send matrix")
    if perf_state.fast_engine_enabled():
        # Pair-count packing is the active kernel backend's
        # `exchange_matrix` (fused keys + bincount on numpy, a compiled
        # counting loop on numba, a COO coincidence matrix on scipy).
        return kernels.active_backend().exchange_matrix(requesters, owners, s)
    keys = owners * np.int64(s) + requesters
    return np.bincount(keys, minlength=s * s).reshape(s, s)


def position_matrix(smatrix: np.ndarray) -> np.ndarray:
    """``PMatrix[i][j]``: offset in requester ``j``'s receive buffer where
    owner ``i`` deposits its elements (exclusive prefix sums down each
    requester column, matching steps 3.2-3.3)."""
    cum = np.cumsum(smatrix, axis=0)
    pmat = np.zeros_like(smatrix)
    pmat[1:, :] = cum[:-1, :]
    return pmat


def charge_setup(
    rt: PGASRuntime, participants: int | None = None, hierarchical: bool = False
) -> None:
    """Charge the all-to-all setup: each thread issues ~2(s-1) short
    remote writes (SMatrix and PMatrix entries), congestion-scaled, then
    the barrier of Algorithm 2's step 4.  With ``hierarchical`` (the
    paper's future-work proposal) only node leaders talk across the
    network."""
    s = rt.s if participants is None else participants
    per_thread = rt.cost.alltoall_setup_time(s, hierarchical=hierarchical)
    rt.charge(Category.SETUP, per_thread)
    if hierarchical:
        nodes = rt.machine.nodes
        rt.counters.add(
            remote_messages=2 * nodes * max(nodes - 1, 0),
            remote_bytes=2 * nodes * max(nodes - 1, 0) * rt.machine.threads_per_node**2 * 8,
        )
    else:
        rt.counters.add(
            remote_messages=2 * s * max(s - 1, 0), remote_bytes=2 * s * max(s - 1, 0) * 8
        )
    if rt.faults is not None and rt.machine.nodes > 1:
        # The setup burst's short messages are loss opportunities too.
        t = rt.machine.threads_per_node
        if hierarchical:
            per_thread = 2.0 * max(rt.machine.nodes - 1, 0) / t
        else:
            per_thread = 2.0 * max(s - t, 0)
        rt.charge_message_faults(
            np.full(rt.s, per_thread), rt.cost.remote_message_time(8.0)
        )
    rt.barrier()


def exchange_counts(
    rt: PGASRuntime,
    indices: PartitionedArray,
    owners: np.ndarray,
    hierarchical: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Build and "exchange" the SMatrix/PMatrix for a request partition,
    charging the setup phase.  Returns ``(SMatrix, PMatrix)``."""
    smat = send_matrix(indices.thread_ids(), owners, rt.s)
    pmat = position_matrix(smat)
    charge_setup(rt, hierarchical=hierarchical)
    return smat, pmat
