"""The Liu–Tarjan variant lattice: three independent axes.

Connect axis (how edges propose parent updates; all proposals are
computed from the round-top label snapshot and min-adjudicated):

``parent`` (``p``)
    Parent-connect.  For an edge whose endpoints carry labels
    ``du < dv``, propose ``D[dv] <- du`` (and symmetrically) — the
    *parent* of the larger side is lowered, unconditionally.
``extended`` (``e``)
    Extended-connect: parent-connect plus a direct child write
    ``D[v] <- du`` on the larger side's endpoint itself, so the vertex
    and its old parent both learn the smaller label in one round.
``root`` (``r``)
    Directed-root-connect: propose only when the larger side's label is
    a root (``D[dv] == dv``) — exactly the Bader–Cong grafting condition
    the paper's CC solver uses (:func:`repro.cc.common.graft_proposals`).

Shortcut axis:

``partial`` (``s``)
    One synchronous ``D[v] <- D[D[v]]`` round per iteration (as in SV).
``full`` (``f``)
    Pointer jumping iterated until every tree is a rooted star (as in
    the paper's optimized CC).

Alter axis (optional ``a`` suffix): after the shortcut, replace each
edge ``(u, v)`` by ``(D[u], D[v])`` — subsequent rounds then fetch
labels of labels, which concentrates traffic on low vertex ids (the
hotspot the ``offload`` optimization defuses).

Names follow the grammar ``lt-{c}{s}[a]`` with ``c`` in ``{p, e, r}``
and ``s`` in ``{s, f}`` — e.g. ``lt-rf`` is directed-root-connect +
full shortcut (closest to the paper's CC), ``lt-psa`` is parent-connect
+ partial shortcut + alter (closest to Liu–Tarjan's headline simple
algorithm).  Twelve variants total.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["LTVariant", "parse_variant", "ALL_VARIANTS", "LT_VARIANT_NAMES"]

_CONNECTS = {"p": "parent", "e": "extended", "r": "root"}
_SHORTCUTS = {"s": "partial", "f": "full"}


@dataclass(frozen=True)
class LTVariant:
    """One point of the Liu–Tarjan lattice."""

    connect: str  # "parent" | "extended" | "root"
    shortcut: str  # "partial" | "full"
    alter: bool = False

    def __post_init__(self) -> None:
        if self.connect not in _CONNECTS.values():
            raise ConfigError(
                f"unknown connect rule {self.connect!r}; expected one of"
                f" {sorted(_CONNECTS.values())}"
            )
        if self.shortcut not in _SHORTCUTS.values():
            raise ConfigError(
                f"unknown shortcut rule {self.shortcut!r}; expected one of"
                f" {sorted(_SHORTCUTS.values())}"
            )

    @property
    def name(self) -> str:
        code = self.connect[0] + ("s" if self.shortcut == "partial" else "f")
        return f"lt-{code}{'a' if self.alter else ''}"

    def describe(self) -> str:
        parts = [f"{self.connect}-connect"]
        parts.append("full shortcut" if self.shortcut == "full" else "partial shortcut")
        if self.alter:
            parts.append("alter")
        return " + ".join(parts)


def parse_variant(name: "str | LTVariant") -> LTVariant:
    """``lt-{p|e|r}{s|f}[a]`` -> :class:`LTVariant` (ConfigError on junk)."""
    if isinstance(name, LTVariant):
        return name
    text = str(name)
    code = text[3:] if text.startswith("lt-") else text
    if len(code) in (2, 3) and code[0] in _CONNECTS and code[1] in _SHORTCUTS:
        if len(code) == 2:
            return LTVariant(_CONNECTS[code[0]], _SHORTCUTS[code[1]])
        if code[2] == "a":
            return LTVariant(_CONNECTS[code[0]], _SHORTCUTS[code[1]], alter=True)
    raise ConfigError(
        f"unknown Liu–Tarjan variant {name!r}; expected lt-{{p|e|r}}{{s|f}}[a]"
        f" (e.g. one of {LT_VARIANT_NAMES})"
    )


ALL_VARIANTS: tuple = tuple(
    LTVariant(connect, shortcut, alter)
    for connect in ("parent", "extended", "root")
    for shortcut in ("partial", "full")
    for alter in (False, True)
)

LT_VARIANT_NAMES: tuple = tuple(v.name for v in ALL_VARIANTS)
