"""Phase-composed collective solver for the Liu–Tarjan lattice.

Every variant is the same round skeleton with the three phases swapped
in — connect, shortcut, optional alter — all built from the GetD/SetD
collectives, so each point of the lattice inherits communication
coalescing, the cost model, the race detector, fault injection, and the
integrity machinery without variant-specific code:

1. **Connect** — fetch the round-top labels of both endpoints, compute
   the variant's proposal set from that snapshot, and apply it with one
   min-adjudicated SetD.  All three connect rules only ever propose
   values strictly below the target's vertex id, so ``D`` stays a
   monotone (``D[v] <= v``) rooted forest and ``D[0] == 0`` holds
   throughout — which is exactly what makes the ``offload`` hot-value
   short-circuit and ``drop_hot`` sound for every variant.
2. **Shortcut** — synchronous pointer jumping: one round (``partial``)
   or iterated to all-stars (``full``), with the loop exit decided by a
   uniform flag allreduce.
3. **Alter** — optionally replace the edge endpoints with their current
   labels (two more GetD rounds); later rounds then walk labels of
   labels.

A round with no label movement anywhere implies all-stars *and* no live
proposals, which for all three connect rules implies every edge has
settled (endpoint labels equal) — the termination test is simply "did
anything change", reduced over threads.

Fault tolerance mirrors :func:`repro.cc.collective.solve_cc_collective`:
each round checkpoints the label array and the live edge partitions;
injected crashes and detected corruption restore the checkpoint, resync
the integrity shadows, and replay the lost round.  Round-top invariants
(:meth:`~repro.integrity.monitor.IntegrityMonitor.verify_lt_round`) run
before the save so checkpoints only ever hold invariant-clean state.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..collectives.base import CollectiveContext
from ..collectives.getd import getd
from ..collectives.setd import setd
from ..core.optimizations import OptimizationFlags
from ..core.results import CCResult, SolveInfo
from ..errors import ConvergenceError, FaultError, IntegrityError, NodeLoss, ThreadCrash
from ..faults.checkpoint import RoundCheckpointer
from ..graph.distribute import distribute_edges
from ..graph.edgelist import EdgeList
from ..runtime.machine import MachineConfig, hps_cluster
from ..runtime.partitioned import PartitionedArray
from ..runtime.runtime import PGASRuntime
from ..cc.common import check_converged, graft_proposals
from .variants import LTVariant, parse_variant

__all__ = ["solve_cc_lt", "lt_iteration_bound"]


def lt_iteration_bound(n: int) -> int:
    """Safety bound on Liu–Tarjan rounds.

    The lattice's worst members converge in ``O(log^2 n)`` rounds (the
    partial-shortcut variants halve tree depth only once per round), so
    the shared ``O(log n)`` bound of :func:`repro.cc.common.
    iteration_bound` would misfire on deep inputs like paths; we allow a
    generous quadratic multiple before declaring a semantic bug.
    """
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    return 2 * (log_n + 2) ** 2 + 8


def _check_lt_converged(iteration: int, n: int, what: str) -> None:
    if iteration > lt_iteration_bound(n):
        raise ConvergenceError(
            f"{what} exceeded the {lt_iteration_bound(n)}-iteration safety bound"
            f" for n={n}; this indicates a semantic bug, not a slow input"
        )


def _connect_proposals(
    variant: LTVariant,
    rt: PGASRuntime,
    u_part: PartitionedArray,
    v_part: PartitionedArray,
    du: np.ndarray,
    dv: np.ndarray,
    ddu: "np.ndarray | None",
    ddv: "np.ndarray | None",
) -> tuple:
    """(targets PartitionedArray, values ndarray) for one connect step.

    All rules are snapshot-based and symmetric in the two directions; a
    proposal always carries the *smaller* side's label, so values are
    strictly below their targets and min-adjudication keeps ``D``
    monotone.
    """
    sizes = u_part.sizes().astype(np.float64)
    if variant.connect == "root":
        # Bader–Cong condition: the larger side's label must be a root.
        step = graft_proposals(du, dv, ddu, ddv)
        rt.local_ops(6.0 * sizes)
        return u_part.filter(step.mask).with_data(step.targets), step.values
    cond_uv = du < dv  # lower v's parent (and, extended, v itself)
    cond_vu = dv < du
    mask = cond_uv | cond_vu
    parent_targets = u_part.filter(mask).with_data(np.where(cond_uv, dv, du)[mask])
    parent_values = np.where(cond_uv, du, dv)[mask]
    if variant.connect == "parent":
        rt.local_ops(4.0 * sizes)
        return parent_targets, parent_values
    # Extended-connect: additionally write the smaller label straight to
    # the larger side's endpoint.  One combined SetD keeps the write a
    # single coalesced collective (the extra volume is still charged).
    child_targets = PartitionedArray.concat_pairwise(
        v_part.filter(cond_uv), u_part.filter(cond_vu)
    )
    child_values = PartitionedArray.concat_pairwise(
        u_part.filter(cond_uv).with_data(du[cond_uv]),
        v_part.filter(cond_vu).with_data(dv[cond_vu]),
    )
    targets = PartitionedArray.concat_pairwise(parent_targets, child_targets)
    values = PartitionedArray.concat_pairwise(
        u_part.filter(mask).with_data(parent_values), child_values
    )
    rt.local_ops(6.0 * sizes)
    return targets, values.data


def _shortcut_phase(
    rt: PGASRuntime,
    d,
    opts: OptimizationFlags,
    tprime: int,
    sort_method: str,
    vert_offsets: np.ndarray,
    hot,
    full: bool,
) -> int:
    """Synchronous pointer jumping; returns the number of moved labels.

    ``full`` iterates to all-stars with a uniform allreduce deciding the
    loop exit (the same shape as :func:`repro.cc.collective.
    pointer_jump_to_stars`); ``partial`` applies exactly one round.
    """
    n = d.size
    moved_total = 0
    rounds = 0
    while True:
        rounds += 1
        check_converged(rounds, n, "lt shortcut pointer jumping")
        idxp = PartitionedArray(rt.owner_block_read(d), vert_offsets)
        grand = getd(
            rt, d, idxp, opts, ctx=None, cache_key=None,
            tprime=tprime, sort_method=sort_method, hot_value=hot,
        )
        moved = grand != d.data
        moved_per_thread = PartitionedArray(
            moved.astype(np.int64), vert_offsets
        ).segment_sums()
        rt.owner_block_write(d, grand)
        moved_total += int(moved_per_thread.sum())
        if not full:
            return moved_total
        if not rt.allreduce_flag(moved_per_thread > 0):
            return moved_total


def solve_cc_lt(
    graph: EdgeList,
    machine: MachineConfig | None = None,
    opts: OptimizationFlags = OptimizationFlags.all(),
    tprime: int = 1,
    sort_method: str = "count",
    variant: "LTVariant | str" = "lt-rf",
    faults=None,
    integrity=None,
    resilience=None,
) -> CCResult:
    """Connected components via one Liu–Tarjan lattice variant.

    Produces labels identical to every other CC implementation in this
    package at convergence (each component labeled by its minimum vertex
    id).  ``faults``, ``integrity``, and ``resilience`` behave exactly
    as in :func:`~repro.cc.collective.solve_cc_collective` — the
    checkpoint/replay, verify-and-repair, and loss-recovery loops are
    shared skeleton, not per-variant code.
    """
    variant = parse_variant(variant)
    machine = machine if machine is not None else hps_cluster()
    wall_start = time.perf_counter()
    rt = PGASRuntime(machine, faults=faults, integrity=integrity, resilience=resilience)
    n = graph.n
    impl_name = f"cc-{variant.name}"
    if n == 0:
        info = SolveInfo(machine, impl_name, 0.0, time.perf_counter() - wall_start, 0, rt.trace)
        return CCResult(np.empty(0, dtype=np.int64), info)

    ep = distribute_edges(graph, rt.s)
    u_part, v_part = ep.u, ep.v
    d = rt.shared_array(np.arange(n, dtype=np.int64), name=f"lt.{variant.name}.d")
    rt.protect_array(d)
    if rt.resilience is not None:
        rt.resilience.enroll(d)
    sizes = d.local_sizes()
    vert_offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=vert_offsets[1:])
    ctx = CollectiveContext()
    needs_roots = variant.connect == "root"

    ck = RoundCheckpointer(
        rt,
        enabled=True if (rt.integrity is not None or rt.resilience is not None) else None,
    )
    prev_labels = None
    repairs = 0
    repair_bound = 8 * (4 + int(np.ceil(np.log2(max(n, 2)))))
    iteration = 0
    while True:
        iteration += 1
        hot = 0 if opts.offload else None
        _check_lt_converged(iteration, n, f"{impl_name} rounds")
        try:
            # Round-top invariants run BEFORE the save so the checkpoint
            # only ever holds invariant-clean state to restore into.
            if rt.integrity is not None:
                rt.integrity.verify_lt_round(d, prev=prev_labels)
                prev_labels = rt.owner_block_read(d)
            ck.save(arrays={d.name: d.data}, u_part=u_part, v_part=v_part)
            if rt.resilience is not None:
                rt.resilience.commit_round()
            rt.counters.add(iterations=1)

            # -- connect phase --------------------------------------------
            du = getd(rt, d, u_part, opts, ctx, "edges.u", tprime, sort_method, hot_value=hot)
            dv = getd(rt, d, v_part, opts, ctx, "edges.v", tprime, sort_method, hot_value=hot)
            if opts.compact:
                keep = du != dv
                rt.local_ops(u_part.sizes().astype(np.float64))
                if not keep.all():
                    u_part = u_part.filter(keep)
                    v_part = v_part.filter(keep)
                    du, dv = du[keep], dv[keep]
                    ctx.invalidate()
            ddu = ddv = None
            # The connect rule is fixed per run, so every simulated
            # thread takes the same branch and sync counts stay aligned.
            # repro: waive[CM03] variant config uniform across threads
            if needs_roots:
                ddu = getd(
                    rt, d, u_part.with_data(du), opts, None, None, tprime, sort_method,
                    hot_value=hot,
                )
                ddv = getd(
                    rt, d, v_part.with_data(dv), opts, None, None, tprime, sort_method,
                    hot_value=hot,
                )
            targets, values = _connect_proposals(variant, rt, u_part, v_part, du, dv, ddu, ddv)
            changed = setd(
                rt, d, targets, values, opts, ctx=None, cache_key=None,
                tprime=tprime, sort_method=sort_method,
                drop_hot=True, hot_index=0,
            )

            # -- shortcut phase -------------------------------------------
            moved = _shortcut_phase(
                rt, d, opts, tprime, sort_method, vert_offsets, hot,
                full=variant.shortcut == "full",
            )

            # -- alter phase ----------------------------------------------
            # repro: waive[CM03] variant config uniform across threads
            if variant.alter:
                fu = getd(rt, d, u_part, opts, None, None, tprime, sort_method, hot_value=hot)
                fv = getd(rt, d, v_part, opts, None, None, tprime, sort_method, hot_value=hot)
                u_part = u_part.with_data(fu)
                v_part = v_part.with_data(fv)
                # The cached id buffers describe the old request lists.
                ctx.invalidate()

            done = not rt.allreduce_flag(np.full(rt.s, changed + moved > 0))
            if done and rt.integrity is not None:
                # Termination contract: the forest must have collapsed to
                # stars.  Checked inside the recovery scope so a failure
                # restores and replays like any other detected corruption.
                rt.integrity.verify_lt_round(d, prev=prev_labels, final=True)
        except NodeLoss as loss:
            # Permanent membership change: reconstruct the labels from
            # redundancy, remap onto the post-loss machine, replay.
            recovered = rt.resilience.recover_loss(loss, ck)
            rt, machine, ck = recovered.rt, recovered.machine, recovered.ck
            d = recovered.arrays[d.name]
            u_part, v_part = recovered.state["u_part"], recovered.state["v_part"]
            # The recovered round-top state is the new monotonicity baseline.
            prev_labels = d.data.copy()
            sizes = d.local_sizes()
            vert_offsets = np.zeros(sizes.size + 1, dtype=np.int64)
            np.cumsum(sizes, out=vert_offsets[1:])
            ctx = CollectiveContext()
            iteration -= 1
            continue
        except (ThreadCrash, IntegrityError) as fault:
            state = ck.restore()
            # repro: waive[CM01] checkpoint restore; RoundCheckpointer charges the pass
            d.data[:] = state[d.name]
            u_part, v_part = state["u_part"], state["v_part"]
            # The restored round-top state is the new monotonicity baseline.
            prev_labels = state[d.name].copy()
            if rt.integrity is not None:
                rt.integrity.resync(d)
            if isinstance(fault, IntegrityError):
                rt.counters.add(repairs=1)
                repairs += 1
                if repairs > repair_bound:
                    raise FaultError(
                        f"{impl_name} gave up after {repairs} integrity repairs"
                        " (corruption rate exceeds what replay can absorb)"
                    ) from fault
            ctx.invalidate()
            iteration -= 1
            continue
        if done:
            break

    labels = d.data.copy()
    info = SolveInfo(
        machine, impl_name, rt.elapsed, time.perf_counter() - wall_start, iteration, rt.trace
    )
    return CCResult(labels, info)
