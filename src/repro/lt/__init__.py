"""Liu–Tarjan concurrent-labeling connected components (``repro.lt``).

Liu & Tarjan ("Simple Concurrent Labeling Algorithms for Connected
Components", see PAPERS.md) organize a family of CRCW label-propagation
algorithms as a small lattice: each round composes a *connect* phase
(propose parent updates along edges), a *shortcut* phase (pointer
jumping), and optionally an *alter* phase (replace edge endpoints with
their current labels).  Picking one option per axis yields an algorithm;
this package implements the whole lattice on the repository's GetD/SetD
collectives, so every variant inherits the cost model, the race
detector, fault injection, and the integrity machinery for free.

* :mod:`repro.lt.variants` — the variant lattice (names, parsing).
* :mod:`repro.lt.solver` — the phase-composed collective solver.
"""

from .solver import lt_iteration_bound, solve_cc_lt
from .variants import (
    ALL_VARIANTS,
    LT_VARIANT_NAMES,
    LTVariant,
    parse_variant,
)

__all__ = [
    "ALL_VARIANTS",
    "LTVariant",
    "LT_VARIANT_NAMES",
    "lt_iteration_bound",
    "parse_variant",
    "solve_cc_lt",
]
