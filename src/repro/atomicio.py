"""Crash- and concurrency-safe file writes.

Several subsystems persist small artifacts that other processes read
while they are being rewritten: the tuning :class:`~repro.tuning.cache.
PlanCache`, benchmark ``BENCH_*.json`` reports, and cached benchmark
graphs.  Concurrent soak/service/tune workers may write the same path
at once, so every write goes through the same discipline:

1. write the complete payload to a **unique** temp file in the target
   directory (``tempfile.mkstemp`` — a *fixed* temp name would let
   writer B truncate the file writer A is about to rename, leaving a
   torn result);
2. ``os.replace`` it over the destination — atomic on POSIX and
   Windows, so readers observe either the old complete file or the new
   complete file, never a prefix.

Last rename wins; with deterministic writers (byte-identical payloads
for identical inputs) the winner is indistinguishable anyway.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_bytes"]


def atomic_write_bytes(path: "str | os.PathLike", data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def atomic_write_text(path: "str | os.PathLike", text: str) -> Path:
    """Atomically replace ``path`` with UTF-8 ``text``; returns the path."""
    return atomic_write_bytes(path, text.encode("utf-8"))
