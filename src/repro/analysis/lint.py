"""Static cost-model soundness linter (``python -m repro analyze``).

AST-based rules that keep the simulator's modeled milliseconds honest:
any code path that touches shared data without charging the cost model,
or that can desynchronize the simulated threads, is flagged at review
time rather than discovered as a silently-wrong figure.

Rule catalog
------------
``CM01``  raw subscripted ``.data[...]`` access on a :class:`SharedArray`
          outside the runtime/collectives whitelist (uncharged access =
          unsound modeled time)
``CM02``  raw communication primitive (``gather`` / ``scatter*`` on a
          shared array) in a function that never charges the cost model
``CM03``  unbalanced synchronization along ``if``/``else`` branches in an
          algorithm module (threads would diverge on barrier count)
``ND01``  wall-clock nondeterminism (``time.time`` / ``time.time_ns``)
          in a modeled path (``time.perf_counter`` is exempt — it is the
          *reporting* clock for simulation overhead, never modeled time)
``ND02``  seedless randomness: legacy ``np.random.<dist>()`` calls,
          ``np.random.default_rng()`` with no seed argument, stdlib
          global-state ``random.<dist>()`` samplers, and unseeded
          ``random.Random()`` instances

Waivers
-------
Two spellings, on the offending line, its last line, or the line above::

    before = d.data.copy()  # repro: charged-local (covered by ch pass)
    d.data[:] = state["d"]  # repro: waive[CM01] checkpointer charged restore

``# repro: charged-local`` waives CM01/CM02 (the access is owner-local
and its cost is accounted by an adjacent charge).  ``# repro:
waive[RULE]`` waives any one rule.  Both require a justification.

Shared-array identification is *inference-based*, not type-based: a name
is treated as shared within a function if it is assigned from
``*.shared_array(...)`` / ``SharedArray(...)``, used with owner-affinity
methods (``owner_thread``, ``local_sizes``, ...), or passed as the array
operand of ``getd``/``setd``/``setdmin``.  ``PartitionedArray`` objects
(flat exchange buffers) also expose ``.data`` but never match these
signals, so their accesses are not flagged.  Nested functions inherit
the enclosing function's inferred set (closures over shared arrays are
common in the solvers).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Set

from ..errors import ConfigError
from .config import (
    WALLCLOCK_PARTS,
    WHITELIST_PARTS,
    Waivers,
    display_path,
    is_wallclock,
    is_whitelisted,
)

__all__ = [
    "Finding",
    "run_lint",
    "lint_file",
    "LINT_CATALOG",
    "WHITELIST_PARTS",
    "WALLCLOCK_PARTS",
]

LINT_CATALOG = {
    "CM01": "uncharged subscripted SharedArray .data access outside the runtime whitelist",
    "CM02": "raw comm primitive on a shared array in a function that never charges",
    "CM03": "unbalanced barrier/collective calls along if/else branches",
    "ND01": "wall-clock time source in a modeled path",
    "ND02": "seedless randomness (numpy or stdlib) in a modeled path",
}

#: Constructor / owner-affinity signals that mark a name as shared.
_SHARED_CTORS = {"shared_array", "SharedArray"}
_SHARED_METHODS = {
    "owner_thread",
    "owner_node",
    "local_sizes",
    "local_view",
    "snapshot",
    "scatter_min",
    "scatter_store_min",
}
#: Collectives whose second positional argument is the shared array.
_COLLECTIVE_FNS = {"getd", "setd", "setdmin"}

#: Call names that count as "this function charges the cost model".
_CHARGING_FNS = {
    "local_stream",
    "local_ops",
    "local_random_access",
    "fine_grained_read",
    "fine_grained_write",
    "owner_block_read",
    "owner_block_write",
    "owner_masked_write",
    "owner_indexed_write",
    "shared_array",
    "getd",
    "setd",
    "setdmin",
    # Integrity helpers: each charges digest/invariant passes internally
    # (repro.integrity.monitor), so calling them counts as charging.
    "protect_array",
    "note_write",
    "track",
    "resync",
    "verify_cc_round",
    "verify_star_round",
    "verify_mst_selection",
    "guard_payload",
    "poll_corruption",
}

#: Raw comm primitives (CM02) when invoked on an inferred shared array.
_RAW_COMM = {"gather", "scatter", "scatter_min", "scatter_store_min"}

#: Synchronization calls counted by the CM03 balance check.
_SYNC_FNS = {"barrier", "allreduce_flag", "getd", "setd", "setdmin"}

#: Legacy np.random attributes that are fine (not samplers).
_ND_OK = {"default_rng", "SeedSequence", "Generator", "BitGenerator", "PCG64", "Philox"}

#: Stdlib ``random`` module attributes that are fine when called: class
#: constructors (flagged separately when seedless) and state plumbing —
#: everything else on the module is a global-state sampler.
_STDLIB_RANDOM_OK = {
    "Random",
    "SystemRandom",
    "seed",
    "getstate",
    "setstate",
}


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _call_name(node: ast.Call) -> str:
    """Last component of the called name (``rt.barrier`` -> ``barrier``)."""
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def _infer_shared_names(
    fn: ast.AST, inherited: Set[str], methods: Set[str] = _SHARED_METHODS
) -> Set[str]:
    """Names bound to shared arrays within ``fn`` (plus ``inherited``
    names closed over from the enclosing function).  ``methods`` is the
    owner-affinity signal set — the flow verifier passes a wider one."""
    shared = set(inherited)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _call_name(node.value) in _SHARED_CTORS:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        shared.add(tgt.id)
        elif isinstance(node, ast.Call):
            fn_name = _call_name(node)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in methods
                and isinstance(node.func.value, ast.Name)
            ):
                shared.add(node.func.value.id)
            elif fn_name in _COLLECTIVE_FNS and len(node.args) >= 2:
                arr = node.args[1]
                if isinstance(arr, ast.Name):
                    shared.add(arr.id)
    return shared


def _function_charges(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _CHARGING_FNS or "charge" in name:
                return True
    return False


def _count_syncs(nodes: Sequence[ast.stmt]) -> int:
    count = 0
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and _call_name(node) in _SYNC_FNS:
                count += 1
    return count


def _terminates(nodes: Sequence[ast.stmt]) -> bool:
    """A branch ending in return/raise/break/continue never rejoins the
    other branch, so unequal sync counts cannot diverge threads."""
    if not nodes:
        return False
    return isinstance(nodes[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue))


class _FileLinter(ast.NodeVisitor):
    def __init__(
        self, path: str, source: str, whitelisted: bool, wallclock: bool = False
    ) -> None:
        self.path = path
        self.whitelisted = whitelisted
        self.wallclock = wallclock
        self.waivers = Waivers(source)
        self.findings: List[Finding] = []
        self._shared_stack: List[Set[str]] = [set()]

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if not self.waivers.waives(node, rule):
            self.findings.append(Finding(self.path, getattr(node, "lineno", 0), rule, message))

    # -- scope handling --------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        shared = _infer_shared_names(node, self._shared_stack[-1])
        self._shared_stack.append(shared)
        if not self.whitelisted:
            self._check_raw_comm(node, shared)
        self.generic_visit(node)
        self._shared_stack.pop()

    # -- CM01 ------------------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not self.whitelisted:
            target = node.value
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "data"
                and isinstance(target.value, ast.Name)
                and target.value.id in self._shared_stack[-1]
            ):
                self._emit(
                    node,
                    "CM01",
                    f"raw SharedArray access {target.value.id}.data[...] outside the "
                    "runtime whitelist; route through a charged helper "
                    "(owner_block_*/fine_grained_*/collectives) or waive with "
                    "'# repro: charged-local'",
                )
        self.generic_visit(node)

    # -- CM02 ------------------------------------------------------------------

    def _check_raw_comm(self, fn, shared: Set[str]) -> None:
        if _function_charges(fn):
            return
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RAW_COMM
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in shared
            ):
                self._emit(
                    node,
                    "CM02",
                    f"raw {node.func.attr}() on shared array "
                    f"{node.func.value.id!r} in a function that never charges "
                    "the cost model",
                )

    # -- CM03 ------------------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        if not self.whitelisted:
            body_n = _count_syncs(node.body)
            else_n = _count_syncs(node.orelse)
            if body_n != else_n and not (
                _terminates(node.body) or _terminates(node.orelse)
            ):
                self._emit(
                    node,
                    "CM03",
                    f"branches synchronize unequally ({body_n} vs {else_n} "
                    "barrier/collective calls); simulated threads taking "
                    "different branches would diverge",
                )
        self.generic_visit(node)

    # -- ND01 / ND02 -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if (
            not self.wallclock
            and isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
        ):
            if fn.value.id == "time" and fn.attr in ("time", "time_ns"):
                self._emit(
                    node,
                    "ND01",
                    f"wall-clock time.{fn.attr}() in a modeled path; modeled "
                    "results must not depend on host time",
                )
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "default_rng"
            and not node.args
            and not node.keywords
        ):
            self._emit(
                node,
                "ND02",
                "default_rng() without a seed; pass an explicit seed so "
                "runs are reproducible",
            )
        if (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Attribute)
            and fn.value.attr == "random"
            and isinstance(fn.value.value, ast.Name)
            and fn.value.value.id in ("np", "numpy")
            and fn.attr not in _ND_OK
        ):
            self._emit(
                node,
                "ND02",
                f"legacy global-state np.random.{fn.attr}(); use a seeded "
                "np.random.default_rng(seed) Generator",
            )
        if (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "random"
        ):
            if fn.attr not in _STDLIB_RANDOM_OK:
                self._emit(
                    node,
                    "ND02",
                    f"global-state random.{fn.attr}() draws from the shared "
                    "seedless stream; use a seeded random.Random(seed) "
                    "instance",
                )
            elif fn.attr == "Random" and not node.args and not node.keywords:
                self._emit(
                    node,
                    "ND02",
                    "random.Random() without a seed; pass an explicit seed "
                    "so runs are reproducible",
                )
        self.generic_visit(node)


def lint_file(path: Path) -> List[Finding]:
    source = path.read_text()
    shown = display_path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:  # pragma: no cover - tree is syntax-clean
        return [Finding(shown, err.lineno or 0, "CM00", f"syntax error: {err.msg}")]
    linter = _FileLinter(
        shown,
        source,
        whitelisted=is_whitelisted(path),
        wallclock=is_wallclock(path),
    )
    linter.visit(tree)
    return linter.findings


def run_lint(paths: Sequence[str | Path]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for root in paths:
        root = Path(root)
        if not root.exists():
            raise ConfigError(f"analyze: no such file or directory: {root}")
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_file(file))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
