"""Dynamic epoch race detector for the simulated PGAS runtime.

TSan-style, opt-in sanitizer: the runtime (``PGASRuntime(analyze=True)``
or any runtime built inside an :func:`analyzed` block) reports every
shared-array access to an :class:`EpochRaceDetector`, keyed by *barrier
epoch* — the interval between two successive ``barrier()`` /
``allreduce_flag()`` synchronizations.  When a barrier closes an epoch,
the detector analyzes the epoch's access sets and reports:

* **RA01** — write-write conflicts: two simulated threads wrote
  overlapping locations in one epoch outside a combining (CRCW min)
  operation;
* **RA02** — read-write conflicts: one thread read a location another
  thread wrote in the same epoch, with no barrier ordering them;
* **RA03** — remote-affinity writes that bypassed the collectives: a
  fine-grained (per-element) write whose target lives on another node —
  the naive UPC discipline the paper spends Section IV replacing;
* **RA04** — barrier-count divergence between simulated threads (SPMD
  kernels that synchronize conditionally).

Accesses performed *through* the GetD/SetD/SetDMin collectives are
*coordinated*: the collective's internal protocol (count exchange,
owner-side serve, closing barrier) orders them, so they are exempt from
conflict analysis and only tracked for the report's phase statistics.
Owner-local block updates (the ``owner_block_*`` runtime helpers) are
attributed to the owning thread; since an index has exactly one owner,
owner-attributed accesses can only conflict with accesses issued *by a
different thread* — i.e. fine-grained remote traffic.

The detector is purely observational: it never charges modeled time and
never consumes randomness, so enabling it leaves a run's modeled
milliseconds bit-identical (asserted by the test suite).  On a
:class:`~repro.errors.ThreadCrash` the runtime's recovery replays the
lost round in *fresh* epochs, so crash-and-recover runs produce no
phantom conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "RACE_RULES",
    "RULE_CATALOG",
    "RaceReport",
    "EpochRaceDetector",
    "AnalysisSession",
    "analyzed",
    "current_analysis",
    "render_reports",
]

#: Rules that constitute an actual race (RA03 is a discipline warning:
#: fine-grained remote writes are charged honestly, just slow and
#: unsynchronized by design in the naive translation).
RACE_RULES = ("RA01", "RA02", "RA04")

RULE_CATALOG = {
    "RA01": "write-write conflict on overlapping indices within one barrier epoch",
    "RA02": "read-write conflict on overlapping indices within one barrier epoch",
    "RA03": "remote-affinity write issued outside a collective",
    "RA04": "barrier-count divergence between simulated threads",
}


@dataclass(frozen=True)
class RaceReport:
    """One sanitizer finding, trace-linked by phase and epoch."""

    rule: str
    array: str
    epoch: int
    phases: Tuple[str, ...]
    threads: Tuple[int, ...]
    index_lo: int
    index_hi: int
    locations: int
    message: str

    @property
    def is_race(self) -> bool:
        return self.rule in RACE_RULES

    def render(self) -> str:
        threads = ",".join(str(t) for t in self.threads[:8])
        if len(self.threads) > 8:
            threads += ",…"
        phases = " vs ".join(self.phases[:4]) or "-"
        return (
            f"{self.rule} array={self.array!r} epoch={self.epoch} "
            f"threads={{{threads}}} indices=[{self.index_lo}..{self.index_hi}] "
            f"({self.locations} location(s)) phase {phases}: {self.message}"
        )


class _ArrayLog:
    """Uncoordinated access sets for one shared array in one epoch."""

    __slots__ = (
        "arr",
        "batches",
        "block_read",
        "block_write",
        "block_phases",
        "remote_writes",
        "coll_counts",
    )

    def __init__(self, arr, s: int) -> None:
        self.arr = arr
        # Each batch: (indices, threads, is_write, combining, phase).
        self.batches: List[Tuple[np.ndarray, np.ndarray, bool, bool, str]] = []
        self.block_read = np.zeros(s, dtype=bool)
        self.block_write = np.zeros(s, dtype=bool)
        self.block_phases: set[str] = set()
        # phase -> [count, lo, hi] of remote-affinity uncoordinated writes.
        self.remote_writes: Dict[str, List[int]] = {}
        self.coll_counts: Dict[str, int] = {}


class EpochRaceDetector:
    """Per-runtime access recorder + per-epoch conflict analysis.

    ``max_index_events`` bounds how many individual index events one
    epoch may retain (asynchronous solvers never barrier, so a whole run
    can be one epoch); past the cap the detector keeps aggregate RA03
    accounting but stops storing indices and notes the truncation.
    """

    def __init__(self, max_index_events: int = 4_000_000) -> None:
        self.machine = None
        self.s = 0
        self.epoch = 0
        self.reports: List[RaceReport] = []
        self.max_index_events = int(max_index_events)
        self.truncated_epochs: List[int] = []
        self._logs: Dict[str, _ArrayLog] = {}
        self._epoch_events = 0
        self._arrays = 0
        self._pending_barriers: Optional[np.ndarray] = None
        self._finalized = False

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine) -> None:
        """Bind the detector to a machine shape (idempotent for equal
        shapes; a session reuses one detector per runtime)."""
        if self.machine is None:
            self.machine = machine
            self.s = machine.total_threads
            self._pending_barriers = np.zeros(self.s, dtype=np.int64)

    def name_for(self, arr) -> str:
        name = getattr(arr, "name", None)
        if name:
            return str(name)
        self._arrays += 1
        try:
            arr.name = f"shared{self._arrays}"
            return arr.name
        except (AttributeError, TypeError):  # pragma: no cover - frozen arrays
            return f"shared@{id(arr):x}"

    def register_array(self, arr, name: str | None = None) -> None:
        if name is not None and getattr(arr, "name", None) is None:
            arr.name = name
        self.name_for(arr)

    def _log(self, arr) -> _ArrayLog:
        key = self.name_for(arr)
        log = self._logs.get(key)
        if log is None:
            log = _ArrayLog(arr, self.s or arr.machine.total_threads)
            self._logs[key] = log
        return log

    # -- recording ------------------------------------------------------------

    def record_fine(
        self,
        arr,
        kind: str,
        indices: np.ndarray,
        threads: np.ndarray,
        *,
        combining: bool = False,
        phase: str = "fine-grained",
    ) -> None:
        """An uncoordinated per-element access batch attributed to the
        issuing threads (``kind`` is ``'r'`` or ``'w'``)."""
        idx = np.asarray(indices, dtype=np.int64)
        thr = np.asarray(threads, dtype=np.int64)
        if idx.size == 0:
            return
        log = self._log(arr)
        if kind == "w":
            t = arr.machine.threads_per_node
            owner_nodes = arr.owner_node(idx)
            remote = owner_nodes != (thr // t)
            nremote = int(np.count_nonzero(remote))
            if nremote:
                entry = log.remote_writes.setdefault(phase, [0, int(idx.max()), int(idx.min())])
                entry[0] += nremote
                ridx = idx[remote]
                entry[1] = min(entry[1], int(ridx.min()))
                entry[2] = max(entry[2], int(ridx.max()))
        if self._epoch_events + idx.size > self.max_index_events:
            if not self.truncated_epochs or self.truncated_epochs[-1] != self.epoch:
                self.truncated_epochs.append(self.epoch)
            return
        self._epoch_events += idx.size
        log.batches.append((idx, thr, kind == "w", bool(combining), phase))

    def record_owner_write(self, arr, indices: np.ndarray, *, phase: str = "owner-write") -> None:
        """A write applied by each index's owning thread (owner-local by
        construction; conflicts only with *other* threads' traffic)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        self.record_fine(arr, "w", idx, arr.owner_thread(idx), phase=phase)

    def record_block(self, arr, kind: str, *, phase: str = "owner-block") -> None:
        """Every thread touches its own affinity range (the owner-local
        block helpers); ranges are disjoint across threads."""
        log = self._log(arr)
        target = log.block_write if kind == "w" else log.block_read
        target[:] = True
        log.block_phases.add(phase)

    def record_collective(self, arr, kind: str, count: int, *, phase: str = "collective") -> None:
        """A coordinated access through GetD/SetD/SetDMin — ordered by the
        collective's protocol, tracked only for phase statistics."""
        log = self._log(arr)
        log.coll_counts[phase] = log.coll_counts.get(phase, 0) + int(count)

    def record_thread_barrier(self, thread: int) -> None:
        """An SPMD kernel's *per-thread* barrier arrival.  Use from custom
        kernels whose threads synchronize conditionally; a global
        ``rt.barrier()`` checks the pending arrivals diverge-free."""
        if self._pending_barriers is None:
            self._pending_barriers = np.zeros(max(thread + 1, 1), dtype=np.int64)
        self._pending_barriers[thread] += 1

    # -- epoch lifecycle ------------------------------------------------------

    def on_barrier(self) -> None:
        """Close the current epoch: run conflict analysis and start the
        next epoch.  Called by the runtime on every global barrier."""
        self._check_barrier_divergence()
        self._analyze_epoch()
        self.epoch += 1

    def abort_epoch(self) -> None:
        """Discard the current epoch without analysis (a crashed round is
        replayed from its checkpoint; its partial accesses are void)."""
        self._logs.clear()
        self._epoch_events = 0
        self.epoch += 1

    def finalize(self) -> None:
        """Analyze the trailing open epoch (asynchronous solvers never
        barrier) and flush the divergence check.  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        self._check_barrier_divergence()
        self._analyze_epoch()

    # -- properties ------------------------------------------------------------

    @property
    def races(self) -> List[RaceReport]:
        return [r for r in self.reports if r.is_race]

    @property
    def has_races(self) -> bool:
        return any(r.is_race for r in self.reports)

    # -- analysis --------------------------------------------------------------

    def _check_barrier_divergence(self) -> None:
        pending = self._pending_barriers
        if pending is None or pending.size == 0:
            return
        if pending.max(initial=0) != pending.min(initial=0):
            lo, hi = int(pending.min()), int(pending.max())
            laggards = tuple(int(t) for t in np.flatnonzero(pending == lo))
            self.reports.append(
                RaceReport(
                    rule="RA04",
                    array="-",
                    epoch=self.epoch,
                    phases=("barrier",),
                    threads=laggards,
                    index_lo=lo,
                    index_hi=hi,
                    locations=len(laggards),
                    message=(
                        f"threads reached between {lo} and {hi} barriers inside one "
                        f"epoch; thread(s) {laggards[:8]} are behind"
                    ),
                )
            )
        pending[:] = 0

    def _analyze_epoch(self) -> None:
        for name, log in self._logs.items():
            self._emit_remote_writes(name, log)
            self._analyze_array(name, log)
        self._logs.clear()
        self._epoch_events = 0

    def _emit_remote_writes(self, name: str, log: _ArrayLog) -> None:
        for phase, (count, lo, hi) in sorted(log.remote_writes.items()):
            self.reports.append(
                RaceReport(
                    rule="RA03",
                    array=name,
                    epoch=self.epoch,
                    phases=(phase,),
                    threads=(),
                    index_lo=lo,
                    index_hi=hi,
                    locations=count,
                    message=(
                        f"{count} remote-affinity write(s) bypassed the collectives "
                        "(naive fine-grained discipline)"
                    ),
                )
            )

    def _analyze_array(self, name: str, log: _ArrayLog) -> None:
        if not log.batches:
            return
        idx = np.concatenate([b[0] for b in log.batches])
        thr = np.concatenate([b[1] for b in log.batches])
        is_w = np.concatenate(
            [np.full(b[0].size, b[2], dtype=bool) for b in log.batches]
        )
        comb = np.concatenate(
            [np.full(b[0].size, b[3], dtype=bool) for b in log.batches]
        )
        phases = [b[4] for b in log.batches]
        phase_id = np.concatenate(
            [np.full(b[0].size, i, dtype=np.int64) for i, b in enumerate(log.batches)]
        )

        self._find_fine_conflicts(name, log, idx, thr, is_w, comb, phases, phase_id)
        self._find_block_conflicts(name, log, idx, thr, is_w, phases, phase_id)

    def _emit_conflict(
        self,
        rule: str,
        name: str,
        conflict_idx: np.ndarray,
        threads: np.ndarray,
        phase_names: List[str],
        message: str,
    ) -> None:
        self.reports.append(
            RaceReport(
                rule=rule,
                array=name,
                epoch=self.epoch,
                phases=tuple(dict.fromkeys(phase_names))[:6],
                threads=tuple(int(t) for t in np.unique(threads)[:16]),
                index_lo=int(conflict_idx.min()),
                index_hi=int(conflict_idx.max()),
                locations=int(conflict_idx.size),
                message=message,
            )
        )

    def _find_fine_conflicts(
        self, name, log, idx, thr, is_w, comb, phases, phase_id
    ) -> None:
        # -- RA01: write-write on one index from >=2 threads, not all
        # combining (concurrent CRCW-min writes are a legal adjudication).
        w = is_w
        if np.count_nonzero(w) > 1:
            widx, wthr, wcomb, wph = idx[w], thr[w], comb[w], phase_id[w]
            order = np.argsort(widx, kind="stable")
            widx, wthr, wcomb, wph = widx[order], wthr[order], wcomb[order], wph[order]
            starts = np.flatnonzero(np.r_[True, widx[1:] != widx[:-1]])
            tmin = np.minimum.reduceat(wthr, starts)
            tmax = np.maximum.reduceat(wthr, starts)
            allcomb = np.minimum.reduceat(wcomb.astype(np.int8), starts) == 1
            bad = (tmax != tmin) & ~allcomb
            if bad.any():
                ends = np.r_[starts[1:], widx.size]
                members = np.zeros(widx.size, dtype=bool)
                for g in np.flatnonzero(bad):
                    members[starts[g] : ends[g]] = True
                self._emit_conflict(
                    "RA01",
                    name,
                    widx[starts[bad]],
                    wthr[members],
                    [phases[p] for p in np.unique(wph[members])],
                    "non-combining writes from distinct threads hit the same location",
                )

        # -- RA02: a location written by one thread and read by another.
        if w.any() and (~w).any():
            widx, wthr = idx[w], thr[w]
            ridx, rthr = idx[~w], thr[~w]
            worder = np.argsort(widx, kind="stable")
            widx_s, wthr_s = widx[worder], wthr[worder]
            uniq_w, w_starts = np.unique(widx_s, return_index=True)
            wmin = np.minimum.reduceat(wthr_s, w_starts)
            wmax = np.maximum.reduceat(wthr_s, w_starts)
            pos = np.searchsorted(uniq_w, ridx)
            pos = np.clip(pos, 0, uniq_w.size - 1)
            shared = uniq_w[pos] == ridx
            # Conflict unless the only writer IS the reader.
            conflict = shared & ((wmin[pos] != rthr) | (wmax[pos] != rthr))
            if conflict.any():
                c_idx = np.unique(ridx[conflict])
                involved = np.r_[rthr[conflict], wthr_s[np.isin(widx_s, c_idx)]]
                ph = [phases[p] for p in np.unique(phase_id[~w][conflict])]
                ph += [phases[p] for p in np.unique(phase_id[w][np.isin(widx, c_idx)])]
                self._emit_conflict(
                    "RA02",
                    name,
                    c_idx,
                    involved,
                    ph,
                    "read and write of the same location in one epoch with no "
                    "barrier between them",
                )

    def _find_block_conflicts(self, name, log, idx, thr, is_w, phases, phase_id) -> None:
        """Owner-block accesses (thread i touches its own range) against
        fine events issued by *other* threads."""
        if not (log.block_read.any() or log.block_write.any()) or idx.size == 0:
            return
        owner = log.arr.owner_thread(idx)
        foreign = owner != thr  # fine event issued by a non-owner thread
        if not foreign.any():
            return
        # fine write vs block read/write; fine read vs block write.
        blk_r = log.block_read[owner]
        blk_w = log.block_write[owner]
        ww = foreign & is_w & blk_w
        rw = foreign & ((is_w & blk_r) | (~is_w & blk_w))
        block_ph = sorted(log.block_phases)
        if ww.any():
            self._emit_conflict(
                "RA01",
                name,
                np.unique(idx[ww]),
                np.r_[thr[ww], owner[ww]],
                [phases[p] for p in np.unique(phase_id[ww])] + block_ph,
                "fine-grained write overlaps the owner's block update in the "
                "same epoch",
            )
        if rw.any():
            self._emit_conflict(
                "RA02",
                name,
                np.unique(idx[rw]),
                np.r_[thr[rw], owner[rw]],
                [phases[p] for p in np.unique(phase_id[rw])] + block_ph,
                "fine-grained access overlaps the owner's block update in the "
                "same epoch",
            )

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        return render_reports(self.reports, truncated=bool(self.truncated_epochs))


def render_reports(reports, truncated: bool = False) -> str:
    races = sum(1 for r in reports if r.is_race)
    head = f"sanitizer: {len(reports)} report(s), {races} race(s)"
    lines = [head] + ["  " + r.render() for r in reports]
    if truncated:
        lines.append("  note: index recording truncated in at least one epoch (cap hit)")
    return "\n".join(lines)


class AnalysisSession:
    """Aggregates the detectors of every runtime created inside an
    :func:`analyzed` block."""

    def __init__(self) -> None:
        self.detectors: List[EpochRaceDetector] = []

    def add(self, detector: EpochRaceDetector) -> None:
        self.detectors.append(detector)

    def finalize(self) -> None:
        for det in self.detectors:
            det.finalize()

    @property
    def reports(self) -> List[RaceReport]:
        out: List[RaceReport] = []
        for det in self.detectors:
            out.extend(det.reports)
        return out

    @property
    def races(self) -> List[RaceReport]:
        return [r for r in self.reports if r.is_race]

    @property
    def has_races(self) -> bool:
        return any(r.is_race for r in self.reports)

    def render(self) -> str:
        truncated = any(det.truncated_epochs for det in self.detectors)
        return render_reports(self.reports, truncated=truncated)


_ACTIVE_SESSIONS: List[AnalysisSession] = []


def current_analysis() -> "AnalysisSession | None":
    """The innermost active :func:`analyzed` session, if any."""
    return _ACTIVE_SESSIONS[-1] if _ACTIVE_SESSIONS else None


class analyzed:
    """Context manager that race-checks every solve run inside it::

        with repro.analysis.analyzed() as session:
            repro.connected_components(g, machine)
        assert not session.has_races, session.render()

    Any :class:`~repro.runtime.runtime.PGASRuntime` constructed while the
    block is active records its shared accesses into the session; the
    modeled times are unchanged (the detector only observes).
    """

    def __enter__(self) -> AnalysisSession:
        self.session = AnalysisSession()
        _ACTIVE_SESSIONS.append(self.session)
        return self.session

    def __exit__(self, *exc) -> None:
        _ACTIVE_SESSIONS.remove(self.session)
        self.session.finalize()
