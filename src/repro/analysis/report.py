"""Finding reports: text / json / sarif rendering and the baseline file.

The baseline is the reviewed debt ledger for ``python -m repro
analyze``: a JSON file of known findings that are suppressed on
subsequent runs, so CI gates only on *new* findings.  Entries match on
``(path, rule, message)`` — deliberately not on line number, which
drifts with every unrelated edit — and the file is written sorted so
diffs review cleanly.

Workflow::

    python -m repro analyze src/repro --write-baseline .analysis-baseline.json
    # review + commit the baseline; later runs gate on new findings only
    python -m repro analyze src/repro --baseline .analysis-baseline.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigError
from .lint import Finding

__all__ = [
    "apply_baseline",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]

_BASELINE_VERSION = 1

#: SARIF 2.1.0 — the static-analysis interchange format GitHub ingests.
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding]) -> str:
    return "\n".join(f.render() for f in findings)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "count": len(findings),
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule, "message": f.message}
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding], catalog: Dict[str, str]) -> str:
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule, description in sorted(catalog.items())
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
        }
        for f in findings
    ]
    sarif = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)


def _key(entry: Dict[str, str]) -> Tuple[str, str, str]:
    return (entry["path"], entry["rule"], entry["message"])


def load_baseline(path: str | Path) -> List[Dict[str, str]]:
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except OSError as err:
        raise ConfigError(f"analyze: cannot read baseline {path}: {err.strerror}") from err
    except json.JSONDecodeError as err:
        raise ConfigError(f"analyze: baseline {path} is not valid JSON: {err}") from err
    if not isinstance(raw, dict) or raw.get("version") != _BASELINE_VERSION:
        raise ConfigError(
            f"analyze: baseline {path} has unsupported format "
            f"(expected version {_BASELINE_VERSION})"
        )
    entries = raw.get("findings")
    if not isinstance(entries, list) or not all(
        isinstance(e, dict) and {"path", "rule", "message"} <= set(e) for e in entries
    ):
        raise ConfigError(
            f"analyze: baseline {path} entries must be objects with "
            "path/rule/message keys"
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[Dict[str, str]]
) -> List[Finding]:
    """Findings not covered by the baseline (CI gates on these)."""
    known = {_key(e) for e in entries}
    return [f for f in findings if (f.path, f.rule, f.message) not in known]


def write_baseline(findings: Sequence[Finding], path: str | Path) -> None:
    entries = sorted(
        {(f.path, f.rule, f.message) for f in findings}
    )
    payload = {
        "version": _BASELINE_VERSION,
        "comment": (
            "Reviewed static-analysis debt ledger. Every entry needs a story; "
            "prefer fixing or an inline '# repro: waive[RULE] why' over "
            "growing this file."
        ),
        "findings": [
            {"path": p, "rule": r, "message": m} for (p, r, m) in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
