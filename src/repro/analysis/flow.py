"""Interprocedural PGAS flow verifier (``python -m repro analyze``).

Where :mod:`repro.analysis.lint` checks one statement or one ``if`` at a
time, this module walks each function as structured control flow,
propagates *effect summaries* through the call graph, and proves three
whole-program properties of the simulated-PGAS solvers:

``SY`` — static barrier/collective matching.  Every function is
summarized as the sequence of sync effects it executes (``barrier``,
``allreduce``, ``getd``/``setd``/``setdmin``), call-expanded through
helpers.  Control flow that can make two simulated threads execute
*different* collective sequences is a static deadlock (or silent
modeled-time divergence).  The key ingredient is a uniformity lattice:
a condition is *divergent* only when derived from per-thread shared
data (``.data`` reads, collective results, fine-grained reads); values
from :meth:`~repro.runtime.PGASRuntime.allreduce_flag` are *uniform* —
every thread sees the same flag — so the canonical
``if not rt.allreduce_flag(...): break`` termination idiom verifies
clean without waivers.

``CH`` — charge-coverage taint.  Values derived from shared-array data
are tainted; a tainted value escaping a function (``return``) with no
*dominating* charge — some entry-to-return path that never charged the
cost model — means modeled milliseconds silently missed a data access.
This supersedes CM02's per-function "does it charge at all" heuristic
with a path-sensitive one, and also checks raw comm primitives
(``gather``/``scatter*``) for a dominating charge (CH02).

``FX`` — fault-path safety.  In a solver that constructs fault-recovery
machinery (:class:`~repro.faults.checkpoint.RoundCheckpointer` or a
``RetryPolicy``), every *faultable* effect — one that can raise
``ThreadCrash``/``IntegrityError``/``FaultError`` under an active fault
plan — must be reachable only inside a ``try`` that catches those
exceptions.  A faultable call outside recovery scope means an injected
crash escapes the replay machinery the solver claims to have.

Rule catalog
------------
``SY01``  rejoining branches under a thread-divergent condition execute
          different call-expanded collective sequences
``SY02``  loop with collective effects in its body exits on a
          thread-divergent condition (different round counts per thread)
``SY03``  early ``return`` under a thread-divergent condition skips
          collectives other threads still execute
``CH01``  shared-data-derived value escapes a function with no charge
          dominating the escape on every path
``CH02``  raw comm primitive (``gather``/``scatter*``) with no dominating
          charge on some path
``FX01``  faultable effect outside any fault-recovery ``try`` scope in a
          checkpointing solver

All effect facts come from the declarative registry in
:mod:`repro.analysis.effects`; a drift test pins the registry to the
real runtime surface.  ``raise`` terminates *all* simulated threads
(global abort), so paths ending in ``raise`` are exempt from SY rules,
matching the linter's CM03 convention.  Waivers use the shared
``# repro: waive[RULE]`` / ``# repro: charged-local`` spellings from
:mod:`repro.analysis.config`.

Scope: summaries are computed for every scanned file, but findings are
only emitted for the solver packages the call graph serves (``cc/``,
``lt/``, ``mst/``, ``bfs/``, ``listrank/`` — :data:`FLOW_CHECKED_PARTS`)
and for
files outside the ``repro`` package entirely (fixtures, user code).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigError
from .config import Waivers, display_path, is_whitelisted
from .effects import Effect, effect_of
from .lint import _SHARED_METHODS, Finding, _call_name, _infer_shared_names

__all__ = ["FLOW_CATALOG", "FLOW_CHECKED_PARTS", "FunctionSummary", "run_verify", "verify_file"]

FLOW_CATALOG = {
    "SY01": "branches under a thread-divergent condition run different collective sequences",
    "SY02": "loop with collective effects exits on a thread-divergent condition",
    "SY03": "thread-divergent early return skips collectives other threads execute",
    "CH01": "shared-data-derived value escapes with no dominating charge on some path",
    "CH02": "raw comm primitive with no dominating charge on some path",
    "FX01": "faultable effect outside fault-recovery scope in a checkpointing solver",
}

#: Algorithm packages the interprocedural rules gate.  Everything under
#: ``repro`` but outside these parts (and outside the whitelist) is
#: summarized for call-graph propagation but not itself checked; files
#: outside the ``repro`` package entirely (test fixtures, user solvers)
#: are always checked.
FLOW_CHECKED_PARTS = (
    "repro/cc/",
    "repro/lt/",
    "repro/mst/",
    "repro/bfs/",
    "repro/listrank/",
)

#: Owner-affinity signals for shared-name inference: the linter's set
#: plus the uncharged primitives this verifier reasons about.
_FLOW_SHARED_METHODS = _SHARED_METHODS | {"gather", "scatter", "local_range"}

#: Exception names whose handlers constitute a fault-recovery scope.
_FAULT_EXCS = {
    "ThreadCrash",
    "IntegrityError",
    "FaultError",
    "NodeLoss",
    "UnrecoverableLossError",
    "ReproError",
    "Exception",
    "BaseException",
}

#: Constructors whose presence marks a function as fault-enabled (FX).
#: ResilientSession rides along: a solver that wires loss recovery has
#: opted into the fault story, so its reconstruction/remap paths must
#: sit inside fault-catching scopes like every other faultable effect.
_RECOVERY_CTORS = {"RoundCheckpointer", "RetryPolicy", "ResilientSession"}


class FunctionSummary:
    """Call-graph-propagated effect summary of one function."""

    __slots__ = (
        "sync_seq",
        "always_charges",
        "returns_tainted",
        "returns_accounted",
        "has_faultable",
    )

    def __init__(
        self,
        sync_seq: Tuple[str, ...] = (),
        always_charges: bool = False,
        returns_tainted: bool = False,
        returns_accounted: bool = True,
        has_faultable: bool = False,
    ) -> None:
        self.sync_seq = sync_seq
        self.always_charges = always_charges
        self.returns_tainted = returns_tainted
        # True when every tainted return was dominated by a charge —
        # the callee already accounted the shared-data access it hands
        # back, so a caller returning it adds no new charge debt.
        self.returns_accounted = returns_accounted
        self.has_faultable = has_faultable


#: Summary used while a recursive cycle is being computed.
_NEUTRAL = FunctionSummary()

#: Taint lattice bits returned by ``_FunctionAnalyzer._eval``.  TAINT
#: marks thread-divergent values (the SY rules key on this); DEBT marks
#: shared-data reads not yet accounted by a charge (the CH rules key on
#: this).  DEBT implies TAINT at every source.
_TAINT = 1
_DEBT = 2


class _State:
    """Abstract machine state along one control-flow path."""

    __slots__ = ("taint", "debt", "charged", "protected", "seq", "terminated")

    def __init__(self) -> None:
        self.taint: Set[str] = set()
        self.debt: Set[str] = set()
        self.charged = False
        self.protected = False
        self.seq: List[str] = []
        self.terminated: Optional[str] = None  # return | raise | break | continue

    def copy(self) -> "_State":
        st = _State()
        st.taint = set(self.taint)
        st.debt = set(self.debt)
        st.charged = self.charged
        st.protected = self.protected
        st.seq = list(self.seq)
        st.terminated = self.terminated
        return st

    def flags_of(self, name: str) -> int:
        return (_TAINT if name in self.taint else 0) | (_DEBT if name in self.debt else 0)


class _Loop:
    """Per-loop context: break structure observed while walking the body."""

    __slots__ = ("cond_depth", "has_break", "tainted_break")

    def __init__(self, cond_depth: int) -> None:
        self.cond_depth = cond_depth
        self.has_break = False
        self.tainted_break = False


def _fmt(tokens: Sequence[str]) -> str:
    return "[" + (" ".join(tokens) if tokens else "none") + "]"


def _exc_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["BaseException"]
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for node in nodes:
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Name):
            names.append(node.id)
    return names


def _handles_faults(node: ast.Try) -> bool:
    return any(
        name in _FAULT_EXCS for handler in node.handlers for name in _exc_names(handler)
    )


def _constructs_recovery(fn: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call) and _call_name(node) in _RECOVERY_CTORS
        for node in ast.walk(fn)
    )


class _FunctionAnalyzer:
    """Walk one function body as structured control flow.

    Runs in two modes: *summary* mode (``emit is None`` — collect the
    :class:`FunctionSummary`, no findings) and *check* mode (emit
    findings).  Both share the identical walk so the summary a caller
    sees and the behavior the checker verifies can never disagree.
    """

    def __init__(
        self,
        program: "_Program",
        path: str,
        fn: ast.AST,
        shared: Set[str],
        waivers: Waivers,
        emit: Optional[Callable[[Finding], None]],
    ) -> None:
        self.program = program
        self.path = path
        self.fn = fn
        self.shared = shared
        self.waivers = waivers
        self.emit = emit
        self.fx_enabled = _constructs_recovery(fn)
        self.local_defs: Dict[str, ast.AST] = {}
        self.cond_taint: List[bool] = []
        self.loops: List[_Loop] = []
        # Summary accumulators.
        self.always_charges = True
        self.returns_tainted = False
        self.returns_accounted = True
        self.unprotected_faultable = False

    # -- driver ----------------------------------------------------------

    def run(self) -> _State:
        st = _State()
        body = self.fn.body if isinstance(self.fn, (ast.FunctionDef, ast.AsyncFunctionDef)) else []
        self._stmts(body, st, rest_sync=False)
        if st.terminated is None:  # implicit `return None`
            self.always_charges = self.always_charges and st.charged
        return st

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if self.emit is None or self.waivers.waives(node, rule):
            return
        self.emit(Finding(self.path, getattr(node, "lineno", 0), rule, message))

    # -- statements ------------------------------------------------------

    def _stmts(self, stmts: Sequence[ast.stmt], st: _State, rest_sync: bool) -> None:
        for i, stmt in enumerate(stmts):
            if st.terminated is not None:
                return
            later = rest_sync or any(self._contains_sync(s) for s in stmts[i + 1 :])
            self._stmt(stmt, st, later)

    def _stmt(self, stmt: ast.stmt, st: _State, rest_sync: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_defs[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign):
            flags = self._eval(stmt.value, st)
            for tgt in stmt.targets:
                self._bind(tgt, flags, st)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, st), st)
        elif isinstance(stmt, ast.AugAssign):
            flags = self._eval(stmt.value, st)
            if isinstance(stmt.target, ast.Name):
                if flags & _TAINT:
                    st.taint.add(stmt.target.id)
                if flags & _DEBT:
                    st.debt.add(stmt.target.id)
            else:
                self._eval(stmt.target, st)
        elif isinstance(stmt, (ast.Expr, ast.Assert)):
            self._eval(stmt.value if isinstance(stmt, ast.Expr) else stmt.test, st)
        elif isinstance(stmt, ast.Return):
            flags = self._eval(stmt.value, st)
            self.returns_tainted = self.returns_tainted or bool(flags & _TAINT)
            self.always_charges = self.always_charges and st.charged
            if flags & _TAINT and not st.charged:
                self.returns_accounted = False
            if flags & _DEBT and not st.charged:
                self._report(
                    stmt,
                    "CH01",
                    "value derived from shared-array data escapes with no "
                    "charge dominating this return; some path never accounted "
                    "the access in modeled time",
                )
            st.terminated = "return"
        elif isinstance(stmt, ast.Raise):
            st.terminated = "raise"
        elif isinstance(stmt, ast.Break):
            st.terminated = "break"
            if self.loops:
                loop = self.loops[-1]
                loop.has_break = True
                if any(self.cond_taint[loop.cond_depth :]):
                    loop.tainted_break = True
        elif isinstance(stmt, ast.Continue):
            st.terminated = "continue"
        elif isinstance(stmt, ast.If):
            self._if(stmt, st, rest_sync)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt, st, rest_sync)
        elif isinstance(stmt, ast.Try):
            self._try(stmt, st, rest_sync)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                flags = self._eval(item.context_expr, st)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, flags, st)
            self._stmts(stmt.body, st, rest_sync)
        elif isinstance(stmt, ast.Match):
            self._eval(stmt.subject, st)
            arms = []
            for case in stmt.cases:
                arm = st.copy()
                self._stmts(case.body, arm, rest_sync)
                arms.append(arm)
            live = [a for a in arms if a.terminated is None]
            if live:
                st.taint = set().union(*(a.taint for a in live))
                st.debt = set().union(*(a.debt for a in live))
                st.charged = all(a.charged for a in live)
                st.seq = live[0].seq
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    st.taint.discard(tgt.id)
                    st.debt.discard(tgt.id)
        # Import/Global/Nonlocal/Pass/ClassDef: no effect on the lattice.

    def _bind(self, target: ast.AST, flags: int, st: _State) -> None:
        if isinstance(target, ast.Name):
            if flags & _TAINT:
                st.taint.add(target.id)
            else:
                st.taint.discard(target.id)
            if flags & _DEBT:
                st.debt.add(target.id)
            else:
                st.debt.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, flags, st)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, flags, st)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._eval(target.value, st)

    # -- branching -------------------------------------------------------

    def _if(self, node: ast.If, st: _State, rest_sync: bool) -> None:
        cond_t = self._eval(node.test, st)
        before = len(st.seq)
        body_st, else_st = st.copy(), st.copy()
        self.cond_taint.append(cond_t)
        self._stmts(node.body, body_st, rest_sync)
        self._stmts(node.orelse, else_st, rest_sync)
        self.cond_taint.pop()
        body_tok = body_st.seq[before:]
        else_tok = else_st.seq[before:]

        if cond_t:
            if (
                body_st.terminated is None
                and else_st.terminated is None
                and body_tok != else_tok
            ):
                self._report(
                    node,
                    "SY01",
                    "branches under a thread-divergent condition execute "
                    f"different collective sequences ({_fmt(body_tok)} vs "
                    f"{_fmt(else_tok)}); simulated threads would deadlock or "
                    "silently diverge in modeled time",
                )
            for term, other_tok in (
                (body_st.terminated, else_tok),
                (else_st.terminated, body_tok),
            ):
                if term == "return" and (other_tok or rest_sync):
                    self._report(
                        node,
                        "SY03",
                        "early return under a thread-divergent condition "
                        "skips collectives that other simulated threads "
                        "will still execute",
                    )

        live = [s for s in (body_st, else_st) if s.terminated is None]
        if live:
            st.taint = set().union(*(s.taint for s in live))
            st.debt = set().union(*(s.debt for s in live))
            st.charged = all(s.charged for s in live)
            st.seq = live[0].seq
        else:
            terms = (body_st.terminated, else_st.terminated)
            st.terminated = "return" if "return" in terms else terms[0]

    # -- loops -----------------------------------------------------------

    def _loop(self, node, st: _State, rest_sync: bool) -> None:
        is_while = isinstance(node, ast.While)
        # Pre-pass on a scratch state: discover loop-carried taint and
        # whether the body emits sync tokens, with findings suppressed.
        scratch = st.copy()
        saved_emit, self.emit = self.emit, None
        self.loops.append(_Loop(len(self.cond_taint)))
        if is_while:
            self._eval(node.test, scratch)
        else:
            self._bind(node.target, self._eval(node.iter, scratch), scratch)
        pre_mark = len(st.seq)
        self._stmts(node.body, scratch, rest_sync)
        self.loops.pop()
        self.emit = saved_emit
        body_has_sync = len(scratch.seq) > pre_mark
        # Loop-carried names visible to the test on iterations > 1.
        st.taint |= scratch.taint
        st.debt |= scratch.debt

        before = len(st.seq)
        loop = _Loop(len(self.cond_taint))
        self.loops.append(loop)
        if is_while:
            exit_cond_tainted = self._eval(node.test, st)
            if isinstance(node.test, ast.Constant):
                exit_cond_tainted = False  # `while True`: exits only via break
        else:
            exit_cond_tainted = self._eval(node.iter, st)
            self._bind(node.target, exit_cond_tainted, st)
        body_st = st.copy()
        body_st.terminated = None
        self._stmts(node.body, body_st, rest_sync or body_has_sync)
        self.loops.pop()
        tokens = body_st.seq[before:]

        if tokens and (exit_cond_tainted or loop.tainted_break):
            self._report(
                node,
                "SY02",
                f"loop with collective effects ({_fmt(tokens)}) exits on a "
                "thread-divergent condition; simulated threads could execute "
                "different numbers of collective rounds",
            )

        st.taint |= body_st.taint
        st.debt |= body_st.debt
        st.seq = st.seq[:before] + ([f"loop({' '.join(tokens)})"] if tokens else [])
        runs_at_least_once = (
            is_while and isinstance(node.test, ast.Constant) and bool(node.test.value)
        )
        if runs_at_least_once:
            st.charged = body_st.charged
        if node.orelse:
            self._stmts(node.orelse, st, rest_sync)

    # -- try / fault-recovery scope --------------------------------------

    def _try(self, node: ast.Try, st: _State, rest_sync: bool) -> None:
        body_st = st.copy()
        body_st.protected = body_st.protected or _handles_faults(node)
        self._stmts(node.body, body_st, rest_sync)
        taint = set(body_st.taint)
        debt = set(body_st.debt)
        for handler in node.handlers:
            h_st = body_st.copy()
            h_st.protected = True
            h_st.terminated = None
            if handler.name:
                h_st.taint.discard(handler.name)
                h_st.debt.discard(handler.name)
            self._stmts(handler.body, h_st, rest_sync)
            taint |= h_st.taint
            debt |= h_st.debt
        st.taint = taint
        st.debt = debt
        st.charged = body_st.charged
        st.seq = body_st.seq
        st.terminated = body_st.terminated
        if node.finalbody:
            saved = st.terminated
            st.terminated = None
            self._stmts(node.finalbody, st, rest_sync)
            st.terminated = st.terminated or saved

    # -- expressions -----------------------------------------------------

    def _eval(self, node: Optional[ast.AST], st: _State) -> int:
        if node is None or isinstance(node, ast.Constant):
            return 0
        if isinstance(node, ast.Name):
            return st.flags_of(node.id)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, st)
            if (
                node.attr == "data"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.shared
            ):
                return _TAINT | _DEBT
            return base
        if isinstance(node, ast.Call):
            return self._call(node, st)
        if isinstance(node, ast.Lambda):
            return 0
        if isinstance(node, ast.NamedExpr):
            flags = self._eval(node.value, st)
            self._bind(node.target, flags, st)
            return flags
        flags = 0
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                flags |= self._eval(child, st)
            elif isinstance(child, ast.comprehension):
                flags |= self._eval(child.iter, st)
                for cond in child.ifs:
                    flags |= self._eval(cond, st)
        return flags

    def _call(self, node: ast.Call, st: _State) -> int:
        arg_flags = 0
        for arg in node.args:
            expr = arg.value if isinstance(arg, ast.Starred) else arg
            arg_flags |= self._eval(expr, st)
        for kw in node.keywords:
            arg_flags |= self._eval(kw.value, st)
        recv_flags = (
            self._eval(node.func.value, st)
            if isinstance(node.func, ast.Attribute)
            else 0
        )
        name = _call_name(node)

        effect = effect_of(name)
        if effect is not None and self._effect_applies(node, effect):
            if effect.sync:
                st.seq.append(effect.token)
            if effect.raw_comm and not st.charged:
                self._report(
                    node,
                    "CH02",
                    f"raw {name}() communication with no dominating charge on "
                    "this path; charge the cost model (or route through a "
                    "charged collective) before moving shared data",
                )
            if effect.charges:
                st.charged = True
            if effect.faultable and not st.protected:
                self.unprotected_faultable = True
                if self.fx_enabled:
                    self._report(
                        node,
                        "FX01",
                        f"faultable {name}() outside any fault-recovery scope "
                        "in a checkpointing solver; an injected crash here "
                        "escapes the replay machinery",
                    )
            if effect.uniform:
                return 0
            if effect.taints:
                return _TAINT | _DEBT | arg_flags | recv_flags
            return arg_flags | recv_flags

        # Call-graph resolution is for *bare-name* calls only: an
        # attribute call (`scipy.csgraph.connected_components(...)`)
        # must not resolve to an unrelated module-level function that
        # happens to share the name.
        summary = self._resolve(name) if isinstance(node.func, ast.Name) else None
        if summary is not None:
            st.seq.extend(summary.sync_seq)
            if summary.has_faultable and not st.protected:
                self.unprotected_faultable = True
                if self.fx_enabled:
                    self._report(
                        node,
                        "FX01",
                        f"call to {name}() (which has faultable comm effects) "
                        "outside any fault-recovery scope in a checkpointing "
                        "solver",
                    )
            if summary.always_charges:
                st.charged = True
            flags = arg_flags
            if summary.returns_tainted:
                flags |= _TAINT
                if not summary.returns_accounted:
                    flags |= _DEBT
            return flags

        return arg_flags | recv_flags

    def _effect_applies(self, node: ast.Call, effect: Effect) -> bool:
        """Shared-array effects are name-collision-prone (``gather``,
        ``snapshot``, ...), so they only apply when the receiver is an
        inferred shared array; other owners match by name, the same
        convention the linter uses."""
        if effect.owner != "shared_array":
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.shared
        )

    def _resolve(self, name: str) -> Optional[FunctionSummary]:
        local = self.local_defs.get(name)
        if local is not None:
            return self.program.summary_for(self.path, local, self.shared)
        return self.program.resolve_global(name)

    # -- helpers ---------------------------------------------------------

    def _contains_sync(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            effect = effect_of(name)
            if effect is not None:
                if effect.sync:
                    return True
                continue
            if isinstance(node.func, ast.Name):
                summary = self._resolve(name)
                if summary is not None and summary.sync_seq:
                    return True
        return False


class _Program:
    """Whole-scan context: parsed files, call-graph index, summaries."""

    def __init__(self) -> None:
        self.files: Dict[str, ast.Module] = {}
        self.waivers: Dict[str, Waivers] = {}
        self._global_defs: Dict[str, Optional[Tuple[str, ast.AST]]] = {}
        self._summaries: Dict[int, FunctionSummary] = {}
        self._in_progress: Set[int] = set()

    def add_file(self, path: Path) -> None:
        shown = display_path(path)
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return  # the linter reports CM00 for this file
        self.files[shown] = tree
        self.waivers[shown] = Waivers(source)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Only unambiguous module-level names resolve across
                # files; collisions (and methods) stay opaque.
                if node.name in self._global_defs:
                    self._global_defs[node.name] = None
                else:
                    self._global_defs[node.name] = (shown, node)

    def resolve_global(self, name: str) -> Optional[FunctionSummary]:
        entry = self._global_defs.get(name)
        if entry is None:
            return None
        path, node = entry
        return self.summary_for(path, node, set())

    def summary_for(
        self, path: str, fn: ast.AST, inherited_shared: Set[str]
    ) -> FunctionSummary:
        key = id(fn)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return _NEUTRAL  # recursion: neutral fixpoint seed
        self._in_progress.add(key)
        try:
            shared = _infer_shared_names(fn, inherited_shared, _FLOW_SHARED_METHODS)
            analyzer = _FunctionAnalyzer(
                self, path, fn, shared, self.waivers.get(path, Waivers("")), emit=None
            )
            end = analyzer.run()
            summary = FunctionSummary(
                sync_seq=tuple(end.seq),
                always_charges=analyzer.always_charges,
                returns_tainted=analyzer.returns_tainted,
                returns_accounted=analyzer.returns_accounted,
                has_faultable=analyzer.unprotected_faultable,
            )
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def check_file(self, path: Path) -> List[Finding]:
        shown = display_path(path)
        tree = self.files.get(shown)
        if tree is None or not _is_checked(path):
            return []
        findings: List[Finding] = []
        waivers = self.waivers[shown]

        def check_fn(fn: ast.AST, inherited: Set[str]) -> None:
            shared = _infer_shared_names(fn, inherited, _FLOW_SHARED_METHODS)
            analyzer = _FunctionAnalyzer(
                self, shown, fn, shared, waivers, emit=findings.append
            )
            analyzer.run()

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                check_fn(node, set())
            elif isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        check_fn(member, set())
        return findings


def _is_checked(path: Path) -> bool:
    if is_whitelisted(path):
        return False
    text = Path(path).resolve().as_posix()
    if "/repro/" not in text:
        return True  # fixtures / user code outside the package
    return any(part in text for part in FLOW_CHECKED_PARTS)


def _collect_files(paths: Sequence[str | Path]) -> List[Path]:
    files: List[Path] = []
    for root in paths:
        root = Path(root)
        if not root.exists():
            raise ConfigError(f"analyze: no such file or directory: {root}")
        files.extend(sorted(root.rglob("*.py")) if root.is_dir() else [root])
    return files


def run_verify(paths: Sequence[str | Path]) -> List[Finding]:
    """Run the interprocedural verifier over ``paths`` (files or dirs).

    Every scanned file contributes call-graph summaries; findings are
    emitted only for files :func:`_is_checked` accepts.  Order is
    path-stable: sorted by (display path, line, rule).
    """
    files = _collect_files(paths)
    program = _Program()
    for file in files:
        program.add_file(file)
    findings: List[Finding] = []
    for file in files:
        findings.extend(program.check_file(file))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def verify_file(path: Path) -> List[Finding]:
    """Verify a single file in isolation (no cross-file call graph)."""
    return run_verify([path])
