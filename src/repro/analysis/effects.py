"""Declarative effects registry for the runtime/collective surface.

Every API an algorithm module may call on the simulated runtime is
described here as a small record of *what it does to the model*:

``sync``
    participates in the collective/barrier sequence — simulated threads
    must all reach it, in the same order (the SY rules match these);
``charges``
    accounts modeled time on the virtual clocks — a charge "covers" the
    shared data it moves (the CH rules look for a dominating one);
``comm``
    moves bytes between simulated nodes;
``faultable``
    can raise a fault-path exception (:class:`~repro.errors.FaultError`,
    :class:`~repro.errors.ThreadCrash`,
    :class:`~repro.errors.IntegrityError`) under an active fault plan —
    the FX rules require these to sit inside a recovery scope in
    checkpointing solvers;
``raw_comm``
    an *uncharged* data-movement primitive (``SharedArray.gather`` and
    friends) that is only sound when a charge dominates it;
``taints``
    returns per-thread data derived from shared state — control flow
    decided by such a value can diverge across simulated threads;
``uniform``
    returns a value guaranteed identical on every simulated thread
    (collective reductions) — the blessed way to decide loop exits.

The registry is *declarative on purpose*: the drift test in
``tests/test_analysis_flow.py`` reflects over the real
:class:`~repro.runtime.PGASRuntime`, :mod:`repro.collectives`,
:class:`~repro.integrity.monitor.IntegrityMonitor`,
:class:`~repro.faults.checkpoint.RoundCheckpointer`, and
:class:`~repro.runtime.shared_array.SharedArray` surfaces and fails when
an API lands unregistered (or a registered one disappears), so the
verifier can never silently model a stale runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Effect", "EFFECTS", "effect_of", "registry_drift"]

#: Owner tags checked by :func:`registry_drift`.
_OWNERS = (
    "runtime",
    "collectives",
    "shared_array",
    "integrity",
    "checkpoint",
    "resilience",
    "kernels",
    "shard",
)


@dataclass(frozen=True)
class Effect:
    """Static effect summary of one runtime/collective API."""

    owner: str
    sync: bool = False
    charges: bool = False
    comm: bool = False
    faultable: bool = False
    raw_comm: bool = False
    taints: bool = False
    uniform: bool = False
    #: Token emitted into the collective-sequence lattice (sync APIs only).
    token: str = field(default="")

    def __post_init__(self) -> None:
        if self.owner not in _OWNERS:
            raise ValueError(f"unknown effect owner {self.owner!r}")
        if self.sync and not self.token:
            raise ValueError("sync effects need a sequence token")


def _rt(**kw) -> Effect:
    return Effect(owner="runtime", **kw)


def _coll(**kw) -> Effect:
    return Effect(owner="collectives", **kw)


def _arr(**kw) -> Effect:
    return Effect(owner="shared_array", **kw)


def _integ(**kw) -> Effect:
    return Effect(owner="integrity", **kw)


def _ck(**kw) -> Effect:
    return Effect(owner="checkpoint", **kw)


def _res(**kw) -> Effect:
    return Effect(owner="resilience", **kw)


def _kern(**kw) -> Effect:
    return Effect(owner="kernels", **kw)


def _shard(**kw) -> Effect:
    return Effect(owner="shard", **kw)


#: name -> Effect.  Names are matched on the *last* component of a call
#: (``rt.barrier`` -> ``barrier``), the same convention the linter uses.
EFFECTS: dict[str, Effect] = {
    # -- PGASRuntime -------------------------------------------------------
    "barrier": _rt(sync=True, faultable=True, token="barrier"),
    "allreduce_flag": _rt(
        sync=True, charges=True, faultable=True, uniform=True, token="allreduce"
    ),
    "shared_array": _rt(charges=True),
    "protect_array": _rt(),
    "charge": _rt(charges=True),
    "charge_thread": _rt(charges=True),
    "charge_comm": _rt(charges=True, comm=True),
    "charge_message_faults": _rt(charges=True, comm=True, faultable=True),
    "charge_fine_grained": _rt(charges=True, comm=True, faultable=True),
    "fine_grained_read": _rt(charges=True, comm=True, faultable=True, taints=True),
    "fine_grained_write": _rt(charges=True, comm=True, faultable=True),
    "split_local_remote": _rt(),
    "local_random_access": _rt(charges=True),
    "local_stream": _rt(charges=True),
    "local_ops": _rt(charges=True),
    "owner_block_read": _rt(charges=True, taints=True),
    "owner_block_write": _rt(charges=True),
    "owner_masked_write": _rt(charges=True),
    "owner_indexed_write": _rt(charges=True),
    "phase_start": _rt(),
    "phase_end": _rt(),
    "run_phase": _rt(),
    "fork": _rt(),
    # -- repro.collectives -------------------------------------------------
    "getd": _coll(
        sync=True, charges=True, comm=True, faultable=True, taints=True, token="getd"
    ),
    "setd": _coll(
        sync=True, charges=True, comm=True, faultable=True, taints=True, token="setd"
    ),
    "setdmin": _coll(
        sync=True, charges=True, comm=True, faultable=True, taints=True, token="setdmin"
    ),
    "exchange_counts": _coll(charges=True, comm=True),
    "charge_setup": _coll(charges=True),
    # Helpers below derive outputs from their *arguments* — taint flows
    # through naturally (tainted args => tainted result), so they carry
    # no intrinsic taint of their own.
    "send_matrix": _coll(),
    "position_matrix": _coll(),
    "build_transfer_plan": _coll(),
    "apply_offload": _coll(),
    "compute_owner_threads": _coll(),
    "linear_schedule": _coll(),
    "circular_schedule": _coll(),
    "max_step_contention": _coll(),
    "is_contention_free": _coll(),
    # -- SharedArray: uncharged primitives (sound only under a dominating
    # charge — the CH rules police exactly this) --------------------------
    "gather": _arr(raw_comm=True, taints=True),
    "scatter": _arr(raw_comm=True, taints=True),
    "scatter_min": _arr(raw_comm=True, taints=True),
    "scatter_store_min": _arr(raw_comm=True, taints=True),
    "snapshot": _arr(taints=True),
    "local_view": _arr(taints=True),
    # Layout queries: partition geometry, identical on every simulated
    # thread — uniform by construction, never data-derived.
    "local_range": _arr(),
    "local_sizes": _arr(),
    "owner_thread": _arr(),
    "owner_node": _arr(),
    "node_working_set_bytes": _arr(),
    # -- IntegrityMonitor (charges its passes internally; verification can
    # raise IntegrityError for the repair path) ---------------------------
    "track": _integ(charges=True),
    "note_write": _integ(charges=True),
    "resync": _integ(charges=True),
    "on_barrier": _integ(charges=True, faultable=True),
    "verify_cc_round": _integ(charges=True, faultable=True),
    "verify_lt_round": _integ(charges=True, faultable=True),
    "verify_star_round": _integ(charges=True, faultable=True),
    "verify_mst_selection": _integ(charges=True, faultable=True),
    "guard_payload": _integ(charges=True, faultable=True),
    # -- RoundCheckpointer -------------------------------------------------
    "save": _ck(charges=True),
    "restore": _ck(charges=True, taints=True),
    # -- ResilientSession (owner-block redundancy + epoch recovery; see
    # repro.resilience).  enroll/commit_round ship replica traffic as
    # real charged communication; on_loss raises NodeLoss (or
    # UnrecoverableLossError) into the recovery scope; recover_loss
    # restores checkpoint state (tainted, like restore) and rebuilds the
    # run on the post-loss membership. -------------------------------------
    "enroll": _res(charges=True, comm=True),
    "commit_round": _res(charges=True, comm=True),
    "mark_write": _res(),
    "on_loss": _res(charges=True, faultable=True),
    "recover_loss": _res(charges=True, comm=True, faultable=True, taints=True),
    # -- repro.kernels (wall-clock machinery: pure array->array functions
    # on their arguments, bit-identical across backends; taint flows
    # through arguments, nothing here touches the modeled clocks or the
    # collective sequence) -------------------------------------------------
    "active_backend": _kern(),
    "available_backends": _kern(),
    "backend_capabilities": _kern(),
    "backend_name": _kern(),
    "calibrate_backends": _kern(),
    "missing_reason": _kern(),
    "recommend_backend": _kern(),
    "resolve_backend": _kern(),
    "set_backend": _kern(),
    "use_backend": _kern(),
    "available": _kern(),
    "group_minima": _kern(),
    "exchange_matrix": _kern(),
    "owner_distinct": _kern(),
    "segment_distinct": _kern(),
    "concat_segments": _kern(),
    # -- repro.perf.shard (host-side shared-memory pool: the try_* ops are
    # wall-clock replicas of SharedArray's raw primitives — the charged /
    # raw_comm accounting stays on the SharedArray records above, which
    # are the only entry points algorithm modules call) --------------------
    "current_session": _shard(),
    "sharded_session": _shard(),
    "adopt": _shard(),
    "covers": _shard(),
    "try_gather": _shard(),
    "try_scatter_min": _shard(),
    "try_scatter_store_min": _shard(),
    "shutdown": _shard(),
    "stats": _shard(),
}


def effect_of(name: str) -> Effect | None:
    """The registered effect for a bare call name, or ``None``."""
    return EFFECTS.get(name)


def _public_routines(obj) -> set[str]:
    import inspect

    names = set()
    for name, member in inspect.getmembers(obj):
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) or inspect.ismethod(member):
            names.add(name)
    return names


def registry_drift() -> list[str]:
    """Compare the registry against the live runtime/collective surface.

    Returns a list of human-readable problems — empty when the registry
    is current.  Two directions are checked: *unregistered* (a public
    API exists with no effect record — the verifier would treat calls to
    it as effect-free, silently unsound) and *stale* (a record names an
    API that no longer exists under its claimed owner — the registry is
    describing a runtime that is gone).
    """
    import repro.collectives as collectives
    import repro.kernels as kernels
    from repro.faults.checkpoint import RoundCheckpointer
    from repro.integrity.monitor import IntegrityMonitor, guard_payload  # noqa: F401
    from repro.kernels.base import KernelBackend
    from repro.perf.shard import ShardedSession
    from repro.resilience.session import ResilientSession
    from repro.runtime.runtime import PGASRuntime
    from repro.runtime.shared_array import SharedArray

    problems: list[str] = []
    surfaces: dict[str, set[str]] = {
        "runtime": _public_routines(PGASRuntime),
        "shared_array": _public_routines(SharedArray),
        "integrity": _public_routines(IntegrityMonitor) | {"guard_payload"},
        "checkpoint": _public_routines(RoundCheckpointer),
        "resilience": _public_routines(ResilientSession),
        "collectives": {
            name
            for name in collectives.__all__
            if callable(getattr(collectives, name))
            and not isinstance(getattr(collectives, name), type)
        },
        "kernels": _public_routines(KernelBackend)
        | {
            name
            for name in kernels.__all__
            if callable(getattr(kernels, name))
            and not isinstance(getattr(kernels, name), type)
        },
        "shard": _public_routines(ShardedSession)
        | {"current_session", "sharded_session"},
    }
    for owner, live in surfaces.items():
        registered = {name for name, eff in EFFECTS.items() if eff.owner == owner}
        for name in sorted(live - registered):
            problems.append(
                f"unregistered {owner} API {name!r}: add an Effect record to "
                "repro.analysis.effects.EFFECTS (what does it sync/charge/move?)"
            )
        for name in sorted(registered - live):
            problems.append(
                f"stale registry entry {name!r}: no such {owner} API exists anymore"
            )
    return problems
