"""PGAS sanitizer suite: race detector, cost-model linter, flow verifier.

Three cooperating analyses keep the simulator honest:

* :mod:`repro.analysis.race` — a dynamic, TSan-style epoch race detector
  (opt-in via ``PGASRuntime(analyze=True)`` or the :func:`analyzed`
  context manager) that reports intra-epoch access conflicts, remote
  writes that bypassed the collectives, and barrier divergence.
* :mod:`repro.analysis.lint` — a static AST linter (``python -m repro
  analyze``) that flags uncharged shared accesses and nondeterminism
  sources in modeled code paths, one statement at a time.
* :mod:`repro.analysis.flow` — an interprocedural static verifier (same
  entrypoint) that propagates effect summaries through the call graph
  to prove barrier/collective matching (SY), charge-coverage of tainted
  shared data (CH), and fault-path safety (FX), driven by the
  declarative effects registry in :mod:`repro.analysis.effects`.

See ``docs/static-analysis.md`` for the rule catalog and waiver syntax.
"""

from .effects import EFFECTS, Effect, registry_drift
from .flow import FLOW_CATALOG, FunctionSummary, run_verify, verify_file
from .lint import LINT_CATALOG, Finding, lint_file, run_lint
from .race import (
    RACE_RULES,
    RULE_CATALOG,
    AnalysisSession,
    EpochRaceDetector,
    RaceReport,
    analyzed,
    current_analysis,
    render_reports,
)

__all__ = [
    "AnalysisSession",
    "EFFECTS",
    "Effect",
    "EpochRaceDetector",
    "FLOW_CATALOG",
    "Finding",
    "FunctionSummary",
    "LINT_CATALOG",
    "RACE_RULES",
    "RULE_CATALOG",
    "RaceReport",
    "analyzed",
    "current_analysis",
    "lint_file",
    "registry_drift",
    "render_reports",
    "run_lint",
    "run_verify",
    "verify_file",
]
