"""PGAS sanitizer suite: epoch race detector + cost-model linter.

Two cooperating analyses keep the simulator honest:

* :mod:`repro.analysis.race` — a dynamic, TSan-style epoch race detector
  (opt-in via ``PGASRuntime(analyze=True)`` or the :func:`analyzed`
  context manager) that reports intra-epoch access conflicts, remote
  writes that bypassed the collectives, and barrier divergence.
* :mod:`repro.analysis.lint` — a static AST linter (``python -m repro
  analyze``) that flags uncharged shared accesses and nondeterminism
  sources in modeled code paths.

See ``docs/static-analysis.md`` for the rule catalog and waiver syntax.
"""

from .lint import LINT_CATALOG, Finding, lint_file, run_lint
from .race import (
    RACE_RULES,
    RULE_CATALOG,
    AnalysisSession,
    EpochRaceDetector,
    RaceReport,
    analyzed,
    current_analysis,
    render_reports,
)

__all__ = [
    "AnalysisSession",
    "EpochRaceDetector",
    "Finding",
    "LINT_CATALOG",
    "RACE_RULES",
    "RULE_CATALOG",
    "RaceReport",
    "analyzed",
    "current_analysis",
    "lint_file",
    "render_reports",
    "run_lint",
]
