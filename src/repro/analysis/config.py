"""Shared configuration for the static analyses.

One source of truth for the module classification that both the
line-level linter (:mod:`repro.analysis.lint`) and the interprocedural
flow verifier (:mod:`repro.analysis.flow`) consult, plus the waiver
parser and path normalization they share.  Before this module existed
the whitelist lived in ``lint.py`` only, and any new analysis would have
grown its own copy that could silently drift.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Set

__all__ = [
    "WHITELIST_PARTS",
    "WALLCLOCK_PARTS",
    "Waivers",
    "display_path",
    "is_wallclock",
    "is_whitelisted",
]

#: Modules allowed to touch ``SharedArray.data`` directly — they *are*
#: the charged machinery (plus the analysis package itself).
WHITELIST_PARTS = (
    "repro/runtime/",
    "repro/collectives/",
    "repro/analysis/",
    "repro/scheduling/",
    "repro/faults/",
    "repro/integrity/",
    # Wall-clock machinery: the arena, the memoized derived-artifact
    # caches, the kernel backends, and the golden/bench harnesses operate
    # on raw buffers by design and never produce charged time (the golden
    # suite exists to prove exactly that).
    "repro/perf/",
    "repro/kernels/",
)

#: Modules that live in wall-clock time *on purpose* — operational code,
#: not modeled paths — where the ND rules do not apply.  The service
#: layer's quotas, deadlines, breaker cool-downs, and journal timestamps
#: are real-time concerns; the solves it dispatches keep their own
#: modeled clocks (bit-identical with the service's sync-poll hook
#: active — pinned by tests/test_service.py).
WALLCLOCK_PARTS = (
    "repro/service/",
)


def is_whitelisted(path: Path | str) -> bool:
    text = Path(path).as_posix()
    return any(part in text for part in WHITELIST_PARTS)


def is_wallclock(path: Path | str) -> bool:
    text = Path(path).as_posix()
    return any(part in text for part in WALLCLOCK_PARTS)


def display_path(path: Path | str) -> str:
    """Stable rendering of a finding path: POSIX separators, relative to
    the current working directory when the file lives under it.

    Findings sort on this string, so two runs of the analysis from the
    same checkout root produce byte-identical output regardless of how
    the scan roots were spelled (absolute, relative, ``..``-laden) or of
    the host's path-separator convention — CI diffs stay deterministic.
    """
    p = Path(path).resolve()
    try:
        return p.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return p.as_posix()


class Waivers:
    """Per-file waiver comments, resolved by line number.

    Two spellings, on the offending line, its last line, or the line
    above::

        before = d.data.copy()  # repro: charged-local (covered by ch pass)
        d.data[:] = state["d"]  # repro: waive[CM01] checkpointer charged restore

    ``# repro: charged-local`` waives the charge-coverage rules (CM01/
    CM02 in the linter, CH01/CH02 in the flow verifier — the access is
    owner-local and its cost is accounted by an adjacent charge).
    ``# repro: waive[RULE]`` waives any one rule.  Both require a
    justification.
    """

    #: Rules the ``charged-local`` shorthand covers.
    CHARGE_RULES = ("CM01", "CM02", "CH01", "CH02")

    def __init__(self, source: str) -> None:
        self.charged_local: Set[int] = set()
        self.by_rule: dict[int, Set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "# repro:" not in text:
                continue
            tag = text.split("# repro:", 1)[1].strip()
            if tag.startswith("charged-local"):
                self.charged_local.add(lineno)
            elif tag.startswith("waive["):
                rule = tag[len("waive[") :].split("]", 1)[0].strip()
                self.by_rule.setdefault(lineno, set()).add(rule)

    def _lines(self, node: ast.AST) -> Iterable[int]:
        lineno = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", lineno) or lineno
        return (lineno, end, lineno - 1)

    def waives(self, node: ast.AST, rule: str) -> bool:
        for line in self._lines(node):
            if rule in self.by_rule.get(line, ()):
                return True
            if rule in self.CHARGE_RULES and line in self.charged_local:
                return True
        return False
