"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``cc``        solve connected components on a generated graph
``mst``       solve minimum spanning forest
``listrank``  rank a random linked list
``bfs``       breadth-first search distances from a source
``info``      show machine presets, calibration, and any cached tuning plan
``figures``   run paper-figure reproductions and print their tables
``tune``      run the autotuner and print its predicted-vs-measured table
``soak``      composed chaos campaign: silent corruption + fail-stop faults,
              every result networkx-verified, report in ``BENCH_soak.json``
``perf``      wall-clock benchmark of the fast engine vs the legacy engine
              (bit-identical modeled time), report in ``BENCH_wallclock.json``
``serve``     run the multi-tenant graph-analytics service (JSON over HTTP:
              admission control, quotas, deadlines, circuit breakers,
              graceful degradation, crash-safe job journal)
``loadtest``  drive a running service with an open-loop arrival process at
              several offered rates, report in ``BENCH_service.json``

``soak`` and ``tune`` accept ``--workers N`` (or ``auto``) to fan their
independent runs across a process pool; reports are identical for any
worker count apart from wall-clock fields.

Every solve prints the result summary, the modeled time, the Fig. 5
category breakdown, and the communication counters.  All inputs are
generated deterministically from ``--seed``.

``--impl auto``, ``--opts auto``, and ``--tprime auto`` hand the
corresponding choice to the :mod:`repro.tuning` planner (plans are
cached; see ``docs/autotuning.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Sequence

from .bench.report import banner, format_kv, format_table
from .core import (
    CC_IMPLS,
    MST_IMPLS,
    OptimizationFlags,
    cluster_for_input,
    connected_components,
    machine_for_input,
    minimum_spanning_forest,
)
from .core.results import SolveInfo
from .errors import ReproError
from .graph import hybrid_graph, powerlaw_graph, random_graph, with_random_weights
from .runtime import hps_cluster, sequential_machine, smp_node

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=50_000, help="vertex count")
    parser.add_argument("--density", type=float, default=4.0, help="edges per vertex (m/n)")
    parser.add_argument(
        "--kind", choices=("random", "hybrid", "powerlaw"), default="random", help="input family"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--machine",
        default="16x8",
        help="cluster shape NODESxTHREADS (e.g. 16x8), 'smp' (1x16) or 'seq'",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip input-size calibration of cache/per-call costs",
    )
    parser.add_argument(
        "--tprime",
        type=_parse_tprime,
        default=2,
        help="virtual threads t' (a positive int, or 'auto' for the cache-fit choice)",
    )
    parser.add_argument(
        "--opts",
        default="all",
        help="'all', 'none', 'auto' (let the tuner choose), or comma-separated"
        " flag names (e.g. compact,circular)",
    )
    parser.add_argument(
        "--hierarchical",
        action="store_true",
        help="enable the future-work hierarchical collectives",
    )
    parser.add_argument("--validate", action="store_true", help="self-check the answer")
    parser.add_argument(
        "--fault-loss",
        type=float,
        default=0.0,
        help="uniform per-message loss probability (e.g. 1e-3); cc/mst only",
    )
    parser.add_argument(
        "--fault-stragglers",
        type=int,
        default=0,
        help="number of straggler threads (4x slowdown); cc/mst only",
    )
    parser.add_argument(
        "--fault-corruption",
        type=float,
        default=0.0,
        help="silent bit-flip rate in owner blocks (flips per element per"
        " modeled second, e.g. 2e-2); cc/mst only",
    )
    parser.add_argument(
        "--fault-payload-corruption",
        type=float,
        default=0.0,
        help="per-record probability of an in-flight collective payload"
        " flip (e.g. 1e-4); cc/mst only",
    )
    parser.add_argument(
        "--fault-node-loss", type=float, default=0.0, metavar="AT",
        help="permanently lose a node at this modeled time in seconds"
        " (e.g. 2e-4); cc/mst collective only — pair with --redundancy"
        " or the run aborts with UnrecoverableLossError",
    )
    parser.add_argument(
        "--fault-loss-node", type=int, default=1, metavar="N",
        help="which node --fault-node-loss kills (default 1)",
    )
    parser.add_argument(
        "--redundancy", choices=("buddy", "parity"), default=None,
        help="owner-block redundancy mode: replicate protected arrays so"
        " a permanent node loss is survivable (cc/mst collective + LT variants)",
    )
    parser.add_argument(
        "--spares", type=int, default=0,
        help="cold spare nodes recovery may promote instead of shrinking",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="seed for the fault plan's RNG"
    )
    parser.add_argument(
        "--integrity",
        action="store_true",
        help="enable silent-fault detection and verify-and-repair"
        " (checksummed blocks/payloads + invariant checks); cc/mst collective only",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run the epoch race detector on this solve (exit 3 if races found)",
    )
    _add_backend(parser)


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        help="kernel backend for the fast engine's hot loops:"
        " numpy|numba|scipy|auto (default: $REPRO_PERF_BACKEND or numpy;"
        " an installed-but-missing backend falls back to numpy with a"
        " warning, an unknown name exits 2; results are bit-identical"
        " across backends)",
    )


def _shard_session(args: argparse.Namespace):
    """The ``--shard-workers`` context: a live ShardedSession (>= 2
    workers), or a null context yielding ``None``."""
    workers = getattr(args, "shard_workers", None)
    if workers is None:
        return contextlib.nullcontext(None)
    from .perf.fanout import resolve_workers
    from .perf.shard import sharded_session

    return sharded_session(resolve_workers(workers, source="--shard-workers"))


def _print_shard_stats(shard_sess) -> None:
    if shard_sess is None:
        return
    st = shard_sess.stats()
    note = f" ({st['note']})" if st["note"] else ""
    print(
        f"sharding: {st['requested_workers']} worker(s),"
        f" {st['adopted_arrays']} shm-backed array(s),"
        f" {st['pool_ops']} pooled op(s){note}"
    )


def _parse_tprime(text: str):
    """argparse type for ``--tprime``: positive int or the string 'auto'."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"t' must be >= 1, got {value}")
    return value


def _parse_machine(spec: str, n: int, calibrate: bool):
    if spec == "seq":
        base = sequential_machine()
    elif spec == "smp":
        base = smp_node(16)
    else:
        try:
            nodes_s, threads_s = spec.lower().split("x")
            base = hps_cluster(int(nodes_s), int(threads_s))
        except (ValueError, ReproError) as err:
            raise SystemExit(f"bad --machine {spec!r}: use NODESxTHREADS, 'smp' or 'seq' ({err})")
    return machine_for_input(base, n) if calibrate else base


def _parse_opts(spec: str, hierarchical: bool):
    if spec == "auto":
        if hierarchical:
            raise SystemExit(
                "--opts auto cannot combine with --hierarchical:"
                " the tuner searches the paper's measured flags only"
            )
        return "auto"
    if spec == "all":
        flags = OptimizationFlags.all()
    elif spec == "none":
        flags = OptimizationFlags.none()
    else:
        try:
            flags = OptimizationFlags.only(*[s.strip() for s in spec.split(",") if s.strip()])
        except ReproError as err:
            raise SystemExit(str(err))
    if hierarchical:
        flags = flags.with_(hierarchical=True)
    return flags


def _build_graph(args: argparse.Namespace, weighted: bool):
    n, m = args.n, int(args.density * args.n)
    builders = {"random": random_graph, "hybrid": hybrid_graph, "powerlaw": powerlaw_graph}
    g = builders[args.kind](n, m, seed=args.seed)
    return with_random_weights(g, seed=args.seed + 1) if weighted else g


def _fault_plan(args: argparse.Namespace, machine):
    """Build the FaultPlan the CLI flags describe (None when unused)."""
    from .faults import FaultPlan

    return FaultPlan.from_cli(
        loss=args.fault_loss,
        stragglers=args.fault_stragglers,
        seed=args.fault_seed,
        total_threads=machine.total_threads,
        corruption=args.fault_corruption,
        payload_corruption=args.fault_payload_corruption,
        node_loss_at=getattr(args, "fault_node_loss", 0.0),
        node_loss_node=getattr(args, "fault_loss_node", 1),
    )


def _resilience_config(args: argparse.Namespace):
    """The RedundancyConfig behind ``--redundancy`` (None when unused)."""
    if getattr(args, "redundancy", None) is None:
        return None
    from .resilience import RedundancyConfig

    return RedundancyConfig(mode=args.redundancy, spares=args.spares)


def _reject_fault_flags(args: argparse.Namespace, command: str) -> None:
    from .errors import ConfigError

    if (
        getattr(args, "fault_loss", 0.0)
        or getattr(args, "fault_stragglers", 0)
        or getattr(args, "fault_corruption", 0.0)
        or getattr(args, "fault_payload_corruption", 0.0)
        or getattr(args, "fault_node_loss", 0.0)
    ):
        raise ConfigError(f"fault injection is only supported for cc/mst, not {command}")
    if getattr(args, "integrity", False):
        raise ConfigError(f"integrity protection is only supported for cc/mst, not {command}")
    if getattr(args, "redundancy", None) is not None:
        raise ConfigError(f"redundancy is only supported for cc/mst, not {command}")


@contextlib.contextmanager
def _maybe_analyzed(args: argparse.Namespace):
    """Run the body under the epoch race detector when ``--analyze``."""
    if not getattr(args, "analyze", False):
        yield None
        return
    from .analysis import analyzed

    with analyzed() as session:
        yield session


def _sanitizer_exit(session) -> int:
    """Print the sanitizer report; exit 3 when actual races were found."""
    if session is None:
        return 0
    print()
    print(session.render())
    return 3 if session.has_races else 0


def _print_info(info: SolveInfo) -> None:
    print(f"\nmachine : {info.machine.describe()}")
    print(f"modeled : {info.sim_time_ms:.3f} ms in {info.iterations} iteration(s)")
    print(f"wall    : {info.wall_time * 1e3:.1f} ms (simulation overhead)")
    print("breakdown (avg ms/thread):")
    body = format_kv({k: round(v * 1e3, 4) for k, v in info.breakdown().items()})
    print("  " + body.replace("\n", "\n  "))
    c = info.trace.counters
    print(
        f"comm    : {c.remote_messages:,} messages / {c.remote_bytes:,} bytes /"
        f" {c.collective_calls} collectives / {c.barriers} barriers"
    )
    if c.retries or c.crashes or c.checkpoint_restores:
        print(
            f"faults  : {c.retries:,} retries / {c.crashes} crashes /"
            f" {c.checkpoint_restores} checkpoint restores"
        )
    if c.corruptions_injected or c.corruptions_detected or c.repairs:
        print(
            f"silent  : {c.corruptions_injected} corruptions injected /"
            f" {c.corruptions_detected} detected / {c.repairs} repairs"
        )
    if c.node_losses or c.replicas_written:
        print(
            f"resil   : {c.node_losses} node loss(es) / {c.epoch_changes} epoch"
            f" change(s) / {c.blocks_reconstructed} blocks rebuilt /"
            f" {c.replicas_written:,} replica elements shipped"
        )
    for event in info.trace.events:
        print(f"event   : {event}")


def _cmd_cc(args: argparse.Namespace) -> int:
    g = _build_graph(args, weighted=False)
    machine = _parse_machine(args.machine, args.n, not args.no_calibrate)
    opts = _parse_opts(args.opts, args.hierarchical)
    print(banner(f"connected components — {args.kind} n={g.n:,} m={g.m:,}"))
    with _shard_session(args) as shard_sess, _maybe_analyzed(args) as session:
        res = connected_components(
            g, machine, impl=args.impl, opts=opts, tprime=args.tprime, validate=args.validate,
            faults=_fault_plan(args, machine), graph_kind=args.kind,
            integrity=True if args.integrity else None,
            resilience=_resilience_config(args),
        )
    _print_shard_stats(shard_sess)
    print(f"\ncomponents: {res.num_components}")
    _print_info(res.info)
    return _sanitizer_exit(session)


def _cmd_mst(args: argparse.Namespace) -> int:
    g = _build_graph(args, weighted=True)
    machine = _parse_machine(args.machine, args.n, not args.no_calibrate)
    opts = _parse_opts(args.opts, args.hierarchical)
    print(banner(f"minimum spanning forest — {args.kind} n={g.n:,} m={g.m:,}"))
    with _shard_session(args) as shard_sess, _maybe_analyzed(args) as session:
        res = minimum_spanning_forest(
            g, machine, impl=args.impl, opts=opts, tprime=args.tprime, validate=args.validate,
            faults=_fault_plan(args, machine), graph_kind=args.kind,
            integrity=True if args.integrity else None,
            resilience=_resilience_config(args),
        )
    _print_shard_stats(shard_sess)
    print(f"\nforest: {res.num_edges:,} edges, total weight {res.total_weight:,}")
    _print_info(res.info)
    return _sanitizer_exit(session)


def _cmd_listrank(args: argparse.Namespace) -> int:
    from .listrank import random_list, solve_ranks_cgm, solve_ranks_sequential, solve_ranks_wyllie

    _reject_fault_flags(args, "listrank")
    lst = random_list(args.n, args.seed)
    machine = _parse_machine(args.machine, args.n, not args.no_calibrate)
    opts = _parse_opts(args.opts, args.hierarchical)
    print(banner(f"list ranking — n={args.n:,}"))
    solvers = {
        "wyllie": lambda: solve_ranks_wyllie(lst, machine, opts, args.tprime),
        "cgm": lambda: solve_ranks_cgm(lst, machine, opts, args.tprime),
        "sequential": lambda: solve_ranks_sequential(lst),
    }
    with _maybe_analyzed(args) as session:
        ranks, info = solvers[args.impl]()
    print(f"\nhead rank: {int(ranks.max())} (= n-1: {int(ranks.max()) == args.n - 1})")
    _print_info(info)
    return _sanitizer_exit(session)


def _cmd_bfs(args: argparse.Namespace) -> int:
    from .bfs import solve_bfs_collective, solve_bfs_naive_upc, solve_bfs_sequential
    from .bfs.solvers import UNREACHED

    _reject_fault_flags(args, "bfs")
    g = _build_graph(args, weighted=False)
    machine = _parse_machine(args.machine, args.n, not args.no_calibrate)
    opts = _parse_opts(args.opts, args.hierarchical)
    print(banner(f"BFS from {args.source} — {args.kind} n={g.n:,} m={g.m:,}"))
    with _maybe_analyzed(args) as session:
        if args.impl == "collective":
            dist, info = solve_bfs_collective(g, args.source, machine, opts, args.tprime)
        elif args.impl == "naive":
            dist, info = solve_bfs_naive_upc(g, args.source, machine)
        else:
            dist, info = solve_bfs_sequential(g, args.source)
    reached = dist != UNREACHED
    print(f"\nreached {int(reached.sum()):,}/{g.n:,} vertices;"
          f" eccentricity {int(dist[reached].max())}; levels {info.iterations}")
    _print_info(info)
    return _sanitizer_exit(session)


def _cmd_soak(args: argparse.Namespace) -> int:
    from .integrity import SoakConfig, run_soak

    if args.service:
        return _cmd_soak_service(args)
    try:
        nodes_s, threads_s = args.machine.lower().split("x")
        nodes, threads = int(nodes_s), int(threads_s)
    except ValueError:
        raise SystemExit(f"bad --machine {args.machine!r}: soak wants NODESxTHREADS (e.g. 16x8)")
    config = SoakConfig(
        iterations=args.iterations,
        seed=args.seed,
        algos=tuple(args.algo),
        nodes=nodes,
        threads=threads,
        n=args.n,
        m=int(args.density * args.n),
        corruption=args.corruption,
        payload_corruption=args.payload_corruption,
        loss=args.loss,
        stragglers=args.stragglers,
        crashes=args.crashes,
        node_losses=args.node_losses,
        redundancy=args.redundancy or ("buddy" if args.node_losses else ""),
        spares=args.spares,
        unprotected=not args.no_unprotected,
    )
    print(banner(
        f"soak — {args.iterations} iteration(s) x {'/'.join(config.algos)} on"
        f" {nodes}x{threads}, n={config.n:,} m={config.m:,}"
    ))
    report = run_soak(config, out_dir=args.out_dir, workers=args.workers)
    s = report["summary"]
    wc = report["wallclock"]
    print(f"\nwallclock : {wc['seconds']:.2f}s with {wc['workers']} worker(s)")
    print(f"\nruns      : {s['runs']} protected"
          + (f" + {s['unprotected_runs']} unprotected" if s["unprotected_runs"] else ""))
    print(f"injected  : {s['injected']} corruptions, {s['detected']} detected,"
          f" {s['repairs']} repairs")
    if s.get("node_losses"):
        print(f"losses    : {s['node_losses']} permanent node losses survived,"
              f" {s['epoch_changes']} epoch changes,"
              f" {s['blocks_reconstructed']} blocks rebuilt")
    print(f"protected : {s['protected_wrong']} wrong, {s['protected_failed']} gave up")
    if s["unprotected_runs"]:
        print(f"unprotect : {s['unprotected_wrong_or_error']} wrong or errored"
              " (the failure mode integrity closes)")
    print(f"report    : {report['path']}")
    bad = s["protected_wrong"] + s["protected_failed"]
    if bad:
        print(f"\nFAIL: {bad} protected run(s) did not survive", file=sys.stderr)
        return 4
    print("\nall protected runs verified against networkx")
    return 0


def _cmd_soak_service(args: argparse.Namespace) -> int:
    """``soak --service``: the same chaos, routed through the HTTP API."""
    from .integrity import ServiceSoakConfig, run_service_soak

    config = ServiceSoakConfig(
        jobs=args.iterations,
        seed=args.seed,
        n=args.n,
        density=args.density,
        corruption=args.corruption,
        payload_corruption=args.payload_corruption,
        loss=args.loss,
        # --node-losses N turns on the node-kill chaos leg: half the
        # jobs lose a node of their simulated machine mid-solve.
        node_loss_fraction=0.5 if args.node_losses else 0.0,
        redundancy=args.redundancy or "buddy",
    )
    print(banner(
        f"service soak — {config.jobs} chaos job(s) through a live server"
        f" (crash-restart: {config.restart})"
    ))
    report = run_service_soak(config, out_dir=args.out_dir)
    s = report["summary"]
    print(f"\nsubmitted : {s['submitted']} ({s['accepted']} accepted,"
          f" {s['rejected_429']} over-quota/shed, {s['rejected_503']} breaker)")
    print(f"outcomes  : {s['outcomes']}")
    print(f"recovered : {s['recovered_after_restart']} orphan(s) after crash-restart")
    print(f"report    : {report['path']}")
    if s["violations"]:
        for violation in s["violations"]:
            print(f"violation : {violation}", file=sys.stderr)
        print(f"\nFAIL: {len(s['violations'])} service-contract violation(s)", file=sys.stderr)
        return 4
    print("\nservice contract held: no crash, no unverified result, no lost job")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import BackoffPolicy, ServiceConfig, ServiceServer

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        backoff=BackoffPolicy(max_attempts=args.max_attempts),
        journal_path=args.journal,
        default_deadline_s=args.default_deadline,
        verify=not args.no_verify,
    )
    server = ServiceServer(config)
    host, port = server.address
    print(banner(f"repro service — http://{host}:{port}"))
    print(f"workers   : {config.workers}")
    print(f"queue     : {config.queue_capacity} slots"
          f" (degraded >= {config.degraded_at:.0%}, overload >= {config.overload_at:.0%})")
    print(f"quota     : {config.quota_rate:g}/s per tenant, burst {config.quota_burst:g}")
    print(f"journal   : {config.journal_path or '(disabled)'}")
    if server.service.recovered_jobs:
        print(f"recovered : {server.service.recovered_jobs} in-flight job(s) from the journal")
    print("endpoints : POST /submit, GET /status/<job>, /result/<job>, /healthz, /metrics")
    print("\nserving (Ctrl-C to stop)")
    server.serve_forever()
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from .bench.harness import write_bench_json
    from .service import LoadtestConfig, run_loadtest

    config = LoadtestConfig(
        base_url=args.url.rstrip("/"),
        rates_per_s=tuple(args.rates),
        jobs_per_level=args.jobs,
        seed=args.seed,
        n=args.n,
        density=args.density,
        machine=args.machine,
        deadline_s=args.deadline,
        fault_fraction=args.fault_fraction,
    )
    print(banner(
        f"loadtest — {config.base_url}, rates {'/'.join(f'{r:g}' for r in config.rates_per_s)}"
        f" jobs/s x {config.jobs_per_level} jobs"
    ))
    report = run_loadtest(config)
    rows = []
    for level in report["levels"]:
        rows.append([
            f"{level['offered_rate_per_s']:g}",
            level["offered"],
            level["accepted"],
            level["rejected_429"],
            level["completed"],
            f"{level['throughput_per_s']:.2f}",
            f"{level['shed_rate']:.0%}",
            "-" if level["latency_p50_s"] is None else f"{level['latency_p50_s'] * 1e3:.0f}",
            "-" if level["latency_p99_s"] is None else f"{level['latency_p99_s'] * 1e3:.0f}",
        ])
    print(format_table(
        ["rate/s", "offered", "accepted", "429", "done", "done/s", "shed", "p50 ms", "p99 ms"],
        rows,
    ))
    path = write_bench_json("service", report, directory=args.out_dir)
    print(f"\nreport: {path}")
    if report["contract_violations"]:
        for violation in report["contract_violations"]:
            print(f"violation: {violation}", file=sys.stderr)
        print(
            f"\nFAIL: {len(report['contract_violations'])} contract violation(s)",
            file=sys.stderr,
        )
        return 4
    print("contract held: every served result verified, server healthy throughout")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf.bench import check_against_baseline, run_wallclock_bench

    print(banner(f"wall-clock bench — scale={args.scale:g} repeats={args.repeats}"))
    payload = run_wallclock_bench(
        out_dir=args.out_dir, scale=args.scale, repeats=args.repeats, workers=args.workers
    )
    serial = payload["serial"]
    fan = payload["fanout"]
    print(f"\ncpus    : {payload['cpus']}")
    print(f"serial  : fast {serial['fast_seconds']:.3f}s vs legacy"
          f" {serial['legacy_seconds']:.3f}s -> {serial['speedup']:.2f}x")
    print(f"fanout  : {fan['serial']['iterations_per_second']:.2f} it/s serial vs"
          f" {fan['parallel']['iterations_per_second']:.2f} it/s with"
          f" {fan['parallel']['workers']} worker(s) -> {fan['throughput_speedup']:.2f}x")
    if "note" in fan["parallel"]:
        print(f"note    : {fan['parallel']['note']}")
    print(f"report  : {payload['path']}")
    failed = False
    if args.min_speedup is not None and serial["speedup"] < args.min_speedup:
        print(
            f"\nFAIL: serial speedup {serial['speedup']:.2f}x below"
            f" required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if args.baseline is not None:
        import json
        from pathlib import Path

        baseline = json.loads(Path(args.baseline).read_text())
        message = check_against_baseline(payload, baseline)
        if message is not None:
            print(f"\nFAIL: {message}", file=sys.stderr)
            failed = True
        else:
            print(f"baseline: within tolerance of {args.baseline}")
    return 5 if failed else 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .tuning import PlanCache, Workload, calibrate_profile

    print(banner("machine presets"))
    rows = []
    for name, machine in [
        ("hps_cluster(16,16)", hps_cluster(16, 16)),
        ("hps_cluster(16,8)", hps_cluster(16, 8)),
        ("smp_node(16)", smp_node(16)),
        ("sequential", sequential_machine()),
    ]:
        rows.append([name, machine.describe()])
    print(format_table(["preset", "description"], rows))
    n = args.n
    calibrated = _parse_machine(args.machine, n, calibrate=True)
    print(f"\ncalibrated for n={n:,}: {calibrated.describe()}")
    print(f"per-call scale: {calibrated.per_call_scale:.2e}")

    print(banner("calibrated machine profile (measured by the tuning probes)"))
    profile = calibrate_profile(calibrated)
    for line in profile.summary_lines():
        print(line)

    from . import kernels

    print(banner("kernel backends"))
    rows = []
    for cap in kernels.backend_capabilities():
        rows.append(
            [
                cap["backend"],
                "yes" if cap["available"] else f"no — {cap['reason']}",
                cap["requires"] or "-",
                ", ".join(cap["native_ops"]),
            ]
        )
    print(format_table(["backend", "available", "requires", "native ops"], rows))
    rows = []
    for rec in kernels.calibrate_backends(repeats=2, scale=0.25):
        if rec["seconds"] is None:
            rows.append([rec["backend"], "-", "-"])
        else:
            rows.append(
                [
                    rec["backend"],
                    f"{rec['seconds'] * 1e3:.2f}",
                    f"{rec.get('speedup_vs_numpy', 1.0):.2f}x",
                ]
            )
    print(format_table(["backend", "probe ms", "vs numpy"], rows))
    print(f"recommended: {kernels.recommend_backend()} (active: {kernels.backend_name()})")

    cache = PlanCache()
    print(f"\ntuning-plan cache: {cache.path} ({len(cache)} plan(s))")
    m = int(args.density * n)
    for kind in ("cc", "mst"):
        plan = cache.get(calibrated, Workload(kind=kind, n=n, m=m, graph_kind=args.kind))
        if plan is None:
            print(f"  {kind}: no cached plan for this machine x input (run `repro tune`)")
        else:
            for line in plan.summary_lines():
                print(f"  {kind}: {line}")
    return 0


def _plan_table(plan, limit: int = 12) -> str:
    """Predicted-vs-measured table of a plan's top entries (all probed
    entries first, then the best analytic-only rows up to ``limit``)."""
    probed = plan.probed()
    rest = [e for e in plan.entries if e.probed_ms is None][: max(0, limit - len(probed))]
    rows = []
    for e in probed + rest:
        rows.append(
            [
                e.impl,
                e.opts_key,
                e.tprime,
                f"{e.predicted_ms:.3f}",
                "-" if e.probed_ms is None else f"{e.probed_ms:.3f}",
            ]
        )
    return format_table(["impl", "flags", "t'", "predicted ms", "measured ms"], rows)


def _cmd_tune(args: argparse.Namespace) -> int:
    from .tuning import PlanCache, Workload, autotune, calibrate_profile

    machine = _parse_machine(args.machine, args.n, not args.no_calibrate)
    m = int(args.density * args.n)
    print(banner(f"autotune — {args.algo} {args.kind} n={args.n:,} m={m:,}"))

    profile = calibrate_profile(machine)
    print("machine profile:")
    for line in profile.summary_lines():
        print(f"  {line}")

    cache = PlanCache()
    workload = Workload(kind=args.algo, n=args.n, m=m, graph_kind=args.kind)
    plan = autotune(
        workload, machine, cache=cache, use_cache=not args.fresh, workers=args.workers
    )
    print(f"\nplan cache: {cache.path}")
    print(f"searched {plan.lattice_size} configurations;"
          f" {len(plan.probed())} probe-measured at n={plan.probe_n:,}")
    print(_plan_table(plan))
    sel = plan.selected
    print(f"\nselected: {sel.config_label()} ({sel.best_ms:.3f} ms modeled at n={args.n:,})")

    # The kernel backend is the plan's wall-clock dimension: calibrated
    # per host, reported next to the plan, but never cached inside it
    # (TuningPlan files are byte-deterministic; wall-clock probes are
    # not — see docs/performance.md).
    from . import kernels

    print("\nkernel-backend calibration (wall-clock; not part of the cached plan):")
    for rec in kernels.calibrate_backends(repeats=2, scale=0.5):
        if rec["seconds"] is None:
            print(f"  {rec['backend']:<6} unavailable — {rec['reason']}")
        else:
            print(
                f"  {rec['backend']:<6} {rec['seconds'] * 1e3:8.2f} ms"
                f"  ({rec.get('speedup_vs_numpy', 1.0):.2f}x vs numpy)"
            )
    print(f"  recommended: {kernels.recommend_backend()} (active: {kernels.backend_name()})")

    # Demonstrate the pick against the paper's default on the real input.
    g = _build_graph(args, weighted=args.algo == "mst")
    solve = connected_components if args.algo == "cc" else minimum_spanning_forest
    auto = solve(g, machine, impl="auto", opts="auto", tprime="auto", graph_kind=args.kind)
    default = solve(g, machine, impl="collective", opts=OptimizationFlags.all(), tprime=2)
    print(f"\nfull-size check (n={args.n:,}, seed={args.seed}):")
    print(f"  auto    : {auto.info.sim_time_ms:.3f} ms modeled")
    print(f"  default : {default.info.sim_time_ms:.3f} ms modeled (all flags, t'=2)")
    for event in auto.info.trace.events:
        print(f"  event   : {event}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import FLOW_CATALOG, LINT_CATALOG, run_lint, run_verify
    from .analysis.report import (
        apply_baseline,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )
    from .errors import ConfigError

    catalog = {**LINT_CATALOG, **FLOW_CATALOG}
    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = sorted(rules - set(catalog))
        if unknown:
            raise ConfigError(
                f"analyze: unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(catalog))}"
            )

    paths = args.paths or [str(Path(__file__).parent)]
    findings = run_lint(paths) + run_verify(paths)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(f"analyze: wrote {len(findings)} finding(s) to baseline {args.write_baseline}")
        return 0
    if args.baseline:
        findings = apply_baseline(findings, load_baseline(args.baseline))

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings, catalog))
    else:
        if findings:
            print(render_text(findings))
            print(
                f"\n{len(findings)} finding(s); see docs/static-analysis.md "
                "for the rule catalog"
            )
        else:
            print(f"analyze: {len(paths)} path(s) clean")
    return 1 if findings else 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .bench.figures import ALL_FIGURES

    names = args.only if args.only else sorted(ALL_FIGURES)
    for name in names:
        if name not in ALL_FIGURES:
            raise SystemExit(f"unknown figure {name!r}; choose from {sorted(ALL_FIGURES)}")
        fig = ALL_FIGURES[name](scale=args.scale)
        print()
        print(fig.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated-PGAS graph algorithms (SC'10 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_cc = sub.add_parser("cc", help="connected components")
    _add_common(p_cc)
    p_cc.add_argument("--impl", choices=CC_IMPLS, default="collective")
    p_cc.add_argument(
        "--shard-workers",
        default=None,
        help="intra-run sharding: back owner blocks with shared memory and"
        " spread this solve's scatter/gather phases over N worker"
        " processes ('auto' = one per CPU); results are bit-identical",
    )
    p_cc.set_defaults(func=_cmd_cc)

    p_mst = sub.add_parser("mst", help="minimum spanning forest")
    _add_common(p_mst)
    p_mst.add_argument("--impl", choices=MST_IMPLS, default="collective")
    p_mst.add_argument(
        "--shard-workers",
        default=None,
        help="intra-run sharding: back owner blocks with shared memory and"
        " spread this solve's scatter/gather phases over N worker"
        " processes ('auto' = one per CPU); results are bit-identical",
    )
    p_mst.set_defaults(func=_cmd_mst)

    p_bfs = sub.add_parser("bfs", help="breadth-first search")
    _add_common(p_bfs)
    p_bfs.add_argument("--impl", choices=("collective", "naive", "sequential"), default="collective")
    p_bfs.add_argument("--source", type=int, default=0)
    p_bfs.set_defaults(func=_cmd_bfs)

    p_lr = sub.add_parser("listrank", help="list ranking")
    _add_common(p_lr)
    p_lr.add_argument("--impl", choices=("wyllie", "cgm", "sequential"), default="wyllie")
    p_lr.set_defaults(func=_cmd_listrank)

    p_soak = sub.add_parser(
        "soak", help="composed chaos/soak campaign (silent + fail-stop faults)"
    )
    p_soak.add_argument("--iterations", type=int, default=5)
    p_soak.add_argument("--seed", type=int, default=0)
    p_soak.add_argument(
        "--algo", nargs="+", choices=("cc", "mst"), default=["cc", "mst"],
        help="algorithms to soak (default: both)",
    )
    p_soak.add_argument("--machine", default="16x8", help="cluster shape NODESxTHREADS")
    p_soak.add_argument("--n", type=int, default=2048, help="vertex count per iteration")
    p_soak.add_argument("--density", type=float, default=4.0, help="edges per vertex (m/n)")
    p_soak.add_argument(
        "--corruption", type=float, default=2.0e-2,
        help="owner-block flip rate (per element per modeled second)",
    )
    p_soak.add_argument(
        "--payload-corruption", type=float, default=1.0e-4,
        help="per-record in-flight payload flip probability",
    )
    p_soak.add_argument("--loss", type=float, default=0.0, help="per-message loss probability")
    p_soak.add_argument("--stragglers", type=int, default=0, help="straggler threads (4x)")
    p_soak.add_argument("--crashes", type=int, default=0, help="scheduled crashes per run")
    p_soak.add_argument(
        "--node-losses", type=int, default=0,
        help="permanent node losses scheduled per run (protected legs"
        " recover through redundancy; unprotected legs abort loudly)",
    )
    p_soak.add_argument(
        "--redundancy", choices=("buddy", "parity"), default=None,
        help="owner-block redundancy mode for the protected legs"
        " (default: buddy when --node-losses is set)",
    )
    p_soak.add_argument(
        "--spares", type=int, default=0,
        help="cold spare nodes recovery may promote instead of shrinking",
    )
    p_soak.add_argument(
        "--no-unprotected", action="store_true",
        help="skip the unprotected comparison legs (protected runs only)",
    )
    p_soak.add_argument("--out-dir", default=None, help="directory for BENCH_soak.json")
    p_soak.add_argument(
        "--workers", default=None,
        help="process-pool workers: an int or 'auto' (default: serial)",
    )
    p_soak.add_argument(
        "--service", action="store_true",
        help="route the chaos through a live HTTP service instead of direct"
        " solver calls (exercises admission control, shedding, and journal"
        " crash-recovery; report in BENCH_service_soak.json)",
    )
    p_soak.set_defaults(func=_cmd_soak)

    p_info = sub.add_parser("info", help="machine presets and calibration")
    p_info.add_argument("--n", type=int, default=100_000)
    p_info.add_argument("--density", type=float, default=4.0, help="edges per vertex (m/n)")
    p_info.add_argument(
        "--kind", choices=("random", "hybrid", "powerlaw"), default="random", help="input family"
    )
    p_info.add_argument(
        "--machine",
        default="16x8",
        help="cluster shape NODESxTHREADS (e.g. 16x8), 'smp' (1x16) or 'seq'",
    )
    _add_backend(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_tune = sub.add_parser(
        "tune", help="calibrate, search the configuration lattice, print the plan"
    )
    _add_common(p_tune)
    p_tune.add_argument("--algo", choices=("cc", "mst"), default="cc")
    p_tune.add_argument(
        "--fresh", action="store_true", help="ignore any cached plan and re-search"
    )
    p_tune.add_argument(
        "--workers", default=None,
        help="process-pool workers for probe solves: an int or 'auto' (default: serial)",
    )
    p_tune.set_defaults(func=_cmd_tune)

    p_perf = sub.add_parser(
        "perf", help="wall-clock bench: fast vs legacy engine, fan-out throughput"
    )
    _add_backend(p_perf)
    p_perf.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    p_perf.add_argument("--repeats", type=int, default=2, help="best-of-N timing repeats")
    p_perf.add_argument(
        "--workers", default=None,
        help="fan-out workers for the soak-throughput leg: int or 'auto' (default: auto)",
    )
    p_perf.add_argument("--out-dir", default=None, help="directory for BENCH_wallclock.json")
    p_perf.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail (exit 5) when the serial fast-vs-legacy speedup is below this",
    )
    p_perf.add_argument(
        "--baseline", default=None,
        help="previous BENCH_wallclock.json to gate against (>25%% slower fails, exit 5)",
    )
    p_perf.set_defaults(func=_cmd_perf)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant graph-analytics service (JSON over HTTP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642, help="0 picks a free port")
    p_serve.add_argument("--workers", type=int, default=2, help="solver worker threads")
    p_serve.add_argument("--queue-capacity", type=int, default=64, help="bounded queue slots")
    p_serve.add_argument(
        "--quota-rate", type=float, default=10.0, help="per-tenant tokens per second"
    )
    p_serve.add_argument("--quota-burst", type=float, default=20.0, help="per-tenant burst size")
    p_serve.add_argument(
        "--max-attempts", type=int, default=3, help="solve attempts per job (with backoff)"
    )
    p_serve.add_argument(
        "--journal", default=None,
        help="append-only job journal path (enables crash recovery on restart)",
    )
    p_serve.add_argument(
        "--default-deadline", type=float, default=30.0,
        help="deadline (s) for jobs that do not set one",
    )
    p_serve.add_argument(
        "--no-verify", action="store_true",
        help="skip networkx verification of served results (not recommended;"
        " results are marked 'unverified')",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_load = sub.add_parser(
        "loadtest", help="open-loop load generator against a running service"
    )
    p_load.add_argument("--url", default="http://127.0.0.1:8642", help="service base URL")
    p_load.add_argument(
        "--rates", type=float, nargs="+", default=[2.0, 6.0, 18.0],
        help="offered arrival rates (jobs/s), one level each — include one"
        " past saturation",
    )
    p_load.add_argument("--jobs", type=int, default=30, help="jobs per level")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--n", type=int, default=512, help="vertex count per job")
    p_load.add_argument("--density", type=float, default=4.0)
    p_load.add_argument("--machine", default="4x2", help="cluster shape per job")
    p_load.add_argument("--deadline", type=float, default=20.0, help="per-job deadline (s)")
    p_load.add_argument(
        "--fault-fraction", type=float, default=0.25,
        help="fraction of jobs submitted with injected message loss",
    )
    p_load.add_argument("--out-dir", default=None, help="directory for BENCH_service.json")
    p_load.set_defaults(func=_cmd_loadtest)

    p_an = sub.add_parser(
        "analyze", help="static cost-model lint + interprocedural flow verifier"
    )
    p_an.add_argument(
        "paths", nargs="*", help="files/directories to check (default: the repro package)"
    )
    p_an.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="finding output format (sarif is the CI artifact format)",
    )
    p_an.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule selection (e.g. SY01,CH01); default: all",
    )
    p_an.add_argument(
        "--baseline",
        default=None,
        help="suppress findings recorded in this baseline JSON (gate on new ones)",
    )
    p_an.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="record current findings as the reviewed baseline and exit 0",
    )
    p_an.set_defaults(func=_cmd_analyze)

    p_fig = sub.add_parser("figures", help="run paper-figure reproductions")
    p_fig.add_argument("--scale", type=float, default=0.25)
    p_fig.add_argument("--only", nargs="*", help="figure keys (e.g. fig7 sec3)")
    p_fig.set_defaults(func=_cmd_figures)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "backend", None):
            # Resolve eagerly so a typo exits 2 before any work and an
            # unavailable backend warns exactly once, up front.
            from . import kernels

            kernels.set_backend(args.backend, source="--backend")
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
