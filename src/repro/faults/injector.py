"""Deterministic fault injection against a :class:`FaultPlan`.

The injector owns the plan's seeded ``numpy`` Generator and answers the
runtime's questions — "how many of these messages needed retransmits?",
"how slow is this thread?", "did anyone crash yet?" — as pure functions
of the plan, the seed, and the (deterministic) order of queries.  It
never reads wall-clock time, so a run's modeled times are byte-identical
across repetitions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..runtime.machine import MachineConfig
from .plan import CrashEvent, FaultPlan, NodeLossEvent

__all__ = ["FaultInjector"]


class FaultInjector:
    """Stateful per-run interpreter of a :class:`FaultPlan`.

    One injector serves one run: it holds the RNG stream and the not-yet-
    fired crash events.  Construct a fresh one per solve (the runtime
    does this when handed a plan) so identical plans give identical runs.
    """

    def __init__(self, plan: FaultPlan, machine: MachineConfig) -> None:
        self.plan = plan
        self.machine = machine
        self.retry = plan.retry
        self.s = machine.total_threads
        self.rng = np.random.default_rng(plan.seed)
        # Corruption draws come from a dedicated spawned stream so adding
        # silent faults to a plan never perturbs the loss/retry draws of
        # the existing fault classes (and vice versa).
        self._corrupt_rng = np.random.default_rng(
            np.random.SeedSequence(plan.seed, spawn_key=(1,))
        )
        self.node_of = np.arange(self.s, dtype=np.int64) // machine.threads_per_node

        for node in plan.link_loss:
            if not 0 <= node < machine.nodes:
                raise ConfigError(f"link_loss node {node} out of range [0, {machine.nodes})")
        for window in plan.nic_degradations:
            if window.node >= machine.nodes:
                raise ConfigError(
                    f"degradation node {window.node} out of range [0, {machine.nodes})"
                )
        for thread in plan.stragglers:
            if thread >= self.s:
                raise ConfigError(f"straggler thread {thread} out of range [0, {self.s})")
        for event in plan.crashes:
            if event.thread >= self.s:
                raise ConfigError(f"crash thread {event.thread} out of range [0, {self.s})")
        for loss_event in plan.node_losses:
            if loss_event.node >= machine.nodes:
                raise ConfigError(
                    f"lost node {loss_event.node} out of range [0, {machine.nodes})"
                )

        #: Per-node uplink loss probability.
        self.node_loss = np.full(machine.nodes, plan.loss, dtype=np.float64)
        for node, prob in plan.link_loss.items():
            self.node_loss[node] = prob
        #: Per-thread slowdown multipliers (1.0 = healthy).
        self.slowdown = np.ones(self.s, dtype=np.float64)
        for thread, factor in plan.stragglers.items():
            self.slowdown[thread] = factor
        self._lossy = bool(np.any(self.node_loss > 0.0))
        self._slow = bool(np.any(self.slowdown > 1.0))
        #: Crash events still pending, ordered by scheduled time so the
        #: earliest-due event is always consumed first (deterministic).
        self._pending: List[CrashEvent] = sorted(plan.crashes, key=lambda e: e.at_time)
        #: Permanent node-loss events still pending, earliest-due first.
        self._pending_losses: List[NodeLossEvent] = sorted(
            plan.node_losses, key=lambda e: e.at_time
        )
        #: Shared arrays registered as corruption targets (owner-block
        #: bit flips), and the virtual timestamp of the next flip event.
        self._corruptible: List = []
        self._corruptible_elems = 0
        self._next_flip: "float | None" = None

    # -- per-thread multipliers ---------------------------------------------

    def local_factor(self) -> "np.ndarray | None":
        """Straggler multipliers for local-work charges, or ``None`` when
        every thread is healthy (lets the runtime skip the multiply)."""
        return self.slowdown if self._slow else None

    def comm_factor(self, times: np.ndarray) -> "np.ndarray | None":
        """Combined straggler + transient-NIC multiplier for
        communication charges, evaluated at the current virtual clocks
        (a degradation window applies while the node's threads' clocks
        sit inside it)."""
        factor = self.slowdown if self._slow else None
        for window in self.plan.nic_degradations:
            in_window = (
                (self.node_of == window.node)
                & (times >= window.start)
                & (times < window.end)
            )
            if in_window.any():
                if factor is None:
                    factor = np.ones(self.s, dtype=np.float64)
                elif factor is self.slowdown:
                    factor = self.slowdown.copy()
                factor[in_window] *= window.factor
        return factor

    # -- message loss --------------------------------------------------------

    def sample_retries(self, msg_counts) -> tuple[np.ndarray, int]:
        """Retransmission counts for a batch of simulated messages.

        ``msg_counts`` is the per-thread number of messages issued this
        charge.  Each message on a link with loss probability ``q``
        succeeds per attempt with probability ``1 - q``, so the total
        retransmits for a thread's batch follow a negative binomial
        (failures before ``counts`` successes) — sampled in one draw per
        thread instead of one per message.  Returns ``(retries, dead)``
        where ``dead`` counts messages that lost the
        ``q ** max_attempts`` lottery and permanently failed.
        """
        counts = np.rint(np.asarray(msg_counts, dtype=np.float64)).astype(np.int64)
        counts = np.maximum(counts, 0)
        retries = np.zeros(self.s, dtype=np.int64)
        if not self._lossy:
            return retries, 0
        loss = self.node_loss[self.node_of]
        mask = (counts > 0) & (loss > 0.0)
        if not mask.any():
            return retries, 0
        retries[mask] = self.rng.negative_binomial(counts[mask], 1.0 - loss[mask])
        dead = self.rng.binomial(counts[mask], loss[mask] ** self.retry.max_attempts)
        return retries, int(np.asarray(dead).sum())

    # -- crashes -------------------------------------------------------------

    def poll_crash(self, times: np.ndarray) -> Optional[CrashEvent]:
        """Consume and return the earliest pending crash whose scheduled
        time the crashing thread's clock has passed, if any."""
        for i, event in enumerate(self._pending):
            if times[event.thread] >= event.at_time:
                del self._pending[i]
                return event
        return None

    @property
    def pending_crashes(self) -> int:
        return len(self._pending)

    @property
    def unfired_crashes(self) -> tuple:
        """The crash events not yet consumed, earliest-due first (the
        resilience layer remaps these onto the post-loss membership)."""
        return tuple(self._pending)

    # -- permanent node loss ---------------------------------------------------

    def poll_node_loss(self, times: np.ndarray) -> Optional[NodeLossEvent]:
        """Consume and return the earliest pending permanent node loss
        any of whose node's threads' clocks have passed its scheduled
        time, if any.  Events naming a node that is no longer part of
        the membership (dropped by a prior recovery's plan remap) are
        validated away at construction, so whatever is pending here is
        live."""
        for i, event in enumerate(self._pending_losses):
            members = times[self.node_of == event.node]
            if members.size and float(members.max()) >= event.at_time:
                del self._pending_losses[i]
                return event
        return None

    @property
    def pending_node_losses(self) -> int:
        return len(self._pending_losses)

    @property
    def unfired_node_losses(self) -> tuple:
        """The node-loss events not yet consumed, earliest-due first."""
        return tuple(self._pending_losses)

    # -- silent corruption ---------------------------------------------------

    def register_corruptible(self, arr) -> None:
        """Register a shared array as a target for owner-block bit
        flips.  The Poisson flip rate scales with the total number of
        registered elements (``plan.corruption`` flips per element per
        modeled second); registration restarts the inter-arrival
        clock, so register before the solve loop, not inside it."""
        if self.plan.corruption <= 0.0:
            return
        self._corruptible.append(arr)
        self._corruptible_elems += arr.size
        self._next_flip = None

    def _flip_rate(self) -> float:
        """Flip events per virtual second across all registered blocks."""
        return self.plan.corruption * float(self._corruptible_elems)

    def poll_corruption(self, times: np.ndarray) -> int:
        """Fire every flip event whose virtual timestamp the global
        clock has passed; returns the number of elements flipped.

        Events form a Poisson process on the virtual clock and each is
        consumed exactly once — a replayed round re-traverses already
        consumed timestamps cleanly, so verify-and-repair terminates.
        """
        if self.plan.corruption <= 0.0 or not self._corruptible:
            return 0
        now = float(np.asarray(times).max())
        mean_gap = 1.0 / self._flip_rate()
        if self._next_flip is None:
            self._next_flip = now + self._corrupt_rng.exponential(mean_gap)
        flips = 0
        while self._next_flip <= now:
            flips += self._apply_block_flip()
            self._next_flip += self._corrupt_rng.exponential(mean_gap)
        return flips

    def _apply_block_flip(self) -> int:
        """Flip one random bit of one random element of one registered
        array; returns 1 if the stored value changed (0 for degenerate
        single-value domains)."""
        k = int(self._corrupt_rng.integers(0, self._corruptible_elems))
        for arr in self._corruptible:
            if k < arr.size:
                break
            k -= arr.size
        old = int(arr.data[k])
        new = self._fold_flip(old, arr.size)
        if new == old:
            return 0
        arr.data[k] = new
        return 1

    def _fold_flip(self, value: int, domain: int) -> int:
        """A silent single-bit flip folded back into ``[0, domain)``.

        Out-of-domain flips would be caught by the collectives' existing
        bounds checks (loud, not silent); folding models the dangerous
        corruption class — a value that is wrong but still plausible.
        """
        if domain < 2:
            return value
        bit = int(self._corrupt_rng.integers(0, 62))
        flipped = (value ^ (1 << bit)) % domain
        if flipped == value:
            flipped = (value + 1) % domain
        return flipped

    def _flip_packed_weight(self, key: int) -> int:
        """Flip a bit in the weight field of a packed ``(weight <<
        32) | position`` SetDMin key, keeping the position (and hence
        every downstream index) valid — silent-wrong, never a crash."""
        weight = key >> 32
        position = key & 0xFFFFFFFF
        bit = int(self._corrupt_rng.integers(0, 31))
        flipped = (weight ^ (1 << bit)) % (1 << 31)
        if flipped == weight:
            flipped = (weight + 1) % (1 << 31)
        return (flipped << 32) | position

    def corrupt_payload(
        self, values: np.ndarray, domain: int | None = None, packed: bool = False
    ) -> tuple[np.ndarray, int]:
        """One wire transmission of a collective payload: each record is
        flipped i.i.d. with ``plan.payload_corruption``.  Returns ``(the
        delivered buffer, number of records actually changed)`` — the
        input is never mutated (a retransmission starts from the clean
        buffer)."""
        p = self.plan.payload_corruption
        if p <= 0.0 or values.size == 0:
            return values, 0
        nhit = int(self._corrupt_rng.binomial(values.size, p))
        if nhit == 0:
            return values, 0
        positions = np.unique(self._corrupt_rng.integers(0, values.size, size=nhit))
        out = values.copy()
        changed = 0
        for pos in positions:
            old = int(out[pos])
            new = self._flip_packed_weight(old) if packed else self._fold_flip(old, int(domain))
            if new != old:
                out[pos] = new
                changed += 1
        if changed == 0:
            return values, 0
        return out, changed
